//! Quickstart: simulate one benchmark under the three renaming schemes
//! and compare IPC.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```

use vpr::core::{Processor, RenameScheme, SimConfig};
use vpr::trace::{Benchmark, TraceBuilder};

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "swim".into())
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}; try one of: go li compress vortex apsi swim mgrid hydro2d wave5");
            std::process::exit(2);
        });

    println!("benchmark: {benchmark} (64 physical registers per file)\n");
    let schemes = [
        ("conventional (R10000-style)", RenameScheme::Conventional),
        (
            "virtual-physical, issue alloc",
            RenameScheme::VirtualPhysicalIssue { nrr: 32 },
        ),
        (
            "virtual-physical, write-back alloc",
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        ),
    ];
    let mut baseline = None;
    for (name, scheme) in schemes {
        let config = SimConfig::builder().scheme(scheme).build();
        let trace = TraceBuilder::new(benchmark).seed(42).build();
        let mut cpu = Processor::new(config, trace);
        cpu.warm_up(20_000);
        let stats = cpu.run(200_000);
        let ipc = stats.ipc();
        let speedup = match baseline {
            None => {
                baseline = Some(ipc);
                String::new()
            }
            Some(base) => format!("  ({:+.1}% vs conventional)", (ipc / base - 1.0) * 100.0),
        };
        println!("{name:>36}: IPC {ipc:.3}{speedup}");
        println!(
            "{:>36}  exec/commit {:.2}, reexec {} (register) + {} (memory)",
            "",
            stats.executions_per_commit(),
            stats.register_reexecutions,
            stats.memory_reexecutions
        );
    }
    println!("\nThe virtual-physical write-back scheme defers physical-register");
    println!("allocation until a value is actually produced, freeing the window");
    println!("to run further ahead — at the cost of re-executions when the NRR");
    println!("rule denies a register (paper §3.2-3.3).");
}
