//! The paper's §3.1 motivating example, measured.
//!
//! ```text
//! load f2, 0(r6)     ; misses: ~50 cycles
//! fdiv f2, f2, f10   ; 20 cycles in the paper, 16 here
//! fmul f2, f2, f12   ; 10 cycles in the paper, 4 here
//! fadd f2, f2, 1     ; 5 cycles in the paper, 4 here
//! ```
//!
//! The paper computes 151 register-cycles of pressure for decode-time
//! allocation vs. 88 (issue) and 38 (write-back). Our latencies differ
//! (Table 1 values instead of the narrative's), so the absolute numbers
//! differ, but the *ordering* — conventional ≫ issue > write-back — and
//! the rough factor (~4x between conventional and write-back) reproduce.
//!
//! ```text
//! cargo run --release --example register_pressure
//! ```

use vpr::core::{Processor, RenameScheme, SimConfig};
use vpr::trace::paper_example_trace;

fn main() {
    println!("paper §3.1 chain: load f2 / fdiv f2 / fmul f2 / fadd f2 (x32, fresh lines)\n");
    let schemes = [
        ("conventional (alloc at decode)", RenameScheme::Conventional),
        (
            "VP, alloc at issue",
            RenameScheme::VirtualPhysicalIssue { nrr: 32 },
        ),
        (
            "VP, alloc at write-back",
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        ),
    ];
    let mut conv_pressure = None;
    for (name, scheme) in schemes {
        let config = SimConfig::builder().scheme(scheme).build();
        let trace = paper_example_trace(32);
        let stats = Processor::new(config, trace.into_iter()).run_to_completion();
        let pressure = stats.fp.hold_cycles;
        let per_value = pressure as f64 / stats.fp.frees as f64;
        let rel = match conv_pressure {
            None => {
                conv_pressure = Some(pressure);
                String::new()
            }
            Some(base) => format!(
                "  ({:.0}% reduction)",
                (1.0 - pressure as f64 / base as f64) * 100.0
            ),
        };
        println!(
            "{name:>34}: {pressure:>6} FP register-cycles total, {per_value:>6.1} per value{rel}"
        );
    }
    println!("\npaper's hand-computed numbers for its latencies: 151 (decode) / 88 (issue) / 38 (write-back)");
}
