//! Record a trace to disk and replay it through the simulator — the role
//! Atom-generated trace files played in the paper's methodology.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```

use std::fs::File;
use std::io::BufWriter;
use vpr::core::{Processor, RenameScheme, SimConfig};
use vpr::trace::{write_trace, Benchmark, TraceBuilder, TraceFile};

fn main() -> std::io::Result<()> {
    let path = std::env::temp_dir().join("vpr_demo_trace.vprt");

    // Record 200k instructions of the compress model.
    let generated = TraceBuilder::new(Benchmark::Compress)
        .seed(7)
        .build()
        .take(200_000);
    let written = write_trace(BufWriter::new(File::create(&path)?), generated)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "recorded {written} instructions to {} ({bytes} bytes, {:.1} B/inst)",
        path.display(),
        bytes as f64 / written as f64
    );

    // Replay the file through the simulator.
    let replay = TraceFile::new(File::open(&path)?)?;
    let config = SimConfig::builder()
        .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 32 })
        .build();
    let stats = Processor::new(config, replay).run_to_completion();
    println!(
        "replayed: {} committed in {} cycles — IPC {:.3}",
        stats.committed,
        stats.cycles,
        stats.ipc()
    );

    // Determinism: the generator fed directly gives the identical result.
    let direct_trace = TraceBuilder::new(Benchmark::Compress)
        .seed(7)
        .build()
        .take(200_000);
    let config = SimConfig::builder()
        .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 32 })
        .build();
    let direct = Processor::new(config, direct_trace).run_to_completion();
    assert_eq!(direct.cycles, stats.cycles, "replay must be bit-identical");
    println!("direct simulation matches the replay cycle-for-cycle");

    std::fs::remove_file(&path)?;
    Ok(())
}
