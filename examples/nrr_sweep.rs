//! Sweep the NRR deadlock-avoidance parameter (paper §3.3, Figure 4).
//!
//! NRR is the number of oldest destination-having instructions per class
//! that are guaranteed a physical register. Small NRR lets young
//! instructions grab registers aggressively (more far-ahead work, but the
//! instructions in between crawl); large NRR behaves like the conventional
//! scheme with late release. The paper finds NRR = 24-32 best for FP codes
//! and very small NRR actively harmful.
//!
//! ```text
//! cargo run --release --example nrr_sweep [benchmark]
//! ```

use vpr::core::{Processor, RenameScheme, SimConfig};
use vpr::trace::{Benchmark, TraceBuilder};

fn run(benchmark: Benchmark, scheme: RenameScheme) -> f64 {
    let config = SimConfig::builder().scheme(scheme).build();
    let trace = TraceBuilder::new(benchmark).seed(42).build();
    let mut cpu = Processor::new(config, trace);
    cpu.warm_up(20_000);
    cpu.run(150_000).ipc()
}

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "swim".into())
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    println!("benchmark: {benchmark}, VP write-back allocation, 64 regs/file\n");
    let conv = run(benchmark, RenameScheme::Conventional);
    println!("conventional baseline: IPC {conv:.3}\n");
    println!("  NRR  speedup");
    for nrr in [1usize, 4, 8, 16, 24, 32] {
        let ipc = run(benchmark, RenameScheme::VirtualPhysicalWriteback { nrr });
        let bar_len = ((ipc / conv - 0.5) * 40.0).max(0.0) as usize;
        println!("  {nrr:>3}  {:>5.2}  {}", ipc / conv, "#".repeat(bar_len));
    }
}
