//! Model your own workload with the `vpr-trace` building blocks.
//!
//! This example builds a two-loop program from scratch — a streaming
//! daxpy-like kernel plus a pointer-chasing lookup loop — and measures how
//! much the virtual-physical scheme helps as the register file shrinks.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use vpr::core::{Processor, RenameScheme, SimConfig};
use vpr::trace::ops::{br_on, fadd, fload, fmul, fstore, iadd, iload};
use vpr::trace::{LoopSpec, Program, StreamSpec, TraceGen};

fn my_program() -> Program {
    const MEG: u64 = 1 << 20;
    // daxpy over arrays far larger than the 16 KB L1.
    let daxpy = LoopSpec {
        base_pc: 0x1_0000,
        body: vec![
            iadd(1, 1, 2),
            fload(1, 1, 0),
            fload(2, 1, 1),
            fmul(3, 1, 30), // a * x[i]
            fadd(4, 3, 2),  // + y[i]
            fstore(4, 1, 1),
        ],
        streams: vec![
            StreamSpec::strided(0x1000_0000, 4 * MEG, 8),
            StreamSpec::strided(0x2000_4300, 4 * MEG, 8),
        ],
        mean_trips: 1024.0,
    };
    // Symbol-table lookups: serialised pointer chase with a validation
    // branch on the fetched value.
    let lookup = LoopSpec {
        base_pc: 0x2_0000,
        body: vec![
            iload(2, 2, 0),
            iadd(3, 2, 5),
            br_on(3, 0.3, 1),
            iadd(4, 3, 2),
        ],
        streams: vec![StreamSpec::random(0x10_0000, 8 * 1024)],
        mean_trips: 32.0,
    };
    Program {
        loops: vec![daxpy, lookup],
        weights: vec![3.0, 1.0],
    }
}

fn main() {
    println!("custom workload: daxpy streams + pointer-chasing lookups\n");
    println!("  regs   conventional   VP write-back   speedup");
    for regs in [40usize, 48, 64, 96] {
        let nrr = (regs - 32).min(32);
        let measure = |scheme| {
            let config = SimConfig::builder()
                .scheme(scheme)
                .physical_regs(regs)
                .build();
            let mut cpu = Processor::new(config, TraceGen::new(my_program(), 7));
            cpu.warm_up(20_000);
            cpu.run(150_000).ipc()
        };
        let conv = measure(RenameScheme::Conventional);
        let vp = measure(RenameScheme::VirtualPhysicalWriteback { nrr });
        println!(
            "  {regs:>4}   {conv:>12.3}   {vp:>13.3}   {:>6.2}x",
            vp / conv
        );
    }
    println!("\nThe tighter the register budget, the more late allocation buys —");
    println!("the paper's Figure 7 shows the same trend on SPEC95.");
}
