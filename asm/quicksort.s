# quicksort: recursive Lomuto quicksort over 64 xorshift64-generated
# u64 values, followed by an inversion count (s2, expected 0) verifying
# sortedness. Data-dependent branches and a real call stack.

    .data
arr: .space 512            # 64 dwords

    .text
    la   s0, arr
    li   s1, 64            # N

# Fill with xorshift64.
    li   t0, 0
    li   t1, 88172645463325252
fill:
    slli t2, t1, 13
    xor  t1, t1, t2
    srli t2, t1, 7
    xor  t1, t1, t2
    slli t2, t1, 17
    xor  t1, t1, t2
    slli t2, t0, 3
    add  t2, t2, s0
    sd   t1, 0(t2)
    addi t0, t0, 1
    blt  t0, s1, fill

# Sort the whole array.
    li   a0, 0
    li   a1, 63
    call qsort

# Count inversions into s2 (0 iff sorted).
    li   s2, 0
    li   t0, 1
chk:
    slli t1, t0, 3
    add  t1, t1, s0
    ld   t2, 0(t1)
    ld   t3, -8(t1)
    bgeu t2, t3, chk_ok
    addi s2, s2, 1
chk_ok:
    addi t0, t0, 1
    blt  t0, s1, chk
    halt

# qsort(a0 = lo, a1 = hi), indices inclusive; clobbers t*, a2.
qsort:
    bge  a0, a1, qs_done
    addi sp, sp, -32
    sd   ra, 0(sp)
    sd   a0, 8(sp)
    sd   a1, 16(sp)
    # Lomuto partition with pivot = arr[hi].
    slli t0, a1, 3
    add  t0, t0, s0
    ld   t1, 0(t0)         # pivot
    addi t2, a0, -1        # i
    mv   t3, a0            # j
part:
    bge  t3, a1, part_done
    slli t4, t3, 3
    add  t4, t4, s0
    ld   t5, 0(t4)
    bgeu t5, t1, part_next # keep elements < pivot on the left
    addi t2, t2, 1
    slli t6, t2, 3
    add  t6, t6, s0
    ld   a2, 0(t6)
    sd   t5, 0(t6)
    sd   a2, 0(t4)
part_next:
    addi t3, t3, 1
    j    part
part_done:
    addi t2, t2, 1         # pivot's final slot
    slli t4, t2, 3
    add  t4, t4, s0
    ld   t5, 0(t4)
    ld   a2, 0(t0)
    sd   a2, 0(t4)
    sd   t5, 0(t0)
    sd   t2, 24(sp)        # save pivot index
    # Left half.
    ld   a0, 8(sp)
    addi a1, t2, -1
    call qsort
    # Right half.
    ld   t2, 24(sp)
    addi a0, t2, 1
    ld   a1, 16(sp)
    call qsort
    ld   ra, 0(sp)
    addi sp, sp, 32
    ret
qs_done:
    ret
