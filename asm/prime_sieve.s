# prime_sieve: sieve of Eratosthenes over byte flags up to 2000, then a
# counting pass leaving the number of primes (303) in s2. Byte stores and
# highly-biased inner branches.

    .data
flags: .space 2001

    .text
    la   s0, flags
    li   s1, 2000          # N (inclusive)

    li   t0, 2             # candidate i
outer:
    add  t1, s0, t0
    lbu  t2, 0(t1)
    bnez t2, next          # already marked composite
    mul  t3, t0, t0        # first multiple to mark: i*i
    li   t5, 1
mark:
    blt  s1, t3, next      # past N — done marking
    add  t4, s0, t3
    sb   t5, 0(t4)
    add  t3, t3, t0
    j    mark
next:
    addi t0, t0, 1
    bge  s1, t0, outer     # while i <= N

# Count primes into s2.
    li   s2, 0
    li   t0, 2
cnt:
    add  t1, s0, t0
    lbu  t2, 0(t1)
    bnez t2, cnt_next
    addi s2, s2, 1
cnt_next:
    addi t0, t0, 1
    bge  s1, t0, cnt
    halt
