# fib: naively recursive fib(14) = 377, result in s0. Call/return
# dominated with deep stack traffic — the worst case for return-address
# live ranges.

    .text
    li   a0, 14
    call fib
    mv   s0, a0
    halt

# fib(a0) -> a0
fib:
    li   t0, 2
    blt  a0, t0, fib_base  # fib(0) = 0, fib(1) = 1
    addi sp, sp, -24
    sd   ra, 0(sp)
    sd   a0, 8(sp)
    addi a0, a0, -1
    call fib
    sd   a0, 16(sp)        # fib(n-1)
    ld   a0, 8(sp)
    addi a0, a0, -2
    call fib
    ld   t1, 16(sp)
    add  a0, a0, t1
    ld   ra, 0(sp)
    addi sp, sp, 24
    ret
fib_base:
    ret
