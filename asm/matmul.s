# matmul: 12x12 dense double-precision matrix multiply.
# A[i][j] = i+j, B[i][j] = i-j (built with fcvt.d.l), C = A*B, then the
# checksum of C is accumulated into f0. FP-heavy with long FP live ranges
# across the inner accumulation loop.

    .data
A:  .space 1152            # 12*12 doubles
B:  .space 1152
C:  .space 1152

    .text
    la   s0, A
    la   s1, B
    la   s2, C
    li   s3, 12            # N

# Fill A and B.
    li   t0, 0             # i
fill_i:
    li   t1, 0             # j
fill_j:
    mul  t2, t0, s3
    add  t2, t2, t1        # i*N + j
    slli t2, t2, 3
    add  t3, t0, t1        # i + j
    fcvt.d.l f1, t3
    add  t4, s0, t2
    fsd  f1, 0(t4)
    sub  t3, t0, t1        # i - j
    fcvt.d.l f1, t3
    add  t4, s1, t2
    fsd  f1, 0(t4)
    addi t1, t1, 1
    blt  t1, s3, fill_j
    addi t0, t0, 1
    blt  t0, s3, fill_i

# C = A * B.
    li   t0, 0             # i
mm_i:
    li   t1, 0             # j
mm_j:
    fcvt.d.l f2, zero      # acc = 0.0
    li   t2, 0             # k
mm_k:
    mul  t3, t0, s3
    add  t3, t3, t2        # i*N + k
    slli t3, t3, 3
    add  t3, t3, s0
    fld  f3, 0(t3)
    mul  t4, t2, s3
    add  t4, t4, t1        # k*N + j
    slli t4, t4, 3
    add  t4, t4, s1
    fld  f4, 0(t4)
    fmul.d f5, f3, f4
    fadd.d f2, f2, f5
    addi t2, t2, 1
    blt  t2, s3, mm_k
    mul  t3, t0, s3
    add  t3, t3, t1
    slli t3, t3, 3
    add  t3, t3, s2
    fsd  f2, 0(t3)
    addi t1, t1, 1
    blt  t1, s3, mm_j
    addi t0, t0, 1
    blt  t0, s3, mm_i

# Checksum C into f0.
    fcvt.d.l f0, zero
    li   t0, 0
    li   t5, 144           # N*N
ck:
    slli t1, t0, 3
    add  t1, t1, s2
    fld  f1, 0(t1)
    fadd.d f0, f0, f1
    addi t0, t0, 1
    blt  t0, t5, ck
    halt
