# memcpy_stride: fill a 4 KiB source buffer, copy it forward 8 bytes at a
# time, then make 16 stride-64 byte-gather passes over the destination,
# accumulating a checksum in s4. Load/store dominated with two distinct
# access patterns (unit-stride dwords, strided bytes).

    .data
src: .space 4096
dst: .space 4096

    .text
    la   s0, src
    la   s1, dst
    li   s2, 512           # dwords per buffer

# Fill src[i] = (i+1) * 0x9e3779b9.
    li   t0, 0
    li   t1, 0x9e3779b9
fill:
    addi t2, t0, 1
    mul  t2, t2, t1
    slli t3, t0, 3
    add  t3, t3, s0
    sd   t2, 0(t3)
    addi t0, t0, 1
    blt  t0, s2, fill

# Forward copy, 8 bytes at a time.
    li   t0, 0
copy:
    slli t1, t0, 3
    add  t2, t1, s0
    ld   t3, 0(t2)
    add  t4, t1, s1
    sd   t3, 0(t4)
    addi t0, t0, 1
    blt  t0, s2, copy

# 16 stride-64 gather passes, each starting one byte later.
    li   s3, 0             # pass
    li   s4, 0             # checksum
    li   t5, 4096
    li   t6, 16
gather_pass:
    mv   t0, s3
gather:
    add  t1, s1, t0
    lbu  t2, 0(t1)
    add  s4, s4, t2
    addi t0, t0, 64
    blt  t0, t5, gather
    addi s3, s3, 1
    blt  s3, t6, gather_pass
    halt
