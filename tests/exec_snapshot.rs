//! Snapshot coverage for assembled workloads: checkpointing a pipeline
//! mid-run over an `ExecStream` (or a bench-layer `WorkloadStream`
//! wrapping one) must be bit-exact, at *any* commit point.
//!
//! * save → restore → run: a processor snapshotted at a random commit
//!   point and restored into a fresh machine must continue bit-identically
//!   to the uninterrupted original — same stats, same cycle, same
//!   follow-up snapshot bytes;
//! * `Resumable` fast-forward vs replay: skipping `n` instructions with
//!   [`ExecStream::fast_forward`] must be indistinguishable — including
//!   in serialized state — from consuming them one by one, the property
//!   functional warming in sampled simulation relies on.

use proptest::prelude::*;
use std::sync::Arc;
use vpr::core::{Processor, RenameScheme, SimConfig};
use vpr::exec::{AsmProgram, ExecStream, Mode};
use vpr::snap::{Decoder, Encoder, Resumable};
use vpr_bench::Workload;

fn config(scheme: RenameScheme) -> SimConfig {
    SimConfig::builder()
        .scheme(scheme)
        .physical_regs(64)
        .build()
}

const SCHEMES: [RenameScheme; 4] = [
    RenameScheme::Conventional,
    RenameScheme::ConventionalEarlyRelease,
    RenameScheme::VirtualPhysicalIssue { nrr: 32 },
    RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Save → restore → run bit-identity at a random commit point, for a
    /// random program and scheme.
    #[test]
    fn snapshot_restore_continues_bit_identically(
        prog_idx in 0usize..AsmProgram::ALL.len(),
        scheme_idx in 0usize..SCHEMES.len(),
        warm in 100u64..3_000,
        run in 200u64..2_000,
    ) {
        let program = AsmProgram::ALL[prog_idx];
        let scheme = SCHEMES[scheme_idx];
        let image = program.program();

        let mut original = Processor::new(
            config(scheme),
            ExecStream::new(Arc::clone(&image), Mode::Repeat),
        );
        original.run(warm);
        let snapshot = original.snapshot();

        let fresh = ExecStream::new(Arc::clone(&image), Mode::Repeat);
        let mut restored: Processor<ExecStream> =
            Processor::restore(&snapshot, fresh).expect("restore");
        prop_assert_eq!(restored.absolute_committed(), original.absolute_committed());
        prop_assert_eq!(restored.cycle(), original.cycle());

        original.run(run);
        restored.run(run);
        prop_assert_eq!(restored.stats(), original.stats());
        prop_assert_eq!(restored.cycle(), original.cycle());
        prop_assert_eq!(restored.absolute_committed(), original.absolute_committed());
        // Bit-identity, not just counter agreement: the machines must be
        // indistinguishable to a further checkpoint.
        prop_assert_eq!(restored.snapshot(), original.snapshot());
    }

    /// `fast_forward(n)` is equivalent to `n` discarded `next()` calls —
    /// observably *and* in serialized `Resumable` state.
    #[test]
    fn fast_forward_equals_replay_in_serialized_state(
        prog_idx in 0usize..AsmProgram::ALL.len(),
        skip in 1u64..5_000,
    ) {
        let program = AsmProgram::ALL[prog_idx];
        let mut skipped = program.stream(Mode::Repeat);
        let mut replayed = program.stream(Mode::Repeat);
        skipped.fast_forward(skip);
        for _ in 0..skip {
            replayed.next();
        }
        let bytes = |s: &ExecStream| {
            let mut enc = Encoder::new();
            s.save_state(&mut enc);
            enc.into_bytes()
        };
        prop_assert_eq!(bytes(&skipped), bytes(&replayed));
        for _ in 0..100 {
            prop_assert_eq!(skipped.next(), replayed.next());
        }
    }

    /// The same contract holds one layer up, through the bench harness's
    /// `WorkloadStream`: restoring serialized state into a fresh stream
    /// resumes the identical instruction sequence.
    #[test]
    fn workload_stream_resumes_identically(
        prog_idx in 0usize..AsmProgram::ALL.len(),
        skip in 1u64..4_000,
    ) {
        let workload: Workload = AsmProgram::ALL[prog_idx].into();
        let mut stream = workload.stream(42);
        stream.fast_forward(skip);
        let mut enc = Encoder::new();
        stream.save_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut resumed = workload.stream(42);
        resumed.restore_state(&mut Decoder::new(&bytes));
        prop_assert_eq!(resumed.emitted(), stream.emitted());
        for _ in 0..100 {
            prop_assert_eq!(resumed.next(), stream.next());
        }
    }
}
