//! End-to-end checks of the paper's qualitative claims on the synthetic
//! suite (scaled-down runs; the full-size numbers live in EXPERIMENTS.md).

use vpr::core::{harmonic_mean, Processor, RenameScheme, SimConfig};
use vpr::trace::{Benchmark, TraceBuilder};

fn ipc(b: Benchmark, scheme: RenameScheme, regs: usize) -> f64 {
    let config = SimConfig::builder()
        .scheme(scheme)
        .physical_regs(regs)
        .build();
    let trace = TraceBuilder::new(b).seed(42).build();
    let mut cpu = Processor::new(config, trace);
    cpu.warm_up(5_000);
    cpu.run(40_000).ipc()
}

#[test]
fn headline_claim_vp_writeback_beats_conventional_at_64_regs() {
    // Table 2's +19% harmonic-mean improvement: we accept anything
    // clearly positive on the reduced run.
    let conv: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| ipc(b, RenameScheme::Conventional, 64))
        .collect();
    let vp: Vec<f64> = Benchmark::ALL
        .iter()
        .map(|&b| ipc(b, RenameScheme::VirtualPhysicalWriteback { nrr: 32 }, 64))
        .collect();
    let improvement = harmonic_mean(&vp) / harmonic_mean(&conv) - 1.0;
    assert!(
        improvement > 0.10,
        "expected a clear mean improvement, got {:+.1}%",
        improvement * 100.0
    );
}

#[test]
fn fp_programs_improve_more_than_integer_ones() {
    let mean_improvement = |benchmarks: &[Benchmark]| {
        let speedups: Vec<f64> = benchmarks
            .iter()
            .map(|&b| {
                ipc(b, RenameScheme::VirtualPhysicalWriteback { nrr: 32 }, 64)
                    / ipc(b, RenameScheme::Conventional, 64)
            })
            .collect();
        speedups.iter().sum::<f64>() / speedups.len() as f64
    };
    let fp = mean_improvement(&Benchmark::FP);
    let int = mean_improvement(&Benchmark::INTEGER);
    assert!(
        fp > int,
        "paper: FP improves much more than integer ({fp:.2} vs {int:.2})"
    );
}

#[test]
fn swim_is_the_biggest_winner() {
    let speedup = |b| {
        ipc(b, RenameScheme::VirtualPhysicalWriteback { nrr: 32 }, 64)
            / ipc(b, RenameScheme::Conventional, 64)
    };
    let swim = speedup(Benchmark::Swim);
    assert!(swim > 1.4, "swim must gain a lot, got {swim:.2}");
    for b in [
        Benchmark::Hydro2d,
        Benchmark::Wave5,
        Benchmark::Go,
        Benchmark::Li,
    ] {
        assert!(
            swim > speedup(b),
            "swim should outgain {b} ({swim:.2} vs {:.2})",
            speedup(b)
        );
    }
}

#[test]
fn improvement_shrinks_with_more_registers() {
    // Figure 7: +31% / +19% / +8% for 48/64/96 registers.
    let mean_speedup = |regs: usize, nrr: usize| {
        let bs = [Benchmark::Swim, Benchmark::Apsi, Benchmark::Vortex];
        let conv: Vec<f64> = bs
            .iter()
            .map(|&b| ipc(b, RenameScheme::Conventional, regs))
            .collect();
        let vp: Vec<f64> = bs
            .iter()
            .map(|&b| ipc(b, RenameScheme::VirtualPhysicalWriteback { nrr }, regs))
            .collect();
        harmonic_mean(&vp) / harmonic_mean(&conv)
    };
    let at48 = mean_speedup(48, 16);
    let at96 = mean_speedup(96, 64);
    assert!(
        at48 > at96,
        "fewer registers must mean a bigger win: {at48:.2} vs {at96:.2}"
    );
}

#[test]
fn writeback_allocation_beats_issue_allocation() {
    // Figure 6's conclusion, on the register-hungry FP benchmarks.
    let mut wb_total = 0.0;
    let mut issue_total = 0.0;
    for b in [Benchmark::Swim, Benchmark::Mgrid, Benchmark::Apsi] {
        wb_total += ipc(b, RenameScheme::VirtualPhysicalWriteback { nrr: 32 }, 64);
        issue_total += ipc(b, RenameScheme::VirtualPhysicalIssue { nrr: 32 }, 64);
    }
    assert!(
        wb_total > issue_total,
        "write-back must beat issue allocation overall: {wb_total:.2} vs {issue_total:.2}"
    );
}

#[test]
fn vp48_comparable_to_conventional_64() {
    // Figure 7's register-saving claim: VP with 48 registers ≈
    // conventional with 64 (we allow VP-48 to be at worst 15% behind on
    // the reduced run).
    let bs = [Benchmark::Swim, Benchmark::Apsi, Benchmark::Compress];
    let conv64: Vec<f64> = bs
        .iter()
        .map(|&b| ipc(b, RenameScheme::Conventional, 64))
        .collect();
    let vp48: Vec<f64> = bs
        .iter()
        .map(|&b| ipc(b, RenameScheme::VirtualPhysicalWriteback { nrr: 16 }, 48))
        .collect();
    let ratio = harmonic_mean(&vp48) / harmonic_mean(&conv64);
    assert!(
        ratio > 0.85,
        "VP at 48 regs should be near conventional at 64: ratio {ratio:.2}"
    );
}

#[test]
fn tiny_nrr_hurts_fp_programs_under_scarcity() {
    // Figure 4: "very small values of NRR are not adequate for any FP
    // programs". In our reproduction the FP file only becomes genuinely
    // scarce at 48 registers (see EXPERIMENTS.md on this deviation), so
    // the claim is checked there: NRR=1 must underperform the maximum
    // NRR (16 at 48 registers).
    for b in [Benchmark::Swim, Benchmark::Apsi] {
        let small = ipc(b, RenameScheme::VirtualPhysicalWriteback { nrr: 1 }, 48);
        let large = ipc(b, RenameScheme::VirtualPhysicalWriteback { nrr: 16 }, 48);
        assert!(
            large > small,
            "{b}: NRR=16 should beat NRR=1 at 48 regs ({large:.2} vs {small:.2})"
        );
    }
    // At 64 registers the pathology survives on hydro2d, whose occupancy
    // still touches the limit.
    let small = ipc(
        Benchmark::Hydro2d,
        RenameScheme::VirtualPhysicalWriteback { nrr: 1 },
        64,
    );
    let large = ipc(
        Benchmark::Hydro2d,
        RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        64,
    );
    assert!(
        large >= small,
        "hydro2d: NRR=32 should not lose to NRR=1 ({large:.2} vs {small:.2})"
    );
}
