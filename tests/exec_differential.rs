//! Differential testing of the timing pipeline against the pure
//! functional emulator, over randomly generated well-formed programs.
//!
//! The pipeline is *timing-only*: `ExecStream` yields the emulator's
//! committed path, so for any program the pipeline must commit exactly
//! the instructions the emulator executes — no drops, no duplicates, no
//! scheme-dependent divergence. These properties pin that contract:
//!
//! 1. running a random program to completion under any renaming scheme
//!    commits exactly as many instructions as a pure [`Machine`] run
//!    executes, and leaves the stream's embedded machine in the same
//!    architectural state (registers, pc, memory checksum) as the pure
//!    run;
//! 2. the committed count — and the final architectural state — are
//!    identical across all four renaming schemes (`SimStats`
//!    scheme-invariance on the committed stream).
//!
//! Generated programs exercise bounded loops (a counted outer loop plus
//! data-dependent forward skips), integer ALU traffic over a small
//! register pool, and loads/stores confined to the scratch segment.

use proptest::prelude::*;
use std::sync::Arc;
use vpr::core::{Processor, RenameScheme, SimConfig};
use vpr::exec::{assemble, ExecStream, Machine, Mode, SCRATCH_BASE};

/// General-purpose registers the generator allocates from; the loop
/// counter (`t0`) and scratch base (`s0`) are reserved.
const POOL: [&str; 8] = ["t1", "t2", "t3", "a0", "a1", "a2", "a3", "s1"];

/// One generated body operation; rendered to assembly by [`render`].
#[derive(Debug, Clone)]
enum Op {
    /// `mnemonic rd, rs1, rs2` over [`POOL`] indices.
    Alu3(&'static str, usize, usize, usize),
    /// `mnemonic rd, rs1, imm` with an in-range 12-bit immediate.
    AluImm(&'static str, usize, usize, i64),
    /// `mnemonic rd, rs1, shamt` (0..=63).
    Shift(&'static str, usize, usize, u8),
    /// `ld rd, off(s0)` from the scratch segment (8-aligned offset).
    Load(usize, u16),
    /// `sd rs, off(s0)` into the scratch segment.
    Store(usize, u16),
    /// A data-dependent bounded forward skip:
    /// `bltz r, skip_i; addi r, r, -1; skip_i:`.
    Skip(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let alu3 = prop_oneof![
        Just("add"),
        Just("sub"),
        Just("mul"),
        Just("and"),
        Just("or"),
        Just("xor"),
        Just("slt"),
        Just("sltu"),
    ];
    let alu_imm = prop_oneof![
        Just("addi"),
        Just("andi"),
        Just("ori"),
        Just("xori"),
        Just("slti"),
    ];
    let shift = prop_oneof![Just("slli"), Just("srli"), Just("srai")];
    let r = 0usize..POOL.len();
    prop_oneof![
        (alu3, r.clone(), r.clone(), r.clone()).prop_map(|(m, d, a, b)| Op::Alu3(m, d, a, b)),
        (alu_imm, r.clone(), r.clone(), -2048i64..=2047)
            .prop_map(|(m, d, a, i)| Op::AluImm(m, d, a, i)),
        (shift, r.clone(), r.clone(), 0u8..=63).prop_map(|(m, d, a, s)| Op::Shift(m, d, a, s)),
        (r.clone(), 0u16..=255).prop_map(|(d, o)| Op::Load(d, o * 8)),
        (r.clone(), 0u16..=255).prop_map(|(s, o)| Op::Store(s, o * 8)),
        r.prop_map(Op::Skip),
    ]
}

/// Renders a generated program: pool registers seeded with distinct
/// values, a counted `trips`-iteration loop around `body`, and a `halt`.
fn render(trips: u8, body: &[Op]) -> String {
    let mut s = String::new();
    s.push_str(&format!("    li s0, {SCRATCH_BASE}\n"));
    s.push_str(&format!("    li t0, {trips}\n"));
    for (i, r) in POOL.iter().enumerate() {
        s.push_str(&format!("    li {r}, {}\n", (i as i64 + 1) * 17));
    }
    s.push_str("loop:\n");
    for (i, op) in body.iter().enumerate() {
        match *op {
            Op::Alu3(m, d, a, b) => {
                s.push_str(&format!("    {m} {}, {}, {}\n", POOL[d], POOL[a], POOL[b]));
            }
            Op::AluImm(m, d, a, imm) => {
                s.push_str(&format!("    {m} {}, {}, {imm}\n", POOL[d], POOL[a]));
            }
            Op::Shift(m, d, a, sh) => {
                s.push_str(&format!("    {m} {}, {}, {sh}\n", POOL[d], POOL[a]));
            }
            Op::Load(d, off) => {
                s.push_str(&format!("    ld {}, {off}(s0)\n", POOL[d]));
            }
            Op::Store(src, off) => {
                s.push_str(&format!("    sd {}, {off}(s0)\n", POOL[src]));
            }
            Op::Skip(r) => {
                s.push_str(&format!("    bltz {}, skip_{i}\n", POOL[r]));
                s.push_str(&format!("    addi {}, {}, -1\n", POOL[r], POOL[r]));
                s.push_str(&format!("skip_{i}:\n"));
            }
        }
    }
    s.push_str("    addi t0, t0, -1\n    bnez t0, loop\n    halt\n");
    s
}

const SCHEMES: [RenameScheme; 4] = [
    RenameScheme::Conventional,
    RenameScheme::ConventionalEarlyRelease,
    RenameScheme::VirtualPhysicalIssue { nrr: 8 },
    RenameScheme::VirtualPhysicalWriteback { nrr: 8 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Properties 1 + 2: for a random well-formed program, every scheme's
    /// pipeline run commits exactly the emulated instruction stream and
    /// reproduces the pure emulator's architectural state bit-for-bit.
    #[test]
    fn pipeline_commits_exactly_the_emulated_program(
        trips in 1u8..=6,
        body in prop::collection::vec(op_strategy(), 3..=20),
        extra_regs in 8usize..48,
    ) {
        let source = render(trips, &body);
        let program = Arc::new(assemble(&source).unwrap_or_else(|e| {
            panic!("generator produced an ill-formed program: {e}\n{source}")
        }));

        // The oracle: a pure functional run, no pipeline involved.
        let mut oracle = Machine::new(Arc::clone(&program));
        let executed = oracle.run_to_halt();
        let want = oracle.arch_state();
        prop_assert!(executed > 0);

        for scheme in SCHEMES {
            let config = SimConfig::builder()
                .scheme(scheme)
                .physical_regs(32 + extra_regs.max(scheme.nrr().unwrap_or(1)))
                .build();
            let stream = ExecStream::new(Arc::clone(&program), Mode::Once);
            let mut cpu = Processor::new(config, stream);
            let stats = cpu.run_to_completion();

            // No drops, no duplicates: the pipeline committed the whole
            // emulated stream, once.
            prop_assert_eq!(stats.committed, executed, "scheme {:?}", scheme);
            prop_assert_eq!(cpu.trace().emitted(), executed, "scheme {:?}", scheme);
            // And the stream's machine agrees with the oracle on every
            // architectural bit.
            prop_assert_eq!(&cpu.trace().machine().arch_state(), &want, "scheme {:?}", scheme);
            prop_assert!(cpu.trace().machine().halted());
        }
    }

    /// The stream itself is deterministic and coherent: two independent
    /// streams over the same program yield identical instruction
    /// sequences whose pcs chain (`prev.next_pc() == cur.pc()`).
    #[test]
    fn exec_streams_are_deterministic_and_coherent(
        trips in 1u8..=4,
        body in prop::collection::vec(op_strategy(), 3..=12),
    ) {
        let source = render(trips, &body);
        let program = Arc::new(assemble(&source).expect("well-formed by construction"));
        let a: Vec<_> = ExecStream::new(Arc::clone(&program), Mode::Once).collect();
        let b: Vec<_> = ExecStream::new(Arc::clone(&program), Mode::Once).collect();
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            prop_assert_eq!(w[0].next_pc(), w[1].pc(), "committed path must chain");
        }
        // Loads and stores carry memory records; branches carry outcomes.
        for d in &a {
            if d.op().is_mem() {
                prop_assert!(d.mem().is_some());
            }
            if d.op().is_branch() {
                prop_assert!(d.branch().is_some());
            }
        }
    }
}
