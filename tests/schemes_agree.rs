//! Cross-scheme architectural agreement: all three renaming schemes must
//! commit exactly the same instruction stream — only timing may differ
//! (DESIGN.md invariant 5).

use vpr::core::{Processor, RenameScheme, SimConfig, SimStats};
use vpr::trace::{Benchmark, TraceBuilder};

fn run(b: Benchmark, scheme: RenameScheme, insts: u64) -> SimStats {
    let config = SimConfig::builder().scheme(scheme).build();
    let trace = TraceBuilder::new(b).seed(99).build();
    let mut cpu = Processor::new(config, trace);
    cpu.run(insts)
}

#[test]
fn all_schemes_commit_the_same_work() {
    for b in [Benchmark::Swim, Benchmark::Go, Benchmark::Li] {
        let conv = run(b, RenameScheme::Conventional, 30_000);
        let issue = run(b, RenameScheme::VirtualPhysicalIssue { nrr: 32 }, 30_000);
        let wb = run(
            b,
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            30_000,
        );
        // Same committed count (we ask for the same budget)...
        assert!(conv.committed >= 30_000);
        assert!(issue.committed >= 30_000);
        assert!(wb.committed >= 30_000);
        // ...and the same *architectural work*: identical destination and
        // branch mixes per committed instruction. The trace is shared, so
        // any divergence means a scheme skipped or duplicated commits.
        let key = |s: &SimStats| {
            (
                s.committed_with_dest as f64 / s.committed as f64 * 1000.0,
                s.fetch.cond_branches as f64 / s.committed as f64 * 1000.0,
            )
        };
        let (kc, ki, kw) = (key(&conv), key(&issue), key(&wb));
        assert!(
            (kc.0 - ki.0).abs() < 15.0,
            "{b}: dest mix diverged {kc:?} {ki:?}"
        );
        assert!(
            (kc.0 - kw.0).abs() < 15.0,
            "{b}: dest mix diverged {kc:?} {kw:?}"
        );
        assert!((kc.1 - ki.1).abs() < 15.0, "{b}: branch mix diverged");
        assert!((kc.1 - kw.1).abs() < 15.0, "{b}: branch mix diverged");
    }
}

#[test]
fn identical_finite_traces_commit_identically() {
    // On a *finite* trace every scheme must commit exactly every
    // instruction.
    let make = || {
        let mut t = TraceBuilder::new(Benchmark::Compress).seed(5).build();
        t.by_ref().take(20_000).collect::<Vec<_>>()
    };
    let mut committed = Vec::new();
    for scheme in [
        RenameScheme::Conventional,
        RenameScheme::VirtualPhysicalIssue { nrr: 8 },
        RenameScheme::VirtualPhysicalWriteback { nrr: 8 },
    ] {
        let config = SimConfig::builder().scheme(scheme).build();
        let stats = Processor::new(config, make().into_iter()).run_to_completion();
        committed.push(stats.committed);
    }
    assert_eq!(committed[0], 20_000);
    assert_eq!(committed, vec![20_000, 20_000, 20_000]);
}

#[test]
fn issue_allocation_never_reexecutes_for_registers() {
    for b in [Benchmark::Swim, Benchmark::Mgrid] {
        let s = run(b, RenameScheme::VirtualPhysicalIssue { nrr: 4 }, 20_000);
        assert_eq!(
            s.register_reexecutions, 0,
            "{b}: issue allocation must never squash for registers"
        );
    }
}

#[test]
fn writeback_reexecutions_appear_under_pressure() {
    let config = SimConfig::builder()
        .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 4 })
        .physical_regs(48)
        .build();
    let trace = TraceBuilder::new(Benchmark::Swim).seed(3).build();
    let mut cpu = Processor::new(config, trace);
    let stats = cpu.run(30_000);
    assert!(
        stats.register_reexecutions > 0,
        "a small register file with small NRR must force re-executions"
    );
    assert!(stats.executions_per_commit() > 1.0);
}
