//! Property-based tests over randomly generated programs and machine
//! configurations: the simulator must uphold its invariants (DESIGN.md §7)
//! for *any* workload, not just the nine benchmark models.

use proptest::prelude::*;
use vpr::core::{Processor, RenameScheme, SimConfig};
use vpr::isa::OpClass;
use vpr::trace::ops::{br_on, fadd, fdiv, fload, fmul, fstore, iadd, iload, imul, istore};
use vpr::trace::{LoopSpec, Program, StreamSpec, SynthOp, TraceGen};

/// A random but well-formed loop body of 3..=12 operations.
fn body_strategy() -> impl Strategy<Value = Vec<SynthOp>> {
    let op = prop_oneof![
        (1usize..30, 1usize..30, 1usize..30).prop_map(|(d, a, b)| iadd(d, a, b)),
        (1usize..30, 1usize..30, 1usize..30).prop_map(|(d, a, b)| imul(d, a, b)),
        (1usize..30, 1usize..30, 1usize..30).prop_map(|(d, a, b)| fadd(d, a, b)),
        (1usize..30, 1usize..30, 1usize..30).prop_map(|(d, a, b)| fmul(d, a, b)),
        (1usize..30, 1usize..30, 1usize..30).prop_map(|(d, a, b)| fdiv(d, a, b)),
        (1usize..30, 1usize..30).prop_map(|(d, b)| iload(d, b, 0)),
        (1usize..30, 1usize..30).prop_map(|(d, b)| fload(d, b, 0)),
        (1usize..30, 1usize..30).prop_map(|(d, b)| istore(d, b, 1)),
        (1usize..30, 1usize..30).prop_map(|(d, b)| fstore(d, b, 1)),
        (1usize..30, 0.0f64..=1.0).prop_map(|(r, p)| br_on(r, p, 0)),
    ];
    prop::collection::vec(op, 3..=12)
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (
        body_strategy(),
        body_strategy(),
        1.0f64..64.0,
        1.0f64..64.0,
        0u64..4,
    )
        .prop_map(|(body_a, body_b, trips_a, trips_b, ws_sel)| {
            let ws = [2048u64, 16 * 1024, 128 * 1024, 1 << 20][ws_sel as usize];
            let mk = |base_pc: u64, body: Vec<SynthOp>, trips: f64, region: u64| LoopSpec {
                base_pc,
                body,
                streams: vec![
                    StreamSpec::strided(region, ws, 8),
                    StreamSpec::random(region + (1 << 24), ws),
                ],
                mean_trips: trips,
            };
            Program {
                loops: vec![
                    mk(0x1_0000, body_a, trips_a, 0x100_0000),
                    mk(0x2_0000, body_b, trips_b, 0x800_0000),
                ],
                weights: vec![1.0, 1.0],
            }
        })
}

fn scheme_strategy() -> impl Strategy<Value = RenameScheme> {
    prop_oneof![
        Just(RenameScheme::Conventional),
        (1usize..=8).prop_map(|nrr| RenameScheme::VirtualPhysicalIssue { nrr }),
        (1usize..=8).prop_map(|nrr| RenameScheme::VirtualPhysicalWriteback { nrr }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants 1-4: no double alloc/free (the free lists assert these
    /// internally), in-order commit of every instruction, and progress —
    /// any random program on any scheme with a *minimal* register file
    /// runs to completion without tripping the deadlock watchdog.
    #[test]
    fn random_programs_complete_on_all_schemes(
        program in program_strategy(),
        scheme in scheme_strategy(),
        extra_regs in 1usize..32,
    ) {
        let n = 3_000usize;
        let trace: Vec<_> = TraceGen::new(program, 11).take(n).collect();
        let config = SimConfig::builder()
            .scheme(scheme)
            .physical_regs(32 + extra_regs.max(scheme.nrr().unwrap_or(1)))
            .build();
        let stats = Processor::new(config, trace.into_iter()).run_to_completion();
        prop_assert_eq!(stats.committed, n as u64);
        // Conservation: everything allocated during the run is freed by
        // commit or still held by an architectural mapping; the free lists
        // panic on any imbalance, so reaching here is the assertion.
        prop_assert!(stats.cycles > 0);
    }

    /// Invariant 5 (weak form): the committed instruction count and mix
    /// are identical across schemes for the same finite trace.
    #[test]
    fn schemes_commit_identical_streams(program in program_strategy()) {
        let n = 2_000usize;
        let trace: Vec<_> = TraceGen::new(program, 7).take(n).collect();
        let mems = trace.iter().filter(|d| d.op().is_mem()).count();
        for scheme in [
            RenameScheme::Conventional,
            RenameScheme::VirtualPhysicalIssue { nrr: 4 },
            RenameScheme::VirtualPhysicalWriteback { nrr: 4 },
        ] {
            let config = SimConfig::builder().scheme(scheme).physical_regs(40).build();
            let stats = Processor::new(config, trace.clone().into_iter()).run_to_completion();
            prop_assert_eq!(stats.committed, n as u64);
            // Memory operations all pass through the LSQ exactly once at
            // commit; forwarding/violation counters never exceed them.
            prop_assert!(stats.lsq.violations <= mems as u64);
        }
    }

    /// The trace generator itself: the emitted stream is a coherent
    /// committed path (next_pc chains) and is deterministic per seed.
    #[test]
    fn generated_traces_are_coherent(program in program_strategy(), seed in 0u64..1000) {
        let a: Vec<_> = TraceGen::new(program.clone(), seed).take(1_000).collect();
        let b: Vec<_> = TraceGen::new(program, seed).take(1_000).collect();
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            prop_assert_eq!(w[0].next_pc(), w[1].pc());
        }
        for d in &a {
            if d.op().is_mem() {
                prop_assert!(d.mem().is_some());
            }
            if d.op().is_branch() {
                prop_assert!(d.branch().is_some());
            }
            prop_assert!(d.op() != OpClass::Nop);
        }
    }
}
