//! Golden regression guard for the assembled workload programs.
//!
//! For every program in [`AsmProgram::ALL`] this pins, against goldens
//! checked into `tests/golden/`:
//!
//! * the pure emulator's functional outcome — executed-instruction
//!   count, final integer/FP register files (non-zero entries), and the
//!   memory checksum — so any assembler or emulator change that alters
//!   a program's architectural behaviour is caught; and
//! * the timing pipeline's cycle count and committed count for one full
//!   program run under all four renaming schemes, so kernel changes
//!   that shift timing on *real programs* (not just synthetic traces)
//!   are caught, mirroring `crates/bench/tests/cycle_exact_golden.rs`.
//!
//! To regenerate after an intentional behavioural change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test exec_golden
//! ```
//!
//! and review the diff like any other source change.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use vpr::core::{Processor, SimConfig};
use vpr::exec::{AsmProgram, ExecStream, Machine, Mode};
use vpr_bench::workloads::{scheme_label, THROUGHPUT_SCHEMES};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Renders one program's golden record: functional outcome first, then
/// per-scheme timing.
fn render(program: AsmProgram) -> String {
    let mut out = String::new();
    let image = program.program();

    let mut machine = Machine::new(Arc::clone(&image));
    let executed = machine.run_to_halt();
    let state = machine.arch_state();
    writeln!(out, "program: {}", program.name()).unwrap();
    writeln!(out, "executed: {executed}").unwrap();
    writeln!(out, "final_pc: {:#x}", state.pc).unwrap();
    writeln!(out, "mem_checksum: {:#018x}", state.mem_checksum).unwrap();
    for (i, v) in state.x.iter().enumerate() {
        if *v != 0 {
            writeln!(out, "x{i}: {v:#x}").unwrap();
        }
    }
    for (i, v) in state.f.iter().enumerate() {
        if *v != 0 {
            writeln!(out, "f{i}: {v:#018x}").unwrap();
        }
    }

    for scheme in THROUGHPUT_SCHEMES {
        let config = SimConfig::builder()
            .scheme(scheme)
            .physical_regs(64)
            .build();
        let stream = ExecStream::new(Arc::clone(&image), Mode::Once);
        let stats = Processor::new(config, stream).run_to_completion();
        assert_eq!(
            stats.committed,
            executed,
            "{}/{}: pipeline must commit exactly the emulated program",
            program.name(),
            scheme_label(scheme)
        );
        writeln!(
            out,
            "scheme {}: cycles={} committed={}",
            scheme_label(scheme),
            stats.cycles,
            stats.committed
        )
        .unwrap();
    }
    out
}

#[test]
fn assembled_programs_match_goldens() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for program in AsmProgram::ALL {
        let rendered = render(program);
        let path = dir.join(format!("asm_{}.txt", program.name()));
        if update {
            std::fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        if rendered != golden {
            failures.push(format!(
                "{}: behaviour diverged from golden\n--- golden ---\n{golden}\n--- current ---\n{rendered}",
                program.name()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden violations for {} program(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
