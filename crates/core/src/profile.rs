//! Per-subsystem host-cost attribution for the simulator kernel.
//!
//! The throughput harness's `--profile` mode steps the machine through
//! [`Processor::step_profiled`](crate::Processor::step_profiled), which
//! wraps every pipeline phase in a host-time measurement and counts the
//! simulation events each phase processed. The result answers *where the
//! host cycles go* — which is what gates data-layout work like the
//! hot/cold reorder-buffer split: a layout regression shows up as one
//! stage's ns/event drifting, long before the aggregate sim-MIPS figure
//! moves outside shared-host noise.
//!
//! Attribution is wall-clock (`std::time::Instant`) around each phase
//! call. Per-phase timing costs two monotonic-clock reads per stage per
//! active cycle, so profiled runs are *slower* than plain runs — the
//! per-stage ns figures are for comparing stages against each other and
//! against their own history, not for deriving absolute sim-MIPS. The
//! event counts, by contrast, are exact and deterministic (they come
//! from the same architectural counters the goldens pin).

/// One pipeline phase of [`Processor::step`](crate::Processor::step), in
/// execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Next-event cycle governor (`governor_skip`): events counted are
    /// *skipped cycles*.
    Governor,
    /// In-order commit: events are committed instructions.
    Commit,
    /// Store-buffer drain tick: events are stores written to the cache.
    StoreDrain,
    /// Cache-port retry sweep: events are retry candidates swept.
    MemRetry,
    /// Completion/write-back event drain: events are calendar-queue
    /// events handled.
    Events,
    /// Issue selection: events are instructions sent to functional units.
    Issue,
    /// Rename/dispatch: events are instructions dispatched.
    Rename,
    /// Fetch: events are instructions fetched into the fetch buffer.
    Fetch,
}

impl Stage {
    /// Every stage, in pipeline-phase execution order.
    pub const ALL: [Stage; 8] = [
        Stage::Governor,
        Stage::Commit,
        Stage::StoreDrain,
        Stage::MemRetry,
        Stage::Events,
        Stage::Issue,
        Stage::Rename,
        Stage::Fetch,
    ];

    /// Stable lower-case label (JSON key in the throughput schema).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Governor => "governor",
            Stage::Commit => "commit",
            Stage::StoreDrain => "store_drain",
            Stage::MemRetry => "mem_retry",
            Stage::Events => "events",
            Stage::Issue => "issue",
            Stage::Rename => "rename",
            Stage::Fetch => "fetch",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated host cost and event count for one [`Stage`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StageRec {
    /// Host nanoseconds spent inside the phase.
    pub ns: u64,
    /// Simulation events the phase processed (stage-specific unit, see
    /// [`Stage`]).
    pub events: u64,
}

/// A per-stage host-cost profile accumulated over many
/// [`Processor::step_profiled`](crate::Processor::step_profiled) calls.
#[derive(Debug, Clone, Default)]
pub struct StageProfile {
    recs: [StageRec; 8],
    /// Number of profiled steps (active cycles) accumulated.
    pub steps: u64,
}

impl StageProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one phase measurement.
    #[inline]
    pub fn record(&mut self, stage: Stage, elapsed: std::time::Duration, events: u64) {
        let rec = &mut self.recs[stage.index()];
        rec.ns += elapsed.as_nanos() as u64;
        rec.events += events;
    }

    /// The accumulated record for `stage`.
    #[inline]
    pub fn stage(&self, stage: Stage) -> StageRec {
        self.recs[stage.index()]
    }

    /// Total host nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.recs.iter().map(|r| r.ns).sum()
    }

    /// Total events across all stages.
    pub fn total_events(&self) -> u64 {
        self.recs.iter().map(|r| r.events).sum()
    }

    /// Merges another profile into this one (parallel sweeps).
    pub fn merge(&mut self, other: &StageProfile) {
        for (a, b) in self.recs.iter_mut().zip(&other.recs) {
            a.ns += b.ns;
            a.events += b.events;
        }
        self.steps += other.steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn record_accumulates_per_stage() {
        let mut p = StageProfile::new();
        p.record(Stage::Commit, Duration::from_nanos(100), 4);
        p.record(Stage::Commit, Duration::from_nanos(50), 2);
        p.record(Stage::Fetch, Duration::from_nanos(25), 8);
        assert_eq!(p.stage(Stage::Commit).ns, 150);
        assert_eq!(p.stage(Stage::Commit).events, 6);
        assert_eq!(p.stage(Stage::Fetch).events, 8);
        assert_eq!(p.total_ns(), 175);
        assert_eq!(p.total_events(), 14);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = StageProfile::new();
        a.record(Stage::Issue, Duration::from_nanos(10), 1);
        a.steps = 3;
        let mut b = StageProfile::new();
        b.record(Stage::Issue, Duration::from_nanos(20), 2);
        b.record(Stage::Governor, Duration::from_nanos(5), 7);
        b.steps = 2;
        a.merge(&b);
        assert_eq!(a.stage(Stage::Issue).ns, 30);
        assert_eq!(a.stage(Stage::Issue).events, 3);
        assert_eq!(a.stage(Stage::Governor).events, 7);
        assert_eq!(a.steps, 5);
    }

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "stage names must be unique");
        assert_eq!(names[0], "governor");
        assert_eq!(names[7], "fetch");
    }
}
