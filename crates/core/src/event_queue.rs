//! A bucketed calendar queue for cycle-keyed simulation events.
//!
//! The pipeline schedules every event a bounded number of cycles into the
//! future (functional-unit latencies, cache miss penalties, one-cycle
//! retries), so a classic calendar/wheel layout beats a comparison-based
//! map: a ring of `horizon` reusable `Vec` buckets indexed by
//! `cycle % horizon` gives O(1) schedule and drain with **zero
//! steady-state allocation** — drained buckets keep their capacity and are
//! refilled in place. Events beyond the horizon (possible in principle,
//! never on the paper's configurations) spill into a `BTreeMap` overflow
//! so correctness never depends on the horizon choice.
//!
//! Ordering contract: [`CalendarQueue::drain_at`] yields the events of one
//! cycle in the exact order they were scheduled (overflow entries first —
//! they are, by construction, the oldest schedules for that cycle). This
//! matches the `BTreeMap<u64, Vec<Event>>` the pipeline previously used,
//! which is what keeps the simulation bit-identical.

use std::cell::Cell;
use std::collections::BTreeMap;

/// A calendar queue of events keyed by the simulated cycle they fire in.
///
/// `E` is the event payload. The caller supplies the current cycle to
/// every operation; the queue itself holds no clock.
///
/// ```
/// use vpr_core::CalendarQueue;
///
/// let mut q: CalendarQueue<&str> = CalendarQueue::with_horizon(8);
/// q.schedule(0, 3, "a");
/// q.schedule(0, 1, "b");
/// assert_eq!(q.next_occupied(0), Some(1));
/// let mut out = Vec::new();
/// q.drain_at(1, &mut out);
/// assert_eq!(out, vec!["b"]);
/// assert_eq!(q.next_occupied(1), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    /// Ring of per-cycle buckets; index = `cycle & mask`.
    buckets: Vec<Vec<E>>,
    /// `buckets.len() - 1`; the length is a power of two.
    mask: u64,
    /// Far-future events (`at - now >= horizon`), keyed by cycle.
    overflow: BTreeMap<u64, Vec<E>>,
    /// Total scheduled events.
    len: usize,
    /// Lower bound on the earliest occupied *ring* cycle — a scan hint,
    /// not an exact minimum. `schedule` lowers it, successful scans raise
    /// it to the found cycle, so repeated [`CalendarQueue::next_at_or_after`]
    /// queries cost O(1) amortised instead of re-walking empty buckets
    /// (each bucket distance is walked at most once per event). Interior
    /// mutability keeps the queries `&self`; the hint is derived state and
    /// never serialised.
    ring_hint: Cell<u64>,
}

impl<E> CalendarQueue<E> {
    /// Creates a queue whose ring covers `horizon` future cycles
    /// (rounded up to a power of two, minimum 2). Events farther out than
    /// the ring are still accepted — they go to the overflow map.
    pub fn with_horizon(horizon: usize) -> Self {
        let n = horizon.max(2).next_power_of_two();
        Self {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            mask: (n - 1) as u64,
            overflow: BTreeMap::new(),
            len: 0,
            ring_hint: Cell::new(0),
        }
    }

    /// Number of scheduled events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `ev` to fire at cycle `at`, given the current cycle
    /// `now`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `at > now` — events must be strictly in the future,
    /// which is also what keeps ring slots unambiguous.
    #[inline]
    pub fn schedule(&mut self, now: u64, at: u64, ev: E) {
        debug_assert!(at > now, "events must be strictly in the future");
        if at - now <= self.mask {
            // Within the ring: at most `horizon - 1` cycles ahead, so each
            // in-range cycle owns exactly one bucket.
            self.buckets[(at & self.mask) as usize].push(ev);
            if at < self.ring_hint.get() {
                self.ring_hint.set(at);
            }
        } else {
            self.overflow.entry(at).or_default().push(ev);
        }
        self.len += 1;
    }

    /// Moves every event scheduled for cycle `now` into `out`, in
    /// scheduling order. Must be called with non-decreasing `now`, and for
    /// every cycle [`CalendarQueue::next_occupied`] reports (skipping
    /// cycles it returns nothing for is fine — their buckets are empty).
    pub fn drain_at(&mut self, now: u64, out: &mut Vec<E>) {
        // Overflow first: those entries were scheduled when `now` was more
        // than a horizon away, i.e. before anything in the bucket.
        if self
            .overflow
            .first_key_value()
            .is_some_and(|(&at, _)| at == now)
        {
            let spill = self.overflow.remove(&now).expect("checked above");
            self.len -= spill.len();
            out.extend(spill);
        }
        let bucket = &mut self.buckets[(now & self.mask) as usize];
        self.len -= bucket.len();
        out.append(bucket);
    }

    /// True when at least one event is scheduled for cycle `now` (which
    /// must not have been drained yet). O(1): one bucket probe plus the
    /// overflow map's minimum — the cheap "is this cycle active?" test
    /// the idle-skip logic runs before any quiescence analysis.
    #[inline]
    pub fn has_at(&self, now: u64) -> bool {
        !self.buckets[(now & self.mask) as usize].is_empty()
            || self
                .overflow
                .first_key_value()
                .is_some_and(|(&at, _)| at <= now)
    }

    /// The earliest cycle strictly after `now` with at least one event, if
    /// any. Assumes cycle `now` itself has already been drained.
    pub fn next_occupied(&self, now: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.scan_from(now + 1)
    }

    /// The earliest cycle at or after `from` with at least one event, if
    /// any — `from` itself may still be undrained.
    pub fn next_at_or_after(&self, from: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.scan_from(from)
    }

    /// The queue's half of the core's `next_activity()` governor contract
    /// (see `docs/kernel.md`): the earliest cycle at or after `from` at
    /// which a scheduled event fires — exactly
    /// [`CalendarQueue::next_at_or_after`], named for the contract. O(1)
    /// amortised thanks to the ring hint.
    #[inline]
    pub fn next_activity(&self, from: u64) -> Option<u64> {
        self.next_at_or_after(from)
    }

    /// Every pending event as `(cycle, event)`, for checkpointing: cycles
    /// ascend from `from` (the current, not-yet-drained cycle), and events
    /// of one cycle appear in drain order (overflow entries first, then
    /// the ring bucket in scheduling order). Re-scheduling the returned
    /// pairs in order into an empty queue whose clock stands at `from`
    /// reproduces the exact drain behaviour.
    ///
    /// Every live ring event lies in `[from, from + horizon)`: it was
    /// scheduled at some `s < from` with `at − s ≤ horizon − 1`, and has
    /// not been drained, so `at ≥ from`.
    pub fn collect_pending(&self, from: u64) -> Vec<(u64, E)>
    where
        E: Clone,
    {
        let mut out = Vec::with_capacity(self.len);
        for delta in 0..=self.mask {
            let cycle = from + delta;
            for (&at, spill) in self.overflow.range(cycle..=cycle) {
                out.extend(spill.iter().map(|e| (at, e.clone())));
            }
            out.extend(
                self.buckets[(cycle & self.mask) as usize]
                    .iter()
                    .map(|e| (cycle, e.clone())),
            );
        }
        for (&at, spill) in self.overflow.range(from + self.mask + 1..) {
            out.extend(spill.iter().map(|e| (at, e.clone())));
        }
        debug_assert_eq!(out.len(), self.len, "collect_pending must see every event");
        out
    }

    /// Earliest occupied cycle ≥ `from`. All live events lie within one
    /// horizon of `from` (ring) or in the overflow map, and in-range
    /// cycles map bijectively onto buckets, so the first non-empty bucket
    /// in ring order is the in-ring minimum. The walk starts at the ring
    /// hint (a proven lower bound on the ring minimum — cycles below it
    /// hold no ring event, and cycles below `from` were already drained)
    /// and the hint advances to wherever the walk ends, so consecutive
    /// queries never re-walk the same empty buckets.
    fn scan_from(&self, from: u64) -> Option<u64> {
        let mut best = self.overflow.keys().next().copied();
        let start = from.max(self.ring_hint.get());
        for delta in 0..=self.mask {
            let cycle = start + delta;
            if !self.buckets[(cycle & self.mask) as usize].is_empty() {
                self.ring_hint.set(cycle);
                best = Some(best.map_or(cycle, |b| b.min(cycle)));
                return best;
            }
        }
        // No ring event at all: nothing below `start + horizon` occupies
        // the ring, and future schedules lower the hint as needed.
        self.ring_hint.set(start + self.mask);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_and_drain_preserve_order() {
        let mut q = CalendarQueue::with_horizon(16);
        q.schedule(0, 5, 1u32);
        q.schedule(0, 5, 2);
        q.schedule(3, 5, 3);
        let mut out = Vec::new();
        q.drain_at(5, &mut out);
        assert_eq!(
            out,
            vec![1, 2, 3],
            "same-cycle events keep scheduling order"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = CalendarQueue::with_horizon(4);
        q.schedule(0, 1000, "far");
        q.schedule(0, 2, "near");
        assert_eq!(q.len(), 2);
        let mut out = Vec::new();
        q.drain_at(2, &mut out);
        assert_eq!(out, vec!["near"]);
        assert_eq!(q.next_occupied(2), Some(1000));
        out.clear();
        q.drain_at(1000, &mut out);
        assert_eq!(out, vec!["far"]);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_entries_precede_ring_entries_for_the_same_cycle() {
        let mut q = CalendarQueue::with_horizon(4);
        q.schedule(0, 100, "early-scheduled");
        // Time advances; the same cycle is now within the ring.
        q.schedule(99, 100, "late-scheduled");
        let mut out = Vec::new();
        q.drain_at(100, &mut out);
        assert_eq!(out, vec!["early-scheduled", "late-scheduled"]);
    }

    #[test]
    fn next_occupied_finds_ring_and_overflow_minima() {
        let mut q = CalendarQueue::with_horizon(8);
        assert_eq!(q.next_occupied(0), None);
        q.schedule(0, 7, ());
        q.schedule(0, 3, ());
        q.schedule(0, 500, ());
        assert_eq!(q.next_occupied(0), Some(3));
        let mut out = Vec::new();
        q.drain_at(3, &mut out);
        assert_eq!(q.next_occupied(3), Some(7));
        q.drain_at(7, &mut out);
        assert_eq!(q.next_occupied(7), Some(500));
    }

    #[test]
    fn ring_wraps_without_aliasing() {
        let mut q = CalendarQueue::with_horizon(4);
        let mut out = Vec::new();
        for cycle in 0u64..100 {
            q.schedule(cycle, cycle + 3, cycle);
            out.clear();
            q.drain_at(cycle + 1, &mut out);
            if cycle >= 2 {
                assert_eq!(out, vec![cycle - 2], "event fires exactly 3 cycles later");
            }
        }
    }

    #[test]
    fn next_activity_survives_hint_movement() {
        // The ring hint only ever advances past provably-empty buckets;
        // schedules below it must pull it back down. Exercise the
        // empty → far-future → near-past-the-hint pattern explicitly.
        let mut q = CalendarQueue::with_horizon(16);
        q.schedule(0, 14, "far");
        assert_eq!(q.next_activity(0), Some(14), "hint walks to 14");
        q.schedule(1, 3, "near");
        assert_eq!(q.next_activity(1), Some(3), "hint lowered by schedule");
        let mut out = Vec::new();
        q.drain_at(3, &mut out);
        assert_eq!(out, vec!["near"]);
        assert_eq!(q.next_activity(3), Some(14));
        q.drain_at(14, &mut out);
        assert!(q.is_empty());
        assert_eq!(q.next_activity(14), None);
        // After a failed scan parked the hint a horizon out, a fresh
        // near-term schedule must still be found.
        q.schedule(20, 22, "again");
        assert_eq!(q.next_activity(20), Some(22));
    }

    #[test]
    fn buckets_keep_capacity_after_drain() {
        let mut q = CalendarQueue::with_horizon(4);
        let mut out = Vec::with_capacity(8);
        for round in 0u64..10 {
            let now = round * 2;
            for i in 0..8 {
                q.schedule(now, now + 1, i);
            }
            let cap_before = q.buckets[((now + 1) & q.mask) as usize].capacity();
            out.clear();
            q.drain_at(now + 1, &mut out);
            assert_eq!(out.len(), 8);
            if round > 0 {
                assert!(cap_before >= 8, "drained bucket retains its allocation");
            }
        }
    }
}
