//! Functional-unit pool.

use crate::config::SimConfig;
use vpr_isa::{FuKind, OpClass};

#[derive(Debug, Clone, Copy, Default)]
struct FuInstance {
    /// For unpipelined operations: the unit is occupied until this cycle.
    busy_until: u64,
    /// Last cycle this unit accepted an operation (pipelined units accept
    /// one per cycle).
    last_issue: Option<u64>,
}

/// The machine's functional units (paper Table 1): per-kind instance
/// pools, fully pipelined except for the divide/sqrt operations, which
/// occupy their unit for the whole latency.
///
/// ```
/// use vpr_core::{FuPool, SimConfig};
/// use vpr_isa::OpClass;
///
/// let cfg = SimConfig::default();
/// let mut fus = FuPool::new(&cfg);
/// // Three simple-integer units: three ALU issues per cycle, not four.
/// assert!(fus.try_issue(OpClass::IntAlu, 0).is_some());
/// assert!(fus.try_issue(OpClass::IntAlu, 0).is_some());
/// assert!(fus.try_issue(OpClass::IntAlu, 0).is_some());
/// assert!(fus.try_issue(OpClass::IntAlu, 0).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    units: [Vec<FuInstance>; 6],
    latencies: crate::config::Latencies,
}

impl FuPool {
    /// Builds the pool from a configuration's unit counts and latencies.
    pub fn new(config: &SimConfig) -> Self {
        let mk = |kind: FuKind| vec![FuInstance::default(); config.fu_count(kind)];
        Self {
            units: [
                mk(FuKind::SimpleInt),
                mk(FuKind::ComplexInt),
                mk(FuKind::EffAddr),
                mk(FuKind::SimpleFp),
                mk(FuKind::FpMul),
                mk(FuKind::FpDiv),
            ],
            latencies: config.latencies,
        }
    }

    /// Attempts to start `op` at cycle `now`. On success returns the cycle
    /// at which execution completes; on structural hazard returns `None`
    /// and changes nothing.
    ///
    /// # Panics
    ///
    /// Panics for [`OpClass::Nop`], which never occupies a unit.
    pub fn try_issue(&mut self, op: OpClass, now: u64) -> Option<u64> {
        let kind = op
            .fu_kind()
            .expect("nop does not execute on a functional unit");
        let latency = self.latencies.of(op);
        let unpipelined = op.is_unpipelined();
        let unit = self.units[kind.index()]
            .iter_mut()
            .find(|u| u.busy_until <= now && u.last_issue != Some(now))?;
        unit.last_issue = Some(now);
        if unpipelined {
            unit.busy_until = now + latency;
        }
        Some(now + latency)
    }

    /// The earliest cycle at or after `now` at which some unit could
    /// accept `op`, assuming no further issues happen in between — the
    /// idle-skip bound for a ready-but-FU-blocked instruction. Returns
    /// `now` itself when a unit is free right now.
    ///
    /// # Panics
    ///
    /// Panics for [`OpClass::Nop`], which never occupies a unit.
    pub fn earliest_accept(&self, op: OpClass, now: u64) -> u64 {
        let kind = op
            .fu_kind()
            .expect("nop does not execute on a functional unit");
        self.units[kind.index()]
            .iter()
            .map(|u| {
                if u.busy_until > now {
                    // An unpipelined occupant frees the unit at
                    // `busy_until` (`try_issue` accepts when
                    // `busy_until <= now`).
                    u.busy_until
                } else if u.last_issue == Some(now) {
                    // Pipelined: accepts again next cycle.
                    now + 1
                } else {
                    now
                }
            })
            .min()
            .expect("every kind has at least one unit")
    }

    /// How many units of `kind` could accept an operation at `now`
    /// (diagnostics).
    pub fn available(&self, kind: FuKind, now: u64) -> usize {
        self.units[kind.index()]
            .iter()
            .filter(|u| u.busy_until <= now && u.last_issue != Some(now))
            .count()
    }
}

impl vpr_snap::Snap for FuInstance {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.busy_until);
        self.last_issue.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            busy_until: dec.take_u64(),
            last_issue: Option::<u64>::load(dec),
        }
    }
}

impl vpr_snap::Snap for FuPool {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.units.save(enc);
        self.latencies.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            units: <[Vec<FuInstance>; 6]>::load(dec),
            latencies: crate::config::Latencies::load(dec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FuPool {
        FuPool::new(&SimConfig::default())
    }

    #[test]
    fn pipelined_units_accept_one_per_cycle_each() {
        let mut fus = pool();
        // 2 FP multipliers.
        assert_eq!(fus.try_issue(OpClass::FpMul, 0), Some(4));
        assert_eq!(fus.try_issue(OpClass::FpMul, 0), Some(4));
        assert_eq!(fus.try_issue(OpClass::FpMul, 0), None);
        // Next cycle both accept again although the first ops are still in
        // flight (fully pipelined).
        assert_eq!(fus.try_issue(OpClass::FpMul, 1), Some(5));
        assert_eq!(fus.try_issue(OpClass::FpMul, 1), Some(5));
    }

    #[test]
    fn unpipelined_divide_blocks_its_unit() {
        let mut fus = pool();
        // 2 FP divide units, latency 16, unpipelined.
        assert_eq!(fus.try_issue(OpClass::FpDiv, 0), Some(16));
        assert_eq!(fus.try_issue(OpClass::FpDiv, 0), Some(16));
        assert_eq!(fus.try_issue(OpClass::FpDiv, 1), None, "both busy");
        assert_eq!(fus.try_issue(OpClass::FpDiv, 15), None);
        assert_eq!(fus.try_issue(OpClass::FpDiv, 16), Some(32));
    }

    #[test]
    fn complex_int_mixes_pipelined_mul_and_blocking_div() {
        let mut fus = pool();
        // A divide occupies one of the 2 complex-int units for 67 cycles.
        assert_eq!(fus.try_issue(OpClass::IntDiv, 0), Some(67));
        // The other unit still accepts a multiply each cycle.
        assert_eq!(fus.try_issue(OpClass::IntMul, 0), Some(9));
        assert_eq!(fus.try_issue(OpClass::IntMul, 0), None);
        assert_eq!(fus.try_issue(OpClass::IntMul, 1), Some(10));
        // At cycle 67 the divide unit frees up.
        assert_eq!(fus.try_issue(OpClass::IntMul, 66), Some(75));
        assert_eq!(fus.try_issue(OpClass::IntMul, 66), None);
        assert_eq!(fus.try_issue(OpClass::IntMul, 67), Some(76));
        assert_eq!(fus.try_issue(OpClass::IntMul, 67), Some(76));
    }

    #[test]
    fn branches_share_simple_int_units() {
        let mut fus = pool();
        assert!(fus.try_issue(OpClass::BranchCond, 0).is_some());
        assert!(fus.try_issue(OpClass::IntAlu, 0).is_some());
        assert!(fus.try_issue(OpClass::IntAlu, 0).is_some());
        assert!(fus.try_issue(OpClass::BranchUncond, 0).is_none());
    }

    #[test]
    fn loads_and_stores_use_effaddr_units() {
        let mut fus = pool();
        assert_eq!(fus.try_issue(OpClass::Load, 0), Some(1));
        assert_eq!(fus.try_issue(OpClass::Store, 0), Some(1));
        assert_eq!(fus.try_issue(OpClass::Load, 0), Some(1));
        assert_eq!(fus.try_issue(OpClass::Store, 0), None);
        assert_eq!(fus.available(FuKind::EffAddr, 0), 0);
        assert_eq!(fus.available(FuKind::EffAddr, 1), 3);
    }

    #[test]
    fn earliest_accept_tracks_occupancy() {
        let mut fus = pool();
        // Free unit: accepts now.
        assert_eq!(fus.earliest_accept(OpClass::FpDiv, 0), 0);
        // Both divide units busy until 16: that is the bound.
        assert_eq!(fus.try_issue(OpClass::FpDiv, 0), Some(16));
        assert_eq!(fus.try_issue(OpClass::FpDiv, 0), Some(16));
        assert_eq!(fus.earliest_accept(OpClass::FpDiv, 1), 16);
        // Pipelined units that issued this cycle accept again next cycle.
        assert!(fus.try_issue(OpClass::FpMul, 5).is_some());
        assert!(fus.try_issue(OpClass::FpMul, 5).is_some());
        assert_eq!(fus.earliest_accept(OpClass::FpMul, 5), 6);
        // Staggered unpipelined occupancy: the earlier release wins.
        assert_eq!(fus.try_issue(OpClass::FpDiv, 16), Some(32));
        assert_eq!(fus.try_issue(OpClass::FpDiv, 20), Some(36));
        assert_eq!(fus.earliest_accept(OpClass::FpDiv, 21), 32);
    }

    #[test]
    #[should_panic(expected = "nop does not execute")]
    fn nop_rejected() {
        let mut fus = pool();
        let _ = fus.try_issue(OpClass::Nop, 0);
    }

    #[test]
    fn earliest_accept_lower_bound_property() {
        // The `next_activity()` contract: after an arbitrary issue
        // history, `earliest_accept(op, now)` must name exactly the first
        // cycle at which `try_issue(op, ·)` succeeds, assuming no issues
        // in between — never later (the governor would overshoot real
        // work), and, for tightness, never an idle earlier cycle.
        let ops = [
            OpClass::IntAlu,
            OpClass::IntDiv,
            OpClass::IntMul,
            OpClass::FpDiv,
            OpClass::FpMul,
            OpClass::Load,
        ];
        let mut seed = 0x1234_5678u64;
        let mut rand = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        let mut fus = pool();
        let mut now = 0u64;
        for _ in 0..300 {
            now += rand(3);
            let op = ops[rand(ops.len() as u64) as usize];
            let _ = fus.try_issue(op, now);
            let probe_op = ops[rand(ops.len() as u64) as usize];
            let bound = fus.earliest_accept(probe_op, now + 1);
            // Probing never mutates: step a clone forward cycle by cycle.
            let mut t = now + 1;
            loop {
                let accepted = fus.clone().try_issue(probe_op, t).is_some();
                assert_eq!(
                    accepted,
                    t == bound,
                    "{probe_op:?}: earliest_accept said {bound}, probe at {t} says {accepted}"
                );
                if accepted {
                    break;
                }
                t += 1;
                assert!(t < bound + 2, "bound must be reached");
            }
        }
    }
}
