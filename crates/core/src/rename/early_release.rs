//! Early register release via pending-read counters.
//!
//! The paper (§3.1) divides the conventional scheme's register waste into
//! two intervals: (1) decode → write-back, which virtual-physical
//! registers eliminate, and (2) last read → commit of the *next* writer,
//! which prior work eliminated "by associating a counter with each
//! physical register that keeps track of the pending read operations —
//! a register is freed whenever the counter is zero, provided that the
//! corresponding [logical] register has been subsequently renamed"
//! (Moudgill, Pingali & Vassiliadis; Smith & Sohi — the paper's [8] and
//! [10]). This module implements that complementary scheme on top of
//! decode-time allocation, giving the repository a fourth point of
//! comparison.
//!
//! A register is released when **all three** hold:
//!
//! 1. *superseded* — a later writer of the same logical register has been
//!    renamed, so no future instruction can name this register;
//! 2. *pending reads are zero* — every renamed consumer has actually read
//!    the value (re-executed consumers re-arm the counter);
//! 3. *the producer has committed* — the value can no longer be
//!    re-created, so the storage is genuinely dead. This gate is what
//!    makes early release safe alongside load re-execution; it is also
//!    why the scheme is restricted to committed-path simulation
//!    (`wrong_path_injection` is rejected by `SimConfig::validate`):
//!    squashed wrong-path consumers would otherwise need checkpointed
//!    counters, which the referenced designs handle with extra hardware
//!    this model does not reproduce.

use super::{FreeList, PhysReg, RenamedSrc, SrcState};
use vpr_isa::{LogicalReg, RegClass, NUM_LOGICAL_PER_CLASS};

#[derive(Debug, Clone, Copy)]
struct RegState {
    /// Outstanding reads by renamed-but-not-yet-issued consumers.
    pending_reads: u32,
    /// A younger writer of the same logical register has been renamed.
    superseded: bool,
    /// The producing instruction has committed.
    producer_committed: bool,
    /// The value has been produced (write-back happened).
    ready: bool,
    /// Already returned to the free list (guards double release).
    freed: bool,
}

impl RegState {
    fn boot() -> Self {
        Self {
            pending_reads: 0,
            superseded: false,
            producer_committed: true,
            ready: true,
            freed: false,
        }
    }

    fn fresh() -> Self {
        Self {
            pending_reads: 0,
            superseded: false,
            producer_committed: false,
            ready: false,
            freed: false,
        }
    }

    fn releasable(&self) -> bool {
        !self.freed && self.superseded && self.pending_reads == 0 && self.producer_committed
    }
}

/// Per-class release accounting, surfaced into
/// [`SimStats`](crate::SimStats) by the pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReleaseStats {
    /// Registers released.
    pub frees: u64,
    /// Sum of allocation→release intervals (register pressure integral).
    pub hold_cycles: u64,
    /// Releases that happened strictly before the next writer committed —
    /// the wins over the conventional policy.
    pub early: u64,
}

/// Conventional decode-time allocation plus counter-based early release.
///
/// ```
/// use vpr_core::rename::EarlyReleaseRenamer;
/// use vpr_isa::{LogicalReg, RegClass};
///
/// let mut r = EarlyReleaseRenamer::new(40);
/// let l = LogicalReg::int(3);
/// // A consumer renames the boot mapping of r3, then a new writer
/// // supersedes it; once the consumer reads, the old register frees
/// // without waiting for the new writer to commit.
/// let src = r.rename_src(l);
/// let free_before = r.free_count(RegClass::Int);
/// let (_new, prev) = r.try_rename_dest(l, 0).unwrap();
/// r.on_read(RegClass::Int, prev, 5);
/// assert_eq!(r.free_count(RegClass::Int), free_before, "alloc+release net zero");
/// let _ = src;
/// ```
#[derive(Debug, Clone)]
pub struct EarlyReleaseRenamer {
    map: [Vec<PhysReg>; 2],
    state: [Vec<RegState>; 2],
    free: [FreeList; 2],
    stats: [ReleaseStats; 2],
}

impl EarlyReleaseRenamer {
    /// Creates the boot state (logical `i` → physical `i`, ready,
    /// committed).
    ///
    /// # Panics
    ///
    /// Panics if `phys_per_class <= NUM_LOGICAL_PER_CLASS`.
    pub fn new(phys_per_class: usize) -> Self {
        assert!(
            phys_per_class > NUM_LOGICAL_PER_CLASS,
            "need more physical than logical registers"
        );
        let map = || {
            (0..NUM_LOGICAL_PER_CLASS)
                .map(|i| PhysReg(i as u16))
                .collect()
        };
        let state = || {
            (0..phys_per_class)
                .map(|i| {
                    if i < NUM_LOGICAL_PER_CLASS {
                        RegState::boot()
                    } else {
                        RegState::fresh()
                    }
                })
                .collect()
        };
        Self {
            map: [map(), map()],
            state: [state(), state()],
            free: [
                FreeList::new(phys_per_class, NUM_LOGICAL_PER_CLASS),
                FreeList::new(phys_per_class, NUM_LOGICAL_PER_CLASS),
            ],
            stats: [ReleaseStats::default(), ReleaseStats::default()],
        }
    }

    fn try_release(&mut self, class: RegClass, preg: PhysReg, now: u64, at_commit: bool) {
        let c = class.index();
        let s = self.state[c][preg.0 as usize];
        if !s.releasable() {
            return;
        }
        self.state[c][preg.0 as usize].freed = true;
        let held = self.free[c].release(preg.0, now);
        let st = &mut self.stats[c];
        st.frees += 1;
        st.hold_cycles += held;
        if !at_commit {
            st.early += 1;
        }
    }

    /// Renames a source operand and arms its pending-read counter (the
    /// consumer will read the register at issue).
    pub fn rename_src(&mut self, logical: LogicalReg) -> RenamedSrc {
        let c = logical.class();
        let preg = self.map[c.index()][logical.index()];
        let s = &mut self.state[c.index()][preg.0 as usize];
        s.pending_reads += 1;
        let state = if s.ready {
            SrcState::Ready(preg)
        } else {
            SrcState::WaitPhys(preg)
        };
        RenamedSrc { class: c, state }
    }

    /// Renames a destination at decode: allocates a register and marks
    /// the previous mapping superseded (possibly releasing it on the
    /// spot). Returns `(new, previous)` or `None` on an empty free list.
    pub fn try_rename_dest(&mut self, logical: LogicalReg, now: u64) -> Option<(PhysReg, PhysReg)> {
        let c = logical.class().index();
        let new = PhysReg(self.free[c].allocate(now)?);
        self.state[c][new.0 as usize] = RegState::fresh();
        let prev = std::mem::replace(&mut self.map[c][logical.index()], new);
        self.state[c][prev.0 as usize].superseded = true;
        self.try_release(logical.class(), prev, now, false);
        Some((new, prev))
    }

    /// A consumer read `preg` at issue: the counter drops and the
    /// register may become dead.
    pub fn on_read(&mut self, class: RegClass, preg: PhysReg, now: u64) {
        let s = &mut self.state[class.index()][preg.0 as usize];
        assert!(
            s.pending_reads > 0,
            "read of {preg} without a renamed consumer"
        );
        s.pending_reads -= 1;
        self.try_release(class, preg, now, false);
    }

    /// A squashed consumer will re-issue and read again: re-arm the
    /// counter (virtual-physical write-back squashes don't exist under
    /// this scheme, but memory-ordering re-executions do).
    pub fn on_reread(&mut self, class: RegClass, preg: PhysReg) {
        let s = &mut self.state[class.index()][preg.0 as usize];
        debug_assert!(!s.freed, "re-read of a freed register");
        s.pending_reads += 1;
    }

    /// The value for `preg` has been produced.
    pub fn on_writeback(&mut self, class: RegClass, preg: PhysReg) {
        self.state[class.index()][preg.0 as usize].ready = true;
    }

    /// The producing instruction committed: the last gate opens (and for
    /// values whose consumers/supersession are already done, the register
    /// frees here — no earlier than the conventional scheme would for a
    /// *read-after-supersede* pattern, but usually much earlier than the
    /// next writer's commit).
    pub fn on_producer_commit(&mut self, class: RegClass, preg: PhysReg, now: u64) {
        self.state[class.index()][preg.0 as usize].producer_committed = true;
        self.try_release(class, preg, now, true);
    }

    /// Free registers in `class`.
    #[inline]
    pub fn free_count(&self, class: RegClass) -> usize {
        self.free[class.index()].free_count()
    }

    /// Allocated registers in `class`.
    #[inline]
    pub fn allocated_count(&self, class: RegClass) -> usize {
        self.free[class.index()].allocated_count()
    }

    /// `(occupancy, empty-cycles)` integrals of the physical file of
    /// `class` over cycles `0..end` (see [`FreeList::occupancy_integral`]).
    pub fn occupancy_integrals(&self, class: RegClass, end: u64) -> (u64, u64) {
        let fl = &self.free[class.index()];
        (fl.occupancy_integral(end), fl.empty_integral(end))
    }

    /// Release accounting for `class`.
    pub fn release_stats(&self, class: RegClass) -> ReleaseStats {
        self.stats[class.index()]
    }

    /// The current physical mapping of a logical register.
    pub fn mapping(&self, logical: LogicalReg) -> PhysReg {
        self.map[logical.class().index()][logical.index()]
    }
}

impl vpr_snap::Snap for RegState {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u32(self.pending_reads);
        enc.put_bool(self.superseded);
        enc.put_bool(self.producer_committed);
        enc.put_bool(self.ready);
        enc.put_bool(self.freed);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            pending_reads: dec.take_u32(),
            superseded: dec.take_bool(),
            producer_committed: dec.take_bool(),
            ready: dec.take_bool(),
            freed: dec.take_bool(),
        }
    }
}

impl vpr_snap::Snap for ReleaseStats {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.frees);
        enc.put_u64(self.hold_cycles);
        enc.put_u64(self.early);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            frees: dec.take_u64(),
            hold_cycles: dec.take_u64(),
            early: dec.take_u64(),
        }
    }
}

impl vpr_snap::Snap for EarlyReleaseRenamer {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.map.save(enc);
        self.state.save(enc);
        self.free.save(enc);
        self.stats.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            map: <[Vec<PhysReg>; 2]>::load(dec),
            state: <[Vec<RegState>; 2]>::load(dec),
            free: <[FreeList; 2]>::load(dec),
            stats: <[ReleaseStats; 2]>::load(dec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_state_is_ready_and_unsuperseded() {
        let mut r = EarlyReleaseRenamer::new(64);
        let s = r.rename_src(LogicalReg::int(4));
        assert_eq!(s.state, SrcState::Ready(PhysReg(4)));
        assert_eq!(r.free_count(RegClass::Int), 32);
    }

    #[test]
    fn release_waits_for_all_three_gates() {
        let mut r = EarlyReleaseRenamer::new(64);
        let l = LogicalReg::fp(1);
        // Writer W allocates p; consumer C renames it; writer W2
        // supersedes it.
        let (p, _boot) = r.try_rename_dest(l, 0).unwrap();
        r.on_writeback(RegClass::Fp, p);
        let _c = r.rename_src(l);
        let free0 = r.free_count(RegClass::Fp);
        let (_p2, prev) = r.try_rename_dest(l, 1).unwrap();
        assert_eq!(prev, p);
        assert_eq!(
            r.free_count(RegClass::Fp),
            free0 - 1,
            "superseded but read pending"
        );
        // Consumer reads: still held (producer not committed).
        r.on_read(RegClass::Fp, p, 5);
        assert_eq!(r.free_count(RegClass::Fp), free0 - 1);
        // Producer commits: all gates open.
        r.on_producer_commit(RegClass::Fp, p, 6);
        assert_eq!(r.free_count(RegClass::Fp), free0);
        let st = r.release_stats(RegClass::Fp);
        assert!(st.frees >= 1);
    }

    #[test]
    fn early_release_beats_next_writer_commit() {
        let mut r = EarlyReleaseRenamer::new(64);
        let l = LogicalReg::int(2);
        // Superseding the never-read boot mapping frees it on the spot
        // (first early release).
        let (p, _) = r.try_rename_dest(l, 0).unwrap();
        assert_eq!(r.release_stats(RegClass::Int).early, 1);
        r.on_writeback(RegClass::Int, p);
        r.on_producer_commit(RegClass::Int, p, 3);
        let _c = r.rename_src(l); // one consumer
        let free0 = r.free_count(RegClass::Int);
        let (_p2, _) = r.try_rename_dest(l, 4).unwrap(); // superseded
                                                         // The consumer reads at cycle 10 — release happens NOW, long
                                                         // before the superseding writer would commit (second early
                                                         // release).
        r.on_read(RegClass::Int, p, 10);
        assert_eq!(
            r.free_count(RegClass::Int),
            free0,
            "net zero before any commit"
        );
        assert_eq!(r.release_stats(RegClass::Int).early, 2);
    }

    #[test]
    fn reread_rearms_the_counter() {
        let mut r = EarlyReleaseRenamer::new(64);
        let l = LogicalReg::int(2);
        let (p, _) = r.try_rename_dest(l, 0).unwrap();
        r.on_writeback(RegClass::Int, p);
        r.on_producer_commit(RegClass::Int, p, 1);
        let _c = r.rename_src(l);
        let (_p2, _) = r.try_rename_dest(l, 2).unwrap();
        // The consumer issues (reads), then gets squashed by a memory
        // violation and re-arms before the release conditions re-check.
        r.on_reread(RegClass::Int, p);
        r.on_read(RegClass::Int, p, 5);
        let free_mid = r.free_count(RegClass::Int);
        r.on_read(RegClass::Int, p, 9);
        assert_eq!(r.free_count(RegClass::Int), free_mid + 1);
    }

    #[test]
    fn unread_unsuperseded_values_stay_allocated() {
        let mut r = EarlyReleaseRenamer::new(34);
        // Arm readers on the boot mappings so superseding cannot free
        // them (their values are still wanted).
        let _ = r.rename_src(LogicalReg::int(0));
        let _ = r.rename_src(LogicalReg::int(1));
        let (p, _) = r.try_rename_dest(LogicalReg::int(0), 0).unwrap();
        r.on_writeback(RegClass::Int, p);
        r.on_producer_commit(RegClass::Int, p, 1);
        // p is the current (unsuperseded) mapping: must never free.
        assert_eq!(r.free_count(RegClass::Int), 1);
        assert!(r.try_rename_dest(LogicalReg::int(1), 2).is_some());
        assert!(
            r.try_rename_dest(LogicalReg::int(2), 3).is_none(),
            "exhausted"
        );
    }

    #[test]
    #[should_panic(expected = "without a renamed consumer")]
    fn read_without_rename_panics() {
        let mut r = EarlyReleaseRenamer::new(64);
        r.on_read(RegClass::Int, PhysReg(0), 1);
    }
}
