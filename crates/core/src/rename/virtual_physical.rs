//! The virtual-physical renaming scheme (paper §3.2).
//!
//! Destinations are renamed at decode to *virtual-physical* (VP) tags,
//! which occupy no storage; dependences are tracked through the tags. A
//! physical register is bound to the tag only when the value is actually
//! produced (write-back allocation) or when the instruction issues
//! (issue allocation) — the pipeline decides *when* to call
//! [`VpRenamer::try_allocate`]; this type implements the two map tables:
//!
//! * **GMT** (general map table), indexed by logical register: the current
//!   VP mapping, plus the physical register and a valid bit once the value
//!   exists;
//! * **PMT** (physical map table), indexed by VP tag: the physical
//!   register bound to the tag, if any.
//!
//! Deadlock avoidance (§3.3) lives in the embedded per-class
//! [`NrrState`].

use super::{FreeList, NrrState, PhysReg, RenamedSrc, SrcState, VpReg};
use vpr_isa::{LogicalReg, RegClass, NUM_LOGICAL_PER_CLASS};

/// One general-map-table entry: the paper's (VP register, P register,
/// V bit) triple, packed into four bytes — the (P, V) pair is a `u16`
/// with an in-band sentinel standing in for "V bit clear", so a class's whole
/// GMT row set (32 logical registers) spans two cache lines instead of
/// four and every source rename touches exactly one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmtEntry {
    vp: VpReg,
    preg: u16,
}

/// Packed "V bit clear" sentinel in [`GmtEntry`] (physical register
/// numbers are bounded far below `u16::MAX` by `SimConfig`).
const NO_PREG: u16 = u16::MAX;

// Layout-regression guard: sixteen GMT entries per cache line.
const _: () = assert!(
    std::mem::size_of::<GmtEntry>() == 4,
    "GmtEntry must stay 4 bytes (sixteen entries per cache line)"
);

impl GmtEntry {
    /// Builds an entry from the logical (tag, optional binding) view.
    pub fn new(vp: VpReg, preg: Option<PhysReg>) -> Self {
        debug_assert!(preg.is_none_or(|p| p.0 != NO_PREG));
        Self {
            vp,
            preg: preg.map_or(NO_PREG, |p| p.0),
        }
    }

    /// Last virtual-physical tag mapped to this logical register.
    #[inline]
    pub fn vp(&self) -> VpReg {
        self.vp
    }

    /// Physical register holding the value, once produced (`V` bit set).
    #[inline]
    pub fn preg(&self) -> Option<PhysReg> {
        (self.preg != NO_PREG).then_some(PhysReg(self.preg))
    }

    /// Sets the binding (the write-back broadcast's valid-bit update).
    #[inline]
    fn set_preg(&mut self, preg: PhysReg) {
        debug_assert!(preg.0 != NO_PREG);
        self.preg = preg.0;
    }
}

/// The virtual-physical renamer: GMT + PMT + free pools + NRR state, one
/// of each per register class.
///
/// ```
/// use vpr_core::rename::VpRenamer;
/// use vpr_isa::LogicalReg;
///
/// let mut r = VpRenamer::new(64, 160, 32);
/// let f2 = LogicalReg::fp(2);
/// // A new writer of f2 gets a tag immediately; no physical register yet.
/// let (vp, _prev) = r.rename_dest(f2, /*seq=*/0, /*now=*/0);
/// assert!(!r.rename_src(f2).state.is_ready());
/// // At completion the pipeline allocates and binds a physical register.
/// let preg = r.try_allocate(f2.class(), 0, 1).unwrap();
/// r.bind(f2.class(), vp, preg);
/// assert!(r.rename_src(f2).state.is_ready());
/// ```
#[derive(Debug, Clone)]
pub struct VpRenamer {
    gmt: [Vec<GmtEntry>; 2],
    pmt: [Vec<Option<PhysReg>>; 2],
    /// Per-tag inverse of the GMT: `vp_owner[c][vp]` is the logical
    /// register whose *current* mapping is tag `vp`, or [`NO_OWNER`].
    /// Tags are uniquely owned (renaming only hands out free tags), so
    /// the write-back broadcast of [`VpRenamer::bind`] updates the GMT
    /// valid bit in O(1) instead of scanning the whole table per event.
    vp_owner: [Vec<u16>; 2],
    vp_free: [FreeList; 2],
    preg_free: [FreeList; 2],
    nrr: [NrrState; 2],
}

/// Sentinel for "no logical register currently maps to this tag".
const NO_OWNER: u16 = u16::MAX;

/// A per-class, per-cycle snapshot of the §3.3 allocation rule (see
/// [`VpRenamer::alloc_gate`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocGate {
    /// Sequence number of the youngest reserved instruction, if any —
    /// anything at or below it is always granted.
    pub reserved_upto: Option<u64>,
    /// Whether non-reserved instructions may allocate (free > NRR − Used).
    pub young_ok: bool,
}

impl AllocGate {
    /// The rule's verdict for instruction `seq`.
    #[inline]
    pub fn allows(&self, seq: u64) -> bool {
        self.reserved_upto.is_some_and(|p| seq <= p) || self.young_ok
    }
}

impl VpRenamer {
    /// Creates the boot state: logical `i` maps to VP tag `i`, which is
    /// bound to physical register `i`.
    ///
    /// # Panics
    ///
    /// Panics if the physical file is not larger than the logical one, if
    /// there are fewer VP tags than logical registers, or if
    /// `nrr` is not in `1..=phys_per_class - NUM_LOGICAL_PER_CLASS`.
    pub fn new(phys_per_class: usize, virtual_per_class: usize, nrr: usize) -> Self {
        assert!(
            phys_per_class > NUM_LOGICAL_PER_CLASS,
            "need more physical than logical registers"
        );
        assert!(
            virtual_per_class >= NUM_LOGICAL_PER_CLASS,
            "need at least one VP tag per logical register"
        );
        assert!(
            (1..=phys_per_class - NUM_LOGICAL_PER_CLASS).contains(&nrr),
            "NRR {nrr} out of range 1..={}",
            phys_per_class - NUM_LOGICAL_PER_CLASS
        );
        let gmt = || {
            (0..NUM_LOGICAL_PER_CLASS)
                .map(|i| GmtEntry::new(VpReg(i as u16), Some(PhysReg(i as u16))))
                .collect()
        };
        let pmt = || {
            (0..virtual_per_class)
                .map(|i| {
                    if i < NUM_LOGICAL_PER_CLASS {
                        Some(PhysReg(i as u16))
                    } else {
                        None
                    }
                })
                .collect()
        };
        let owner = || {
            (0..virtual_per_class)
                .map(|i| {
                    if i < NUM_LOGICAL_PER_CLASS {
                        i as u16
                    } else {
                        NO_OWNER
                    }
                })
                .collect()
        };
        Self {
            gmt: [gmt(), gmt()],
            pmt: [pmt(), pmt()],
            vp_owner: [owner(), owner()],
            vp_free: [
                FreeList::new(virtual_per_class, NUM_LOGICAL_PER_CLASS),
                FreeList::new(virtual_per_class, NUM_LOGICAL_PER_CLASS),
            ],
            preg_free: [
                FreeList::new(phys_per_class, NUM_LOGICAL_PER_CLASS),
                FreeList::new(phys_per_class, NUM_LOGICAL_PER_CLASS),
            ],
            nrr: [NrrState::new(nrr), NrrState::new(nrr)],
        }
    }

    /// Re-targets the reserved-register machinery to a different NRR:
    /// both classes' counters restart empty and the caller must rebuild
    /// them from the in-flight window via [`VpRenamer::nrr_rebuild`] (it
    /// owns the program-order destination index). The map tables, free
    /// lists and bindings are untouched — the NRR is purely an
    /// allocation-policy parameter, so everything else of the machine
    /// state remains valid (see `Processor::retarget_nrr`).
    ///
    /// # Panics
    ///
    /// Panics if `nrr` is out of `1..=phys_per_class − logical` (the same
    /// range [`VpRenamer::new`] enforces).
    pub fn retarget_nrr(&mut self, nrr: usize) {
        let phys = self.preg_free[0].capacity();
        assert!(
            (1..=phys - NUM_LOGICAL_PER_CLASS).contains(&nrr),
            "NRR {nrr} out of range 1..={}",
            phys - NUM_LOGICAL_PER_CLASS
        );
        self.nrr = [NrrState::new(nrr), NrrState::new(nrr)];
    }

    /// Renames a source operand (paper §3.2.2): if the GMT entry's valid
    /// bit is set the operand is the physical register and ready;
    /// otherwise the operand waits on the VP tag.
    pub fn rename_src(&self, logical: LogicalReg) -> RenamedSrc {
        let c = logical.class();
        let e = self.gmt[c.index()][logical.index()];
        let state = match e.preg() {
            Some(p) => SrcState::Ready(p),
            None => SrcState::WaitVp(e.vp()),
        };
        RenamedSrc { class: c, state }
    }

    /// Renames a destination at decode: takes a free VP tag, updates the
    /// GMT (new tag, valid bit reset) and registers the instruction with
    /// the NRR machinery. Returns `(new_vp, previous_vp)`; the previous
    /// tag goes to the reorder buffer for recovery and commit-time
    /// freeing.
    ///
    /// # Panics
    ///
    /// Panics if no VP tag is free. With `NVR = NLR + window size` (the
    /// sizing rule of §3.2.1, enforced by `SimConfig`) this cannot happen,
    /// so exhaustion indicates a leak rather than a recoverable stall.
    pub fn rename_dest(&mut self, logical: LogicalReg, seq: u64, now: u64) -> (VpReg, VpReg) {
        let c = logical.class().index();
        let new = VpReg(
            self.vp_free[c]
                .allocate(now)
                .expect("VP tags sized to never run out (NVR = NLR + window)"),
        );
        debug_assert!(self.pmt[c][new.0 as usize].is_none(), "stale PMT binding");
        debug_assert_eq!(
            self.vp_owner[c][new.0 as usize], NO_OWNER,
            "tag still owned"
        );
        let prev =
            std::mem::replace(&mut self.gmt[c][logical.index()], GmtEntry::new(new, None)).vp();
        debug_assert_eq!(
            self.vp_owner[c][prev.0 as usize],
            logical.index() as u16,
            "inverse map out of sync with the GMT"
        );
        self.vp_owner[c][prev.0 as usize] = NO_OWNER;
        self.vp_owner[c][new.0 as usize] = logical.index() as u16;
        self.nrr[c].on_decode(seq);
        (new, prev)
    }

    /// The paper's §3.3 allocation rule for instruction `seq` of `class`.
    pub fn may_allocate(&self, class: RegClass, seq: u64) -> bool {
        self.nrr[class.index()].may_allocate(seq, self.preg_free[class.index()].free_count())
    }

    /// Snapshot of the §3.3 rule for `class`, valid until the next
    /// allocation, release, decode or commit of this class:
    /// [`AllocGate::allows`] then equals [`VpRenamer::may_allocate`] per
    /// candidate without touching the counters again.
    pub fn alloc_gate(&self, class: RegClass) -> AllocGate {
        let c = class.index();
        AllocGate {
            reserved_upto: self.nrr[c].pointer(),
            young_ok: self.nrr[c].may_allocate_young(self.preg_free[c].free_count()),
        }
    }

    /// Attempts to allocate a physical register for instruction `seq`
    /// under the NRR rule. Returns `None` when the rule denies the
    /// allocation (write-back scheme: squash and re-execute; issue scheme:
    /// keep waiting in the queue).
    ///
    /// # Panics
    ///
    /// Panics if the rule *grants* the allocation but no register is free:
    /// the NRR invariant (`free ≥ NRR − Used`) guarantees reserved
    /// instructions a register, so this indicates corrupted accounting.
    pub fn try_allocate(&mut self, class: RegClass, seq: u64, now: u64) -> Option<PhysReg> {
        let c = class.index();
        if !self.nrr[c].may_allocate(seq, self.preg_free[c].free_count()) {
            return None;
        }
        let preg = PhysReg(
            self.preg_free[c]
                .allocate(now)
                .expect("NRR invariant guarantees a free register once granted"),
        );
        self.nrr[c].on_allocate(seq);
        Some(preg)
    }

    /// Binds physical register `preg` to tag `vp` (the write-back
    /// broadcast of §3.2.2): updates the PMT, and sets the GMT entry's
    /// (P, V) fields if `vp` is still the current mapping of its logical
    /// register.
    ///
    /// # Panics
    ///
    /// Panics if the tag is already bound.
    pub fn bind(&mut self, class: RegClass, vp: VpReg, preg: PhysReg) {
        let c = class.index();
        let slot = &mut self.pmt[c][vp.0 as usize];
        assert!(slot.is_none(), "tag {vp} already bound to {:?}", *slot);
        *slot = Some(preg);
        // O(1) valid-bit update through the inverse map: only the logical
        // register whose current mapping is `vp` (if any) learns the
        // binding; superseded mappings are reached through the PMT at
        // commit/squash time instead.
        let owner = self.vp_owner[c][vp.0 as usize];
        if owner != NO_OWNER {
            let e = &mut self.gmt[c][owner as usize];
            debug_assert_eq!(e.vp(), vp, "inverse map out of sync with the GMT");
            debug_assert!(e.preg().is_none(), "GMT valid bit set before binding");
            e.set_preg(preg);
        }
    }

    /// Commit of an instruction that superseded `prev_vp`: frees the
    /// previous writer's VP tag and, through the PMT, its physical
    /// register (paper §3.2.2). Returns the cycles the physical register
    /// was held, for pressure accounting (0 when the previous tag never
    /// bound one, which happens when recovery already released it).
    pub fn on_commit_dest(&mut self, class: RegClass, prev_vp: VpReg, now: u64) -> u64 {
        let c = class.index();
        self.vp_free[c].release(prev_vp.0, now);
        match self.pmt[c][prev_vp.0 as usize].take() {
            Some(p) => self.preg_free[c].release(p.0, now),
            None => 0,
        }
    }

    /// Advances the NRR pointer at commit of a destination-having
    /// instruction (see [`NrrState::on_commit`]).
    pub fn nrr_on_commit(
        &mut self,
        class: RegClass,
        committing_seq: u64,
        entrant: Option<(u64, bool)>,
    ) {
        self.nrr[class.index()].on_commit(committing_seq, entrant);
    }

    /// Rebuilds a class's NRR counters after a squash (see
    /// [`NrrState::rebuild`]).
    pub fn nrr_rebuild<I: Iterator<Item = (u64, bool)>>(&mut self, class: RegClass, survivors: I) {
        self.nrr[class.index()].rebuild(survivors);
    }

    /// Squash of an un-committed instruction (newest first, §3.2.2):
    /// returns its VP tag — and its physical register if one was bound —
    /// to the free pools, and restores the GMT entry to the previous
    /// mapping (with the valid bit reflecting whether the previous tag has
    /// a binding in the PMT).
    pub fn on_squash_dest(&mut self, logical: LogicalReg, vp: VpReg, prev_vp: VpReg, now: u64) {
        let c = logical.class().index();
        debug_assert_eq!(
            self.gmt[c][logical.index()].vp(),
            vp,
            "squash must unwind newest-first"
        );
        self.vp_free[c].release(vp.0, now);
        if let Some(p) = self.pmt[c][vp.0 as usize].take() {
            self.preg_free[c].release(p.0, now);
        }
        debug_assert_eq!(
            self.vp_owner[c][vp.0 as usize],
            logical.index() as u16,
            "inverse map out of sync with the GMT"
        );
        self.vp_owner[c][vp.0 as usize] = NO_OWNER;
        self.vp_owner[c][prev_vp.0 as usize] = logical.index() as u16;
        self.gmt[c][logical.index()] = GmtEntry::new(prev_vp, self.pmt[c][prev_vp.0 as usize]);
    }

    /// Free physical registers in `class`.
    #[inline]
    pub fn free_count(&self, class: RegClass) -> usize {
        self.preg_free[class.index()].free_count()
    }

    /// Allocated physical registers in `class`.
    #[inline]
    pub fn allocated_count(&self, class: RegClass) -> usize {
        self.preg_free[class.index()].allocated_count()
    }

    /// `(occupancy, empty-cycles)` integrals of the physical file of
    /// `class` over cycles `0..end` (see [`FreeList::occupancy_integral`]).
    pub fn occupancy_integrals(&self, class: RegClass, end: u64) -> (u64, u64) {
        let fl = &self.preg_free[class.index()];
        (fl.occupancy_integral(end), fl.empty_integral(end))
    }

    /// Free VP tags in `class`.
    #[inline]
    pub fn free_vp_count(&self, class: RegClass) -> usize {
        self.vp_free[class.index()].free_count()
    }

    /// The current GMT entry for a logical register (diagnostics and
    /// recovery verification).
    pub fn gmt_entry(&self, logical: LogicalReg) -> GmtEntry {
        self.gmt[logical.class().index()][logical.index()]
    }

    /// The PMT binding of a VP tag.
    pub fn pmt_entry(&self, class: RegClass, vp: VpReg) -> Option<PhysReg> {
        self.pmt[class.index()][vp.0 as usize]
    }

    /// The per-class NRR state (read-only).
    pub fn nrr(&self, class: RegClass) -> &NrrState {
        &self.nrr[class.index()]
    }
}

impl vpr_snap::Snap for GmtEntry {
    /// Serialised in the original `(VpReg, Option<PhysReg>)` field order:
    /// the packed in-memory sentinel is an implementation detail and must
    /// not leak into the format (see `docs/snapshot-format.md`).
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.vp().save(enc);
        self.preg().save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        let vp = VpReg::load(dec);
        let preg = Option::<PhysReg>::load(dec);
        Self::new(vp, preg)
    }
}

impl vpr_snap::Snap for VpRenamer {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.gmt.save(enc);
        self.pmt.save(enc);
        self.vp_owner.save(enc);
        self.vp_free.save(enc);
        self.preg_free.save(enc);
        self.nrr.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            gmt: <[Vec<GmtEntry>; 2]>::load(dec),
            pmt: <[Vec<Option<PhysReg>>; 2]>::load(dec),
            vp_owner: <[Vec<u16>; 2]>::load(dec),
            vp_free: <[FreeList; 2]>::load(dec),
            preg_free: <[FreeList; 2]>::load(dec),
            nrr: <[NrrState; 2]>::load(dec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn renamer() -> VpRenamer {
        VpRenamer::new(64, 160, 32)
    }

    #[test]
    fn boot_state_mirrors_conventional() {
        let r = renamer();
        for i in 0..NUM_LOGICAL_PER_CLASS {
            let s = r.rename_src(LogicalReg::int(i));
            assert_eq!(s.state, SrcState::Ready(PhysReg(i as u16)));
        }
        assert_eq!(r.free_count(RegClass::Int), 32);
        assert_eq!(r.free_vp_count(RegClass::Int), 160 - 32);
    }

    #[test]
    fn rename_dest_never_stalls_for_pregs() {
        let mut r = renamer();
        // Rename 100 destinations without a single allocation: the
        // conventional scheme would have stalled after 32.
        for seq in 0..100 {
            let l = LogicalReg::int((seq % 32) as usize);
            let _ = r.rename_dest(l, seq as u64, seq as u64);
        }
        assert_eq!(
            r.free_count(RegClass::Int),
            32,
            "no physical register consumed"
        );
    }

    #[test]
    fn src_waits_on_tag_until_bound() {
        let mut r = renamer();
        let f2 = LogicalReg::fp(2);
        let (vp, _) = r.rename_dest(f2, 0, 0);
        assert_eq!(r.rename_src(f2).state, SrcState::WaitVp(vp));
        let p = r.try_allocate(RegClass::Fp, 0, 5).unwrap();
        r.bind(RegClass::Fp, vp, p);
        assert_eq!(r.rename_src(f2).state, SrcState::Ready(p));
        assert_eq!(r.pmt_entry(RegClass::Fp, vp), Some(p));
    }

    #[test]
    fn binding_does_not_update_superseded_gmt_entry() {
        let mut r = renamer();
        let f2 = LogicalReg::fp(2);
        let (vp1, _) = r.rename_dest(f2, 0, 0);
        let (vp2, prev) = r.rename_dest(f2, 1, 0);
        assert_eq!(prev, vp1);
        // The older writer completes after being superseded.
        let p = r.try_allocate(RegClass::Fp, 0, 5).unwrap();
        r.bind(RegClass::Fp, vp1, p);
        // New readers still wait on the younger tag.
        assert_eq!(r.rename_src(f2).state, SrcState::WaitVp(vp2));
        // But the PMT knows the binding (commit will free through it).
        assert_eq!(r.pmt_entry(RegClass::Fp, vp1), Some(p));
    }

    #[test]
    fn commit_frees_previous_tag_and_register() {
        let mut r = renamer();
        let f2 = LogicalReg::fp(2);
        let (vp1, prev_boot) = r.rename_dest(f2, 0, 0);
        let p1 = r.try_allocate(RegClass::Fp, 0, 3).unwrap();
        r.bind(RegClass::Fp, vp1, p1);
        let before = r.free_count(RegClass::Fp);
        // Commit frees the *boot* mapping (tag 2 / preg 2).
        let held = r.on_commit_dest(RegClass::Fp, prev_boot, 10);
        assert_eq!(held, 10);
        assert_eq!(r.free_count(RegClass::Fp), before + 1);
        assert_eq!(r.pmt_entry(RegClass::Fp, prev_boot), None);
    }

    #[test]
    fn squash_restores_gmt_with_valid_bit() {
        let mut r = renamer();
        let f2 = LogicalReg::fp(2);
        let boot = r.gmt_entry(f2);
        let (vp1, prev1) = r.rename_dest(f2, 0, 0);
        let p1 = r.try_allocate(RegClass::Fp, 0, 2).unwrap();
        r.bind(RegClass::Fp, vp1, p1);
        let (vp2, prev2) = r.rename_dest(f2, 1, 3);
        // Squash newest-first: the younger, unbound writer...
        r.on_squash_dest(f2, vp2, prev2, 4);
        let e = r.gmt_entry(f2);
        assert_eq!(e.vp(), vp1);
        assert_eq!(e.preg(), Some(p1), "restored mapping is bound: V bit set");
        // ...then the older, bound one.
        r.on_squash_dest(f2, vp1, prev1, 4);
        assert_eq!(r.gmt_entry(f2), boot);
        assert_eq!(r.free_count(RegClass::Fp), 32);
        assert_eq!(r.free_vp_count(RegClass::Fp), 128);
    }

    #[test]
    fn allocation_rule_denies_young_instructions_when_scarce() {
        let mut r = VpRenamer::new(34, 160, 2); // 2 spare registers, NRR=2
        let l = LogicalReg::int(0);
        let (_vp0, _) = r.rename_dest(l, 0, 0); // reserved (Reg=1)
        let (_vp1, _) = r.rename_dest(LogicalReg::int(1), 1, 0); // reserved (Reg=2)
        let (_vp2, _) = r.rename_dest(LogicalReg::int(2), 2, 0); // not reserved
                                                                 // free=2, NRR-Used=2: the young instruction is denied.
        assert!(!r.may_allocate(RegClass::Int, 2));
        assert!(r.try_allocate(RegClass::Int, 2, 1).is_none());
        // Reserved instructions always get one.
        let p = r.try_allocate(RegClass::Int, 0, 1);
        assert!(p.is_some());
        // Now free=1, Used=1 -> NRR-Used=1: still denied; reserved 1 OK.
        assert!(!r.may_allocate(RegClass::Int, 2));
        assert!(r.try_allocate(RegClass::Int, 1, 2).is_some());
    }

    #[test]
    fn plentiful_registers_allow_young_allocations() {
        let mut r = renamer(); // 32 spare, NRR=32
        let (_vp, _) = r.rename_dest(LogicalReg::int(0), 0, 0);
        let (_vp, _) = r.rename_dest(LogicalReg::int(1), 77, 0);
        // Instruction 77 is reserved too (Reg=2 < NRR), but even a
        // hypothetical young one would pass: free=32 > NRR-Used=32? No!
        // 32 > 32 is false — with Used=0 the rule needs free > 32. Verify
        // the reserved path is what grants it.
        assert!(r.may_allocate(RegClass::Int, 77));
        assert!(!r.nrr(RegClass::Int).may_allocate(999, 32));
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut r = renamer();
        let (vp, _) = r.rename_dest(LogicalReg::int(0), 0, 0);
        let p = r.try_allocate(RegClass::Int, 0, 1).unwrap();
        r.bind(RegClass::Int, vp, p);
        r.bind(RegClass::Int, vp, PhysReg(60));
    }

    #[test]
    fn nrr_commit_flow() {
        let mut r = VpRenamer::new(40, 160, 1);
        let (vp0, prev0) = r.rename_dest(LogicalReg::int(0), 0, 0);
        let (_vp1, _) = r.rename_dest(LogicalReg::int(1), 1, 0);
        let p0 = r.try_allocate(RegClass::Int, 0, 1).unwrap();
        r.bind(RegClass::Int, vp0, p0);
        // Instruction 0 commits; instruction 1 (unallocated) becomes the
        // reserved one.
        r.nrr_on_commit(RegClass::Int, 0, Some((1, false)));
        r.on_commit_dest(RegClass::Int, prev0, 5);
        assert!(r.nrr(RegClass::Int).is_reserved(1));
        assert!(r.try_allocate(RegClass::Int, 1, 6).is_some());
    }
}
