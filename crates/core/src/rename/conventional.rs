//! The baseline renaming scheme (paper §2).
//!
//! A map table translates each logical register to a physical register.
//! The destination of every decoded instruction takes a *free* physical
//! register immediately — rename stalls when the free list is empty — and
//! the register held by the previous writer of the same logical register
//! is released when the new writer commits. This is the MIPS R10000 / DEC
//! 21264 organisation the paper compares against.

use super::{FreeList, PhysReg, RenamedSrc, SrcState};
use vpr_isa::{LogicalReg, RegClass, NUM_LOGICAL_PER_CLASS};

/// Conventional map-table renamer with decode-time allocation.
///
/// ```
/// use vpr_core::rename::ConventionalRenamer;
/// use vpr_isa::LogicalReg;
///
/// let mut r = ConventionalRenamer::new(40);
/// // Boot state: r5 maps to p5 and is ready.
/// assert!(r.rename_src(LogicalReg::int(5)).state.is_ready());
/// // A new writer of r5 takes a fresh register.
/// let (new, prev) = r.try_rename_dest(LogicalReg::int(5), 0).unwrap();
/// assert_eq!(prev.0, 5);
/// assert_ne!(new, prev);
/// // Until it writes back, readers wait on the new register.
/// assert!(!r.rename_src(LogicalReg::int(5)).state.is_ready());
/// ```
#[derive(Debug, Clone)]
pub struct ConventionalRenamer {
    map: [Vec<PhysReg>; 2],
    /// Per physical register: has the value been produced?
    ready: [Vec<bool>; 2],
    free: [FreeList; 2],
}

impl ConventionalRenamer {
    /// Creates the boot state: logical register `i` of each class maps to
    /// physical register `i`, whose value is architecturally present.
    ///
    /// # Panics
    ///
    /// Panics if `phys_per_class` does not exceed the logical register
    /// count — renaming would be impossible.
    pub fn new(phys_per_class: usize) -> Self {
        assert!(
            phys_per_class > NUM_LOGICAL_PER_CLASS,
            "need more physical than logical registers"
        );
        let map = || {
            (0..NUM_LOGICAL_PER_CLASS)
                .map(|i| PhysReg(i as u16))
                .collect()
        };
        let ready = || {
            let mut v = vec![false; phys_per_class];
            v[..NUM_LOGICAL_PER_CLASS].fill(true);
            v
        };
        Self {
            map: [map(), map()],
            ready: [ready(), ready()],
            free: [
                FreeList::new(phys_per_class, NUM_LOGICAL_PER_CLASS),
                FreeList::new(phys_per_class, NUM_LOGICAL_PER_CLASS),
            ],
        }
    }

    /// Renames a source operand: the last mapping of the logical register,
    /// ready if its value has been written back.
    pub fn rename_src(&self, logical: LogicalReg) -> RenamedSrc {
        let c = logical.class();
        let preg = self.map[c.index()][logical.index()];
        let state = if self.ready[c.index()][preg.0 as usize] {
            SrcState::Ready(preg)
        } else {
            SrcState::WaitPhys(preg)
        };
        RenamedSrc { class: c, state }
    }

    /// Renames a destination at decode: takes a free physical register and
    /// installs it in the map table. Returns `(new, previous)` mappings,
    /// or `None` when the free list is empty (rename must stall — the
    /// behaviour whose cost the paper eliminates).
    pub fn try_rename_dest(&mut self, logical: LogicalReg, now: u64) -> Option<(PhysReg, PhysReg)> {
        let c = logical.class().index();
        let new = PhysReg(self.free[c].allocate(now)?);
        self.ready[c][new.0 as usize] = false;
        let prev = std::mem::replace(&mut self.map[c][logical.index()], new);
        Some((new, prev))
    }

    /// Write-back of the value for `preg`: wake readers renamed after this
    /// point directly to a ready source.
    pub fn on_writeback(&mut self, class: RegClass, preg: PhysReg) {
        self.ready[class.index()][preg.0 as usize] = true;
    }

    /// Commit of an instruction whose destination superseded `prev_preg`:
    /// the previous writer's register is finally dead. Returns the cycles
    /// it was held (register-pressure accounting).
    pub fn on_commit_dest(&mut self, class: RegClass, prev_preg: PhysReg, now: u64) -> u64 {
        self.free[class.index()].release(prev_preg.0, now)
    }

    /// Squash of an un-committed instruction (newest first): return its
    /// register to the free list and restore the previous mapping.
    pub fn on_squash_dest(
        &mut self,
        logical: LogicalReg,
        preg: PhysReg,
        prev_preg: PhysReg,
        now: u64,
    ) {
        let c = logical.class().index();
        debug_assert_eq!(
            self.map[c][logical.index()],
            preg,
            "squash must unwind newest-first"
        );
        self.free[c].release(preg.0, now);
        self.map[c][logical.index()] = prev_preg;
    }

    /// Free registers in `class`.
    #[inline]
    pub fn free_count(&self, class: RegClass) -> usize {
        self.free[class.index()].free_count()
    }

    /// Allocated registers in `class`.
    #[inline]
    pub fn allocated_count(&self, class: RegClass) -> usize {
        self.free[class.index()].allocated_count()
    }

    /// `(occupancy, empty-cycles)` integrals of the physical file of
    /// `class` over cycles `0..end` (see [`FreeList::occupancy_integral`]).
    pub fn occupancy_integrals(&self, class: RegClass, end: u64) -> (u64, u64) {
        let fl = &self.free[class.index()];
        (fl.occupancy_integral(end), fl.empty_integral(end))
    }

    /// The current physical mapping of a logical register (diagnostics and
    /// recovery verification).
    pub fn mapping(&self, logical: LogicalReg) -> PhysReg {
        self.map[logical.class().index()][logical.index()]
    }
}

impl vpr_snap::Snap for ConventionalRenamer {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.map.save(enc);
        self.ready.save(enc);
        self.free.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            map: <[Vec<PhysReg>; 2]>::load(dec),
            ready: <[Vec<bool>; 2]>::load(dec),
            free: <[FreeList; 2]>::load(dec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_mappings_are_identity_and_ready() {
        let r = ConventionalRenamer::new(64);
        for i in 0..NUM_LOGICAL_PER_CLASS {
            let s = r.rename_src(LogicalReg::int(i));
            assert_eq!(s.state, SrcState::Ready(PhysReg(i as u16)));
            let s = r.rename_src(LogicalReg::fp(i));
            assert_eq!(s.state, SrcState::Ready(PhysReg(i as u16)));
        }
        assert_eq!(r.free_count(RegClass::Int), 32);
    }

    #[test]
    fn dest_then_writeback_then_ready() {
        let mut r = ConventionalRenamer::new(64);
        let (new, _prev) = r.try_rename_dest(LogicalReg::fp(2), 0).unwrap();
        let s = r.rename_src(LogicalReg::fp(2));
        assert_eq!(s.state, SrcState::WaitPhys(new));
        r.on_writeback(RegClass::Fp, new);
        let s = r.rename_src(LogicalReg::fp(2));
        assert_eq!(s.state, SrcState::Ready(new));
    }

    #[test]
    fn exhaustion_stalls() {
        let mut r = ConventionalRenamer::new(34);
        assert!(r.try_rename_dest(LogicalReg::int(0), 0).is_some());
        assert!(r.try_rename_dest(LogicalReg::int(1), 0).is_some());
        assert!(r.try_rename_dest(LogicalReg::int(2), 0).is_none());
        // The FP file is independent.
        assert!(r.try_rename_dest(LogicalReg::fp(0), 0).is_some());
    }

    #[test]
    fn commit_frees_previous_writer() {
        let mut r = ConventionalRenamer::new(34);
        let (_n1, p1) = r.try_rename_dest(LogicalReg::int(7), 0).unwrap();
        let (_n2, p2) = r.try_rename_dest(LogicalReg::int(7), 1).unwrap();
        assert!(r.try_rename_dest(LogicalReg::int(8), 2).is_none());
        // First writer commits: frees the boot register p7.
        assert_eq!(p1, PhysReg(7));
        r.on_commit_dest(RegClass::Int, p1, 10);
        assert_eq!(r.free_count(RegClass::Int), 1);
        // Second writer commits: frees the first writer's register.
        r.on_commit_dest(RegClass::Int, p2, 11);
        assert_eq!(r.free_count(RegClass::Int), 2);
    }

    #[test]
    fn squash_restores_previous_mapping() {
        let mut r = ConventionalRenamer::new(64);
        let before = r.mapping(LogicalReg::int(3));
        let (n1, p1) = r.try_rename_dest(LogicalReg::int(3), 0).unwrap();
        let (n2, p2) = r.try_rename_dest(LogicalReg::int(3), 1).unwrap();
        assert_eq!(p2, n1);
        // Unwind newest first.
        r.on_squash_dest(LogicalReg::int(3), n2, p2, 5);
        r.on_squash_dest(LogicalReg::int(3), n1, p1, 5);
        assert_eq!(r.mapping(LogicalReg::int(3)), before);
        assert_eq!(r.free_count(RegClass::Int), 32);
    }

    #[test]
    fn hold_cycles_reported_at_commit() {
        let mut r = ConventionalRenamer::new(64);
        let (_n, prev) = r.try_rename_dest(LogicalReg::int(1), 0).unwrap();
        // The boot register was allocated at cycle 0 and dies at 42.
        assert_eq!(r.on_commit_dest(RegClass::Int, prev, 42), 42);
    }
}
