//! A register free list with double-free detection and hold-time
//! accounting.

use std::collections::VecDeque;

/// FIFO free list over register identifiers `0..capacity`.
///
/// Beyond allocation/release, the list records the cycle at which each
/// register was allocated so the paper's *register pressure* metric — the
/// number of cycles a register is held per produced value (§3.1) — falls
/// out of the release call.
///
/// The list enforces the central renaming invariants: a register is never
/// handed out twice without an intervening release and never released
/// twice (see DESIGN.md §7).
#[derive(Debug, Clone)]
pub struct FreeList {
    free: VecDeque<u16>,
    allocated: Vec<bool>,
    alloc_cycle: Vec<u64>,
    capacity: usize,
    /// Σ over completed cycles of the end-of-cycle allocated count, up to
    /// (exclusive) `last_change`. Occupancy only moves on allocate and
    /// release, so the per-cycle occupancy statistics fall out of these
    /// integrals in O(changes) instead of O(cycles) — see
    /// [`FreeList::occupancy_integral`].
    occ_accum: u64,
    /// Σ over the same span of cycles whose end found the list empty.
    empty_accum: u64,
    /// Cycle of the most recent allocate/release.
    last_change: u64,
}

impl FreeList {
    /// Creates a list in which registers `0..initially_allocated` are
    /// already allocated (the boot-time logical-register mappings) and the
    /// rest are free.
    ///
    /// # Panics
    ///
    /// Panics if `initially_allocated > capacity` or `capacity` exceeds
    /// `u16::MAX + 1`.
    pub fn new(capacity: usize, initially_allocated: usize) -> Self {
        assert!(
            initially_allocated <= capacity,
            "cannot pre-allocate more than capacity"
        );
        assert!(capacity <= u16::MAX as usize + 1, "register ids are u16");
        Self {
            free: (initially_allocated..capacity).map(|i| i as u16).collect(),
            allocated: (0..capacity).map(|i| i < initially_allocated).collect(),
            alloc_cycle: vec![0; capacity],
            capacity,
            occ_accum: 0,
            empty_accum: 0,
            last_change: 0,
        }
    }

    /// Folds the constant-occupancy stretch `[last_change, now)` into the
    /// integrals; cycle `now` itself is accounted by whatever state holds
    /// at its end (sampling is end-of-cycle).
    #[inline]
    fn integrate_to(&mut self, now: u64) {
        debug_assert!(now >= self.last_change, "free-list time went backwards");
        let span = now - self.last_change;
        if span > 0 {
            self.occ_accum += self.allocated_count() as u64 * span;
            if self.free.is_empty() {
                self.empty_accum += span;
            }
            self.last_change = now;
        }
    }

    /// Σ over cycles `0..end` of the end-of-cycle allocated count —
    /// equivalent to sampling `allocated_count` at the end of every
    /// simulated cycle, without per-cycle work.
    pub fn occupancy_integral(&self, end: u64) -> u64 {
        self.occ_accum + self.allocated_count() as u64 * (end - self.last_change)
    }

    /// Σ over cycles `0..end` whose end found the free list empty.
    pub fn empty_integral(&self, end: u64) -> u64 {
        self.empty_accum
            + if self.free.is_empty() {
                end - self.last_change
            } else {
                0
            }
    }

    /// Number of free registers.
    #[inline]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of allocated registers.
    #[inline]
    pub fn allocated_count(&self) -> usize {
        self.capacity - self.free.len()
    }

    /// Total registers managed.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when nothing is free.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.free.is_empty()
    }

    /// Whether `id` is currently allocated.
    #[inline]
    pub fn is_allocated(&self, id: u16) -> bool {
        self.allocated[id as usize]
    }

    /// Takes a free register at cycle `now`, or `None` when exhausted.
    pub fn allocate(&mut self, now: u64) -> Option<u16> {
        self.integrate_to(now);
        let id = self.free.pop_front()?;
        debug_assert!(
            !self.allocated[id as usize],
            "free list held an allocated register"
        );
        self.allocated[id as usize] = true;
        self.alloc_cycle[id as usize] = now;
        Some(id)
    }

    /// Releases `id` at cycle `now`, returning how many cycles it was held
    /// (the register-pressure contribution of this value).
    ///
    /// # Panics
    ///
    /// Panics on double free — releasing a register that is not allocated
    /// indicates a renaming logic error, never a recoverable condition.
    pub fn release(&mut self, id: u16, now: u64) -> u64 {
        self.integrate_to(now);
        assert!(
            self.allocated[id as usize],
            "double free of register {id} at cycle {now}"
        );
        self.allocated[id as usize] = false;
        self.free.push_back(id);
        now.saturating_sub(self.alloc_cycle[id as usize])
    }
}

impl vpr_snap::Snap for FreeList {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        // The free deque's *order* is state: it is the future allocation
        // order, so it must survive a round trip exactly.
        self.free.save(enc);
        self.allocated.save(enc);
        self.alloc_cycle.save(enc);
        enc.put_usize(self.capacity);
        enc.put_u64(self.occ_accum);
        enc.put_u64(self.empty_accum);
        enc.put_u64(self.last_change);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            free: std::collections::VecDeque::<u16>::load(dec),
            allocated: Vec::<bool>::load(dec),
            alloc_cycle: Vec::<u64>::load(dec),
            capacity: dec.take_usize(),
            occ_accum: dec.take_u64(),
            empty_accum: dec.take_u64(),
            last_change: dec.take_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_state_preallocates_low_ids() {
        let fl = FreeList::new(8, 3);
        assert_eq!(fl.free_count(), 5);
        assert_eq!(fl.allocated_count(), 3);
        assert!(fl.is_allocated(0));
        assert!(fl.is_allocated(2));
        assert!(!fl.is_allocated(3));
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut fl = FreeList::new(4, 0);
        let a = fl.allocate(10).unwrap();
        let b = fl.allocate(10).unwrap();
        assert_ne!(a, b);
        assert_eq!(fl.release(a, 25), 15, "held 15 cycles");
        assert_eq!(fl.free_count(), 3);
        // Freed register becomes available again (FIFO order).
        let ids: Vec<u16> = (0..3).map(|_| fl.allocate(30).unwrap()).collect();
        assert!(ids.contains(&a));
        assert!(!ids.contains(&b));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut fl = FreeList::new(2, 0);
        assert!(fl.allocate(0).is_some());
        assert!(fl.allocate(0).is_some());
        assert!(fl.allocate(0).is_none());
        assert!(fl.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut fl = FreeList::new(2, 0);
        let a = fl.allocate(0).unwrap();
        fl.release(a, 1);
        fl.release(a, 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn freeing_never_allocated_panics() {
        let mut fl = FreeList::new(4, 0);
        fl.release(3, 1);
    }

    #[test]
    fn unique_ids_under_churn() {
        let mut fl = FreeList::new(16, 4);
        let mut live: Vec<u16> = Vec::new();
        for round in 0..100u64 {
            if round % 3 == 0 && !live.is_empty() {
                let id = live.remove((round as usize * 7) % live.len());
                fl.release(id, round);
            } else if let Some(id) = fl.allocate(round) {
                assert!(!live.contains(&id), "id {id} handed out twice");
                live.push(id);
            }
        }
        assert_eq!(fl.allocated_count(), live.len() + 4);
    }
}
