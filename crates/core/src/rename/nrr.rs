//! Deadlock avoidance: the reserved-register machinery of paper §3.3.
//!
//! With late allocation the machine can run out of physical registers at
//! completion time. Squashing alone would deadlock (the oldest instruction
//! would also find no register). The paper's fix guarantees the `NRR`
//! oldest destination-having instructions of each class a register:
//!
//! * a pointer (`PRRint`/`PRRfp`) marks the youngest of the oldest `NRR`
//!   such instructions — everything at or older than it is *reserved*;
//! * `Reg` counts the currently-reserved instructions (≤ `NRR`);
//! * `Used` counts how many of the reserved have already allocated.
//!
//! A completing instruction may allocate iff it is reserved, or there are
//! *more* free registers than `NRR − Used` (leaving enough for the
//! reserved ones still to come).

/// Per-class reserved-register state.
///
/// One instance exists per register class inside the
/// [`VpRenamer`](crate::VpRenamer). The pipeline reports decode, allocate
/// and commit events; [`NrrState::may_allocate`] implements the paper's
/// allocation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NrrState {
    /// Sequence number of the youngest reserved instruction ([`NO_SEQ`]
    /// when none was ever set): anything at or below it (and with a
    /// destination of this class) is reserved.
    prr_seq: u64,
    nrr: u32,
    /// Number of reserved instructions currently in the window (`Reg`).
    reg: u32,
    /// Reserved instructions that have already allocated (`Used`).
    used: u32,
}

/// Packed "no pointer" sentinel in [`NrrState`] (sequence numbers count
/// up from zero and never reach it).
const NO_SEQ: u64 = u64::MAX;

// Layout-regression guard: both classes' NRR rows share a cache line.
const _: () = assert!(
    std::mem::size_of::<NrrState>() <= 24,
    "NrrState must stay within 24 bytes (both classes on one cache line)"
);

impl NrrState {
    /// Creates the state for a class with `nrr` reserved registers.
    ///
    /// # Panics
    ///
    /// Panics if `nrr` is zero — the deadlock-freedom argument requires at
    /// least one reserved register.
    pub fn new(nrr: usize) -> Self {
        assert!(nrr > 0, "NRR must be at least 1");
        Self {
            prr_seq: NO_SEQ,
            nrr: u32::try_from(nrr).expect("NRR bounded by the physical file"),
            reg: 0,
            used: 0,
        }
    }

    /// The configured NRR.
    #[inline]
    pub fn nrr(&self) -> usize {
        self.nrr as usize
    }

    /// Current `Reg` counter (reserved instructions in the window).
    #[inline]
    pub fn reserved_in_window(&self) -> usize {
        self.reg as usize
    }

    /// Current `Used` counter (reserved instructions that allocated).
    #[inline]
    pub fn used(&self) -> usize {
        self.used as usize
    }

    /// The PRR pointer: sequence number of the youngest reserved
    /// instruction, if any are reserved. The commit logic scans the
    /// reorder buffer *past* this pointer for the entrant that becomes
    /// reserved next.
    #[inline]
    pub fn pointer(&self) -> Option<u64> {
        (self.reg > 0 && self.prr_seq != NO_SEQ).then_some(self.prr_seq)
    }

    /// True when `seq` is one of the reserved oldest instructions.
    #[inline]
    pub fn is_reserved(&self, seq: u64) -> bool {
        self.reg > 0 && self.prr_seq != NO_SEQ && seq <= self.prr_seq
    }

    /// Decode of an instruction with a destination of this class: if fewer
    /// than `NRR` instructions are reserved, the new one becomes reserved
    /// and the pointer moves to it.
    pub fn on_decode(&mut self, seq: u64) {
        debug_assert!(seq != NO_SEQ);
        if self.reg < self.nrr {
            self.reg += 1;
            debug_assert!(
                self.prr_seq == NO_SEQ || self.prr_seq < seq,
                "decode must see monotonically increasing sequence numbers"
            );
            self.prr_seq = seq;
        }
    }

    /// The paper's allocation rule: a completing (or, in the
    /// issue-allocation variant, issuing) instruction may take a register
    /// iff it is reserved or strictly more registers are free than
    /// `NRR − Used`.
    #[inline]
    pub fn may_allocate(&self, seq: u64, free_regs: usize) -> bool {
        self.is_reserved(seq) || self.may_allocate_young(free_regs)
    }

    /// The young-instruction half of the allocation rule: true when
    /// strictly more registers are free than `NRR − Used`, so even a
    /// non-reserved instruction may take one. With [`NrrState::pointer`]
    /// this is a complete per-cycle snapshot of the rule — callers that
    /// scan many candidates evaluate `pointer / may_allocate_young` once
    /// instead of re-deriving both per candidate.
    #[inline]
    pub fn may_allocate_young(&self, free_regs: usize) -> bool {
        free_regs > (self.nrr - self.used) as usize
    }

    /// Records an allocation by instruction `seq`.
    pub fn on_allocate(&mut self, seq: u64) {
        if self.is_reserved(seq) {
            self.used += 1;
            debug_assert!(self.used <= self.reg, "Used cannot exceed Reg");
        }
    }

    /// Commit of a (reserved, completed) instruction with a destination of
    /// this class. `entrant` is the next-younger instruction with a
    /// destination of this class still in the window, with a flag for
    /// whether it has already allocated its register; `None` when no such
    /// instruction exists.
    ///
    /// Mirrors §3.3: the pointer moves up to the entrant; `Used` drops by
    /// one (for the committer) unless the entrant already allocated; if no
    /// entrant exists, `Reg` shrinks instead.
    ///
    /// # Panics
    ///
    /// Panics if the committing instruction is not reserved — the oldest
    /// destination-having instruction is always reserved, so this
    /// indicates pointer corruption.
    pub fn on_commit(&mut self, committing_seq: u64, entrant: Option<(u64, bool)>) {
        assert!(
            self.is_reserved(committing_seq),
            "committing instruction {committing_seq} must be reserved (PRR={:?}, Reg={})",
            self.pointer(),
            self.reg
        );
        debug_assert!(self.used >= 1, "committer had allocated, Used >= 1");
        match entrant {
            Some((entrant_seq, entrant_allocated)) => {
                debug_assert!(
                    entrant_seq != NO_SEQ && self.prr_seq != NO_SEQ && entrant_seq > self.prr_seq,
                    "entrant must be younger than the current pointer"
                );
                self.prr_seq = entrant_seq;
                if !entrant_allocated {
                    self.used -= 1;
                }
            }
            None => {
                self.reg -= 1;
                self.used -= 1;
            }
        }
    }

    /// Rebuilds the counters from scratch after a squash removed younger
    /// instructions from the window. `survivors` yields `(seq,
    /// has_allocated)` for every remaining destination-having instruction
    /// of this class, oldest first.
    pub fn rebuild<I: Iterator<Item = (u64, bool)>>(&mut self, survivors: I) {
        self.reg = 0;
        self.used = 0;
        self.prr_seq = NO_SEQ;
        for (seq, allocated) in survivors.take(self.nrr as usize) {
            self.reg += 1;
            self.prr_seq = seq;
            if allocated {
                self.used += 1;
            }
        }
    }
}

impl vpr_snap::Snap for NrrState {
    /// Serialised at the original `usize`/`Option<u64>` widths: the packed
    /// in-memory counters are an implementation detail and must not leak
    /// into the format (see `docs/snapshot-format.md`).
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_usize(self.nrr as usize);
        // Canonical form: with an empty reserved set the pointer is
        // semantically dead (`pointer()` guards on `reg > 0`), but the
        // incremental updates leave the last value behind. Serialising
        // the *live* pointer instead makes every semantically-equal state
        // byte-equal — the property the cross-NRR re-target contract
        // (`retarget to the current NRR is a bit-exact no-op`) rests on.
        self.pointer().save(enc);
        enc.put_usize(self.reg as usize);
        enc.put_usize(self.used as usize);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        let nrr = dec.take_usize();
        let prr_seq = Option::<u64>::load(dec).unwrap_or(NO_SEQ);
        let reg = dec.take_usize();
        let used = dec.take_usize();
        Self {
            prr_seq,
            nrr: nrr as u32,
            reg: reg as u32,
            used: used as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_reserves_up_to_nrr() {
        let mut n = NrrState::new(2);
        n.on_decode(1);
        n.on_decode(2);
        n.on_decode(3); // beyond NRR: not reserved
        assert_eq!(n.reserved_in_window(), 2);
        assert!(n.is_reserved(1));
        assert!(n.is_reserved(2));
        assert!(!n.is_reserved(3));
    }

    #[test]
    fn reserved_always_may_allocate() {
        let mut n = NrrState::new(2);
        n.on_decode(1);
        n.on_decode(2);
        assert!(
            n.may_allocate(1, 0),
            "reserved allocate regardless of free count"
        );
        assert!(n.may_allocate(2, 0));
        assert!(!n.may_allocate(3, 2), "needs free > NRR - Used = 2");
        assert!(n.may_allocate(3, 3));
    }

    #[test]
    fn used_tracks_reserved_allocations_only() {
        let mut n = NrrState::new(2);
        n.on_decode(1);
        n.on_decode(2);
        n.on_decode(3);
        n.on_allocate(3); // not reserved: Used unchanged
        assert_eq!(n.used(), 0);
        n.on_allocate(1);
        assert_eq!(n.used(), 1);
        // With Used = 1, a young instruction needs free > 1.
        assert!(!n.may_allocate(4, 1));
        assert!(n.may_allocate(4, 2));
    }

    #[test]
    fn commit_slides_pointer_to_entrant() {
        let mut n = NrrState::new(2);
        n.on_decode(1);
        n.on_decode(2);
        n.on_allocate(1);
        n.on_allocate(2);
        // Instruction 3 decoded beyond NRR, not yet allocated.
        n.on_commit(1, Some((3, false)));
        assert!(n.is_reserved(3), "entrant becomes reserved");
        assert_eq!(n.used(), 1, "committer leaves, entrant unallocated");
        assert_eq!(n.reserved_in_window(), 2);
    }

    #[test]
    fn commit_with_allocated_entrant_keeps_used() {
        let mut n = NrrState::new(1);
        n.on_decode(1);
        n.on_allocate(1);
        // Instruction 5 allocated while young (free registers abounded).
        n.on_commit(1, Some((5, true)));
        assert_eq!(n.used(), 1);
        assert!(n.is_reserved(5));
    }

    #[test]
    fn commit_without_entrant_shrinks_reg() {
        let mut n = NrrState::new(2);
        n.on_decode(1);
        n.on_allocate(1);
        n.on_commit(1, None);
        assert_eq!(n.reserved_in_window(), 0);
        assert_eq!(n.used(), 0);
        // A later decode re-establishes the pointer.
        n.on_decode(9);
        assert!(n.is_reserved(9));
    }

    #[test]
    #[should_panic(expected = "must be reserved")]
    fn committing_unreserved_panics() {
        let mut n = NrrState::new(1);
        n.on_decode(1);
        n.on_allocate(1);
        n.on_commit(7, None);
    }

    #[test]
    fn rebuild_after_squash() {
        let mut n = NrrState::new(2);
        n.on_decode(1);
        n.on_decode(2);
        n.on_allocate(1);
        // Squash leaves instructions 1 (allocated) and 4 (not) in the
        // window.
        n.rebuild([(1, true), (4, false)].into_iter());
        assert_eq!(n.reserved_in_window(), 2);
        assert_eq!(n.used(), 1);
        assert!(n.is_reserved(4));
        assert!(!n.is_reserved(5));
    }

    #[test]
    fn rebuild_caps_at_nrr() {
        let mut n = NrrState::new(2);
        n.rebuild([(1, false), (2, false), (3, false)].into_iter());
        assert_eq!(n.reserved_in_window(), 2);
        assert!(n.is_reserved(2));
        assert!(!n.is_reserved(3));
    }

    #[test]
    #[should_panic(expected = "NRR must be at least 1")]
    fn zero_nrr_rejected() {
        let _ = NrrState::new(0);
    }
}
