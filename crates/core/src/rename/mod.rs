//! Register renaming: common types plus the two schemes under study.
//!
//! * [`ConventionalRenamer`] — the baseline (paper §2): a map table from
//!   logical to physical registers; the destination physical register is
//!   allocated at decode and freed when the *next* writer of the same
//!   logical register commits.
//! * [`VpRenamer`] — the paper's contribution (§3.2): destinations are
//!   renamed to storage-free *virtual-physical* tags at decode; a physical
//!   register is bound to the tag late (at issue or at write-back,
//!   depending on the configured scheme), shrinking the interval each
//!   physical register is held.

mod conventional;
mod early_release;
mod free_list;
mod nrr;
mod virtual_physical;

pub use conventional::ConventionalRenamer;
pub use early_release::{EarlyReleaseRenamer, ReleaseStats};
pub use free_list::FreeList;
pub use nrr::NrrState;
pub use virtual_physical::{AllocGate, GmtEntry, VpRenamer};

use std::fmt;
use vpr_isa::{LogicalReg, RegClass};

/// A physical register identifier within one register class's file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u16);

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A virtual-physical register identifier within one class.
///
/// Virtual-physical registers "are not related to any storage location but
/// they are merely tags that are used to keep track of register
/// dependences" (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VpReg(pub u16);

impl fmt::Display for VpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What a renamed source operand waits on (if anything).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcState {
    /// The value sits in a physical register; the operand is ready.
    Ready(PhysReg),
    /// Waiting for a physical register to be written (conventional
    /// scheme's wake-up tag).
    WaitPhys(PhysReg),
    /// Waiting for a virtual-physical tag to be bound to a physical
    /// register (VP scheme's wake-up broadcast, paper §3.2.2).
    WaitVp(VpReg),
}

impl SrcState {
    /// True when the operand can be read at issue.
    #[inline]
    pub fn is_ready(&self) -> bool {
        matches!(self, SrcState::Ready(_))
    }
}

/// A renamed source operand: its register class (for read-port accounting)
/// and its readiness state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenamedSrc {
    /// Register file the operand is read from.
    pub class: RegClass,
    /// Wake-up state.
    pub state: SrcState,
}

/// The renamed destination of an in-flight instruction, including the
/// previous mappings needed for precise-state recovery (paper §3.2.2: the
/// reorder buffer keeps the destination logical register and the previous
/// virtual-physical mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenamedDest {
    /// The architectural destination.
    pub logical: LogicalReg,
    /// The virtual-physical tag allocated at rename (VP schemes only).
    pub vp: Option<VpReg>,
    /// The physical register: set at rename (conventional), issue
    /// (VP-issue) or completion (VP-writeback).
    pub preg: Option<PhysReg>,
    /// The previous VP mapping of `logical` (VP schemes), for recovery and
    /// commit-time freeing.
    pub prev_vp: Option<VpReg>,
    /// The previous physical mapping of `logical` (conventional scheme).
    pub prev_preg: Option<PhysReg>,
}

impl RenamedDest {
    /// The destination's register class.
    #[inline]
    pub fn class(&self) -> RegClass {
        self.logical.class()
    }
}

impl vpr_snap::Snap for PhysReg {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u16(self.0);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        PhysReg(dec.take_u16())
    }
}

impl vpr_snap::Snap for VpReg {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u16(self.0);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        VpReg(dec.take_u16())
    }
}

impl vpr_snap::Snap for SrcState {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        match self {
            SrcState::Ready(p) => {
                enc.put_u8(0);
                p.save(enc);
            }
            SrcState::WaitPhys(p) => {
                enc.put_u8(1);
                p.save(enc);
            }
            SrcState::WaitVp(v) => {
                enc.put_u8(2);
                v.save(enc);
            }
        }
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        match dec.take_u8() {
            0 => SrcState::Ready(PhysReg::load(dec)),
            1 => SrcState::WaitPhys(PhysReg::load(dec)),
            2 => SrcState::WaitVp(VpReg::load(dec)),
            other => panic!("snapshot SrcState tag {other}: layout mismatch"),
        }
    }
}

impl vpr_snap::Snap for RenamedSrc {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.class.save(enc);
        self.state.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            class: RegClass::load(dec),
            state: SrcState::load(dec),
        }
    }
}

impl vpr_snap::Snap for RenamedDest {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.logical.save(enc);
        self.vp.save(enc);
        self.preg.save(enc);
        self.prev_vp.save(enc);
        self.prev_preg.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            logical: LogicalReg::load(dec),
            vp: Option::<VpReg>::load(dec),
            preg: Option::<PhysReg>::load(dec),
            prev_vp: Option::<VpReg>::load(dec),
            prev_preg: Option::<PhysReg>::load(dec),
        }
    }
}
