//! The instruction queue (issue window).
//!
//! ### Kernel layout
//!
//! The queue sits on the hottest per-cycle paths of the simulator (issue
//! selection and result-broadcast wakeup), so it is built for constant
//! per-event cost rather than map lookups:
//!
//! * entries live in a dense **slab** of reusable slots; a generation
//!   counter per slot lets stale index records be recognised in O(1)
//!   instead of being eagerly cleaned up;
//! * sequence-number lookup goes through a direct-mapped, slab-verified
//!   hint table (collision-free on the stock geometry, slab-scan
//!   fallback otherwise), so insert and remove never maintain a sorted
//!   age vector; only the *ready* entries are kept age-sorted, and the
//!   issue stage touches exactly those, oldest first, through the
//!   non-allocating [`Iq::ready_iter`];
//! * wake-up is **consumer-indexed**: each waiting operand registers
//!   itself in a per-`(RegClass, tag)` list at insert, so a broadcast
//!   ([`Iq::wakeup_phys`] / [`Iq::wakeup_vp`]) touches only the actual
//!   consumers of that tag instead of scanning the whole window.

use crate::rename::{PhysReg, RenamedSrc, SrcState, VpReg};
use vpr_isa::{OpClass, RegClass};

/// One waiting instruction: its operation class and up to two renamed
/// source operands (the paper's `Op code | D | Src1 R1 | Src2 R2` entry,
/// §3.2.2 Figure 2 — the destination tag lives in the reorder buffer
/// here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqEntry {
    /// Global sequence number (issue priority: oldest first).
    pub seq: u64,
    /// Operation class (selects the functional unit).
    pub op: OpClass,
    /// Renamed sources; `None` slots are absent operands.
    pub srcs: [Option<RenamedSrc>; 2],
    /// Register class this instruction must be *granted a physical
    /// register in* before it may leave the queue — `Some` only under the
    /// issue-allocation scheme for a destination not yet allocated. Cached
    /// here so the issue stage's selection loop never touches the reorder
    /// buffer for candidates it ends up skipping. Invariant: while the
    /// entry is queued, this equals "destination present with no physical
    /// register" of its reorder-buffer entry (a queued instruction's
    /// allocation state only changes at issue, which removes it).
    pub alloc_class: Option<RegClass>,
}

impl IqEntry {
    /// True when every present operand is ready (the issue condition:
    /// "an instruction can be issued when the R fields of both operands
    /// are set").
    pub fn is_ready(&self) -> bool {
        self.srcs.iter().flatten().all(|s| s.state.is_ready())
    }

    /// Number of ready register sources per class, for read-port
    /// accounting at issue: `(int_reads, fp_reads)`.
    pub fn read_port_needs(&self) -> (u32, u32) {
        let mut int = 0;
        let mut fp = 0;
        for s in self.srcs.iter().flatten() {
            match s.class {
                RegClass::Int => int += 1,
                RegClass::Fp => fp += 1,
            }
        }
        (int, fp)
    }
}

/// One issue-eligible instruction in the ready index: the hot fields the
/// selection loop needs, packed into 16 bytes next to the age key so
/// scanning many blocked candidates (FU-starved or register-denied)
/// touches four records per cache line — the slab is consulted only for
/// entries that actually issue.
#[derive(Debug, Clone, Copy)]
pub struct ReadyRec {
    /// Global sequence number (issue priority: oldest first).
    pub seq: u64,
    /// Operation class (selects the functional unit).
    pub op: OpClass,
    /// [`IqEntry::alloc_class`], packed: 0 = none, 1 = int, 2 = fp.
    alloc_class: u8,
    /// Ready register sources per class `[int, fp]`.
    read_ports: [u8; 2],
}

// Layout-regression guard: four ready records per cache line.
const _: () = assert!(
    std::mem::size_of::<ReadyRec>() == 16,
    "ReadyRec must stay 16 bytes (four records per cache line)"
);

impl ReadyRec {
    /// Builds the packed record for `entry`.
    fn of(entry: &IqEntry) -> Self {
        let (int, fp) = entry.read_port_needs();
        Self {
            seq: entry.seq,
            op: entry.op,
            alloc_class: match entry.alloc_class {
                None => 0,
                Some(RegClass::Int) => 1,
                Some(RegClass::Fp) => 2,
            },
            read_ports: [int as u8, fp as u8],
        }
    }

    /// See [`IqEntry::alloc_class`].
    #[inline]
    pub fn alloc_class(&self) -> Option<RegClass> {
        match self.alloc_class {
            0 => None,
            1 => Some(RegClass::Int),
            _ => Some(RegClass::Fp),
        }
    }

    /// Ready register sources per class `(int, fp)`, for read-port
    /// accounting at issue.
    #[inline]
    pub fn read_port_needs(&self) -> (u32, u32) {
        (u32::from(self.read_ports[0]), u32::from(self.read_ports[1]))
    }
}

/// A consumer-list record: operand `src` of the entry in `slot` (valid
/// only while the slot's generation still equals `gen`).
#[derive(Debug, Clone, Copy)]
struct Waiter {
    slot: u32,
    src: u8,
    gen: u32,
}

/// Per-slot bookkeeping, split off from the entry payload so the paths
/// that only test slot *state* (generation checks on stale waiters and
/// lookup hints, liveness scans) stream through a dense 8-byte-per-slot
/// array instead of striding over full entries. `gen` increments on
/// every removal, invalidating any [`Waiter`] records (and lookup-table
/// hints) that still point here.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    gen: u32,
    /// Present operands still waiting on a broadcast (0 ⇒ ready).
    /// Invariant: a live slot with `waiting == 0` has a record in the
    /// ready index, and vice versa.
    waiting: u8,
    /// False once the entry leaves the queue (the slot is on the free
    /// list and its entry payload is stale).
    live: bool,
}

// Layout-regression guard: eight slot-state records per cache line.
const _: () = assert!(
    std::mem::size_of::<SlotMeta>() <= 8,
    "SlotMeta must stay within 8 bytes (eight records per cache line)"
);

/// Vacant marker in the seq → slot lookup table.
const VACANT: u32 = u32::MAX;

/// The out-of-order issue window: entries ordered by age, woken by tag
/// broadcasts at write-back.
///
/// Two broadcast channels exist because the schemes differ in what a
/// waiting operand names: the conventional scheme broadcasts the physical
/// register being written ([`Iq::wakeup_phys`]); the virtual-physical
/// scheme broadcasts a (VP tag → physical register) binding
/// ([`Iq::wakeup_vp`]), after which the operand knows its physical
/// register (paper §3.2.2).
#[derive(Debug, Clone)]
pub struct Iq {
    /// Slot entry payloads (parallel to `meta`; stale when not live).
    entries: Vec<IqEntry>,
    /// Slot state records (parallel to `entries`).
    meta: Vec<SlotMeta>,
    free_slots: Vec<u32>,
    /// Direct-mapped `seq & lookup_mask → slot` hint table. A hit is
    /// verified against the slab (live + matching sequence number), so a
    /// collided or stale hint is never wrong — it just falls back to a
    /// slab scan. The table is sized at four times the capacity: live
    /// sequence numbers all come from one reorder-buffer window, so on
    /// the stock geometry (window ≤ 4 × queue capacity) two live entries
    /// never alias and the fallback scan is dead code.
    lookup: Vec<u32>,
    lookup_mask: u64,
    /// Live entry count.
    live: usize,
    /// Issue-eligible instructions, sorted by `seq` (see [`ReadyRec`]).
    ready: Vec<ReadyRec>,
    /// Consumer lists for physical-register broadcasts, `[class][preg]`.
    phys_waiters: [Vec<Vec<Waiter>>; 2],
    /// Consumer lists for VP-tag broadcasts, `[class][vp]`.
    vp_waiters: [Vec<Vec<Waiter>>; 2],
    capacity: usize,
}

impl Iq {
    /// Creates an empty queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IQ needs at least one entry");
        let lookup_len = capacity.next_power_of_two() * 4;
        Self {
            entries: Vec::with_capacity(capacity),
            meta: Vec::with_capacity(capacity),
            free_slots: Vec::new(),
            lookup: vec![VACANT; lookup_len],
            lookup_mask: (lookup_len - 1) as u64,
            live: 0,
            ready: Vec::with_capacity(capacity),
            phys_waiters: [Vec::new(), Vec::new()],
            vp_waiters: [Vec::new(), Vec::new()],
            capacity,
        }
    }

    /// Number of waiting instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no instruction waits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// True when dispatch must stall.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.live == self.capacity
    }

    /// Slot index of the live entry with sequence number `seq`, if any:
    /// verified lookup-table hit, or (for a collided/stale hint — never
    /// on the stock geometry) a slab scan.
    fn find_slot(&self, seq: u64) -> Option<u32> {
        let hint = self.lookup[(seq & self.lookup_mask) as usize];
        if hint != VACANT {
            if let Some(m) = self.meta.get(hint as usize) {
                if m.live && self.entries[hint as usize].seq == seq {
                    return Some(hint);
                }
            }
        }
        self.meta
            .iter()
            .zip(&self.entries)
            .position(|(m, e)| m.live && e.seq == seq)
            .map(|i| i as u32)
    }

    /// Number of currently issue-eligible instructions (the idle-skip
    /// quiescence check: 0 means the issue stage cannot make progress
    /// until some broadcast arrives).
    #[inline]
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Inserts a dispatched (or re-executing) instruction.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full. Inserting a sequence number that is
    /// already present is a caller bug (debug-asserted; the pipeline
    /// never does it — an instruction re-enters the queue only after
    /// leaving it).
    pub fn insert(&mut self, entry: IqEntry) {
        assert!(!self.is_full(), "IQ overflow: dispatch must stall first");
        debug_assert!(
            self.find_slot(entry.seq).is_none(),
            "sequence {} inserted twice",
            entry.seq
        );
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.entries[slot as usize] = entry;
                let m = &mut self.meta[slot as usize];
                m.waiting = 0;
                m.live = true;
                slot
            }
            None => {
                self.entries.push(entry);
                self.meta.push(SlotMeta {
                    gen: 0,
                    waiting: 0,
                    live: true,
                });
                (self.entries.len() - 1) as u32
            }
        };
        let gen = self.meta[slot as usize].gen;
        let mut waiting = 0u8;
        for (i, src) in entry.srcs.iter().enumerate() {
            let Some(src) = src else { continue };
            let waiter = Waiter {
                slot,
                src: i as u8,
                gen,
            };
            match src.state {
                SrcState::Ready(_) => {}
                SrcState::WaitPhys(preg) => {
                    waiting += 1;
                    push_waiter(
                        &mut self.phys_waiters[src.class.index()],
                        preg.0 as usize,
                        waiter,
                    );
                }
                SrcState::WaitVp(vp) => {
                    waiting += 1;
                    push_waiter(
                        &mut self.vp_waiters[src.class.index()],
                        vp.0 as usize,
                        waiter,
                    );
                }
            }
        }
        self.meta[slot as usize].waiting = waiting;
        self.lookup[(entry.seq & self.lookup_mask) as usize] = slot;
        self.live += 1;
        if waiting == 0 {
            let rpos = self
                .ready
                .binary_search_by_key(&entry.seq, |r| r.seq)
                .expect_err("live sequence numbers are unique");
            self.ready.insert(rpos, ReadyRec::of(&entry));
        }
    }

    /// Removes an instruction (at issue or squash). Unknown sequence
    /// numbers are ignored so recovery can sweep blindly.
    pub fn remove(&mut self, seq: u64) -> Option<IqEntry> {
        let slot = self.find_slot(seq)?;
        let lookup_at = (seq & self.lookup_mask) as usize;
        if self.lookup[lookup_at] == slot {
            self.lookup[lookup_at] = VACANT;
        }
        let m = &mut self.meta[slot as usize];
        // Invalidate any consumer-list records still pointing at the slot.
        m.gen = m.gen.wrapping_add(1);
        m.live = false;
        let was_ready = m.waiting == 0;
        let entry = self.entries[slot as usize];
        self.free_slots.push(slot);
        self.live -= 1;
        if was_ready {
            // The waiting == 0 ⇔ in-ready-index invariant makes the
            // search unconditional-hit; entries still waiting skip it.
            let rpos = self
                .ready
                .binary_search_by_key(&seq, |r| r.seq)
                .expect("ready invariant: waiting == 0 entries are indexed");
            self.ready.remove(rpos);
        }
        Some(entry)
    }

    /// Removes every entry younger than `seq` (branch recovery).
    pub fn squash_younger_than(&mut self, seq: u64) {
        let doomed: Vec<u64> = self
            .meta
            .iter()
            .zip(&self.entries)
            .filter(|(m, e)| m.live && e.seq > seq)
            .map(|(_, e)| e.seq)
            .collect();
        for seq in doomed {
            self.remove(seq);
        }
    }

    /// Conventional-scheme wake-up: physical register `preg` of `class`
    /// now holds its value. Returns how many operands woke.
    pub fn wakeup_phys(&mut self, class: RegClass, preg: PhysReg) -> usize {
        let Some(list) = self.phys_waiters[class.index()].get_mut(preg.0 as usize) else {
            return 0;
        };
        let mut list = std::mem::take(list);
        let mut woken = 0;
        for w in list.drain(..) {
            let slot = w.slot as usize;
            if self.meta[slot].gen != w.gen {
                continue; // the instruction left the queue; record is stale
            }
            let src = self.entries[slot].srcs[w.src as usize]
                .as_mut()
                .expect("waiter recorded for a present operand");
            debug_assert_eq!(src.class, class);
            if src.state != SrcState::WaitPhys(preg) {
                continue;
            }
            src.state = SrcState::Ready(preg);
            woken += 1;
            self.meta[slot].waiting -= 1;
            if self.meta[slot].waiting == 0 {
                let rec = ReadyRec::of(&self.entries[slot]);
                let rpos = self
                    .ready
                    .binary_search_by_key(&rec.seq, |r| r.seq)
                    .expect_err("was not ready before its last operand woke");
                self.ready.insert(rpos, rec);
            }
        }
        // Hand the (now empty) list's allocation back for reuse.
        self.phys_waiters[class.index()][preg.0 as usize] = list;
        woken
    }

    /// Virtual-physical wake-up: tag `vp` of `class` was bound to `preg`.
    /// Matching operands become ready *and learn their physical register*
    /// (the broadcast carries both identifiers, §3.2.2). Returns how many
    /// operands woke.
    pub fn wakeup_vp(&mut self, class: RegClass, vp: VpReg, preg: PhysReg) -> usize {
        let Some(list) = self.vp_waiters[class.index()].get_mut(vp.0 as usize) else {
            return 0;
        };
        let mut list = std::mem::take(list);
        let mut woken = 0;
        for w in list.drain(..) {
            let slot = w.slot as usize;
            if self.meta[slot].gen != w.gen {
                continue;
            }
            let src = self.entries[slot].srcs[w.src as usize]
                .as_mut()
                .expect("waiter recorded for a present operand");
            debug_assert_eq!(src.class, class);
            if src.state != SrcState::WaitVp(vp) {
                continue;
            }
            src.state = SrcState::Ready(preg);
            woken += 1;
            self.meta[slot].waiting -= 1;
            if self.meta[slot].waiting == 0 {
                let rec = ReadyRec::of(&self.entries[slot]);
                let rpos = self
                    .ready
                    .binary_search_by_key(&rec.seq, |r| r.seq)
                    .expect_err("was not ready before its last operand woke");
                self.ready.insert(rpos, rec);
            }
        }
        self.vp_waiters[class.index()][vp.0 as usize] = list;
        woken
    }

    /// Iterates entries oldest → youngest (age order). Cold path
    /// (snapshots, recovery, tests): the age order is derived by sorting
    /// the live slab entries rather than being maintained per operation —
    /// the hot insert/remove paths pay nothing for it.
    pub fn iter(&self) -> impl Iterator<Item = &IqEntry> {
        let mut live: Vec<&IqEntry> = self
            .meta
            .iter()
            .zip(&self.entries)
            .filter(|(m, _)| m.live)
            .map(|(_, e)| e)
            .collect();
        live.sort_unstable_by_key(|e| e.seq);
        live.into_iter()
    }

    /// Iterates the *issue-eligible* entries' `ReadyRec`s oldest →
    /// youngest, without allocating and without touching the slab — the
    /// issue stage's selection order.
    pub fn ready_iter(&self) -> impl Iterator<Item = &ReadyRec> {
        self.ready.iter()
    }

    /// Sequence numbers of all currently-ready entries, oldest first
    /// (convenience for tests; the issue stage uses [`Iq::ready_iter`]).
    pub fn ready_seqs(&self) -> Vec<u64> {
        self.ready.iter().map(|r| r.seq).collect()
    }
}

impl vpr_snap::Snap for IqEntry {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.seq);
        self.op.save(enc);
        self.srcs.save(enc);
        self.alloc_class.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            seq: dec.take_u64(),
            op: OpClass::load(dec),
            srcs: <[Option<RenamedSrc>; 2]>::load(dec),
            alloc_class: Option::<RegClass>::load(dec),
        }
    }
}

impl vpr_snap::Snap for Iq {
    /// The canonical queue state is the entry set in age order; the slab
    /// layout, consumer lists and ready index are all derived. Restore
    /// rebuilds them by re-inserting each entry, which is behaviourally
    /// identical: wake-ups process consumer lists in an order that only
    /// affects *which* order already-deterministic updates happen in, and
    /// the age-sorted ready index is order-independent by construction.
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_usize(self.capacity);
        enc.put_usize(self.len());
        for e in self.iter() {
            e.save(enc);
        }
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        let capacity = dec.take_usize();
        let mut iq = Iq::new(capacity);
        let n = dec.take_usize();
        for _ in 0..n {
            iq.insert(IqEntry::load(dec));
        }
        iq
    }
}

/// Appends `waiter` to `lists[tag]`, growing the table on first use of a
/// tag index.
fn push_waiter(lists: &mut Vec<Vec<Waiter>>, tag: usize, waiter: Waiter) {
    if lists.len() <= tag {
        lists.resize_with(tag + 1, Vec::new);
    }
    lists[tag].push(waiter);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready_src(class: RegClass, p: u16) -> RenamedSrc {
        RenamedSrc {
            class,
            state: SrcState::Ready(PhysReg(p)),
        }
    }

    fn wait_vp(class: RegClass, v: u16) -> RenamedSrc {
        RenamedSrc {
            class,
            state: SrcState::WaitVp(VpReg(v)),
        }
    }

    fn wait_phys(class: RegClass, p: u16) -> RenamedSrc {
        RenamedSrc {
            class,
            state: SrcState::WaitPhys(PhysReg(p)),
        }
    }

    #[test]
    fn readiness() {
        let e = IqEntry {
            seq: 0,
            op: OpClass::IntAlu,
            srcs: [Some(ready_src(RegClass::Int, 1)), None],
            alloc_class: None,
        };
        assert!(e.is_ready());
        let e = IqEntry {
            seq: 1,
            op: OpClass::FpAdd,
            srcs: [
                Some(ready_src(RegClass::Fp, 1)),
                Some(wait_vp(RegClass::Fp, 9)),
            ],
            alloc_class: None,
        };
        assert!(!e.is_ready());
        let e = IqEntry {
            seq: 2,
            op: OpClass::Nop,
            srcs: [None, None],
            alloc_class: None,
        };
        assert!(e.is_ready(), "no operands = trivially ready");
    }

    #[test]
    fn vp_wakeup_sets_physical_register() {
        let mut iq = Iq::new(8);
        iq.insert(IqEntry {
            seq: 0,
            op: OpClass::FpMul,
            srcs: [
                Some(wait_vp(RegClass::Fp, 40)),
                Some(wait_vp(RegClass::Fp, 41)),
            ],
            alloc_class: None,
        });
        assert_eq!(iq.wakeup_vp(RegClass::Fp, VpReg(40), PhysReg(7)), 1);
        let e = *iq.iter().next().unwrap();
        assert_eq!(e.srcs[0].unwrap().state, SrcState::Ready(PhysReg(7)));
        assert!(!e.is_ready());
        assert_eq!(iq.ready_len(), 0);
        assert_eq!(iq.wakeup_vp(RegClass::Fp, VpReg(41), PhysReg(9)), 1);
        assert_eq!(iq.ready_seqs(), vec![0]);
        assert_eq!(iq.ready_len(), 1);
    }

    #[test]
    fn wakeup_respects_class() {
        let mut iq = Iq::new(8);
        iq.insert(IqEntry {
            seq: 0,
            op: OpClass::IntAlu,
            srcs: [Some(wait_vp(RegClass::Int, 5)), None],
            alloc_class: None,
        });
        // Same tag number in the FP class: no wake-up.
        assert_eq!(iq.wakeup_vp(RegClass::Fp, VpReg(5), PhysReg(1)), 0);
        assert_eq!(iq.wakeup_vp(RegClass::Int, VpReg(5), PhysReg(1)), 1);
    }

    #[test]
    fn phys_wakeup_conventional() {
        let mut iq = Iq::new(8);
        iq.insert(IqEntry {
            seq: 3,
            op: OpClass::IntAlu,
            srcs: [
                Some(wait_phys(RegClass::Int, 33)),
                Some(ready_src(RegClass::Int, 2)),
            ],
            alloc_class: None,
        });
        iq.insert(IqEntry {
            seq: 4,
            op: OpClass::IntMul,
            srcs: [Some(wait_phys(RegClass::Int, 33)), None],
            alloc_class: None,
        });
        // One broadcast wakes both consumers.
        assert_eq!(iq.wakeup_phys(RegClass::Int, PhysReg(33)), 2);
        assert_eq!(iq.ready_seqs(), vec![3, 4]);
    }

    #[test]
    fn iteration_is_oldest_first() {
        let mut iq = Iq::new(8);
        for seq in [5u64, 2, 9, 1] {
            iq.insert(IqEntry {
                seq,
                op: OpClass::IntAlu,
                srcs: [None, None],
                alloc_class: None,
            });
        }
        let order: Vec<u64> = iq.iter().map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 2, 5, 9]);
        let ready: Vec<u64> = iq.ready_iter().map(|e| e.seq).collect();
        assert_eq!(
            ready,
            vec![1, 2, 5, 9],
            "operand-free entries are all ready"
        );
    }

    #[test]
    fn squash_younger() {
        let mut iq = Iq::new(8);
        for seq in 0..6 {
            iq.insert(IqEntry {
                seq,
                op: OpClass::IntAlu,
                srcs: [None, None],
                alloc_class: None,
            });
        }
        iq.squash_younger_than(2);
        let order: Vec<u64> = iq.iter().map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn read_port_needs_count_classes() {
        let e = IqEntry {
            seq: 0,
            op: OpClass::Store,
            srcs: [
                Some(ready_src(RegClass::Int, 1)),
                Some(ready_src(RegClass::Fp, 2)),
            ],
            alloc_class: None,
        };
        assert_eq!(e.read_port_needs(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "IQ overflow")]
    fn overflow_panics() {
        let mut iq = Iq::new(1);
        iq.insert(IqEntry {
            seq: 0,
            op: OpClass::IntAlu,
            srcs: [None, None],
            alloc_class: None,
        });
        iq.insert(IqEntry {
            seq: 1,
            op: OpClass::IntAlu,
            srcs: [None, None],
            alloc_class: None,
        });
    }

    #[test]
    fn stale_waiters_do_not_wake_slot_reusers() {
        let mut iq = Iq::new(4);
        // Entry 0 waits on p7, then leaves the queue (squash) before the
        // broadcast; its slot is reused by entry 1 waiting on p8.
        iq.insert(IqEntry {
            seq: 0,
            op: OpClass::IntAlu,
            srcs: [Some(wait_phys(RegClass::Int, 7)), None],
            alloc_class: None,
        });
        assert!(iq.remove(0).is_some());
        iq.insert(IqEntry {
            seq: 1,
            op: OpClass::IntAlu,
            srcs: [Some(wait_phys(RegClass::Int, 8)), None],
            alloc_class: None,
        });
        // The stale record for p7 must not touch the reused slot.
        assert_eq!(iq.wakeup_phys(RegClass::Int, PhysReg(7)), 0);
        assert_eq!(iq.ready_len(), 0);
        assert_eq!(iq.wakeup_phys(RegClass::Int, PhysReg(8)), 1);
        assert_eq!(iq.ready_seqs(), vec![1]);
    }

    #[test]
    fn reinserted_seq_after_removal_works() {
        // Re-execution path: an issued instruction returns to the queue
        // with the same sequence number and all-ready operands.
        let mut iq = Iq::new(4);
        iq.insert(IqEntry {
            seq: 9,
            op: OpClass::Load,
            srcs: [Some(ready_src(RegClass::Int, 3)), None],
            alloc_class: None,
        });
        let e = iq.remove(9).expect("present");
        assert_eq!(iq.len(), 0);
        iq.insert(e);
        assert_eq!(iq.ready_seqs(), vec![9]);
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn remove_unknown_is_ignored() {
        let mut iq = Iq::new(2);
        assert!(iq.remove(42).is_none());
    }

    #[test]
    fn double_wakeup_is_idempotent() {
        let mut iq = Iq::new(4);
        iq.insert(IqEntry {
            seq: 0,
            op: OpClass::IntAlu,
            srcs: [Some(wait_phys(RegClass::Int, 5)), None],
            alloc_class: None,
        });
        assert_eq!(iq.wakeup_phys(RegClass::Int, PhysReg(5)), 1);
        assert_eq!(
            iq.wakeup_phys(RegClass::Int, PhysReg(5)),
            0,
            "no waiter left"
        );
        assert_eq!(iq.ready_seqs(), vec![0]);
    }
}
