//! The instruction queue (issue window).

use crate::rename::{PhysReg, RenamedSrc, SrcState, VpReg};
use std::collections::BTreeMap;
use vpr_isa::{OpClass, RegClass};

/// One waiting instruction: its operation class and up to two renamed
/// source operands (the paper's `Op code | D | Src1 R1 | Src2 R2` entry,
/// §3.2.2 Figure 2 — the destination tag lives in the reorder buffer
/// here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqEntry {
    /// Global sequence number (issue priority: oldest first).
    pub seq: u64,
    /// Operation class (selects the functional unit).
    pub op: OpClass,
    /// Renamed sources; `None` slots are absent operands.
    pub srcs: [Option<RenamedSrc>; 2],
}

impl IqEntry {
    /// True when every present operand is ready (the issue condition:
    /// "an instruction can be issued when the R fields of both operands
    /// are set").
    pub fn is_ready(&self) -> bool {
        self.srcs
            .iter()
            .flatten()
            .all(|s| s.state.is_ready())
    }

    /// Number of ready register sources per class, for read-port
    /// accounting at issue: `(int_reads, fp_reads)`.
    pub fn read_port_needs(&self) -> (u32, u32) {
        let mut int = 0;
        let mut fp = 0;
        for s in self.srcs.iter().flatten() {
            match s.class {
                RegClass::Int => int += 1,
                RegClass::Fp => fp += 1,
            }
        }
        (int, fp)
    }
}

/// The out-of-order issue window: entries ordered by age, woken by tag
/// broadcasts at write-back.
///
/// Two broadcast channels exist because the schemes differ in what a
/// waiting operand names: the conventional scheme broadcasts the physical
/// register being written ([`Iq::wakeup_phys`]); the virtual-physical
/// scheme broadcasts a (VP tag → physical register) binding
/// ([`Iq::wakeup_vp`]), after which the operand knows its physical
/// register (paper §3.2.2).
#[derive(Debug, Clone)]
pub struct Iq {
    entries: BTreeMap<u64, IqEntry>,
    capacity: usize,
}

impl Iq {
    /// Creates an empty queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IQ needs at least one entry");
        Self {
            entries: BTreeMap::new(),
            capacity,
        }
    }

    /// Number of waiting instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no instruction waits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when dispatch must stall.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Inserts a dispatched (or re-executing) instruction.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full or the sequence number is already
    /// present.
    pub fn insert(&mut self, entry: IqEntry) {
        assert!(!self.is_full(), "IQ overflow: dispatch must stall first");
        let prev = self.entries.insert(entry.seq, entry);
        assert!(prev.is_none(), "sequence {} inserted twice", entry.seq);
    }

    /// Removes an instruction (at issue or squash). Unknown sequence
    /// numbers are ignored so recovery can sweep blindly.
    pub fn remove(&mut self, seq: u64) -> Option<IqEntry> {
        self.entries.remove(&seq)
    }

    /// Removes every entry younger than `seq` (branch recovery).
    pub fn squash_younger_than(&mut self, seq: u64) {
        self.entries.split_off(&(seq + 1));
    }

    /// Conventional-scheme wake-up: physical register `preg` of `class`
    /// now holds its value. Returns how many operands woke.
    pub fn wakeup_phys(&mut self, class: RegClass, preg: PhysReg) -> usize {
        self.wakeup(|s| {
            (s.class == class && s.state == SrcState::WaitPhys(preg))
                .then_some(preg)
        })
    }

    /// Virtual-physical wake-up: tag `vp` of `class` was bound to `preg`.
    /// Matching operands become ready *and learn their physical register*
    /// (the broadcast carries both identifiers, §3.2.2). Returns how many
    /// operands woke.
    pub fn wakeup_vp(&mut self, class: RegClass, vp: VpReg, preg: PhysReg) -> usize {
        self.wakeup(|s| {
            (s.class == class && s.state == SrcState::WaitVp(vp)).then_some(preg)
        })
    }

    fn wakeup<F: Fn(&RenamedSrc) -> Option<PhysReg>>(&mut self, matches: F) -> usize {
        let mut woken = 0;
        for e in self.entries.values_mut() {
            for s in e.srcs.iter_mut().flatten() {
                if let Some(preg) = matches(s) {
                    s.state = SrcState::Ready(preg);
                    woken += 1;
                }
            }
        }
        woken
    }

    /// Iterates entries oldest → youngest (issue selection order).
    pub fn iter(&self) -> impl Iterator<Item = &IqEntry> {
        self.entries.values()
    }

    /// Sequence numbers of all currently-ready entries, oldest first
    /// (convenience for the issue stage and tests).
    pub fn ready_seqs(&self) -> Vec<u64> {
        self.entries
            .values()
            .filter(|e| e.is_ready())
            .map(|e| e.seq)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready_src(class: RegClass, p: u16) -> RenamedSrc {
        RenamedSrc {
            class,
            state: SrcState::Ready(PhysReg(p)),
        }
    }

    fn wait_vp(class: RegClass, v: u16) -> RenamedSrc {
        RenamedSrc {
            class,
            state: SrcState::WaitVp(VpReg(v)),
        }
    }

    fn wait_phys(class: RegClass, p: u16) -> RenamedSrc {
        RenamedSrc {
            class,
            state: SrcState::WaitPhys(PhysReg(p)),
        }
    }

    #[test]
    fn readiness() {
        let e = IqEntry {
            seq: 0,
            op: OpClass::IntAlu,
            srcs: [Some(ready_src(RegClass::Int, 1)), None],
        };
        assert!(e.is_ready());
        let e = IqEntry {
            seq: 1,
            op: OpClass::FpAdd,
            srcs: [Some(ready_src(RegClass::Fp, 1)), Some(wait_vp(RegClass::Fp, 9))],
        };
        assert!(!e.is_ready());
        let e = IqEntry {
            seq: 2,
            op: OpClass::Nop,
            srcs: [None, None],
        };
        assert!(e.is_ready(), "no operands = trivially ready");
    }

    #[test]
    fn vp_wakeup_sets_physical_register() {
        let mut iq = Iq::new(8);
        iq.insert(IqEntry {
            seq: 0,
            op: OpClass::FpMul,
            srcs: [Some(wait_vp(RegClass::Fp, 40)), Some(wait_vp(RegClass::Fp, 41))],
        });
        assert_eq!(iq.wakeup_vp(RegClass::Fp, VpReg(40), PhysReg(7)), 1);
        let e = *iq.iter().next().unwrap();
        assert_eq!(e.srcs[0].unwrap().state, SrcState::Ready(PhysReg(7)));
        assert!(!e.is_ready());
        assert_eq!(iq.wakeup_vp(RegClass::Fp, VpReg(41), PhysReg(9)), 1);
        assert_eq!(iq.ready_seqs(), vec![0]);
    }

    #[test]
    fn wakeup_respects_class() {
        let mut iq = Iq::new(8);
        iq.insert(IqEntry {
            seq: 0,
            op: OpClass::IntAlu,
            srcs: [Some(wait_vp(RegClass::Int, 5)), None],
        });
        // Same tag number in the FP class: no wake-up.
        assert_eq!(iq.wakeup_vp(RegClass::Fp, VpReg(5), PhysReg(1)), 0);
        assert_eq!(iq.wakeup_vp(RegClass::Int, VpReg(5), PhysReg(1)), 1);
    }

    #[test]
    fn phys_wakeup_conventional() {
        let mut iq = Iq::new(8);
        iq.insert(IqEntry {
            seq: 3,
            op: OpClass::IntAlu,
            srcs: [Some(wait_phys(RegClass::Int, 33)), Some(ready_src(RegClass::Int, 2))],
        });
        iq.insert(IqEntry {
            seq: 4,
            op: OpClass::IntMul,
            srcs: [Some(wait_phys(RegClass::Int, 33)), None],
        });
        // One broadcast wakes both consumers.
        assert_eq!(iq.wakeup_phys(RegClass::Int, PhysReg(33)), 2);
        assert_eq!(iq.ready_seqs(), vec![3, 4]);
    }

    #[test]
    fn iteration_is_oldest_first() {
        let mut iq = Iq::new(8);
        for seq in [5u64, 2, 9, 1] {
            iq.insert(IqEntry {
                seq,
                op: OpClass::IntAlu,
                srcs: [None, None],
            });
        }
        let order: Vec<u64> = iq.iter().map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 2, 5, 9]);
    }

    #[test]
    fn squash_younger() {
        let mut iq = Iq::new(8);
        for seq in 0..6 {
            iq.insert(IqEntry {
                seq,
                op: OpClass::IntAlu,
                srcs: [None, None],
            });
        }
        iq.squash_younger_than(2);
        let order: Vec<u64> = iq.iter().map(|e| e.seq).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn read_port_needs_count_classes() {
        let e = IqEntry {
            seq: 0,
            op: OpClass::Store,
            srcs: [Some(ready_src(RegClass::Int, 1)), Some(ready_src(RegClass::Fp, 2))],
        };
        assert_eq!(e.read_port_needs(), (1, 1));
    }

    #[test]
    #[should_panic(expected = "IQ overflow")]
    fn overflow_panics() {
        let mut iq = Iq::new(1);
        iq.insert(IqEntry {
            seq: 0,
            op: OpClass::IntAlu,
            srcs: [None, None],
        });
        iq.insert(IqEntry {
            seq: 1,
            op: OpClass::IntAlu,
            srcs: [None, None],
        });
    }
}
