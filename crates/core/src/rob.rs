//! The reorder buffer, split into a **hot struct-of-arrays kernel** and a
//! cold per-entry store.
//!
//! The monolithic `RobEntry` is ~200 bytes — four cache lines — yet the
//! per-event hot paths (event handlers, the issue loop, commit, the
//! governor's retry sweep) only ever need a handful of its fields. The
//! buffer therefore keeps three ring-indexed parallel arrays:
//!
//! * [`RobHot`] — one packed 32-byte record (two entries per cache line)
//!   with everything the per-event paths touch: the status flags, the
//!   execution generation, the memory phase and hoisted address/size,
//!   `completed_at`, and the execution count;
//! * `dests` — the renamed destination (`Option<RenamedDest>`), read at
//!   completion/commit and written at dispatch and late allocation;
//! * cold — the full [`DynInst`] plus the re-execution `srcs`, touched
//!   only at dispatch, issue (the source refresh), branch resolution,
//!   squash-for-re-execution, and diagnostics.
//!
//! [`RobEntry`] survives as the assembly/disassembly carrier for dispatch
//! (`push`), squash (`pop_tail`), tests, and — crucially — serialisation:
//! `Snap for Rob` encodes assembled entries in the **legacy field order**,
//! so the on-disk `.vprsnap` layout is byte-identical to the monolithic
//! representation and the format version does not bump (see
//! `docs/snapshot-format.md`).

use crate::rename::{RenamedDest, RenamedSrc};
use vpr_isa::{DynInst, Inst, MemAccess, OpClass};

/// Progress of a load or store through the memory pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemPhase {
    /// Not yet issued (or squashed back for re-execution).
    #[default]
    Idle,
    /// Effective address computed; waiting for a cache port / MSHR.
    AwaitCache,
    /// A data-return event is scheduled.
    InFlight,
    /// Data obtained (loads) or address resolved (stores).
    Done,
}

const F_COMPLETED: u8 = 1 << 0;
const F_ISSUED: u8 = 1 << 1;
const F_WRONG_PATH: u8 = 1 << 2;
const F_MISPREDICTED: u8 = 1 << 3;

/// The hot per-entry record: everything the per-event paths read or
/// write, packed into 32 bytes so two in-flight instructions share a
/// cache line. The sequence number is implicit (ring index), and the
/// memory address/size are hoisted out of the cold [`DynInst`] so commit
/// of a store, the EA handler, and the governor's retry sweep never leave
/// the hot array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobHot {
    /// Execution generation: a globally unique token refreshed on every
    /// squash-for-re-execution so stale completion events can be
    /// recognised and dropped.
    pub gen: u64,
    /// Cycle at which the completed flag was set (drives the optional VP
    /// commit delay and diagnostics).
    pub completed_at: u64,
    /// Effective byte address — meaningful only for loads and stores.
    addr: u64,
    /// Times this instruction began execution (1 = no re-executions).
    pub executions: u32,
    /// The operation class (hoisted from the cold instruction).
    pub op: OpClass,
    /// Status bits: completed / issued / wrong-path / mispredicted.
    flags: u8,
    /// Memory-pipeline progress for loads and stores.
    pub mem_phase: MemPhase,
    /// Access size in bytes — meaningful only for loads and stores.
    mem_size: u8,
}

// Layout-regression guards: a field added carelessly to the hot record
// blows the two-entries-per-line budget and fails `cargo test` (in fact,
// `cargo build`) here, not a future bench run.
const _: () = assert!(
    std::mem::size_of::<RobHot>() == 32,
    "RobHot must stay exactly 32 bytes (two entries per cache line)"
);
const _: () = assert!(std::mem::align_of::<RobHot>() == 8);

impl RobHot {
    fn from_entry(e: &RobEntry) -> Self {
        let mut flags = 0;
        if e.completed {
            flags |= F_COMPLETED;
        }
        if e.issued {
            flags |= F_ISSUED;
        }
        if e.wrong_path {
            flags |= F_WRONG_PATH;
        }
        if e.mispredicted {
            flags |= F_MISPREDICTED;
        }
        let (addr, mem_size) = e.di.mem().map_or((0, 0), |m| (m.addr, m.size));
        Self {
            gen: e.gen,
            completed_at: e.completed_at,
            addr,
            executions: e.executions,
            op: e.di.op(),
            flags,
            mem_phase: e.mem_phase,
            mem_size,
        }
    }

    /// The paper's `C` flag: execution has completed.
    #[inline]
    pub fn completed(&self) -> bool {
        self.flags & F_COMPLETED != 0
    }

    /// Sets or clears the `C` flag.
    #[inline]
    pub fn set_completed(&mut self, v: bool) {
        if v {
            self.flags |= F_COMPLETED;
        } else {
            self.flags &= !F_COMPLETED;
        }
    }

    /// Currently out of the instruction queue (issued or executing).
    #[inline]
    pub fn issued(&self) -> bool {
        self.flags & F_ISSUED != 0
    }

    /// Sets or clears the issued flag (cleared on re-execution).
    #[inline]
    pub fn set_issued(&mut self, v: bool) {
        if v {
            self.flags |= F_ISSUED;
        } else {
            self.flags &= !F_ISSUED;
        }
    }

    /// True for synthesised wrong-path instructions (squashed, never
    /// committed).
    #[inline]
    pub fn wrong_path(&self) -> bool {
        self.flags & F_WRONG_PATH != 0
    }

    /// True for a conditional branch whose predicted direction was wrong.
    #[inline]
    pub fn mispredicted(&self) -> bool {
        self.flags & F_MISPREDICTED != 0
    }

    /// The effective address (loads and stores only).
    #[inline]
    pub fn addr(&self) -> u64 {
        debug_assert!(self.op.is_mem(), "only memory ops carry an address");
        self.addr
    }

    /// The memory access, reassembled from the hoisted address and size.
    #[inline]
    pub fn mem_access(&self) -> MemAccess {
        debug_assert!(self.op.is_mem(), "only memory ops carry an access");
        MemAccess {
            addr: self.addr,
            size: self.mem_size,
        }
    }
}

/// The cold per-entry state: needed at dispatch, issue (source refresh),
/// branch resolution, and squash-for-re-execution — never on the
/// per-event fast paths.
#[derive(Debug, Clone)]
struct RobCold {
    di: DynInst,
    srcs: [Option<RenamedSrc>; 2],
}

/// One in-flight instruction, from dispatch to commit — the
/// **assembled** view of one ring slot.
///
/// Besides the dynamic instruction itself, the entry holds exactly the
/// recovery state the paper requires (§3.2.2): the destination logical
/// register and the previous mapping(s), plus the completion flag `C`.
/// In memory the buffer stores these fields split across the hot/cold
/// arrays; this carrier exists for dispatch, squash, tests and the
/// legacy-order serialiser.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global program-order sequence number.
    pub seq: u64,
    /// The fetched instruction.
    pub di: DynInst,
    /// True for synthesised wrong-path instructions (squashed, never
    /// committed).
    pub wrong_path: bool,
    /// True for a conditional branch whose predicted direction was wrong.
    pub mispredicted: bool,
    /// Renamed destination, if the instruction writes a register.
    pub dest: Option<RenamedDest>,
    /// Renamed sources, refreshed with their final (all-ready) state at
    /// issue so a squashed instruction can be re-inserted into the
    /// instruction queue for re-execution.
    pub srcs: [Option<RenamedSrc>; 2],
    /// The paper's `C` flag: execution has completed.
    pub completed: bool,
    /// Cycle at which `completed` was set (drives the optional VP commit
    /// delay and diagnostics).
    pub completed_at: u64,
    /// Currently out of the instruction queue (issued or executing).
    pub issued: bool,
    /// Execution generation: a globally unique token refreshed on every
    /// squash-for-re-execution so stale completion events can be
    /// recognised and dropped.
    pub gen: u64,
    /// Memory-pipeline progress for loads and stores.
    pub mem_phase: MemPhase,
    /// Times this instruction began execution (1 = no re-executions).
    pub executions: u32,
}

impl RobEntry {
    /// Creates a fresh entry at dispatch.
    pub fn new(seq: u64, di: DynInst, wrong_path: bool, mispredicted: bool) -> Self {
        Self {
            seq,
            di,
            wrong_path,
            mispredicted,
            dest: None,
            srcs: [None, None],
            completed: false,
            completed_at: 0,
            issued: false,
            gen: 0,
            mem_phase: MemPhase::Idle,
            executions: 0,
        }
    }
}

/// The reorder buffer: a bounded ring of in-flight instructions
/// addressable by sequence number, stored hot/cold split (see the module
/// documentation).
///
/// Dispatch pushes at the tail, commit drops from the head, and recovery
/// drops from the tail — so the live sequence numbers are always
/// contiguous, and lookup is O(1) arithmetic on the head sequence.
/// Head/tail drops advance ring indices only; cold state never moves.
#[derive(Debug, Clone)]
pub struct Rob {
    hot: Vec<RobHot>,
    dests: Vec<Option<RenamedDest>>,
    cold: Vec<RobCold>,
    capacity: usize,
    /// Ring index of the head entry.
    head_idx: usize,
    /// Number of in-flight instructions.
    len: usize,
    /// Sequence number of the entry at the head (valid when non-empty).
    head_seq: u64,
}

impl Rob {
    /// Creates an empty buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs at least one entry");
        let filler = RobEntry::new(0, DynInst::new(0, Inst::new(OpClass::Nop)), false, false);
        Self {
            hot: vec![RobHot::from_entry(&filler); capacity],
            dests: vec![None; capacity],
            cold: vec![
                RobCold {
                    di: filler.di,
                    srcs: [None, None],
                };
                capacity
            ],
            capacity,
            head_idx: 0,
            len: 0,
            head_seq: 0,
        }
    }

    /// Number of in-flight instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when dispatch must stall.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Wraps a ring index into `0..capacity` (the capacity is not
    /// necessarily a power of two, so this is a conditional subtract, not
    /// a mask; `idx < 2 * capacity` always holds for the callers).
    #[inline]
    fn wrap(&self, idx: usize) -> usize {
        if idx >= self.capacity {
            idx - self.capacity
        } else {
            idx
        }
    }

    /// Ring slot of in-flight sequence number `seq`, or `None`.
    #[inline]
    fn slot_of(&self, seq: u64) -> Option<usize> {
        let off = seq.wrapping_sub(self.head_seq);
        if off >= self.len as u64 {
            return None;
        }
        Some(self.wrap(self.head_idx + off as usize))
    }

    /// Appends an entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full or the sequence number is not the
    /// successor of the current tail.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "ROB overflow: dispatch must stall first");
        if self.len == 0 {
            self.head_seq = entry.seq;
        } else {
            assert_eq!(
                entry.seq,
                self.head_seq + self.len as u64,
                "sequence numbers must be contiguous"
            );
        }
        let idx = self.wrap(self.head_idx + self.len);
        self.hot[idx] = RobHot::from_entry(&entry);
        self.dests[idx] = entry.dest;
        self.cold[idx] = RobCold {
            di: entry.di,
            srcs: entry.srcs,
        };
        self.len += 1;
    }

    /// The hot record of in-flight instruction `seq`.
    #[inline]
    pub fn hot(&self, seq: u64) -> Option<&RobHot> {
        self.slot_of(seq).map(|i| &self.hot[i])
    }

    /// Mutable hot record of in-flight instruction `seq`.
    #[inline]
    pub fn hot_mut(&mut self, seq: u64) -> Option<&mut RobHot> {
        self.slot_of(seq).map(|i| &mut self.hot[i])
    }

    /// The hot record of the oldest in-flight instruction.
    #[inline]
    pub fn head_hot(&self) -> Option<&RobHot> {
        (self.len > 0).then(|| &self.hot[self.head_idx])
    }

    /// Sequence number of the oldest in-flight instruction.
    #[inline]
    pub fn head_seq(&self) -> Option<u64> {
        (self.len > 0).then_some(self.head_seq)
    }

    /// Sequence number of the youngest in-flight instruction.
    #[inline]
    pub fn tail_seq(&self) -> Option<u64> {
        (self.len > 0).then(|| self.head_seq + self.len as u64 - 1)
    }

    /// The renamed destination of in-flight instruction `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight — every caller indexes a
    /// known-live window.
    #[inline]
    pub fn dest(&self, seq: u64) -> Option<RenamedDest> {
        let i = self.slot_of(seq).expect("sequence not in flight");
        self.dests[i]
    }

    /// Mutable renamed destination of in-flight instruction `seq` (late
    /// allocation writes the granted register here).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    #[inline]
    pub fn dest_mut(&mut self, seq: u64) -> &mut Option<RenamedDest> {
        let i = self.slot_of(seq).expect("sequence not in flight");
        &mut self.dests[i]
    }

    /// The cold dynamic instruction of in-flight instruction `seq`
    /// (branch resolution, diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    #[inline]
    pub fn di(&self, seq: u64) -> &DynInst {
        let i = self.slot_of(seq).expect("sequence not in flight");
        &self.cold[i].di
    }

    /// The recovery sources of in-flight instruction `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    #[inline]
    pub fn srcs(&self, seq: u64) -> [Option<RenamedSrc>; 2] {
        let i = self.slot_of(seq).expect("sequence not in flight");
        self.cold[i].srcs
    }

    /// Refreshes the recovery sources at issue (their final, all-ready
    /// state — what a squash-for-re-execution re-inserts).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not in flight.
    #[inline]
    pub fn set_srcs(&mut self, seq: u64, srcs: [Option<RenamedSrc>; 2]) {
        let i = self.slot_of(seq).expect("sequence not in flight");
        self.cold[i].srcs = srcs;
    }

    /// Assembles the full entry view of one ring slot.
    fn assemble(&self, idx: usize, seq: u64) -> RobEntry {
        let h = &self.hot[idx];
        let c = &self.cold[idx];
        RobEntry {
            seq,
            di: c.di,
            wrong_path: h.wrong_path(),
            mispredicted: h.mispredicted(),
            dest: self.dests[idx],
            srcs: c.srcs,
            completed: h.completed(),
            completed_at: h.completed_at,
            issued: h.issued(),
            gen: h.gen,
            mem_phase: h.mem_phase,
            executions: h.executions,
        }
    }

    /// Assembled view of in-flight instruction `seq` (diagnostics, tests
    /// — the hot paths use the split accessors instead).
    pub fn entry(&self, seq: u64) -> Option<RobEntry> {
        self.slot_of(seq).map(|i| self.assemble(i, seq))
    }

    /// Removes and returns the oldest instruction, assembled (tests and
    /// diagnostics; commit uses [`Rob::drop_head`]).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let e = self.assemble(self.head_idx, self.head_seq);
        self.drop_head();
        Some(e)
    }

    /// Removes the oldest instruction — commit's hot path: ring indices
    /// advance, and neither the hot record nor the cold state moves.
    pub fn drop_head(&mut self) {
        if self.len == 0 {
            return;
        }
        self.head_idx = self.wrap(self.head_idx + 1);
        self.len -= 1;
        self.head_seq += 1;
    }

    /// Removes and returns the youngest instruction, assembled (squash
    /// diagnostics and tests; the squash hot path reads the split
    /// accessors and calls [`Rob::drop_tail`]).
    pub fn pop_tail(&mut self) -> Option<RobEntry> {
        let seq = self.tail_seq()?;
        let idx = self.wrap(self.head_idx + self.len - 1);
        let e = self.assemble(idx, seq);
        self.len -= 1;
        Some(e)
    }

    /// Removes the youngest instruction without assembling it — the
    /// wrong-path squash hot path: nothing moves, the slot is simply
    /// released for reuse.
    pub fn drop_tail(&mut self) {
        if self.len > 0 {
            self.len -= 1;
        }
    }

    /// Iterates assembled entries oldest → youngest (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = RobEntry> + '_ {
        (0..self.len)
            .map(move |k| self.assemble(self.wrap(self.head_idx + k), self.head_seq + k as u64))
    }

    /// Iterates assembled entries younger than `seq`, oldest first.
    pub fn iter_younger_than(&self, seq: u64) -> impl Iterator<Item = RobEntry> + '_ {
        let start = (seq + 1).saturating_sub(self.head_seq).min(self.len as u64) as usize;
        (start..self.len)
            .map(move |k| self.assemble(self.wrap(self.head_idx + k), self.head_seq + k as u64))
    }
}

impl vpr_snap::Snap for MemPhase {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u8(match self {
            MemPhase::Idle => 0,
            MemPhase::AwaitCache => 1,
            MemPhase::InFlight => 2,
            MemPhase::Done => 3,
        });
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        match dec.take_u8() {
            0 => MemPhase::Idle,
            1 => MemPhase::AwaitCache,
            2 => MemPhase::InFlight,
            3 => MemPhase::Done,
            other => panic!("snapshot MemPhase tag {other}: layout mismatch"),
        }
    }
}

impl vpr_snap::Snap for RobEntry {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.seq);
        self.di.save(enc);
        enc.put_bool(self.wrong_path);
        enc.put_bool(self.mispredicted);
        self.dest.save(enc);
        self.srcs.save(enc);
        enc.put_bool(self.completed);
        enc.put_u64(self.completed_at);
        enc.put_bool(self.issued);
        enc.put_u64(self.gen);
        self.mem_phase.save(enc);
        enc.put_u32(self.executions);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            seq: dec.take_u64(),
            di: DynInst::load(dec),
            wrong_path: dec.take_bool(),
            mispredicted: dec.take_bool(),
            dest: Option::<RenamedDest>::load(dec),
            srcs: <[Option<RenamedSrc>; 2]>::load(dec),
            completed: dec.take_bool(),
            completed_at: dec.take_u64(),
            issued: dec.take_bool(),
            gen: dec.take_u64(),
            mem_phase: MemPhase::load(dec),
            executions: dec.take_u32(),
        }
    }
}

impl vpr_snap::Snap for Rob {
    /// Serialises in the **legacy monolithic layout** — a `VecDeque`-style
    /// length prefix followed by assembled entries in age order, then the
    /// capacity and the head sequence — so the hot/cold split is invisible
    /// on disk and the snapshot format version does not bump.
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_usize(self.len);
        for entry in self.iter() {
            entry.save(enc);
        }
        enc.put_usize(self.capacity);
        enc.put_u64(self.head_seq);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        let n = dec.take_usize();
        let entries: Vec<RobEntry> = (0..n).map(|_| RobEntry::load(dec)).collect();
        let capacity = dec.take_usize();
        let head_seq = dec.take_u64();
        let mut rob = Rob::new(capacity);
        for entry in entries {
            rob.push(entry);
        }
        // An empty buffer still carries the head sequence it drained to
        // (push() would have restored it for a non-empty one).
        rob.head_seq = head_seq;
        rob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_isa::{Inst, OpClass};

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(
            seq,
            DynInst::new(seq * 4, Inst::new(OpClass::IntAlu)),
            false,
            false,
        )
    }

    #[test]
    fn push_pop_fifo() {
        let mut rob = Rob::new(4);
        for s in 10..14 {
            rob.push(entry(s));
        }
        assert!(rob.is_full());
        assert_eq!(rob.head_seq(), Some(10));
        assert_eq!(rob.tail_seq(), Some(13));
        assert_eq!(rob.pop_head().unwrap().seq, 10);
        assert_eq!(rob.pop_head().unwrap().seq, 11);
        rob.push(entry(14));
        assert_eq!(rob.len(), 3);
    }

    #[test]
    fn lookup_by_seq_after_commits() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            rob.push(entry(s));
        }
        rob.pop_head();
        rob.pop_head();
        assert!(rob.hot(1).is_none(), "committed entries are gone");
        assert_eq!(rob.entry(3).unwrap().seq, 3);
        rob.hot_mut(4).unwrap().set_completed(true);
        assert!(rob.hot(4).unwrap().completed());
        assert!(rob.hot(99).is_none());
    }

    #[test]
    fn squash_pops_from_tail() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            rob.push(entry(s));
        }
        assert_eq!(rob.pop_tail().unwrap().seq, 4);
        assert_eq!(rob.pop_tail().unwrap().seq, 3);
        assert_eq!(rob.tail_seq(), Some(2));
        // Refill continues the sequence.
        rob.push(entry(3));
        assert_eq!(rob.len(), 4);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_push_panics() {
        let mut rob = Rob::new(8);
        rob.push(entry(0));
        rob.push(entry(5));
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    fn iter_younger_than() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        let seqs: Vec<u64> = rob.iter_younger_than(2).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        let seqs: Vec<u64> = rob.iter_younger_than(10).map(|e| e.seq).collect();
        assert!(seqs.is_empty());
    }

    #[test]
    fn empty_after_draining() {
        let mut rob = Rob::new(2);
        rob.push(entry(0));
        rob.pop_head();
        assert!(rob.is_empty());
        // Sequence restarts wherever dispatch continues.
        rob.push(entry(7));
        assert_eq!(rob.head_seq(), Some(7));
        assert_eq!(rob.entry(7).unwrap().seq, 7);
    }

    #[test]
    fn ring_wraps_without_moving_state() {
        // Capacity 3 with interleaved push/drop forces head_idx around
        // the ring several times; lookups must stay seq-correct.
        let mut rob = Rob::new(3);
        let mut next = 100u64;
        for _ in 0..3 {
            rob.push(entry(next));
            next += 1;
        }
        for lap in 0..7u64 {
            assert!(rob.is_full());
            assert_eq!(rob.head_seq(), Some(100 + lap));
            rob.drop_head();
            rob.push(entry(next));
            next += 1;
            for seq in rob.head_seq().unwrap()..=rob.tail_seq().unwrap() {
                let e = rob.entry(seq).unwrap();
                assert_eq!(e.seq, seq);
                assert_eq!(e.di.pc(), seq * 4, "hot/cold rings agree at {seq}");
            }
        }
    }

    #[test]
    fn squash_tail_after_wrap() {
        let mut rob = Rob::new(4);
        for s in 0..4 {
            rob.push(entry(s));
        }
        // Advance the head past the physical end of the ring.
        for _ in 0..3 {
            rob.drop_head();
        }
        for s in 4..7 {
            rob.push(entry(s));
        }
        // Window is seqs 3..=6, physically wrapped. Squash back to 4.
        assert_eq!(rob.pop_tail().unwrap().seq, 6);
        rob.drop_tail();
        assert_eq!(rob.tail_seq(), Some(4));
        assert_eq!(rob.entry(4).unwrap().di.pc(), 16);
        // Refill re-uses the released slots.
        rob.push(entry(5));
        rob.push(entry(6));
        assert!(rob.is_full());
        assert_eq!(rob.entry(6).unwrap().di.pc(), 24);
    }

    #[test]
    fn split_accessors_agree_with_assembled_entry() {
        let mut rob = Rob::new(4);
        let mut e = entry(5);
        e.gen = 9;
        e.completed = true;
        e.completed_at = 77;
        e.executions = 2;
        rob.push(e);
        let h = rob.hot(5).unwrap();
        assert_eq!(h.gen, 9);
        assert!(h.completed());
        assert!(!h.issued());
        assert_eq!(h.completed_at, 77);
        assert_eq!(h.executions, 2);
        assert_eq!(h.op, OpClass::IntAlu);
        let assembled = rob.entry(5).unwrap();
        assert_eq!(assembled.gen, 9);
        assert!(assembled.completed);
        assert_eq!(assembled.di.pc(), 20);
        assert_eq!(rob.srcs(5), [None, None]);
        assert!(rob.dest(5).is_none());
    }

    #[test]
    #[should_panic(expected = "not in flight")]
    fn dest_of_absent_seq_panics() {
        let rob = Rob::new(4);
        let _ = rob.dest(3);
    }

    #[test]
    fn hot_record_carries_mem_access() {
        let di = DynInst::new(
            0x40,
            Inst::new(OpClass::Load).with_dest(vpr_isa::LogicalReg::int(1)),
        )
        .with_mem(MemAccess {
            addr: 0x9000,
            size: 8,
        });
        let mut rob = Rob::new(2);
        rob.push(RobEntry::new(3, di, false, false));
        let h = rob.hot(3).unwrap();
        assert_eq!(h.addr(), 0x9000);
        assert_eq!(
            h.mem_access(),
            MemAccess {
                addr: 0x9000,
                size: 8
            }
        );
    }
}
