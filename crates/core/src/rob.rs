//! The reorder buffer.

use crate::rename::{RenamedDest, RenamedSrc};
use std::collections::VecDeque;
use vpr_isa::DynInst;

/// Progress of a load or store through the memory pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemPhase {
    /// Not yet issued (or squashed back for re-execution).
    #[default]
    Idle,
    /// Effective address computed; waiting for a cache port / MSHR.
    AwaitCache,
    /// A data-return event is scheduled.
    InFlight,
    /// Data obtained (loads) or address resolved (stores).
    Done,
}

/// One in-flight instruction, from dispatch to commit.
///
/// Besides the dynamic instruction itself, the entry holds exactly the
/// recovery state the paper requires (§3.2.2): the destination logical
/// register and the previous mapping(s), plus the completion flag `C`.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global program-order sequence number.
    pub seq: u64,
    /// The fetched instruction.
    pub di: DynInst,
    /// True for synthesised wrong-path instructions (squashed, never
    /// committed).
    pub wrong_path: bool,
    /// True for a conditional branch whose predicted direction was wrong.
    pub mispredicted: bool,
    /// Renamed destination, if the instruction writes a register.
    pub dest: Option<RenamedDest>,
    /// Renamed sources, refreshed with their final (all-ready) state at
    /// issue so a squashed instruction can be re-inserted into the
    /// instruction queue for re-execution.
    pub srcs: [Option<RenamedSrc>; 2],
    /// The paper's `C` flag: execution has completed.
    pub completed: bool,
    /// Cycle at which `completed` was set (drives the optional VP commit
    /// delay and diagnostics).
    pub completed_at: u64,
    /// Currently out of the instruction queue (issued or executing).
    pub issued: bool,
    /// Execution generation: a globally unique token refreshed on every
    /// squash-for-re-execution so stale completion events can be
    /// recognised and dropped.
    pub gen: u64,
    /// Memory-pipeline progress for loads and stores.
    pub mem_phase: MemPhase,
    /// Times this instruction began execution (1 = no re-executions).
    pub executions: u32,
}

impl RobEntry {
    /// Creates a fresh entry at dispatch.
    pub fn new(seq: u64, di: DynInst, wrong_path: bool, mispredicted: bool) -> Self {
        Self {
            seq,
            di,
            wrong_path,
            mispredicted,
            dest: None,
            srcs: [None, None],
            completed: false,
            completed_at: 0,
            issued: false,
            gen: 0,
            mem_phase: MemPhase::Idle,
            executions: 0,
        }
    }
}

/// The reorder buffer: a bounded FIFO of [`RobEntry`] addressable by
/// sequence number.
///
/// Dispatch pushes at the tail, commit pops from the head, and recovery
/// pops from the tail — so the live sequence numbers are always
/// contiguous, and lookup is O(1) arithmetic on the head sequence.
#[derive(Debug, Clone)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
    /// Sequence number of the entry at the head (valid when non-empty).
    head_seq: u64,
}

impl Rob {
    /// Creates an empty buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs at least one entry");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            head_seq: 0,
        }
    }

    /// Number of in-flight instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when dispatch must stall.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Appends an entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full or the sequence number is not the
    /// successor of the current tail.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "ROB overflow: dispatch must stall first");
        if let Some(tail) = self.entries.back() {
            assert_eq!(
                entry.seq,
                tail.seq + 1,
                "sequence numbers must be contiguous"
            );
        } else {
            self.head_seq = entry.seq;
        }
        self.entries.push_back(entry);
    }

    /// Looks up an in-flight instruction by sequence number.
    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.entries.get(idx)
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.entries.get_mut(idx)
    }

    /// The oldest in-flight instruction.
    #[inline]
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// The youngest in-flight instruction.
    #[inline]
    pub fn tail(&self) -> Option<&RobEntry> {
        self.entries.back()
    }

    /// Removes and returns the oldest instruction (commit).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        let e = self.entries.pop_front()?;
        self.head_seq = e.seq + 1;
        Some(e)
    }

    /// Removes the oldest instruction without returning it — commit's hot
    /// path: the caller has already copied the few fields it needs, so
    /// the full entry is never moved out of the buffer.
    pub fn drop_head(&mut self) {
        if self.entries.pop_front().is_some() {
            self.head_seq += 1;
        }
    }

    /// Removes and returns the youngest instruction (squash).
    pub fn pop_tail(&mut self) -> Option<RobEntry> {
        self.entries.pop_back()
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Iterates over entries younger than `seq`, oldest first.
    pub fn iter_younger_than(&self, seq: u64) -> impl Iterator<Item = &RobEntry> {
        let start = (seq + 1).saturating_sub(self.head_seq) as usize;
        self.entries.range(start.min(self.entries.len())..)
    }
}

impl vpr_snap::Snap for MemPhase {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u8(match self {
            MemPhase::Idle => 0,
            MemPhase::AwaitCache => 1,
            MemPhase::InFlight => 2,
            MemPhase::Done => 3,
        });
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        match dec.take_u8() {
            0 => MemPhase::Idle,
            1 => MemPhase::AwaitCache,
            2 => MemPhase::InFlight,
            3 => MemPhase::Done,
            other => panic!("snapshot MemPhase tag {other}: layout mismatch"),
        }
    }
}

impl vpr_snap::Snap for RobEntry {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.seq);
        self.di.save(enc);
        enc.put_bool(self.wrong_path);
        enc.put_bool(self.mispredicted);
        self.dest.save(enc);
        self.srcs.save(enc);
        enc.put_bool(self.completed);
        enc.put_u64(self.completed_at);
        enc.put_bool(self.issued);
        enc.put_u64(self.gen);
        self.mem_phase.save(enc);
        enc.put_u32(self.executions);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            seq: dec.take_u64(),
            di: DynInst::load(dec),
            wrong_path: dec.take_bool(),
            mispredicted: dec.take_bool(),
            dest: Option::<RenamedDest>::load(dec),
            srcs: <[Option<RenamedSrc>; 2]>::load(dec),
            completed: dec.take_bool(),
            completed_at: dec.take_u64(),
            issued: dec.take_bool(),
            gen: dec.take_u64(),
            mem_phase: MemPhase::load(dec),
            executions: dec.take_u32(),
        }
    }
}

impl vpr_snap::Snap for Rob {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.entries.save(enc);
        enc.put_usize(self.capacity);
        enc.put_u64(self.head_seq);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            entries: VecDeque::<RobEntry>::load(dec),
            capacity: dec.take_usize(),
            head_seq: dec.take_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_isa::{Inst, OpClass};

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(
            seq,
            DynInst::new(seq * 4, Inst::new(OpClass::IntAlu)),
            false,
            false,
        )
    }

    #[test]
    fn push_pop_fifo() {
        let mut rob = Rob::new(4);
        for s in 10..14 {
            rob.push(entry(s));
        }
        assert!(rob.is_full());
        assert_eq!(rob.head().unwrap().seq, 10);
        assert_eq!(rob.tail().unwrap().seq, 13);
        assert_eq!(rob.pop_head().unwrap().seq, 10);
        assert_eq!(rob.pop_head().unwrap().seq, 11);
        rob.push(entry(14));
        assert_eq!(rob.len(), 3);
    }

    #[test]
    fn lookup_by_seq_after_commits() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            rob.push(entry(s));
        }
        rob.pop_head();
        rob.pop_head();
        assert!(rob.get(1).is_none(), "committed entries are gone");
        assert_eq!(rob.get(3).unwrap().seq, 3);
        rob.get_mut(4).unwrap().completed = true;
        assert!(rob.get(4).unwrap().completed);
        assert!(rob.get(99).is_none());
    }

    #[test]
    fn squash_pops_from_tail() {
        let mut rob = Rob::new(8);
        for s in 0..5 {
            rob.push(entry(s));
        }
        assert_eq!(rob.pop_tail().unwrap().seq, 4);
        assert_eq!(rob.pop_tail().unwrap().seq, 3);
        assert_eq!(rob.tail().unwrap().seq, 2);
        // Refill continues the sequence.
        rob.push(entry(3));
        assert_eq!(rob.len(), 4);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_push_panics() {
        let mut rob = Rob::new(8);
        rob.push(entry(0));
        rob.push(entry(5));
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    fn iter_younger_than() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        let seqs: Vec<u64> = rob.iter_younger_than(2).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        let seqs: Vec<u64> = rob.iter_younger_than(10).map(|e| e.seq).collect();
        assert!(seqs.is_empty());
    }

    #[test]
    fn empty_after_draining() {
        let mut rob = Rob::new(2);
        rob.push(entry(0));
        rob.pop_head();
        assert!(rob.is_empty());
        // Sequence restarts wherever dispatch continues.
        rob.push(entry(7));
        assert_eq!(rob.head().unwrap().seq, 7);
        assert_eq!(rob.get(7).unwrap().seq, 7);
    }
}
