//! # vpr-core — the out-of-order core and the renaming schemes
//!
//! This crate implements the paper's contribution — **virtual-physical
//! register renaming** with late (issue-time or write-back-time) physical
//! register allocation and NRR deadlock avoidance — inside a
//! cycle-accurate, trace-driven out-of-order superscalar pipeline, next to
//! the conventional R10000-style renaming baseline it is compared against.
//!
//! The public surface:
//!
//! * [`SimConfig`] / [`SimConfigBuilder`] — the machine description
//!   (defaults reproduce the paper's §4.1 configuration);
//! * [`RenameScheme`] — conventional vs. virtual-physical (issue or
//!   write-back allocation, each with an `nrr` parameter);
//! * [`Processor`] — the pipeline; feed it any
//!   [`InstStream`](vpr_isa::InstStream) and run;
//! * [`SimStats`] — IPC, re-execution counts, register pressure and
//!   occupancy, stall breakdowns;
//! * [`rename`] — the renaming machinery itself (map tables, free lists,
//!   NRR state), usable standalone for unit-level studies;
//! * [`par`] — a dependency-free scoped-thread work-stealing pool used by
//!   the experiment harness to run independent simulations in parallel
//!   with deterministic, submission-ordered results.
//!
//! ## Example
//!
//! ```
//! use vpr_core::{Processor, RenameScheme, SimConfig};
//! use vpr_isa::{DynInst, Inst, LogicalReg, OpClass};
//!
//! // fdiv f2,f2,f10 ; fmul f2,f2,f12 — a dependent FP chain.
//! let trace = vec![
//!     DynInst::new(0x0, Inst::new(OpClass::FpDiv)
//!         .with_dest(LogicalReg::fp(2))
//!         .with_src1(LogicalReg::fp(2))
//!         .with_src2(LogicalReg::fp(10))),
//!     DynInst::new(0x4, Inst::new(OpClass::FpMul)
//!         .with_dest(LogicalReg::fp(2))
//!         .with_src1(LogicalReg::fp(2))
//!         .with_src2(LogicalReg::fp(12))),
//! ];
//! let cfg = SimConfig::builder()
//!     .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 32 })
//!     .build();
//! let stats = Processor::new(cfg, trace.into_iter()).run_to_completion();
//! assert_eq!(stats.committed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod event_queue;
mod fu;
mod iq;
pub mod par;
mod pipeline;
pub mod profile;
pub mod rename;
mod rob;
mod stats;

pub use config::{Latencies, RenameScheme, SimConfig, SimConfigBuilder};
pub use event_queue::CalendarQueue;
pub use fu::FuPool;
pub use iq::{Iq, IqEntry, ReadyRec};
pub use pipeline::Processor;
pub use profile::{Stage, StageProfile, StageRec};
// Observer plumbing, re-exported so `Processor::with_observer` callers
// need not name `vpr-obs` separately.
pub use rename::{ConventionalRenamer, NrrState, VpRenamer};
pub use rob::{MemPhase, Rob, RobEntry, RobHot};
pub use stats::{harmonic_mean, ClassStats, SimStats};
pub use vpr_obs::{NoObs, PipeObserver, SimObserver};
