//! A dependency-free scoped-thread work-stealing pool.
//!
//! The build environment has no crates.io access, so `rayon` is not an
//! option; this module supplies the narrow slice of it the workspace
//! needs: run N independent jobs on up to `jobs` OS threads and collect
//! the results **in submission order**, so parallel output is byte-
//! identical to a serial run of the same jobs.
//!
//! ### Design
//!
//! Jobs are identified by their index. Indices are dealt round-robin into
//! one deque per worker; a worker pops from the *front* of its own deque
//! (cache-friendly sequential order) and, when it runs dry, steals from
//! the *back* of a sibling's deque — the classic Chase–Lev discipline,
//! here with a `Mutex` per deque instead of lock-free buffers because the
//! pool schedules millisecond-scale simulations, not nanosecond tasks:
//! one uncontended lock per job is noise.
//!
//! Results land in a shared slot table keyed by job index, which is what
//! makes the merge deterministic regardless of which worker ran which job
//! and in which order.
//!
//! ### Panics and poisoning
//!
//! All locking is poison-proof: a panic in one job must not turn into
//! `PoisonError` panics in sibling workers, which would mask the original
//! panic behind a cascade of secondary ones. [`par_map`] catches each
//! job's panic, stops the pool, and re-raises the **first** panic payload
//! after all workers join; [`par_try_map`] goes further and converts each
//! job's panic into a per-job [`JobFailure`] with bounded retry, so one
//! poisoned config cannot tear down a thousand-config sweep.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A sensible default worker count: the host's available parallelism,
/// or 1 when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Locks ignoring poison: the pool's own invariants do not depend on the
/// critical sections completing (slots are `Option`s; a poisoned write
/// left either `None` or a complete value), and respecting poison would
/// cascade one job's panic into every other worker.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Retry discipline for [`par_try_map`] and the sweep service: a bounded
/// retry budget plus capped exponential backoff between attempts.
///
/// The historical `par_try_map` behaviour — at most one immediate retry —
/// is `RetryPolicy::immediate(1)`. A long-running daemon wants a larger
/// budget with growing delays so a struggling resource (a contended
/// checkpoint store, a worker that keeps being preempted) is not hammered
/// at full rate: `RetryPolicy::backoff(budget, base_ms, cap_ms)` delays
/// the n-th retry by `min(cap_ms, base_ms << (n-1))` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (total attempts = budget+1).
    pub budget: u32,
    /// Delay before the first retry, in milliseconds. 0 = retry at once.
    pub base_ms: u64,
    /// Ceiling on any single inter-attempt delay, in milliseconds.
    pub cap_ms: u64,
}

impl RetryPolicy {
    /// No retries: every job gets exactly one attempt.
    pub const fn none() -> Self {
        Self::immediate(0)
    }

    /// `budget` retries with no delay between attempts (the policy batch
    /// sweeps use: injected faults are single-shot, so an immediate second
    /// attempt sees clean state).
    pub const fn immediate(budget: u32) -> Self {
        Self {
            budget,
            base_ms: 0,
            cap_ms: 0,
        }
    }

    /// `budget` retries with capped exponential backoff.
    pub const fn backoff(budget: u32, base_ms: u64, cap_ms: u64) -> Self {
        Self {
            budget,
            base_ms,
            cap_ms,
        }
    }

    /// Total attempts this policy allows (1 initial + budget retries).
    pub const fn attempts(&self) -> u32 {
        self.budget.saturating_add(1)
    }

    /// Delay in milliseconds before retry number `retry` (1-based: the
    /// first retry is `retry == 1`). Doubles per retry, saturating at
    /// [`RetryPolicy::cap_ms`]; shift overflow also lands on the cap.
    pub fn delay_ms(&self, retry: u32) -> u64 {
        if self.base_ms == 0 || retry == 0 {
            return 0;
        }
        let doublings = retry - 1;
        let raw = if doublings >= 63 {
            u64::MAX
        } else {
            self.base_ms.saturating_mul(1u64 << doublings)
        };
        raw.min(self.cap_ms.max(self.base_ms))
    }
}

/// `retries: u32` call sites keep working: a bare count means immediate
/// retries, exactly the pre-`RetryPolicy` semantics.
impl From<u32> for RetryPolicy {
    fn from(budget: u32) -> Self {
        RetryPolicy::immediate(budget)
    }
}

/// One job's terminal failure, reported by [`par_try_map`] after its
/// retry budget is exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Submission index of the failed job.
    pub index: usize,
    /// Attempts made (1 initial + retries), all of which panicked.
    pub attempts: u32,
    /// Panic message of the **last** attempt (downcast from `&str` /
    /// `String` payloads; other payload types render as a placeholder).
    pub message: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} failed after {} attempt{}: {}",
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` over every item of `items` on up to `jobs` threads and
/// returns the results in item order (byte-identical to the serial
/// `items.into_iter().enumerate().map(...)` for a pure `f`).
///
/// `jobs <= 1`, or an `items` length of 0 or 1, runs entirely on the
/// caller's thread with no pool at all.
///
/// # Panics
///
/// Re-raises the **first** job panic (original payload preserved) after
/// all workers join; remaining queued jobs are abandoned. Sibling workers
/// never die on poisoned locks — the one real panic is the one observed.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.min(n).max(1);
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Item slots: each job takes its input exactly once and writes its
    // result exactly once. A Mutex per table (not per slot) is plenty at
    // this granularity.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Deal job indices round-robin so each worker starts with a spread of
    // the submission order (neighbouring jobs often have similar cost;
    // dealing avoids one worker drawing all the expensive ones).
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();

    // First panic wins; the stop flag drains the pool without running the
    // remaining jobs.
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let stop = AtomicBool::new(false);

    let run_job = |idx: usize| {
        let item = lock(&inputs[idx]).take().expect("job dispatched twice");
        match catch_unwind(AssertUnwindSafe(|| f(idx, item))) {
            Ok(out) => *lock(&results[idx]) = Some(out),
            Err(payload) => {
                let mut slot = lock(&first_panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
                stop.store(true, Ordering::SeqCst);
            }
        }
    };

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let run_job = &run_job;
            let stop = &stop;
            scope.spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Own work first, front-out (submission order).
                let mine = lock(&queues[w]).pop_front();
                if let Some(idx) = mine {
                    run_job(idx);
                    continue;
                }
                // Dry: steal from the back of the first sibling that still
                // has work.
                let mut stolen = None;
                for delta in 1..workers {
                    let victim = (w + delta) % workers;
                    if let Some(idx) = lock(&queues[victim]).pop_back() {
                        stolen = Some(idx);
                        break;
                    }
                }
                match stolen {
                    Some(idx) => run_job(idx),
                    None => break,
                }
            });
        }
    });

    if let Some(payload) = lock(&first_panic).take() {
        resume_unwind(payload);
    }

    results
        .into_iter()
        .map(|slot| lock(&slot).take().expect("every job ran to completion"))
        .collect()
}

/// One job's outcome under [`par_try_map`]: the terminal result plus any
/// earlier panics a retry recovered from (empty on a clean first attempt
/// and on terminal failure — the terminal [`JobFailure`] already counts
/// every attempt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult<R> {
    /// `Ok` with the job's value, or the failure that exhausted the
    /// retry budget.
    pub result: Result<R, JobFailure>,
    /// Panics of earlier attempts that a later attempt recovered from —
    /// transient faults the caller should report but not fail on.
    pub recovered: Vec<JobFailure>,
}

/// Panic-isolated [`par_map`]: every job runs under `catch_unwind`, a
/// panicking job is retried per the [`RetryPolicy`], and the merged
/// output carries a per-job [`JobResult`] in submission order — a failing
/// job never takes the pool (or its sibling jobs) down with it, and a
/// transiently failing one reports what it recovered from.
///
/// Unlike [`par_map`], `f` borrows its item (`&T`) so a retry can re-run
/// the same input.
///
/// Retries happen on the same worker, after the policy's backoff delay
/// (batch sweeps pass an immediate policy: injected faults and transient
/// I/O races clear by the second attempt; a deterministic logic bug
/// simply exhausts the budget and reports). A bare `u32` still converts
/// into an immediate policy, preserving the historical call shape.
pub fn par_try_map<T, R, F>(
    jobs: usize,
    policy: impl Into<RetryPolicy>,
    items: Vec<T>,
    f: F,
) -> Vec<JobResult<R>>
where
    T: Send + Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let policy = policy.into();
    let run_one = |idx: usize, item: &T| -> JobResult<R> {
        let mut failures = Vec::new();
        for attempt in 1..=policy.attempts() {
            if attempt > 1 {
                let delay = policy.delay_ms(attempt - 1);
                if delay > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
            }
            match catch_unwind(AssertUnwindSafe(|| f(idx, item))) {
                Ok(out) => {
                    return JobResult {
                        result: Ok(out),
                        recovered: failures,
                    }
                }
                Err(payload) => {
                    failures.push(JobFailure {
                        index: idx,
                        attempts: attempt,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
        let last = failures.pop().expect("at least one attempt");
        JobResult {
            result: Err(last),
            recovered: Vec::new(),
        }
    };
    par_map(jobs, items, |idx, item| run_one(idx, &item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_submission_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let items: Vec<u64> = (0..37).collect();
            let out = par_map(jobs, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expected: Vec<u64> = (0..37).map(|x| x * x).collect();
            assert_eq!(out, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map(4, vec![(); 100], |_, ()| {
            counter.fetch_add(1, Ordering::Relaxed)
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn uneven_job_costs_still_merge_in_order() {
        // Early jobs are the slow ones: stealing must not reorder results.
        let out = par_map(4, (0..16u64).collect(), |_, x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x + 1
        });
        assert_eq!(out, (1..=16).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_and_single_item_edge_cases() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, empty, |_, x: u32| x).is_empty());
        assert_eq!(par_map(8, vec![7u32], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "job 3 failed")]
    fn job_panics_propagate_with_original_payload() {
        // The first job's own panic message must survive — not a poisoned-
        // mutex cascade from a sibling worker.
        let _ = par_map(2, (0..8).collect(), |i, _x: i32| {
            if i == 3 {
                panic!("job 3 failed");
            }
            i
        });
    }

    #[test]
    fn panic_stops_remaining_jobs_without_poison_cascade() {
        // With many queued jobs, a panic early in the grid must stop the
        // pool (not run everything) and the caller must see the original
        // message.
        let ran = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(4, (0..1000).collect(), |i, _x: i32| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 10 {
                    panic!("the real failure");
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
                i
            })
        }));
        let payload = caught.expect_err("must propagate");
        assert_eq!(panic_message(payload.as_ref()), "the real failure");
        assert!(
            ran.load(Ordering::Relaxed) < 1000,
            "stop flag should abandon queued jobs"
        );
    }

    #[test]
    fn try_map_isolates_failures_per_job() {
        let out = par_try_map(4, 0, (0..20u64).collect(), |_, &x| {
            if x % 7 == 3 {
                panic!("bad item {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), 20);
        for (i, r) in out.iter().enumerate() {
            let x = i as u64;
            if x % 7 == 3 {
                let err = r.result.as_ref().unwrap_err();
                assert_eq!(err.index, i);
                assert_eq!(err.attempts, 1);
                assert!(err.message.contains(&format!("bad item {x}")), "{err}");
            } else {
                assert_eq!(*r.result.as_ref().unwrap(), x * 2);
                assert!(r.recovered.is_empty());
            }
        }
    }

    #[test]
    fn try_map_retries_transient_failures_and_reports_recovery() {
        // Fails on the first attempt only: one retry must recover it, and
        // the recovered panic must be visible to the caller.
        let first = AtomicUsize::new(0);
        let out = par_try_map(2, 1, vec![10u64, 20, 30], |i, &x| {
            if i == 1 && first.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            x + 1
        });
        let values: Vec<u64> = out.iter().map(|r| *r.result.as_ref().unwrap()).collect();
        assert_eq!(values, vec![11, 21, 31]);
        assert!(out[0].recovered.is_empty());
        assert_eq!(out[1].recovered.len(), 1);
        assert_eq!(out[1].recovered[0].message, "transient");
        assert!(out[2].recovered.is_empty());
    }

    #[test]
    fn try_map_exhausts_retry_budget_and_reports_attempts() {
        let out = par_try_map(1, 2, vec![0u8], |_, _| -> u8 { panic!("always") });
        let err = out[0].result.as_ref().unwrap_err();
        assert_eq!(err.attempts, 3);
        assert_eq!(err.message, "always");
        assert_eq!(err.to_string(), "job 0 failed after 3 attempts: always");
        assert!(
            out[0].recovered.is_empty(),
            "terminal failure recovered nothing"
        );
    }

    #[test]
    fn try_map_is_order_deterministic_across_jobs() {
        let serial = par_try_map(1, 0, (0..50u64).collect(), |i, &x| x + i as u64);
        let parallel = par_try_map(8, 0, (0..50u64).collect(), |i, &x| x + i as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy::backoff(10, 5, 40);
        let delays: Vec<u64> = (1..=7).map(|n| p.delay_ms(n)).collect();
        assert_eq!(delays, vec![5, 10, 20, 40, 40, 40, 40]);
        // Huge retry numbers must saturate at the cap, not overflow.
        assert_eq!(p.delay_ms(200), 40);
        // A cap below the base never shrinks the first delay to zero.
        assert_eq!(RetryPolicy::backoff(3, 8, 2).delay_ms(1), 8);
    }

    #[test]
    fn retry_policy_immediate_has_no_delay() {
        let p = RetryPolicy::immediate(3);
        assert_eq!(p.attempts(), 4);
        for n in 0..6 {
            assert_eq!(p.delay_ms(n), 0);
        }
        assert_eq!(RetryPolicy::none().attempts(), 1);
        assert_eq!(RetryPolicy::from(2), RetryPolicy::immediate(2));
    }

    #[test]
    fn try_map_honours_retry_policy_budget() {
        // budget=2 → exactly 3 attempts, with backoff engaged (tiny delays
        // so the test stays fast) — exhaustion reports every attempt.
        let tries = AtomicUsize::new(0);
        let out = par_try_map(1, RetryPolicy::backoff(2, 1, 2), vec![0u8], |_, _| -> u8 {
            tries.fetch_add(1, Ordering::SeqCst);
            panic!("always")
        });
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        let err = out[0].result.as_ref().unwrap_err();
        assert_eq!(err.attempts, 3);

        // A transient failure under the same policy recovers and reports.
        let first = AtomicUsize::new(0);
        let out = par_try_map(1, RetryPolicy::backoff(2, 1, 2), vec![9u64], |_, &x| {
            if first.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            x
        });
        assert_eq!(*out[0].result.as_ref().unwrap(), 9);
        assert_eq!(out[0].recovered.len(), 1);
    }
}
