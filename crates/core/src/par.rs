//! A dependency-free scoped-thread work-stealing pool.
//!
//! The build environment has no crates.io access, so `rayon` is not an
//! option; this module supplies the narrow slice of it the workspace
//! needs: run N independent jobs on up to `jobs` OS threads and collect
//! the results **in submission order**, so parallel output is byte-
//! identical to a serial run of the same jobs.
//!
//! ### Design
//!
//! Jobs are identified by their index. Indices are dealt round-robin into
//! one deque per worker; a worker pops from the *front* of its own deque
//! (cache-friendly sequential order) and, when it runs dry, steals from
//! the *back* of a sibling's deque — the classic Chase–Lev discipline,
//! here with a `Mutex` per deque instead of lock-free buffers because the
//! pool schedules millisecond-scale simulations, not nanosecond tasks:
//! one uncontended lock per job is noise.
//!
//! Results land in a shared slot table keyed by job index, which is what
//! makes the merge deterministic regardless of which worker ran which job
//! and in which order. Panics in a job propagate: the scope joins all
//! workers, and a panicked worker re-raises on join.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A sensible default worker count: the host's available parallelism,
/// or 1 when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over every item of `items` on up to `jobs` threads and
/// returns the results in item order (byte-identical to the serial
/// `items.into_iter().enumerate().map(...)` for a pure `f`).
///
/// `jobs <= 1`, or an `items` length of 0 or 1, runs entirely on the
/// caller's thread with no pool at all.
///
/// # Panics
///
/// Re-raises the first panic of any job after all workers join.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.min(n).max(1);
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Item slots: each job takes its input exactly once and writes its
    // result exactly once. A Mutex per table (not per slot) is plenty at
    // this granularity.
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Deal job indices round-robin so each worker starts with a spread of
    // the submission order (neighbouring jobs often have similar cost;
    // dealing avoids one worker drawing all the expensive ones).
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();

    let run_job = |idx: usize| {
        let item = inputs[idx]
            .lock()
            .expect("input lock")
            .take()
            .expect("job dispatched twice");
        let out = f(idx, item);
        *results[idx].lock().expect("result lock") = Some(out);
    };

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let run_job = &run_job;
            scope.spawn(move || loop {
                // Own work first, front-out (submission order).
                let mine = queues[w].lock().expect("queue lock").pop_front();
                if let Some(idx) = mine {
                    run_job(idx);
                    continue;
                }
                // Dry: steal from the back of the first sibling that still
                // has work.
                let mut stolen = None;
                for delta in 1..workers {
                    let victim = (w + delta) % workers;
                    if let Some(idx) = queues[victim].lock().expect("queue lock").pop_back() {
                        stolen = Some(idx);
                        break;
                    }
                }
                match stolen {
                    Some(idx) => run_job(idx),
                    None => break,
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every job ran to completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_submission_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let items: Vec<u64> = (0..37).collect();
            let out = par_map(jobs, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expected: Vec<u64> = (0..37).map(|x| x * x).collect();
            assert_eq!(out, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = par_map(4, vec![(); 100], |_, ()| {
            counter.fetch_add(1, Ordering::Relaxed)
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn uneven_job_costs_still_merge_in_order() {
        // Early jobs are the slow ones: stealing must not reorder results.
        let out = par_map(4, (0..16u64).collect(), |_, x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x + 1
        });
        assert_eq!(out, (1..=16).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_and_single_item_edge_cases() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, empty, |_, x: u32| x).is_empty());
        assert_eq!(par_map(8, vec![7u32], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn job_panics_propagate() {
        let _ = par_map(2, (0..8).collect(), |i, _x: i32| {
            if i == 3 {
                panic!("job 3 failed");
            }
            i
        });
    }
}
