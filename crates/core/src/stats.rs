//! Simulation statistics.

use vpr_frontend::{BhtStats, FetchStats};
use vpr_isa::RegClass;
use vpr_mem::{CacheStats, LsqStats};

/// Per-register-class counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassStats {
    /// Physical registers allocated over the run.
    pub allocations: u64,
    /// Physical registers freed over the run.
    pub frees: u64,
    /// Sum over freed registers of (free cycle − allocation cycle): the
    /// paper's "register pressure" integral (§3.1 measures it for one
    /// value chain; Table 2's improvements stem from shrinking it).
    pub hold_cycles: u64,
    /// Sum over measured cycles of the number of allocated registers
    /// (divide by cycles for mean occupancy).
    pub occupancy_sum: u64,
    /// Cycles in which the free list was empty.
    pub empty_free_list_cycles: u64,
    /// Rename stalls caused by this class's free list (conventional
    /// scheme only).
    pub rename_stalls: u64,
}

impl ClassStats {
    /// Mean cycles a physical register stays allocated per produced value.
    pub fn mean_hold(&self) -> f64 {
        if self.frees == 0 {
            0.0
        } else {
            self.hold_cycles as f64 / self.frees as f64
        }
    }
}

/// Counters and derived metrics for one simulation window.
///
/// All counters cover the *measurement window*: [`SimStats::reset_window`]
/// zeroes them after warm-up while the machine keeps its microarchitectural
/// state (caches, predictor, in-flight instructions).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed (architecturally retired) instructions.
    pub committed: u64,
    /// Committed instructions that had a register destination.
    pub committed_with_dest: u64,
    /// Executions begun (issue events), including re-executions.
    pub executions: u64,
    /// Re-executions caused by the virtual-physical write-back scheme
    /// denying a register at completion (paper §3.3: "squashed and sent
    /// back to the instruction queue").
    pub register_reexecutions: u64,
    /// Re-executions caused by memory-ordering violations (PA-8000
    /// disambiguation).
    pub memory_reexecutions: u64,
    /// Completions deferred for lack of a register-file write port.
    pub writeback_port_stalls: u64,
    /// Issue opportunities lost because the NRR rule denied a register at
    /// issue (virtual-physical issue-allocation scheme).
    pub issue_allocation_stalls: u64,
    /// Rename/dispatch stalls: reorder buffer full.
    pub rob_full_stalls: u64,
    /// Rename/dispatch stalls: instruction queue full.
    pub iq_full_stalls: u64,
    /// Rename/dispatch stalls: load/store queue full.
    pub lsq_full_stalls: u64,
    /// Commit stalls: store buffer full.
    pub store_buffer_stalls: u64,
    /// Wrong-path instructions squashed (injection mode only).
    pub wrong_path_squashed: u64,
    /// Registers released before the next writer's commit (the
    /// `ConventionalEarlyRelease` scheme's wins over the baseline).
    pub early_releases: u64,
    /// Per-class register counters.
    pub int: ClassStats,
    /// Per-class register counters.
    pub fp: ClassStats,
    /// Front-end counters (fetch, prediction).
    pub fetch: FetchStats,
    /// Predictor accuracy counters.
    pub bht: BhtStats,
    /// Data-cache counters.
    pub cache: CacheStats,
    /// Disambiguation counters.
    pub lsq: LsqStats,
}

impl SimStats {
    /// Committed instructions per cycle over the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mean number of executions per committed instruction (the paper
    /// reports 3.3 for the write-back scheme at 64 registers).
    pub fn executions_per_commit(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.executions as f64 / self.committed as f64
        }
    }

    /// The per-class counters for `class`.
    pub fn class(&self, class: RegClass) -> &ClassStats {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    /// Mutable per-class counters for `class`.
    pub fn class_mut(&mut self, class: RegClass) -> &mut ClassStats {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Mean allocated physical registers per cycle in `class`.
    pub fn mean_occupancy(&self, class: RegClass) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.class(class).occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Renders every counter as a small, stable JSON object
    /// (`vpr-sim-stats/v1`), for machine-readable experiment artefacts.
    /// Hand-rolled: the build environment has no serde.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let class = |cs: &ClassStats| {
            format!(
                "{{\"allocations\": {}, \"frees\": {}, \"hold_cycles\": {}, \
                 \"occupancy_sum\": {}, \"empty_free_list_cycles\": {}, \
                 \"rename_stalls\": {}}}",
                cs.allocations,
                cs.frees,
                cs.hold_cycles,
                cs.occupancy_sum,
                cs.empty_free_list_cycles,
                cs.rename_stalls
            )
        };
        let mut s = String::new();
        s.push_str("{\"schema\": \"vpr-sim-stats/v1\",\n");
        let _ = writeln!(
            s,
            " \"cycles\": {}, \"committed\": {}, \"committed_with_dest\": {}, \
             \"executions\": {},",
            self.cycles, self.committed, self.committed_with_dest, self.executions
        );
        let _ = writeln!(
            s,
            " \"ipc\": {:.6}, \"executions_per_commit\": {:.6},",
            self.ipc(),
            self.executions_per_commit()
        );
        let _ = writeln!(
            s,
            " \"register_reexecutions\": {}, \"memory_reexecutions\": {}, \
             \"writeback_port_stalls\": {}, \"issue_allocation_stalls\": {},",
            self.register_reexecutions,
            self.memory_reexecutions,
            self.writeback_port_stalls,
            self.issue_allocation_stalls
        );
        let _ = writeln!(
            s,
            " \"rob_full_stalls\": {}, \"iq_full_stalls\": {}, \"lsq_full_stalls\": {}, \
             \"store_buffer_stalls\": {}, \"wrong_path_squashed\": {}, \"early_releases\": {},",
            self.rob_full_stalls,
            self.iq_full_stalls,
            self.lsq_full_stalls,
            self.store_buffer_stalls,
            self.wrong_path_squashed,
            self.early_releases
        );
        let _ = writeln!(s, " \"int\": {},", class(&self.int));
        let _ = writeln!(s, " \"fp\": {},", class(&self.fp));
        let _ = writeln!(
            s,
            " \"fetch\": {{\"fetched\": {}, \"wrong_path_fetched\": {}, \"cond_branches\": {}, \
             \"mispredictions\": {}, \"taken_breaks\": {}, \"stall_cycles\": {}}},",
            self.fetch.fetched,
            self.fetch.wrong_path_fetched,
            self.fetch.cond_branches,
            self.fetch.mispredictions,
            self.fetch.taken_breaks,
            self.fetch.stall_cycles
        );
        let _ = writeln!(
            s,
            " \"bht\": {{\"updates\": {}, \"correct\": {}, \"accuracy\": {:.6}}},",
            self.bht.updates,
            self.bht.correct,
            self.bht.accuracy()
        );
        let _ = writeln!(
            s,
            " \"cache\": {{\"hits\": {}, \"misses\": {}, \"merged_misses\": {}, \
             \"port_retries\": {}, \"mshr_retries\": {}, \"dirty_evictions\": {}, \
             \"miss_ratio\": {:.6}}},",
            self.cache.hits,
            self.cache.misses,
            self.cache.merged_misses,
            self.cache.port_retries,
            self.cache.mshr_retries,
            self.cache.dirty_evictions,
            self.cache.miss_ratio()
        );
        let _ = write!(
            s,
            " \"lsq\": {{\"forwards\": {}, \"speculative_loads\": {}, \"violations\": {}}}}}",
            self.lsq.forwards, self.lsq.speculative_loads, self.lsq.violations
        );
        s.push('\n');
        s
    }

    /// Zeroes every counter (ends the warm-up phase). Microarchitectural
    /// state is unaffected; only the measurement window restarts.
    pub fn reset_window(&mut self) {
        *self = SimStats::default();
    }

    /// Field-wise difference `self − base`, used to express counters over
    /// a measurement window that started at snapshot `base`.
    pub fn minus(&self, base: &SimStats) -> SimStats {
        fn class(a: &ClassStats, b: &ClassStats) -> ClassStats {
            ClassStats {
                allocations: a.allocations - b.allocations,
                frees: a.frees - b.frees,
                hold_cycles: a.hold_cycles - b.hold_cycles,
                occupancy_sum: a.occupancy_sum - b.occupancy_sum,
                empty_free_list_cycles: a.empty_free_list_cycles - b.empty_free_list_cycles,
                rename_stalls: a.rename_stalls - b.rename_stalls,
            }
        }
        SimStats {
            cycles: self.cycles - base.cycles,
            committed: self.committed - base.committed,
            committed_with_dest: self.committed_with_dest - base.committed_with_dest,
            executions: self.executions - base.executions,
            register_reexecutions: self.register_reexecutions - base.register_reexecutions,
            memory_reexecutions: self.memory_reexecutions - base.memory_reexecutions,
            writeback_port_stalls: self.writeback_port_stalls - base.writeback_port_stalls,
            issue_allocation_stalls: self.issue_allocation_stalls - base.issue_allocation_stalls,
            rob_full_stalls: self.rob_full_stalls - base.rob_full_stalls,
            iq_full_stalls: self.iq_full_stalls - base.iq_full_stalls,
            lsq_full_stalls: self.lsq_full_stalls - base.lsq_full_stalls,
            store_buffer_stalls: self.store_buffer_stalls - base.store_buffer_stalls,
            wrong_path_squashed: self.wrong_path_squashed - base.wrong_path_squashed,
            early_releases: self.early_releases - base.early_releases,
            int: class(&self.int, &base.int),
            fp: class(&self.fp, &base.fp),
            fetch: vpr_frontend::FetchStats {
                fetched: self.fetch.fetched - base.fetch.fetched,
                wrong_path_fetched: self.fetch.wrong_path_fetched - base.fetch.wrong_path_fetched,
                cond_branches: self.fetch.cond_branches - base.fetch.cond_branches,
                mispredictions: self.fetch.mispredictions - base.fetch.mispredictions,
                taken_breaks: self.fetch.taken_breaks - base.fetch.taken_breaks,
                stall_cycles: self.fetch.stall_cycles - base.fetch.stall_cycles,
            },
            bht: vpr_frontend::BhtStats {
                updates: self.bht.updates - base.bht.updates,
                correct: self.bht.correct - base.bht.correct,
            },
            cache: vpr_mem::CacheStats {
                hits: self.cache.hits - base.cache.hits,
                misses: self.cache.misses - base.cache.misses,
                merged_misses: self.cache.merged_misses - base.cache.merged_misses,
                port_retries: self.cache.port_retries - base.cache.port_retries,
                mshr_retries: self.cache.mshr_retries - base.cache.mshr_retries,
                dirty_evictions: self.cache.dirty_evictions - base.cache.dirty_evictions,
            },
            lsq: vpr_mem::LsqStats {
                forwards: self.lsq.forwards - base.lsq.forwards,
                speculative_loads: self.lsq.speculative_loads - base.lsq.speculative_loads,
                violations: self.lsq.violations - base.lsq.violations,
            },
        }
    }
}

impl vpr_snap::Snap for ClassStats {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.allocations);
        enc.put_u64(self.frees);
        enc.put_u64(self.hold_cycles);
        enc.put_u64(self.occupancy_sum);
        enc.put_u64(self.empty_free_list_cycles);
        enc.put_u64(self.rename_stalls);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            allocations: dec.take_u64(),
            frees: dec.take_u64(),
            hold_cycles: dec.take_u64(),
            occupancy_sum: dec.take_u64(),
            empty_free_list_cycles: dec.take_u64(),
            rename_stalls: dec.take_u64(),
        }
    }
}

impl vpr_snap::Snap for SimStats {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.cycles);
        enc.put_u64(self.committed);
        enc.put_u64(self.committed_with_dest);
        enc.put_u64(self.executions);
        enc.put_u64(self.register_reexecutions);
        enc.put_u64(self.memory_reexecutions);
        enc.put_u64(self.writeback_port_stalls);
        enc.put_u64(self.issue_allocation_stalls);
        enc.put_u64(self.rob_full_stalls);
        enc.put_u64(self.iq_full_stalls);
        enc.put_u64(self.lsq_full_stalls);
        enc.put_u64(self.store_buffer_stalls);
        enc.put_u64(self.wrong_path_squashed);
        enc.put_u64(self.early_releases);
        self.int.save(enc);
        self.fp.save(enc);
        self.fetch.save(enc);
        self.bht.save(enc);
        self.cache.save(enc);
        self.lsq.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            cycles: dec.take_u64(),
            committed: dec.take_u64(),
            committed_with_dest: dec.take_u64(),
            executions: dec.take_u64(),
            register_reexecutions: dec.take_u64(),
            memory_reexecutions: dec.take_u64(),
            writeback_port_stalls: dec.take_u64(),
            issue_allocation_stalls: dec.take_u64(),
            rob_full_stalls: dec.take_u64(),
            iq_full_stalls: dec.take_u64(),
            lsq_full_stalls: dec.take_u64(),
            store_buffer_stalls: dec.take_u64(),
            wrong_path_squashed: dec.take_u64(),
            early_releases: dec.take_u64(),
            int: ClassStats::load(dec),
            fp: ClassStats::load(dec),
            fetch: vpr_frontend::FetchStats::load(dec),
            bht: vpr_frontend::BhtStats::load(dec),
            cache: vpr_mem::CacheStats::load(dec),
            lsq: vpr_mem::LsqStats::load(dec),
        }
    }
}

/// Harmonic mean of a set of rates (the paper's Table 2 reports the
/// harmonic mean of per-benchmark IPCs).
///
/// Returns 0.0 for an empty slice.
///
/// ```
/// let hm = vpr_core::harmonic_mean(&[1.0, 2.0]);
/// assert!((hm - 4.0 / 3.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum_recip: f64 = values.iter().map(|v| 1.0 / v).sum();
    values.len() as f64 / sum_recip
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn ipc_is_committed_over_cycles() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn executions_per_commit() {
        let s = SimStats {
            committed: 10,
            executions: 33,
            ..SimStats::default()
        };
        assert!((s.executions_per_commit() - 3.3).abs() < 1e-12);
    }

    #[test]
    fn class_accessors_agree() {
        let mut s = SimStats::default();
        s.class_mut(RegClass::Fp).allocations = 7;
        assert_eq!(s.fp.allocations, 7);
        assert_eq!(s.class(RegClass::Fp).allocations, 7);
        assert_eq!(s.class(RegClass::Int).allocations, 0);
    }

    #[test]
    fn mean_hold_and_occupancy() {
        let mut s = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        s.int.frees = 4;
        s.int.hold_cycles = 40;
        s.int.occupancy_sum = 350;
        assert!((s.int.mean_hold() - 10.0).abs() < 1e-12);
        assert!((s.mean_occupancy(RegClass::Int) - 35.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_examples() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[3.0]) - 3.0).abs() < 1e-12);
        // Paper Table 2 conventional column: harmonic mean ≈ 1.23.
        let ipcs = [0.73, 0.98, 1.75, 1.14, 1.37, 1.12, 1.32, 2.16, 1.64];
        let hm = harmonic_mean(&ipcs);
        assert!((hm - 1.23).abs() < 0.01, "paper reports 1.23, got {hm}");
    }

    #[test]
    fn reset_window_zeroes_counters() {
        let mut s = SimStats {
            cycles: 5,
            committed: 5,
            ..SimStats::default()
        };
        s.reset_window();
        assert_eq!(s, SimStats::default());
    }
}
