//! Simulator configuration.

use vpr_isa::{FuKind, OpClass, NUM_LOGICAL_PER_CLASS};
use vpr_mem::CacheConfig;

/// Which register renaming scheme the core uses.
///
/// This is the experimental variable of the paper: the conventional
/// R10000-style scheme allocates a physical register at decode; the two
/// virtual-physical variants delay allocation to the issue or the
/// write-back stage, tracking dependences through storage-free
/// virtual-physical tags in the meantime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameScheme {
    /// Allocate the destination physical register at decode (baseline,
    /// paper §2: MIPS R10000 / DEC 21264 style map table + free list).
    Conventional,
    /// Decode-time allocation plus counter-based **early release** — the
    /// complementary technique the paper cites as eliminating its "second
    /// source of register waste" (§3.1, refs \[8\]/\[10\]): a register frees
    /// as soon as it is superseded, fully read, and its producer has
    /// committed, instead of waiting for the next writer's commit.
    /// Incompatible with wrong-path injection (see
    /// [`rename::EarlyReleaseRenamer`](crate::rename::EarlyReleaseRenamer)).
    ConventionalEarlyRelease,
    /// Virtual-physical registers, physical allocation at **issue**
    /// (paper §3.4). An instruction with a destination may only issue if
    /// the NRR rule grants it a register; no re-executions occur.
    VirtualPhysicalIssue {
        /// Number of reserved registers per class (paper §3.3), in
        /// `1..=physical_regs - 32`.
        nrr: usize,
    },
    /// Virtual-physical registers, physical allocation at **write-back**
    /// (paper §3.2, the headline scheme). A completing instruction denied
    /// a register by the NRR rule is squashed and re-executed.
    VirtualPhysicalWriteback {
        /// Number of reserved registers per class (paper §3.3), in
        /// `1..=physical_regs - 32`.
        nrr: usize,
    },
}

impl RenameScheme {
    /// The NRR parameter, if the scheme has one.
    pub fn nrr(&self) -> Option<usize> {
        match *self {
            RenameScheme::Conventional | RenameScheme::ConventionalEarlyRelease => None,
            RenameScheme::VirtualPhysicalIssue { nrr }
            | RenameScheme::VirtualPhysicalWriteback { nrr } => Some(nrr),
        }
    }

    /// True for either virtual-physical variant.
    pub fn is_virtual_physical(&self) -> bool {
        matches!(
            self,
            RenameScheme::VirtualPhysicalIssue { .. }
                | RenameScheme::VirtualPhysicalWriteback { .. }
        )
    }
}

/// Execution latencies in cycles (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer ALU ops and branch resolution.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide (unpipelined).
    pub int_div: u64,
    /// Effective-address computation for loads/stores.
    pub eff_addr: u64,
    /// Simple FP (add/sub/convert).
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide (unpipelined).
    pub fp_div: u64,
    /// FP square root (unpipelined).
    pub fp_sqrt: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Self {
            int_alu: 1,
            int_mul: 9,
            int_div: 67,
            eff_addr: 1,
            fp_add: 4,
            fp_mul: 4,
            fp_div: 16,
            fp_sqrt: 16,
        }
    }
}

impl Latencies {
    /// The execution latency of an operation class.
    ///
    /// Loads return the effective-address latency only: the cache access
    /// that follows is modelled by the memory system. [`OpClass::Nop`] has
    /// latency zero (it never issues).
    pub fn of(&self, op: OpClass) -> u64 {
        match op {
            OpClass::Nop => 0,
            OpClass::IntAlu | OpClass::BranchCond | OpClass::BranchUncond => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::IntDiv => self.int_div,
            OpClass::Load | OpClass::Store => self.eff_addr,
            OpClass::FpAdd => self.fp_add,
            OpClass::FpMul => self.fp_mul,
            OpClass::FpDiv => self.fp_div,
            OpClass::FpSqrt => self.fp_sqrt,
        }
    }
}

impl vpr_snap::Snap for RenameScheme {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        match *self {
            RenameScheme::Conventional => enc.put_u8(0),
            RenameScheme::ConventionalEarlyRelease => enc.put_u8(1),
            RenameScheme::VirtualPhysicalIssue { nrr } => {
                enc.put_u8(2);
                enc.put_usize(nrr);
            }
            RenameScheme::VirtualPhysicalWriteback { nrr } => {
                enc.put_u8(3);
                enc.put_usize(nrr);
            }
        }
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        match dec.take_u8() {
            0 => RenameScheme::Conventional,
            1 => RenameScheme::ConventionalEarlyRelease,
            2 => RenameScheme::VirtualPhysicalIssue {
                nrr: dec.take_usize(),
            },
            3 => RenameScheme::VirtualPhysicalWriteback {
                nrr: dec.take_usize(),
            },
            other => panic!("snapshot RenameScheme tag {other}: layout mismatch"),
        }
    }
}

impl vpr_snap::Snap for Latencies {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.int_alu);
        enc.put_u64(self.int_mul);
        enc.put_u64(self.int_div);
        enc.put_u64(self.eff_addr);
        enc.put_u64(self.fp_add);
        enc.put_u64(self.fp_mul);
        enc.put_u64(self.fp_div);
        enc.put_u64(self.fp_sqrt);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            int_alu: dec.take_u64(),
            int_mul: dec.take_u64(),
            int_div: dec.take_u64(),
            eff_addr: dec.take_u64(),
            fp_add: dec.take_u64(),
            fp_mul: dec.take_u64(),
            fp_div: dec.take_u64(),
            fp_sqrt: dec.take_u64(),
        }
    }
}

/// Full machine configuration. Build one with [`SimConfig::builder`].
///
/// Defaults reproduce the paper's machine (§4.1): 8-wide fetch/commit,
/// 128-entry reorder buffer, 64 physical registers per file, 2048-entry
/// BHT, a 16 KB lockup-free L1 and the virtual-physical write-back scheme
/// with the maximum NRR (32).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Instructions fetched per cycle (consecutive; paper: 8).
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle (paper: 8).
    pub rename_width: usize,
    /// Maximum instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle (paper: 8).
    pub commit_width: usize,
    /// Reorder buffer entries — the instruction window (paper: 128).
    pub rob_size: usize,
    /// Instruction queue entries.
    pub iq_size: usize,
    /// Load/store queue entries (memory disambiguation window).
    pub lsq_size: usize,
    /// Post-commit store buffer entries.
    pub store_buffer_size: usize,
    /// Physical registers in *each* file (paper sweeps 48, 64, 96).
    pub physical_regs: usize,
    /// Read ports per register file (paper: 16).
    pub regfile_read_ports: u32,
    /// Write ports per register file (paper: 8).
    pub regfile_write_ports: u32,
    /// The renaming scheme under test.
    pub scheme: RenameScheme,
    /// Branch-history-table entries (paper: 2048).
    pub bht_entries: usize,
    /// Data-cache geometry and timing.
    pub cache: CacheConfig,
    /// Functional-unit count per [`FuKind`] (indexed by `FuKind::index()`).
    pub fu_counts: [usize; 6],
    /// Execution latencies.
    pub latencies: Latencies,
    /// Fabricate wrong-path instructions after mispredictions instead of
    /// stalling fetch (exercises recovery; off in the paper's methodology).
    pub wrong_path_injection: bool,
    /// Model the possible one-cycle commit delay of the virtual-physical
    /// scheme caused by the PMT look-up (paper §3.2.2; off by default).
    pub vp_commit_delay: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            fetch_width: 8,
            rename_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_size: 128,
            iq_size: 128,
            lsq_size: 128,
            store_buffer_size: 16,
            physical_regs: 64,
            regfile_read_ports: 16,
            regfile_write_ports: 8,
            scheme: RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            bht_entries: 2048,
            cache: CacheConfig::default(),
            // SimpleInt, ComplexInt, EffAddr, SimpleFp, FpMul, FpDiv
            fu_counts: [3, 2, 3, 3, 2, 2],
            latencies: Latencies::default(),
            wrong_path_injection: false,
            vp_commit_delay: false,
        }
    }
}

impl SimConfig {
    /// Starts building a configuration from the paper's defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }

    /// Number of virtual-physical tags per class: logical registers plus
    /// the window size, which guarantees rename never stalls for tags
    /// (paper §3.2.1).
    pub fn virtual_regs(&self) -> usize {
        NUM_LOGICAL_PER_CLASS + self.rob_size
    }

    /// The maximum legal NRR for this configuration
    /// (`physical_regs - NUM_LOGICAL_PER_CLASS`, paper §3.3).
    pub fn max_nrr(&self) -> usize {
        self.physical_regs - NUM_LOGICAL_PER_CLASS
    }

    /// Number of functional units of `kind`.
    pub fn fu_count(&self, kind: FuKind) -> usize {
        self.fu_counts[kind.index()]
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: widths and
    /// sizes must be positive, there must be more physical than logical
    /// registers, and NRR must lie in `1..=max_nrr`.
    pub fn validate(&self) -> Result<(), String> {
        macro_rules! positive {
            ($($f:ident),+) => {$(
                if self.$f == 0 {
                    return Err(format!(concat!(stringify!($f), " must be positive")));
                }
            )+};
        }
        positive!(
            fetch_width,
            rename_width,
            issue_width,
            commit_width,
            rob_size,
            iq_size,
            lsq_size,
            store_buffer_size,
            bht_entries
        );
        if self.regfile_read_ports == 0 || self.regfile_write_ports == 0 {
            return Err("register files need read and write ports".into());
        }
        if self.physical_regs <= NUM_LOGICAL_PER_CLASS {
            return Err(format!(
                "need more than {NUM_LOGICAL_PER_CLASS} physical registers per class, got {}",
                self.physical_regs
            ));
        }
        if self.fu_counts.iter().all(|&c| c == 0) {
            return Err("at least one functional unit is required".into());
        }
        if let Some(nrr) = self.scheme.nrr() {
            if nrr == 0 || nrr > self.max_nrr() {
                return Err(format!("NRR must be in 1..={}, got {nrr}", self.max_nrr()));
            }
        }
        if !self.bht_entries.is_power_of_two() {
            return Err("bht_entries must be a power of two".into());
        }
        if self.scheme == RenameScheme::ConventionalEarlyRelease && self.wrong_path_injection {
            return Err(
                "early release needs checkpointed read counters to survive wrong-path \
                 squashes; disable wrong_path_injection"
                    .into(),
            );
        }
        Ok(())
    }
}

impl vpr_snap::Snap for SimConfig {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_usize(self.fetch_width);
        enc.put_usize(self.rename_width);
        enc.put_usize(self.issue_width);
        enc.put_usize(self.commit_width);
        enc.put_usize(self.rob_size);
        enc.put_usize(self.iq_size);
        enc.put_usize(self.lsq_size);
        enc.put_usize(self.store_buffer_size);
        enc.put_usize(self.physical_regs);
        enc.put_u32(self.regfile_read_ports);
        enc.put_u32(self.regfile_write_ports);
        self.scheme.save(enc);
        enc.put_usize(self.bht_entries);
        self.cache.save(enc);
        self.fu_counts.save(enc);
        self.latencies.save(enc);
        enc.put_bool(self.wrong_path_injection);
        enc.put_bool(self.vp_commit_delay);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            fetch_width: dec.take_usize(),
            rename_width: dec.take_usize(),
            issue_width: dec.take_usize(),
            commit_width: dec.take_usize(),
            rob_size: dec.take_usize(),
            iq_size: dec.take_usize(),
            lsq_size: dec.take_usize(),
            store_buffer_size: dec.take_usize(),
            physical_regs: dec.take_usize(),
            regfile_read_ports: dec.take_u32(),
            regfile_write_ports: dec.take_u32(),
            scheme: RenameScheme::load(dec),
            bht_entries: dec.take_usize(),
            cache: CacheConfig::load(dec),
            fu_counts: <[usize; 6]>::load(dec),
            latencies: Latencies::load(dec),
            wrong_path_injection: dec.take_bool(),
            vp_commit_delay: dec.take_bool(),
        }
    }
}

/// Builder for [`SimConfig`] (non-consuming, per the Rust API guidelines).
///
/// ```
/// use vpr_core::{RenameScheme, SimConfig};
/// let cfg = SimConfig::builder()
///     .scheme(RenameScheme::Conventional)
///     .physical_regs(48)
///     .build();
/// assert_eq!(cfg.physical_regs, 48);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Starts from the paper's default machine.
    pub fn new() -> Self {
        Self {
            config: SimConfig::default(),
        }
    }

    /// Sets the renaming scheme.
    pub fn scheme(&mut self, scheme: RenameScheme) -> &mut Self {
        self.config.scheme = scheme;
        self
    }

    /// Sets the number of physical registers per file.
    pub fn physical_regs(&mut self, n: usize) -> &mut Self {
        self.config.physical_regs = n;
        self
    }

    /// Sets the reorder-buffer (instruction window) size; the instruction
    /// and load/store queues are sized to match unless set explicitly
    /// afterwards.
    pub fn rob_size(&mut self, n: usize) -> &mut Self {
        self.config.rob_size = n;
        self.config.iq_size = n;
        self.config.lsq_size = n;
        self
    }

    /// Sets all of fetch, rename, issue and commit width.
    pub fn width(&mut self, w: usize) -> &mut Self {
        self.config.fetch_width = w;
        self.config.rename_width = w;
        self.config.issue_width = w;
        self.config.commit_width = w;
        self
    }

    /// Sets the data-cache configuration.
    pub fn cache(&mut self, cache: CacheConfig) -> &mut Self {
        self.config.cache = cache;
        self
    }

    /// Sets the cache miss penalty (Table 2 also reports a 20-cycle
    /// variant).
    pub fn miss_penalty(&mut self, cycles: u64) -> &mut Self {
        self.config.cache.miss_penalty = cycles;
        self
    }

    /// Sets execution latencies.
    pub fn latencies(&mut self, latencies: Latencies) -> &mut Self {
        self.config.latencies = latencies;
        self
    }

    /// Sets the functional-unit count for one kind.
    pub fn fu_count(&mut self, kind: FuKind, count: usize) -> &mut Self {
        self.config.fu_counts[kind.index()] = count;
        self
    }

    /// Enables wrong-path injection after mispredictions.
    pub fn wrong_path_injection(&mut self, enabled: bool) -> &mut Self {
        self.config.wrong_path_injection = enabled;
        self
    }

    /// Models the +1-cycle PMT commit delay of the VP schemes.
    pub fn vp_commit_delay(&mut self, enabled: bool) -> &mut Self {
        self.config.vp_commit_delay = enabled;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent; see
    /// [`SimConfig::validate`]. Use [`SimConfigBuilder::try_build`] for a
    /// fallible version.
    pub fn build(&self) -> SimConfig {
        self.try_build().expect("invalid simulator configuration")
    }

    /// Finishes the build, returning the validation error instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// See [`SimConfig::validate`].
    pub fn try_build(&self) -> Result<SimConfig, String> {
        self.config.validate()?;
        Ok(self.config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.physical_regs, 64);
        assert_eq!(c.bht_entries, 2048);
        assert_eq!(c.cache.miss_penalty, 50);
        assert_eq!(c.fu_counts, [3, 2, 3, 3, 2, 2]);
        assert_eq!(c.max_nrr(), 32);
        assert_eq!(c.virtual_regs(), 32 + 128);
        c.validate().expect("default config is valid");
    }

    #[test]
    fn latency_table_matches_paper() {
        let l = Latencies::default();
        assert_eq!(l.of(OpClass::IntAlu), 1);
        assert_eq!(l.of(OpClass::IntMul), 9);
        assert_eq!(l.of(OpClass::IntDiv), 67);
        assert_eq!(l.of(OpClass::FpAdd), 4);
        assert_eq!(l.of(OpClass::FpMul), 4);
        assert_eq!(l.of(OpClass::FpDiv), 16);
        assert_eq!(l.of(OpClass::Load), 1, "EA portion only");
    }

    #[test]
    fn builder_round_trip() {
        let c = SimConfig::builder()
            .scheme(RenameScheme::VirtualPhysicalIssue { nrr: 8 })
            .physical_regs(96)
            .rob_size(64)
            .width(4)
            .build();
        assert_eq!(c.scheme.nrr(), Some(8));
        assert_eq!(c.physical_regs, 96);
        assert_eq!(c.rob_size, 64);
        assert_eq!(c.iq_size, 64);
        assert_eq!(c.fetch_width, 4);
    }

    #[test]
    fn nrr_out_of_range_rejected() {
        let err = SimConfig::builder()
            .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 33 })
            .try_build()
            .unwrap_err();
        assert!(err.contains("NRR"), "{err}");
        let err = SimConfig::builder()
            .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 0 })
            .try_build()
            .unwrap_err();
        assert!(err.contains("NRR"), "{err}");
    }

    #[test]
    fn too_few_physical_regs_rejected() {
        let err = SimConfig::builder()
            .physical_regs(32)
            .try_build()
            .unwrap_err();
        assert!(err.contains("physical"), "{err}");
    }

    #[test]
    fn scheme_predicates() {
        assert!(!RenameScheme::Conventional.is_virtual_physical());
        assert!(RenameScheme::VirtualPhysicalIssue { nrr: 1 }.is_virtual_physical());
        assert_eq!(RenameScheme::Conventional.nrr(), None);
    }

    #[test]
    fn zero_width_rejected() {
        let mut b = SimConfig::builder();
        b.width(0);
        assert!(b.try_build().is_err());
    }
}
