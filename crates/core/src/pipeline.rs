//! The cycle-accurate out-of-order pipeline.
//!
//! One [`Processor`] simulates the paper's machine (§4.1): 8-wide fetch,
//! rename, issue and commit around a 128-entry reorder buffer, with the
//! configured renaming scheme deciding *when* destination physical
//! registers are claimed:
//!
//! | scheme | claim point | out-of-registers behaviour |
//! |--------|-------------|----------------------------|
//! | conventional | rename | rename stalls in order |
//! | VP, issue allocation | issue | instruction waits in the queue |
//! | VP, write-back allocation | completion | instruction squashed, re-executed |
//!
//! Intra-cycle phase order is commit → memory retries → completion events
//! → issue → rename/dispatch → fetch → store-buffer drain. Results
//! broadcast in the completion phase can therefore feed an issue in the
//! same cycle (full bypass), and a value produced with latency *L* reaches
//! a dependent *L* cycles after issue.
//!
//! ## Kernel architecture (simulator throughput)
//!
//! The cycle loop is engineered so that steady-state simulation performs
//! no allocation and no comparison-tree walks:
//!
//! * **Calendar event queue** — completion/EA/memory-data events live in a
//!   [`CalendarQueue`] with a [`EVENT_HORIZON`]-cycle ring (power of two,
//!   chosen to cover every latency the machine can schedule: the longest
//!   functional-unit latency and the cache miss path with bus queueing).
//!   Schedule and drain are O(1); drained buckets keep their capacity.
//!   Events beyond the horizon — impossible on the stock configuration,
//!   possible with exotic user latencies — spill to an overflow map
//!   without loss of correctness.
//! * **Indexed instruction-queue wakeup** — the [`Iq`] keeps
//!   per-`(RegClass, tag)` consumer lists, so a result broadcast touches
//!   only the operands actually waiting on that tag, and an age-sorted
//!   ready index so issue selection iterates exactly the eligible
//!   entries, oldest first, without allocating (see `iq.rs`).
//! * **Next-event cycle governor** — before running any phase, the step
//!   loop computes the earliest cycle at which *anything* can change,
//!   from each subsystem's half of the `next_activity()` contract
//!   (calendar-queue head, earliest functional-unit release, earliest
//!   MSHR fill, fetch-stall expiry, IQ ready index + NRR allocation
//!   gates; see `docs/kernel.md`), and jumps straight to it instead of
//!   ticking through dead cycles one by one — the common shape of a
//!   window stalled behind a 50-cycle miss, or a store buffer pinned on
//!   a full MSHR file. The per-cycle statistics a stalled machine keeps
//!   accumulating (the blocking rename-stall counter, fetch stall
//!   cycles, bounced-probe retries, register-occupancy integrals) are
//!   constant during quiescence, so the skip replays them in closed
//!   form; simulated behaviour stays **bit-identical** to the
//!   cycle-by-cycle kernel ([`Processor::step_single_cycle`]), which
//!   `crates/bench/tests/cycle_exact_golden.rs` and the governor
//!   equivalence proptest pin down.

use crate::config::{RenameScheme, SimConfig};
use crate::event_queue::CalendarQueue;
use crate::fu::FuPool;
use crate::iq::{Iq, IqEntry};
use crate::rename::{
    ConventionalRenamer, EarlyReleaseRenamer, PhysReg, RenamedDest, SrcState, VpRenamer,
};
use crate::rob::{MemPhase, Rob, RobEntry};
use crate::stats::SimStats;
use std::collections::VecDeque;
use vpr_frontend::{BranchHistoryTable, FetchUnit, FetchedInst};
use vpr_isa::{InstStream, OpClass, RegClass};
use vpr_mem::{
    AccessKind, AccessOutcome, DataCache, LoadDisposition, Lsq, PendingStore, StoreBuffer,
};
use vpr_obs::{NoObs, PipeObserver};

/// Ring size of the calendar event queue, in cycles. Must exceed the
/// longest deterministically-scheduled delay: the unpipelined integer
/// divide (67 cycles) and the cache miss path (miss penalty plus bus
/// queueing) both fit comfortably; anything larger (user-configured
/// latencies) falls back to the queue's overflow map.
const EVENT_HORIZON: usize = 256;

/// Outcome of presenting a waiting load to the cache (`probe_cache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheProbe {
    /// Data return scheduled, or the retry record is stale.
    Settled,
    /// Bounced: all MSHRs busy (persists until a fill completes).
    BouncedNoMshr,
    /// Bounced: out of ports this cycle (clears next cycle).
    BouncedNoPort,
}

/// Scheduled pipeline events, keyed by the cycle they fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Execution finishes (non-memory ops; also deferred write-backs).
    Complete { seq: u64, gen: u64 },
    /// Effective-address computation finishes (loads and stores).
    EaDone { seq: u64, gen: u64 },
    /// Load data arrives (cache or forward).
    MemData { seq: u64, gen: u64 },
}

impl Event {
    fn seq(&self) -> u64 {
        match *self {
            Event::Complete { seq, .. }
            | Event::EaDone { seq, .. }
            | Event::MemData { seq, .. } => seq,
        }
    }
}

impl vpr_snap::Snap for Event {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        let (tag, seq, gen) = match *self {
            Event::Complete { seq, gen } => (0u8, seq, gen),
            Event::EaDone { seq, gen } => (1, seq, gen),
            Event::MemData { seq, gen } => (2, seq, gen),
        };
        enc.put_u8(tag);
        enc.put_u64(seq);
        enc.put_u64(gen);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        let tag = dec.take_u8();
        let seq = dec.take_u64();
        let gen = dec.take_u64();
        match tag {
            0 => Event::Complete { seq, gen },
            1 => Event::EaDone { seq, gen },
            2 => Event::MemData { seq, gen },
            other => panic!("snapshot Event tag {other}: layout mismatch"),
        }
    }
}

// One renamer lives per processor; the size spread between variants is
// irrelevant next to the indirection a `Box` would add on every rename.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Renamer {
    Conventional(ConventionalRenamer),
    EarlyRelease(EarlyReleaseRenamer),
    Vp(VpRenamer),
}

/// Which per-cycle stall counter a fully-quiescent machine keeps
/// incrementing while it waits (see `Processor::try_fast_forward`): the
/// skip must replay exactly the increments the skipped cycles would have
/// performed.
#[derive(Debug, Clone, Copy)]
enum IdleTick {
    /// Nothing ticks (front end drained, rename idle).
    Nothing,
    /// Fetch stalls every cycle (unresolved branch / redirect shadow).
    FetchStall,
    /// Rename blocked: reorder buffer full.
    RobFull,
    /// Rename blocked: instruction queue full.
    IqFull,
    /// Rename blocked: load/store queue full.
    LsqFull,
    /// Rename blocked: this class's free list is empty.
    FreeList(RegClass),
}

/// A cycle-accurate, trace-driven out-of-order processor.
///
/// Drive it with [`Processor::run`] (commit budget),
/// [`Processor::run_cycles`], or [`Processor::run_to_completion`]; read
/// results with [`Processor::stats`]. A warm-up window can be excluded
/// from measurement with [`Processor::reset_window`].
///
/// ```
/// use vpr_core::{Processor, RenameScheme, SimConfig};
/// use vpr_isa::{DynInst, Inst, LogicalReg, OpClass};
///
/// // A tiny trace: two dependent integer adds.
/// let trace = vec![
///     DynInst::new(0x0, Inst::new(OpClass::IntAlu)
///         .with_dest(LogicalReg::int(1)).with_src1(LogicalReg::int(2))),
///     DynInst::new(0x4, Inst::new(OpClass::IntAlu)
///         .with_dest(LogicalReg::int(3)).with_src1(LogicalReg::int(1))),
/// ];
/// let cfg = SimConfig::builder().scheme(RenameScheme::Conventional).build();
/// let mut cpu = Processor::new(cfg, trace.into_iter());
/// let stats = cpu.run_to_completion();
/// assert_eq!(stats.committed, 2);
/// ```
///
/// ## Observation
///
/// The second type parameter is a [`PipeObserver`] receiving lifecycle
/// hooks (fetch, rename, issue, complete, commit, squash, VP allocation
/// events, occupancy samples). It defaults to [`NoObs`]; every hook site
/// is guarded by the observer's `ENABLED` associated constant, so the
/// default monomorphises to exactly the unobserved pipeline. Observers
/// receive copies of primitive values and cannot influence simulation —
/// `SimStats` are bit-identical with any observer attached. The observer
/// is **not** part of the snapshot format ([`Processor::snapshot`]
/// ignores it; restoring starts a fresh observer).
#[derive(Debug)]
pub struct Processor<S, O = NoObs> {
    config: SimConfig,
    trace: S,
    fetch: FetchUnit,
    bht: BranchHistoryTable,
    cache: DataCache,
    lsq: Lsq,
    store_buffer: StoreBuffer,
    renamer: Renamer,
    rob: Rob,
    iq: Iq,
    fus: FuPool,
    events: CalendarQueue<Event>,
    fetch_buffer: VecDeque<FetchedInst>,
    /// Loads waiting for a cache port / MSHR, retried every cycle.
    /// Kept sorted ascending (retry order = age order).
    cache_retry: Vec<u64>,
    /// `(blocked count, cache state token)` from the last retry sweep in
    /// which every pending load bounced for lack of an MSHR — see
    /// `mem_retry_phase`.
    retry_memo: Option<(u64, (u64, u64))>,
    /// Issue-stage register allocations to record after the issue loop
    /// (separated to satisfy borrow rules during queue iteration).
    pending_issue_allocs: Vec<(u64, PhysReg)>,
    /// Reusable buffer for the events drained each cycle.
    event_scratch: Vec<Event>,
    /// Reusable list of sequence numbers selected by the issue stage.
    issued_scratch: Vec<u64>,
    /// In-flight instructions with a register destination, per class, in
    /// program order — the O(log n) replacement for scanning the reorder
    /// buffer on every commit to find the NRR pointer's next entrant.
    dest_seqs: [VecDeque<u64>; 2],
    cycle: u64,
    next_seq: u64,
    /// Monotonic execution-generation counter; entries and events carry a
    /// generation so stale events (from squashed executions, or from
    /// recycled sequence numbers after wrong-path recovery) are dropped.
    gen_counter: u64,
    /// Write-back ports consumed this cycle, per register class.
    wb_ports_used: [u32; 2],
    /// Cycle of the most recent commit (deadlock watchdog).
    last_commit_cycle: u64,
    raw: SimStats,
    base: SimStats,
    /// Lifecycle observer (never serialised; [`NoObs`] costs nothing).
    obs: O,
}

impl<S: InstStream> Processor<S> {
    /// Builds an unobserved processor over `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`SimConfig::validate`]).
    pub fn new(config: SimConfig, trace: S) -> Self {
        Self::with_observer(config, trace, NoObs)
    }
}

impl<S: InstStream, O: PipeObserver> Processor<S, O> {
    /// Builds a processor over `trace` with lifecycle observer `obs`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`SimConfig::validate`]).
    pub fn with_observer(config: SimConfig, trace: S, obs: O) -> Self {
        config.validate().expect("invalid simulator configuration");
        let renamer = match config.scheme {
            RenameScheme::Conventional => {
                Renamer::Conventional(ConventionalRenamer::new(config.physical_regs))
            }
            RenameScheme::ConventionalEarlyRelease => {
                Renamer::EarlyRelease(EarlyReleaseRenamer::new(config.physical_regs))
            }
            RenameScheme::VirtualPhysicalIssue { nrr }
            | RenameScheme::VirtualPhysicalWriteback { nrr } => Renamer::Vp(VpRenamer::new(
                config.physical_regs,
                config.virtual_regs(),
                nrr,
            )),
        };
        Self {
            fetch: FetchUnit::new(config.fetch_width)
                .with_wrong_path_injection(config.wrong_path_injection),
            bht: BranchHistoryTable::new(config.bht_entries),
            cache: DataCache::new(config.cache),
            lsq: Lsq::new(config.lsq_size),
            store_buffer: StoreBuffer::new(config.store_buffer_size),
            rob: Rob::new(config.rob_size),
            iq: Iq::new(config.iq_size),
            fus: FuPool::new(&config),
            events: CalendarQueue::with_horizon(EVENT_HORIZON),
            fetch_buffer: VecDeque::with_capacity(config.fetch_width * 2),
            cache_retry: Vec::new(),
            retry_memo: None,
            pending_issue_allocs: Vec::new(),
            event_scratch: Vec::new(),
            issued_scratch: Vec::new(),
            dest_seqs: [VecDeque::new(), VecDeque::new()],
            cycle: 0,
            next_seq: 0,
            gen_counter: 0,
            wb_ports_used: [0, 0],
            last_commit_cycle: 0,
            raw: SimStats::default(),
            base: SimStats::default(),
            renamer,
            config,
            trace,
            obs,
        }
    }

    /// The attached lifecycle observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// Mutable access to the observer (e.g. to reset its window).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// Consumes the processor, returning the observer and its
    /// accumulated observations.
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Counters for the current measurement window.
    pub fn stats(&self) -> SimStats {
        self.absolute().minus(&self.base)
    }

    /// Ends the warm-up phase: subsequent [`Processor::stats`] cover only
    /// what happens from here on. Microarchitectural state (caches,
    /// predictor, in-flight instructions) is untouched.
    pub fn reset_window(&mut self) {
        self.base = self.absolute();
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True when the trace is exhausted and the machine has drained.
    pub fn is_done(&self) -> bool {
        self.fetch.is_done()
            && self.fetch_buffer.is_empty()
            && self.rob.is_empty()
            && self.store_buffer.is_empty()
    }

    /// Runs until `commits` instructions have committed inside the current
    /// measurement window (or the trace drains). Returns the window stats.
    ///
    /// # Panics
    ///
    /// Panics if the machine stops committing for 100 000 cycles — the
    /// renaming schemes are deadlock-free by construction, so a stall that
    /// long is a logic error worth crashing loudly on.
    pub fn run(&mut self, commits: u64) -> SimStats {
        // Loop on the raw counter: rebuilding full window stats (a deep
        // clone) every cycle would dominate the cycle loop itself.
        let target = self.raw.committed + commits;
        while self.raw.committed < target && !self.is_done() {
            self.step();
        }
        self.stats()
    }

    /// [`Processor::run`] with per-phase host-cost attribution (see
    /// [`crate::profile`]): architecturally identical — same commit
    /// target, same statistics — but every active cycle steps through
    /// [`Processor::step_profiled`], accumulating into `prof`.
    pub fn run_profiled(
        &mut self,
        commits: u64,
        prof: &mut crate::profile::StageProfile,
    ) -> SimStats {
        let target = self.raw.committed + commits;
        while self.raw.committed < target && !self.is_done() {
            self.step_profiled(prof);
        }
        self.stats()
    }

    /// Runs for `n` cycles (or until the trace drains).
    pub fn run_cycles(&mut self, n: u64) -> SimStats {
        let target = self.cycle + n;
        while self.cycle < target && !self.is_done() {
            // Cap idle fast-forwarding at the target so the machine stops
            // on exactly the requested cycle, mid-idle-stretch included.
            self.step_limited(target);
        }
        self.stats()
    }

    /// Runs until the trace is exhausted and the pipeline drains.
    pub fn run_to_completion(&mut self) -> SimStats {
        while !self.is_done() {
            self.step();
        }
        self.stats()
    }

    /// Committed instructions since construction, warm-up included — the
    /// absolute stream position checkpoints are keyed by (unlike
    /// [`Processor::stats`], which covers only the current measurement
    /// window).
    pub fn absolute_committed(&self) -> u64 {
        self.raw.committed
    }

    /// Runs until the **absolute** committed count
    /// ([`Processor::absolute_committed`]) reaches `target` (or the trace
    /// drains); a no-op when the machine is already at or past it. Like
    /// [`Processor::run`], the achieved count may overshoot the target by
    /// up to commit-width − 1. Returns the window stats.
    pub fn run_to_commit(&mut self, target: u64) -> SimStats {
        while self.raw.committed < target && !self.is_done() {
            self.step();
        }
        self.stats()
    }

    /// The instruction stream driving this processor.
    pub fn trace(&self) -> &S {
        &self.trace
    }

    /// Runs `warmup` commits and then resets the measurement window: the
    /// standard skip-then-measure methodology (the paper skips 100 M and
    /// measures 50 M instructions).
    pub fn warm_up(&mut self, warmup: u64) {
        self.run(warmup);
        self.reset_window();
    }

    /// Re-targets a virtual-physical machine to a different NRR
    /// (§3.3 reserved-register count) **in place**, without disturbing
    /// any other machine state.
    ///
    /// The NRR is purely an allocation-*policy* parameter: it decides
    /// which future allocations are granted, but no map table, free
    /// list, binding or in-flight instruction encodes it. The reserved
    /// counters themselves are a pure function of the in-flight
    /// destination window (the same invariant wrong-path recovery's
    /// [`NrrState`](crate::NrrState) rebuild relies on), so re-deriving
    /// them under the new NRR yields exactly the state an uninterrupted
    /// run under that NRR would have *for this window* — re-targeting to
    /// the machine's current NRR is a bit-exact no-op.
    ///
    /// This is the cross-configuration checkpoint-reuse hook: fig4/fig5
    /// NRR sweeps restore one shared warm pass per (benchmark, seed,
    /// scheme family) and re-price only the NRR-dependent state, instead
    /// of paying one serial pass per NRR value (`vpr-bench`'s
    /// `checkpoints` module).
    ///
    /// Re-targeting is only sound **downward** (or to the same value):
    /// the §3.3 invariant `free ≥ NRR − Used` survives shrinking the
    /// reserved set — dropping a reserved slot drops at most one
    /// allocated one — but a machine warmed under a small NRR may hold
    /// too few free registers to honour a larger reserved set's
    /// guarantee, which would corrupt the deadlock-freedom argument.
    /// Shared warm passes therefore run at the *maximum* NRR
    /// (`vpr-bench`'s `group_config`).
    ///
    /// # Panics
    ///
    /// Panics if the scheme has no NRR (not virtual-physical), `nrr` is
    /// outside `1..=max_nrr` ([`SimConfig::max_nrr`]), or `nrr` exceeds
    /// the machine's current NRR (upward re-targets are unsound, above).
    pub fn retarget_nrr(&mut self, nrr: usize) {
        let current =
            self.config.scheme.nrr().unwrap_or_else(|| {
                panic!("retarget_nrr: scheme {:?} has no NRR", self.config.scheme)
            });
        assert!(
            nrr <= current,
            "retarget_nrr: cannot raise NRR {current} to {nrr} (the free-register \
             invariant only survives downward re-targets)"
        );
        self.config.scheme = match self.config.scheme {
            RenameScheme::VirtualPhysicalIssue { .. } => RenameScheme::VirtualPhysicalIssue { nrr },
            RenameScheme::VirtualPhysicalWriteback { .. } => {
                RenameScheme::VirtualPhysicalWriteback { nrr }
            }
            other => panic!("retarget_nrr: scheme {other:?} has no NRR"),
        };
        self.config
            .validate()
            .expect("re-targeted configuration is invalid");
        let Renamer::Vp(_) = &self.renamer else {
            unreachable!("a VP scheme implies the VP renamer")
        };
        // The per-class program-order dest index names exactly the
        // in-flight destination-having instructions, oldest first — the
        // same rebuild walk wrong-path recovery uses.
        let windows = [RegClass::Int, RegClass::Fp].map(|class| {
            self.dest_seqs[class.index()]
                .iter()
                .map(|&seq| {
                    let d = self.rob.dest(seq).expect("indexed on dest");
                    (seq, d.preg.is_some())
                })
                .collect::<Vec<(u64, bool)>>()
        });
        let Renamer::Vp(vp) = &mut self.renamer else {
            unreachable!("checked above")
        };
        vp.retarget_nrr(nrr);
        for (class, survivors) in [RegClass::Int, RegClass::Fp].into_iter().zip(windows) {
            vp.nrr_rebuild(class, survivors.into_iter());
        }
    }

    /// Replaces the branch predictor and data cache with externally
    /// warmed instances — the sampling harness's *functional warm-up*
    /// injection point: it replays the fast-forwarded instruction stream
    /// through a predictor and a functional cache
    /// ([`DataCache::warm_touch`]), then hands them to a fresh processor
    /// so a detailed interval starts from warm state.
    ///
    /// # Panics
    ///
    /// Panics if the machine has already simulated a cycle, or if the
    /// replacement components disagree with the configuration's geometry.
    pub fn preheat(&mut self, bht: BranchHistoryTable, cache: DataCache) {
        assert_eq!(
            self.cycle, 0,
            "preheat must happen before the first simulated cycle"
        );
        assert_eq!(bht.entries(), self.config.bht_entries, "BHT geometry");
        assert_eq!(*cache.config(), self.config.cache, "cache geometry");
        self.bht = bht;
        self.cache = cache;
    }

    /// Advances the machine by one *active* cycle. The next-event cycle
    /// governor first computes the earliest cycle at which *anything* can
    /// change (the governor, `governor_skip`); if that lies in the future,
    /// the cycle counter jumps straight to it (statistics included,
    /// bit-identically), so `cycle()` may advance by more than one.
    pub fn step(&mut self) {
        self.step_limited(u64::MAX);
    }

    /// Advances the machine by exactly one cycle, running every pipeline
    /// phase — the **governor-free reference mode**. Behaviour is
    /// bit-identical to [`Processor::step`] by the governor's closed-form
    /// replay contract, which `tests/governor_equivalence.rs` pins down;
    /// this mode exists for that suite (and for debugging the skip
    /// machinery), not for speed.
    pub fn step_single_cycle(&mut self) {
        self.run_phases();
    }

    /// [`Processor::step`] with the governor's jump capped at `max_cycle`
    /// (used by [`Processor::run_cycles`] to stop exactly on a cycle
    /// budget).
    fn step_limited(&mut self, max_cycle: u64) {
        self.governor_skip(max_cycle);
        if self.cycle >= max_cycle {
            // The jump was capped by the cycle budget: the machine now
            // stands *at* the budget boundary mid-idle-stretch, with the
            // skipped cycles' counters already replayed. Executing the
            // phases here would simulate one cycle past the budget.
            return;
        }
        self.run_phases();
    }

    /// One full cycle of pipeline phases at the current cycle.
    fn run_phases(&mut self) {
        let now = self.cycle;
        self.wb_ports_used = [0, 0];
        self.commit_phase(now);
        // Committed stores drain right after commit so they claim cache
        // ports ahead of demand loads: the commit path must always make
        // progress, or re-executing loads could starve it (livelock).
        let drained_before = if O::ENABLED {
            self.store_buffer.drained()
        } else {
            0
        };
        self.store_buffer.tick(now, &mut self.cache);
        if O::ENABLED {
            self.obs.on_store_drain(
                self.store_buffer.drained() - drained_before,
                self.store_buffer.len(),
            );
        }
        self.mem_retry_phase(now);
        self.event_phase(now);
        self.issue_phase(now);
        self.rename_phase(now);
        self.fetch_phase(now);
        if O::ENABLED {
            // Change-driven occupancy sampling: every *active* cycle is
            // sampled; the governor reports skipped quiescent stretches
            // through `on_idle_skip` instead of replaying samples.
            self.obs.on_occupancy(
                self.rob.len(),
                self.iq.len(),
                self.events.len(),
                self.store_buffer.len(),
                self.cache.inflight_fills(),
            );
        }
        self.cycle = now + 1;
        assert!(
            self.rob.is_empty() || now - self.last_commit_cycle < 100_000,
            "no commit for 100000 cycles at cycle {now}: head={:?} scheme={:?}",
            self.rob
                .head_hot()
                .map(|h| (self.rob.head_seq(), h.op, h.completed(), h.mem_phase)),
            self.config.scheme,
        );
    }

    /// [`Processor::step`] with per-phase host-cost attribution: every
    /// phase is wrapped in a wall-clock measurement and an event count,
    /// accumulated into `prof`. Architectural behaviour is bit-identical
    /// to [`Processor::step`] — the phases run in the same order on the
    /// same state; only the timing reads are added (pinned by
    /// `crates/bench/tests/profile_smoke.rs`).
    ///
    /// KEEP IN SYNC with `Processor::step_limited` / `run_phases`: a
    /// phase added there must be wrapped here, or its cost silently lands
    /// in the neighbouring stage's attribution.
    pub fn step_profiled(&mut self, prof: &mut crate::profile::StageProfile) {
        use crate::profile::Stage;
        use std::time::Instant;

        let t = Instant::now();
        let cycle_before = self.cycle;
        self.governor_skip(u64::MAX);
        prof.record(Stage::Governor, t.elapsed(), self.cycle - cycle_before);

        let now = self.cycle;
        self.wb_ports_used = [0, 0];

        let t = Instant::now();
        let committed_before = self.raw.committed;
        self.commit_phase(now);
        prof.record(
            Stage::Commit,
            t.elapsed(),
            self.raw.committed - committed_before,
        );

        let t = Instant::now();
        let drained_before = self.store_buffer.drained();
        self.store_buffer.tick(now, &mut self.cache);
        if O::ENABLED {
            self.obs.on_store_drain(
                self.store_buffer.drained() - drained_before,
                self.store_buffer.len(),
            );
        }
        prof.record(
            Stage::StoreDrain,
            t.elapsed(),
            self.store_buffer.drained() - drained_before,
        );

        let t = Instant::now();
        let retry_candidates = self.cache_retry.len() as u64;
        self.mem_retry_phase(now);
        prof.record(Stage::MemRetry, t.elapsed(), retry_candidates);

        let t = Instant::now();
        let drained = self.event_phase(now);
        prof.record(Stage::Events, t.elapsed(), drained as u64);

        let t = Instant::now();
        let executions_before = self.raw.executions;
        self.issue_phase(now);
        prof.record(
            Stage::Issue,
            t.elapsed(),
            self.raw.executions - executions_before,
        );

        let t = Instant::now();
        let seq_before = self.next_seq;
        self.rename_phase(now);
        prof.record(
            Stage::Rename,
            t.elapsed(),
            self.next_seq.saturating_sub(seq_before),
        );

        let t = Instant::now();
        let fetched_before = self.fetch_buffer.len();
        self.fetch_phase(now);
        prof.record(
            Stage::Fetch,
            t.elapsed(),
            (self.fetch_buffer.len().saturating_sub(fetched_before)) as u64,
        );

        if O::ENABLED {
            self.obs.on_occupancy(
                self.rob.len(),
                self.iq.len(),
                self.events.len(),
                self.store_buffer.len(),
                self.cache.inflight_fills(),
            );
        }
        self.cycle = now + 1;
        prof.steps += 1;
        assert!(
            self.rob.is_empty() || now - self.last_commit_cycle < 100_000,
            "no commit for 100000 cycles at cycle {now}: head={:?} scheme={:?}",
            self.rob
                .head_hot()
                .map(|h| (self.rob.head_seq(), h.op, h.completed(), h.mem_phase)),
            self.config.scheme,
        );
    }

    /// The **next-event cycle governor**: computes the earliest cycle at
    /// which *anything* can change and jumps `cycle` straight to it,
    /// replaying the per-cycle counters the skipped stall cycles would
    /// have accumulated in closed form. Each pipeline subsystem
    /// contributes through its half of the `next_activity()` contract
    /// (see `docs/kernel.md`): a lower bound on the next cycle it can act
    /// on its own —
    ///
    /// * [`CalendarQueue::next_activity`] — the next scheduled event;
    /// * [`FuPool::earliest_accept`] — the earliest release for a
    ///   ready-but-FU-blocked instruction;
    /// * [`vpr_mem::DataCache::next_activity`] — the earliest MSHR fill,
    ///   bounding MSHR-blocked cache retries *and* a blocked store-buffer
    ///   head ([`vpr_mem::StoreBuffer::next_activity`]);
    /// * [`vpr_frontend::FetchUnit::next_activity`] — the fetch-stall /
    ///   redirect-shadow expiry;
    /// * the IQ ready index plus the renamers' NRR allocation gates —
    ///   whether any issue-eligible instruction could leave the queue.
    ///
    /// Quiescence (no subsystem can act at `now`) requires *all* of:
    ///
    /// * commit blocked on an incomplete head (a completed head commits);
    /// * the store buffer empty, or its head MSHR-bounced until the next
    ///   fill completes (which bounds the skip; each skipped cycle
    ///   replays the head's one bounced probe);
    /// * every issue-eligible instruction provably stuck for the whole
    ///   window: its functional units all busy (the earliest release
    ///   bounds the skip), the NRR rule denying its issue-time register
    ///   (issue-allocation scheme; re-evaluated only when an event or
    ///   commit changes register state, both of which end the window), or
    ///   its read-port needs exceeding the configuration outright;
    /// * every pending cache retry provably MSHR-bounced until the next
    ///   fill completes (which bounds the skip);
    /// * the front end frozen: rename blocked by a full structure or an
    ///   empty free list, or an empty fetch buffer with fetch drained,
    ///   stalled behind an unresolved branch, or inside a redirect shadow.
    ///
    /// Under those conditions the machine state is constant from cycle to
    /// cycle, so each skipped cycle contributes exactly one increment of
    /// one known front-end stall counter, one `issue_allocation_stalls`
    /// increment per denied candidate, one `mshr_retries` increment per
    /// blocked retry and per blocked store-buffer head, plus the
    /// occupancy sampling — replayed here in closed form. Behaviour is
    /// bit-identical to stepping cycle by cycle, which
    /// `crates/bench/tests/cycle_exact_golden.rs` and the governor
    /// equivalence proptest pin down.
    fn governor_skip(&mut self, max_cycle: u64) {
        if self.rob.head_hot().is_some_and(|h| h.completed()) {
            return;
        }
        let now = self.cycle;
        // An event firing this cycle makes it active (even a stale one
        // would cap the skip target at `now`): bail before the quiescence
        // sweeps below spend time proving what cannot pay off.
        if self.events.has_at(now) {
            return;
        }
        // Store-buffer quiescence: an empty buffer is idle; a non-empty
        // one is quiescent only while its head store stays MSHR-bounced,
        // which the next fill completion bounds.
        let mut blocked_stores: u64 = 0;
        let mut store_bound: Option<u64> = None;
        if !self.store_buffer.is_empty() {
            match self.store_buffer.next_activity(now, &self.cache) {
                Some(at) if at > now => {
                    blocked_stores = 1;
                    store_bound = Some(at);
                }
                _ => return, // the head drains (or a fill lands) this cycle
            }
        }
        // Issue-stage quiescence: every ready entry must be unable to
        // issue now *and* until some bound. Functional-unit occupancy
        // gives a time bound; an NRR denial persists until register state
        // changes, which only events (completions) or commits do — and
        // commits are blocked, completions scheduled.
        let mut issue_bound: Option<u64> = None;
        // Denied-ready candidates, split by register class so the
        // observer's per-class NRR-denial counters replay exactly.
        let mut denied_class: [u64; 2] = [0, 0];
        if self.iq.ready_len() != 0 {
            // §3.3 rule snapshots, built lazily on the first candidate
            // that needs a register grant: only the issue-allocation
            // scheme ever has such candidates, so the other schemes never
            // pay for the gates.
            let mut gates: Option<[crate::rename::AllocGate; 2]> = None;
            for e in self.iq.ready_iter() {
                let (int_reads, fp_reads) = e.read_port_needs();
                if int_reads > self.config.regfile_read_ports
                    || fp_reads > self.config.regfile_read_ports
                {
                    // Exceeds the whole per-cycle budget: skipped silently
                    // by the issue loop every cycle, no bound needed.
                    continue;
                }
                if let Some(class) = e.alloc_class() {
                    let gates = gates.get_or_insert_with(|| {
                        let Renamer::Vp(vp) = &self.renamer else {
                            unreachable!("alloc_class is set only under the VP issue scheme")
                        };
                        [vp.alloc_gate(RegClass::Int), vp.alloc_gate(RegClass::Fp)]
                    });
                    if !gates[class.index()].allows(e.seq) {
                        // Ticks issue_allocation_stalls every idle cycle.
                        denied_class[class.index()] += 1;
                        continue;
                    }
                }
                let at = self.fus.earliest_accept(e.op, now);
                if at <= now {
                    return; // issuable right now: the cycle is active
                }
                issue_bound = Some(issue_bound.map_or(at, |b| b.min(at)));
            }
        }
        // Cache-retry quiescence: every pending retry must bounce for
        // lack of an MSHR, and keep bouncing until the next fill
        // completes. (Port bounces cannot occur in an idle window — no
        // access is granted, so ports stay free.)
        let mut retry_bound: Option<u64> = None;
        let mut blocked_retries: u64 = 0;
        if !self.cache_retry.is_empty() {
            match self.cache.next_activity() {
                // A fill installs this cycle: outcomes are about to change.
                Some(t) if t <= now => return,
                t => retry_bound = t,
            }
            for &seq in &self.cache_retry {
                let Some(entry) = self.rob.hot(seq) else {
                    // Stale record: the sweep removes it this cycle.
                    return;
                };
                if entry.mem_phase != MemPhase::AwaitCache {
                    return;
                }
                let addr = entry.addr();
                if !self.cache.would_bounce_for_mshr(addr) {
                    return; // this retry would be granted: active cycle
                }
                blocked_retries += 1;
            }
            debug_assert!(
                retry_bound.is_some(),
                "MSHR-blocked retries imply an in-flight fill"
            );
        }
        // Decide what the frozen front end ticks each idle cycle; bail if
        // rename or fetch would actually make progress.
        let mut resume_bound = None;
        let tick = if let Some(fi) = self.fetch_buffer.front() {
            // Rename examines the front instruction every cycle; mirror
            // its blocking checks in order. (Fetch itself is idle while
            // the buffer is non-empty.)
            let op = fi.di.op();
            if self.rob.is_full() {
                IdleTick::RobFull
            } else if op != OpClass::Nop && self.iq.is_full() {
                IdleTick::IqFull
            } else if op.is_mem() && self.lsq.is_full() {
                IdleTick::LsqFull
            } else if let Some(dl) = fi.di.inst().dest() {
                let free = match &self.renamer {
                    Renamer::Conventional(conv) => Some(conv.free_count(dl.class())),
                    Renamer::EarlyRelease(er) => Some(er.free_count(dl.class())),
                    Renamer::Vp(_) => None,
                };
                if free == Some(0) {
                    IdleTick::FreeList(dl.class())
                } else {
                    return;
                }
            } else {
                return;
            }
        } else {
            // Empty fetch buffer: ask the fetch unit for its own next
            // activity. `None` means it never acts on its own — either
            // drained (nothing ticks) or stalled behind an unresolved
            // branch (stall counter ticks until an event resolves it).
            match self.fetch.next_activity(now) {
                None if self.fetch.is_done() => IdleTick::Nothing,
                None => IdleTick::FetchStall,
                Some(at) if at > now => {
                    // Redirect shadow: fetch stalls until `at`.
                    resume_bound = Some(at);
                    IdleTick::FetchStall
                }
                // Fetch delivers this cycle (or injection mode fabricates
                // wrong-path work every cycle): the cycle is active.
                Some(_) => return,
            }
        };
        let target = [
            self.events.next_activity(now),
            resume_bound,
            issue_bound,
            retry_bound,
            store_bound,
        ]
        .into_iter()
        .flatten()
        .min();
        // Nothing pending at all: no skip target. (A genuinely stuck
        // machine reaches the deadlock watchdog exactly as before.)
        let Some(target) = target else { return };
        let target = target.min(max_cycle);
        if target <= self.cycle {
            return;
        }
        let skipped = target - self.cycle;
        match tick {
            IdleTick::Nothing => {}
            IdleTick::FetchStall => self.fetch.add_stall_cycles(skipped),
            IdleTick::RobFull => self.raw.rob_full_stalls += skipped,
            IdleTick::IqFull => self.raw.iq_full_stalls += skipped,
            IdleTick::LsqFull => self.raw.lsq_full_stalls += skipped,
            IdleTick::FreeList(class) => self.raw.class_mut(class).rename_stalls += skipped,
        }
        // Ready-but-denied issue candidates, MSHR-blocked retries and a
        // blocked store-buffer head tick their counters every skipped
        // cycle, exactly as the issue loop, the retry sweep and the store
        // drain would have.
        self.raw.issue_allocation_stalls += (denied_class[0] + denied_class[1]) * skipped;
        let blocked_probes = blocked_retries + blocked_stores;
        if blocked_probes > 0 {
            self.cache
                .note_skipped_mshr_retries(blocked_probes * skipped);
        }
        if O::ENABLED {
            self.obs.on_idle_skip(skipped);
            for (c, &denied) in denied_class.iter().enumerate() {
                if denied > 0 {
                    self.obs.on_nrr_denial(c as u8, denied * skipped);
                }
            }
        }
        self.cycle = target;
    }

    fn absolute(&self) -> SimStats {
        let mut s = self.raw.clone();
        s.cycles = self.cycle;
        // Occupancy statistics come from the free lists' change-driven
        // integrals (equivalent to sampling every cycle, without the
        // per-cycle work).
        for class in [RegClass::Int, RegClass::Fp] {
            let (occ, empty) = match &self.renamer {
                Renamer::Conventional(conv) => conv.occupancy_integrals(class, self.cycle),
                Renamer::EarlyRelease(er) => er.occupancy_integrals(class, self.cycle),
                Renamer::Vp(vp) => vp.occupancy_integrals(class, self.cycle),
            };
            let cs = s.class_mut(class);
            cs.occupancy_sum = occ;
            cs.empty_free_list_cycles = empty;
        }
        s.fetch = *self.fetch.stats();
        s.bht = *self.bht.stats();
        s.cache = *self.cache.stats();
        s.lsq = *self.lsq.stats();
        if let Renamer::EarlyRelease(er) = &self.renamer {
            // Releases are event-driven inside the renamer rather than
            // counted at commit; fold them in here.
            for class in [RegClass::Int, RegClass::Fp] {
                let rs = er.release_stats(class);
                let cs = s.class_mut(class);
                cs.frees += rs.frees;
                cs.hold_cycles += rs.hold_cycles;
                s.early_releases += rs.early;
            }
        }
        s
    }

    fn fresh_gen(&mut self) -> u64 {
        self.gen_counter += 1;
        self.gen_counter
    }

    fn schedule(&mut self, at: u64, ev: Event) {
        self.events.schedule(self.cycle, at, ev);
    }

    /// Adds `seq` to the cache-retry set (sorted; duplicates ignored).
    fn retry_insert(&mut self, seq: u64) {
        self.retry_memo = None;
        if let Err(pos) = self.cache_retry.binary_search(&seq) {
            self.cache_retry.insert(pos, seq);
        }
    }

    /// Drops `seq` from the cache-retry set if present.
    fn retry_remove(&mut self, seq: u64) {
        self.retry_memo = None;
        if let Ok(pos) = self.cache_retry.binary_search(&seq) {
            self.cache_retry.remove(pos);
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit_phase(&mut self, now: u64) {
        for _ in 0..self.config.commit_width {
            let Some(&head) = self.rob.head_hot() else {
                break;
            };
            if !head.completed() {
                break;
            }
            debug_assert!(
                !head.wrong_path(),
                "wrong-path entries are squashed, not committed"
            );
            // Optional PMT-lookup commit delay of the VP schemes (§3.2.2).
            if self.config.vp_commit_delay
                && self.config.scheme.is_virtual_physical()
                && head.completed_at >= now
            {
                break;
            }
            // The 32-byte hot record carries everything commit needs —
            // the store's access is hoisted into it — so the cold ring is
            // never touched and head-drop only advances ring indices.
            let seq = self.rob.head_seq().expect("head checked above");
            let op = head.op;
            if op == OpClass::Store {
                let store = PendingStore {
                    seq,
                    access: head.mem_access(),
                };
                if !self.store_buffer.push(store) {
                    self.raw.store_buffer_stalls += 1;
                    break;
                }
            }
            let dest = self.rob.dest(seq);
            self.rob.drop_head();
            self.commit_entry(seq, op, dest, now);
            if O::ENABLED {
                self.obs.on_commit(now, seq, op.index() as u8);
            }
            self.last_commit_cycle = now;
        }
    }

    fn commit_entry(&mut self, seq: u64, op: OpClass, dest: Option<RenamedDest>, now: u64) {
        self.raw.committed += 1;
        if op.is_mem() {
            self.lsq.remove(seq);
        }
        let Some(dest) = dest else { return };
        self.raw.committed_with_dest += 1;
        let class = dest.class();
        let popped = self.dest_seqs[class.index()].pop_front();
        debug_assert_eq!(popped, Some(seq), "dest commits are in order");
        match &mut self.renamer {
            Renamer::EarlyRelease(er) => {
                // No explicit freeing: committing the producer just opens
                // the last release gate for its own register.
                let preg = dest.preg.expect("early release allocates at rename");
                er.on_producer_commit(class, preg, now);
            }
            Renamer::Conventional(conv) => {
                let prev = dest
                    .prev_preg
                    .expect("conventional rename records prev mapping");
                let held = conv.on_commit_dest(class, prev, now);
                let cs = self.raw.class_mut(class);
                cs.frees += 1;
                cs.hold_cycles += held;
            }
            Renamer::Vp(vp) => {
                // Slide the PRR pointer (§3.3) before freeing anything.
                let pointer = vp
                    .nrr(class)
                    .pointer()
                    .expect("committing a destination implies a reserved set");
                // The oldest in-flight producer of this class younger than
                // the pointer: a partition-point lookup in the per-class
                // program-order index instead of an O(window) ROB scan.
                let seqs = &self.dest_seqs[class.index()];
                let entrant = seqs
                    .get(seqs.partition_point(|&s| s <= pointer))
                    .map(|&seq| {
                        let d = self.rob.dest(seq).expect("indexed on dest");
                        (seq, d.preg.is_some())
                    });
                vp.nrr_on_commit(class, seq, entrant);
                let prev = dest.prev_vp.expect("VP rename records prev mapping");
                let held = vp.on_commit_dest(class, prev, now);
                let cs = self.raw.class_mut(class);
                cs.frees += 1;
                cs.hold_cycles += held;
            }
        }
    }

    // ------------------------------------------------------------------
    // Memory pipeline
    // ------------------------------------------------------------------

    fn mem_retry_phase(&mut self, now: u64) {
        if self.cache_retry.is_empty() {
            return;
        }
        // Bounce memo: if the last sweep found every pending retry
        // MSHR-bounced, and since then line residency and MSHR occupancy
        // are provably unchanged (state token), no fill is due this
        // cycle, and ports are not exhausted (a store drain can eat all
        // of them, turning MSHR bounces into port bounces), this cycle's
        // sweep would produce the identical bounces. Replay the counters
        // without probing.
        if let Some((blocked, token)) = self.retry_memo {
            if self.cache.state_token() == token
                && self.cache.earliest_fill().is_some_and(|t| t > now)
                && !self.cache.ports_exhausted_at(now)
            {
                self.cache.note_skipped_mshr_retries(blocked);
                return;
            }
            self.retry_memo = None;
        }
        // Positional sweep in age order: a settled load is removed in
        // place (the next element slides into `i`), a bounced one stays.
        // No scratch copy, no per-element binary searches.
        let mut port_bounce = false;
        let mut i = 0;
        while i < self.cache_retry.len() {
            let seq = self.cache_retry[i];
            match self.probe_cache(seq, now) {
                CacheProbe::Settled => {
                    self.cache_retry.remove(i);
                }
                CacheProbe::BouncedNoMshr => i += 1,
                CacheProbe::BouncedNoPort => {
                    port_bounce = true;
                    i += 1;
                }
            }
        }
        // Port bounces can clear next cycle (ports reset); MSHR bounces
        // persist until a fill completes or someone else touches the
        // cache — exactly what the memo's validity token watches.
        if !port_bounce && !self.cache_retry.is_empty() {
            self.retry_memo = Some((self.cache_retry.len() as u64, self.cache.state_token()));
        }
    }

    /// Presents load `seq` to the cache. [`CacheProbe::Settled`] means the
    /// load no longer needs retrying — its data return is scheduled, or
    /// the record is stale (squashed / re-executed instruction).
    fn probe_cache(&mut self, seq: u64, now: u64) -> CacheProbe {
        let Some(entry) = self.rob.hot(seq) else {
            return CacheProbe::Settled;
        };
        if entry.mem_phase != MemPhase::AwaitCache {
            return CacheProbe::Settled;
        }
        let gen = entry.gen;
        let addr = entry.addr();
        match self.cache.access(now, addr, AccessKind::Load) {
            AccessOutcome::Hit { ready_at } | AccessOutcome::Miss { ready_at, .. } => {
                self.rob.hot_mut(seq).expect("checked above").mem_phase = MemPhase::InFlight;
                self.schedule(ready_at, Event::MemData { seq, gen });
                CacheProbe::Settled
            }
            AccessOutcome::Retry { reason } => match reason {
                vpr_mem::RetryReason::NoMshr => CacheProbe::BouncedNoMshr,
                vpr_mem::RetryReason::NoPort => CacheProbe::BouncedNoPort,
            },
        }
    }

    // ------------------------------------------------------------------
    // Completion / write-back
    // ------------------------------------------------------------------

    /// Returns the number of events drained (profile-mode attribution).
    fn event_phase(&mut self, now: u64) -> usize {
        let mut events = std::mem::take(&mut self.event_scratch);
        debug_assert!(events.is_empty());
        self.events.drain_at(now, &mut events);
        let drained = events.len();
        // Oldest instructions get write ports and cache ports first. A
        // single event (the common case during mispredict shadows) is
        // trivially in order.
        if events.len() > 1 {
            events.sort_by_key(Event::seq);
        }
        for ev in events.drain(..) {
            match ev {
                Event::EaDone { seq, gen } => self.handle_ea_done(seq, gen, now),
                Event::MemData { seq, gen } | Event::Complete { seq, gen } => {
                    self.handle_completion(seq, gen, now)
                }
            }
        }
        self.event_scratch = events;
        drained
    }

    fn handle_ea_done(&mut self, seq: u64, gen: u64, now: u64) {
        let Some(&entry) = self.rob.hot(seq) else {
            return;
        };
        if entry.gen != gen {
            return;
        }
        let access = entry.mem_access();
        if entry.op == OpClass::Store {
            // The store's address is known: detect younger loads that
            // already read stale data (PA-8000 style) and re-execute them.
            let victims = self.lsq.resolve_store(seq, access);
            for victim in victims {
                self.raw.memory_reexecutions += 1;
                if O::ENABLED {
                    self.obs.on_reexecute(now, victim, false);
                }
                self.reexecute(victim, now);
            }
            let e = self.rob.hot_mut(seq).expect("checked above");
            e.mem_phase = MemPhase::Done;
            e.set_completed(true);
            e.completed_at = now;
            if O::ENABLED {
                self.obs.on_complete(now, seq);
            }
            return;
        }
        // Load: decide between forwarding and a cache access.
        let disposition = self.lsq.resolve_load(seq, access);
        let forwarded = matches!(disposition, LoadDisposition::Forward { .. })
            || self.store_buffer.forwards(&access);
        if forwarded {
            self.rob.hot_mut(seq).expect("checked above").mem_phase = MemPhase::InFlight;
            self.schedule(now + 1, Event::MemData { seq, gen });
        } else {
            self.rob.hot_mut(seq).expect("checked above").mem_phase = MemPhase::AwaitCache;
            if self.probe_cache(seq, now) != CacheProbe::Settled {
                self.retry_insert(seq);
            }
        }
    }

    fn handle_completion(&mut self, seq: u64, gen: u64, now: u64) {
        // The whole happy path runs off the 32-byte hot record plus the
        // destination array; the cold ring is consulted only for branch
        // resolution (the one case that needs the PC and outcome).
        let Some(&entry) = self.rob.hot(seq) else {
            return;
        };
        if entry.gen != gen || entry.completed() {
            return;
        }
        let op = entry.op;
        let wrong_path = entry.wrong_path();
        let mispredicted = entry.mispredicted();
        let mut dest = self.rob.dest(seq);

        // Late allocation: the write-back scheme claims the physical
        // register in the last execution cycle (§3.2.2) — or squashes.
        if let Some(d) = dest {
            if d.preg.is_none() {
                debug_assert!(matches!(
                    self.config.scheme,
                    RenameScheme::VirtualPhysicalWriteback { .. }
                ));
                let Renamer::Vp(vp) = &mut self.renamer else {
                    unreachable!("unallocated destination implies the VP renamer")
                };
                match vp.try_allocate(d.class(), seq, now) {
                    Some(preg) => {
                        self.raw.class_mut(d.class()).allocations += 1;
                        if O::ENABLED {
                            self.obs
                                .on_vp_alloc(now, seq, d.class().index() as u8, false);
                        }
                        // Recorded immediately: the grant must stick even
                        // if a write-port stall defers the broadcast.
                        let slot = self.rob.dest_mut(seq).as_mut().expect("dest checked above");
                        slot.preg = Some(preg);
                        dest = Some(*slot);
                    }
                    None => {
                        // Out of registers: squash and re-execute (§3.3).
                        self.raw.register_reexecutions += 1;
                        if O::ENABLED {
                            self.obs.on_reexecute(now, seq, true);
                        }
                        self.reexecute(seq, now);
                        return;
                    }
                }
            }
        }

        // Register-file write ports: 8 per file per cycle; excess
        // completions retry next cycle.
        if let Some(d) = dest {
            let c = d.class().index();
            if self.wb_ports_used[c] >= self.config.regfile_write_ports {
                self.raw.writeback_port_stalls += 1;
                if O::ENABLED {
                    self.obs.on_wb_port_stall(now, seq);
                }
                self.schedule(now + 1, Event::Complete { seq, gen });
                return;
            }
            self.wb_ports_used[c] += 1;
            // Broadcast the result tag to the queue and the map tables.
            let preg = d.preg.expect("allocated above or at rename/issue");
            match &mut self.renamer {
                Renamer::Conventional(conv) => {
                    conv.on_writeback(d.class(), preg);
                    self.iq.wakeup_phys(d.class(), preg);
                }
                Renamer::EarlyRelease(er) => {
                    er.on_writeback(d.class(), preg);
                    self.iq.wakeup_phys(d.class(), preg);
                }
                Renamer::Vp(vp) => {
                    let tag = d.vp.expect("VP rename assigns a tag");
                    // A load re-executed after a memory-order violation has
                    // already bound its tag; the binding stands.
                    if vp.pmt_entry(d.class(), tag).is_none() {
                        vp.bind(d.class(), tag, preg);
                        self.iq.wakeup_vp(d.class(), tag, preg);
                        if O::ENABLED {
                            self.obs.on_vp_bind(now, seq, d.class().index() as u8);
                        }
                    }
                }
            }
        }

        let entry = self.rob.hot_mut(seq).expect("checked above");
        entry.set_completed(true);
        entry.completed_at = now;
        if op.is_mem() {
            entry.mem_phase = MemPhase::Done;
        }
        if O::ENABLED {
            self.obs.on_complete(now, seq);
        }

        if op.is_branch() && !wrong_path {
            if op == OpClass::BranchCond {
                // Branch resolution needs the PC and the recorded outcome
                // — the one completion case that reads the cold ring.
                let di = self.rob.di(seq);
                let (pc, taken) = (di.pc(), di.branch().expect("trace records outcomes").taken);
                self.bht.update(pc, taken);
            }
            if mispredicted {
                self.fetch.resolve_branch(now);
                if self.config.wrong_path_injection {
                    self.squash_younger_than(seq, now);
                }
            }
        }
    }

    /// Squashes an instruction back to the instruction queue for
    /// re-execution (register denial in the write-back scheme, or a
    /// memory-ordering violation). Its operands are still ready — sources
    /// cannot be freed before this instruction commits — so it re-enters
    /// the queue ready to issue.
    fn reexecute(&mut self, seq: u64, _now: u64) {
        let gen = self.fresh_gen();
        let entry = self
            .rob
            .hot_mut(seq)
            .expect("re-executed instruction is in flight");
        entry.gen = gen;
        entry.set_issued(false);
        entry.set_completed(false);
        entry.mem_phase = MemPhase::Idle;
        let op = entry.op;
        let srcs = self.rob.srcs(seq);
        self.retry_remove(seq);
        if op == OpClass::Load && self.lsq.address_of(seq).is_some() {
            self.lsq.mark_unperformed(seq);
        }
        if let Renamer::EarlyRelease(er) = &mut self.renamer {
            // The re-executed instruction will read its sources again:
            // re-arm their pending-read counters so none frees early.
            for src in srcs.iter().flatten() {
                if let SrcState::Ready(preg) = src.state {
                    er.on_reread(src.class, preg);
                }
            }
        }
        let alloc_class = self.issue_alloc_class(seq);
        self.iq.insert(IqEntry {
            seq,
            op,
            srcs,
            alloc_class,
        });
    }

    /// The register class instruction `seq` must be granted a physical
    /// register in before issue — `Some` only under the issue-allocation
    /// scheme for a still-unallocated destination (cached in the
    /// [`IqEntry`] so the selection loop stays out of the reorder buffer).
    fn issue_alloc_class(&self, seq: u64) -> Option<RegClass> {
        if !matches!(
            self.config.scheme,
            RenameScheme::VirtualPhysicalIssue { .. }
        ) {
            return None;
        }
        self.rob
            .dest(seq)
            .filter(|d| d.preg.is_none())
            .map(|d| d.class())
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn issue_phase(&mut self, now: u64) {
        if self.iq.ready_len() == 0 {
            return;
        }
        let mut budget = self.config.issue_width;
        let mut read_ports = [self.config.regfile_read_ports; 2];
        let mut issued = std::mem::take(&mut self.issued_scratch);
        debug_assert!(issued.is_empty());
        // Issue-allocation scheme: snapshot the §3.3 rule per class once,
        // so the selection loop evaluates denied candidates from two
        // registers' worth of state instead of re-deriving the rule each
        // time. Built lazily on the first candidate that needs a grant
        // (only the issue-allocation scheme has such candidates) and
        // refreshed after every grant below — the only thing that changes
        // the rule mid-loop.
        let mut gates: Option<[crate::rename::AllocGate; 2]> = None;
        // The ready index holds exactly the issue-eligible entries, oldest
        // first — no need to scan the waiting remainder of the window.
        for e in self.iq.ready_iter() {
            if budget == 0 {
                break;
            }
            let (int_reads, fp_reads) = e.read_port_needs();
            if int_reads > read_ports[0] || fp_reads > read_ports[1] {
                continue;
            }
            // Issue-allocation scheme: a destination needs a register
            // grant before the instruction may leave the queue (§3.4).
            // The needed class is cached in the entry, so denied
            // candidates cost no reorder-buffer traffic.
            let alloc_class = e.alloc_class();
            debug_assert_eq!(alloc_class, self.issue_alloc_class(e.seq));
            if let Some(class) = alloc_class {
                let gates = gates.get_or_insert_with(|| {
                    let Renamer::Vp(vp) = &self.renamer else {
                        unreachable!("alloc_class is set only under the VP issue scheme")
                    };
                    [vp.alloc_gate(RegClass::Int), vp.alloc_gate(RegClass::Fp)]
                });
                debug_assert!({
                    let Renamer::Vp(vp) = &self.renamer else {
                        unreachable!()
                    };
                    gates[class.index()].allows(e.seq) == vp.may_allocate(class, e.seq)
                });
                if !gates[class.index()].allows(e.seq) {
                    self.raw.issue_allocation_stalls += 1;
                    if O::ENABLED {
                        self.obs.on_nrr_denial(class.index() as u8, 1);
                    }
                    continue;
                }
            }
            if self.fus.try_issue(e.op, now).is_none() {
                continue;
            }
            read_ports[0] -= int_reads;
            read_ports[1] -= fp_reads;
            budget -= 1;
            issued.push(e.seq);
            if let Some(class) = alloc_class {
                let Renamer::Vp(vp) = &mut self.renamer else {
                    unreachable!()
                };
                let preg = vp
                    .try_allocate(class, e.seq, now)
                    .expect("may_allocate checked above");
                // The grant changed the free count and possibly `Used`:
                // refresh the rule snapshot.
                gates.as_mut().expect("built when this candidate was gated")[class.index()] =
                    vp.alloc_gate(class);
                self.raw.class_mut(class).allocations += 1;
                if O::ENABLED {
                    self.obs.on_vp_alloc(now, e.seq, class.index() as u8, true);
                }
                // The destination is recorded after the loop (needs &mut).
                self.pending_issue_allocs.push((e.seq, preg));
            }
        }
        for seq in issued.drain(..) {
            let iq_entry = self.iq.remove(seq).expect("issued from the queue");
            if let Renamer::EarlyRelease(er) = &mut self.renamer {
                // Sources are read now: their pending-read counters drop.
                for src in iq_entry.srcs.iter().flatten() {
                    if let SrcState::Ready(preg) = src.state {
                        er.on_read(src.class, preg, now);
                    }
                }
            }
            let entry = self.rob.hot_mut(seq).expect("in flight");
            entry.set_issued(true);
            entry.executions += 1;
            let gen = entry.gen;
            let op = entry.op;
            // Final (all-ready) source state, kept for re-execution.
            self.rob.set_srcs(seq, iq_entry.srcs);
            self.raw.executions += 1;
            if O::ENABLED {
                self.obs.on_issue(now, seq, op.index() as u8);
            }
            let finish = now + self.config.latencies.of(op);
            if op.is_mem() {
                self.schedule(finish, Event::EaDone { seq, gen });
            } else {
                self.schedule(finish, Event::Complete { seq, gen });
            }
        }
        self.issued_scratch = issued;
        let mut allocs = std::mem::take(&mut self.pending_issue_allocs);
        for (seq, preg) in allocs.drain(..) {
            self.rob
                .dest_mut(seq)
                .as_mut()
                .expect("allocation implies a destination")
                .preg = Some(preg);
        }
        self.pending_issue_allocs = allocs;
    }

    // ------------------------------------------------------------------
    // Rename / dispatch
    // ------------------------------------------------------------------

    fn rename_phase(&mut self, now: u64) {
        let issue_allocates = matches!(
            self.config.scheme,
            RenameScheme::VirtualPhysicalIssue { .. }
        );
        for _ in 0..self.config.rename_width {
            let Some(fi) = self.fetch_buffer.front() else {
                break;
            };
            if self.rob.is_full() {
                self.raw.rob_full_stalls += 1;
                break;
            }
            let op = fi.di.op();
            if op != OpClass::Nop && self.iq.is_full() {
                self.raw.iq_full_stalls += 1;
                break;
            }
            if op.is_mem() && self.lsq.is_full() {
                self.raw.lsq_full_stalls += 1;
                break;
            }
            // The conventional scheme allocates here and stalls in order
            // when the class's free list is empty — the exact behaviour
            // the paper's schemes defer.
            if let Some(dl) = fi.di.inst().dest() {
                let free = match &self.renamer {
                    Renamer::Conventional(conv) => Some(conv.free_count(dl.class())),
                    Renamer::EarlyRelease(er) => Some(er.free_count(dl.class())),
                    Renamer::Vp(_) => None,
                };
                if free == Some(0) {
                    self.raw.class_mut(dl.class()).rename_stalls += 1;
                    break;
                }
            }
            let fi = self.fetch_buffer.pop_front().expect("peeked above");
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut entry = RobEntry::new(seq, fi.di, fi.wrong_path, fi.mispredicted);
            entry.gen = self.fresh_gen();
            let inst = fi.di.inst();
            let srcs = [
                inst.src1().map(|l| self.rename_src(l)),
                inst.src2().map(|l| self.rename_src(l)),
            ];
            entry.srcs = srcs;
            if let Some(dl) = inst.dest() {
                entry.dest = Some(match &mut self.renamer {
                    Renamer::Conventional(conv) => {
                        let (new, prev) = conv
                            .try_rename_dest(dl, now)
                            .expect("free list checked above");
                        self.raw.class_mut(dl.class()).allocations += 1;
                        RenamedDest {
                            logical: dl,
                            vp: None,
                            preg: Some(new),
                            prev_vp: None,
                            prev_preg: Some(prev),
                        }
                    }
                    Renamer::EarlyRelease(er) => {
                        let (new, prev) = er
                            .try_rename_dest(dl, now)
                            .expect("free list checked above");
                        self.raw.class_mut(dl.class()).allocations += 1;
                        RenamedDest {
                            logical: dl,
                            vp: None,
                            preg: Some(new),
                            prev_vp: None,
                            prev_preg: Some(prev),
                        }
                    }
                    Renamer::Vp(vp) => {
                        let (new_vp, prev_vp) = vp.rename_dest(dl, seq, now);
                        RenamedDest {
                            logical: dl,
                            vp: Some(new_vp),
                            preg: None,
                            prev_vp: Some(prev_vp),
                            prev_preg: None,
                        }
                    }
                });
            }
            match op {
                OpClass::Load => self.lsq.insert_load(seq),
                OpClass::Store => self.lsq.insert_store(seq),
                OpClass::Nop => {
                    entry.completed = true;
                    entry.completed_at = now;
                }
                _ => {}
            }
            // Derived from the entry at hand rather than looked back up
            // through the reorder buffer (`issue_alloc_class` agrees, as
            // the debug assertion checks).
            let alloc_class = if issue_allocates {
                entry.dest.filter(|d| d.preg.is_none()).map(|d| d.class())
            } else {
                None
            };
            self.rob.push(entry);
            if let Some(dl) = inst.dest() {
                self.dest_seqs[dl.class().index()].push_back(seq);
            }
            if op != OpClass::Nop {
                debug_assert_eq!(alloc_class, self.issue_alloc_class(seq));
                self.iq.insert(IqEntry {
                    seq,
                    op,
                    srcs,
                    alloc_class,
                });
            }
            if O::ENABLED {
                self.obs
                    .on_rename(now, seq, fi.di.pc(), op.index() as u8, fi.wrong_path);
            }
        }
    }

    fn rename_src(&mut self, logical: vpr_isa::LogicalReg) -> crate::rename::RenamedSrc {
        match &mut self.renamer {
            Renamer::Conventional(conv) => conv.rename_src(logical),
            Renamer::EarlyRelease(er) => er.rename_src(logical),
            Renamer::Vp(vp) => vp.rename_src(logical),
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch_phase(&mut self, now: u64) {
        if self.fetch_buffer.is_empty() && !self.fetch.is_done() {
            let buffer = &mut self.fetch_buffer;
            let obs = &mut self.obs;
            self.fetch.fetch_block_into(
                now,
                &mut self.trace,
                &self.bht,
                self.config.fetch_width,
                &mut |fi| {
                    if O::ENABLED {
                        obs.on_fetch(now, fi.di.pc(), fi.wrong_path);
                    }
                    buffer.push_back(fi);
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Recovery (wrong-path injection mode)
    // ------------------------------------------------------------------

    /// Restores precise state after the mispredicted branch `branch_seq`
    /// resolves: pops the reorder buffer from the tail, undoing each
    /// mapping exactly as §3.2.2 describes, then rebuilds the NRR counters
    /// and recycles the squashed sequence numbers.
    fn squash_younger_than(&mut self, branch_seq: u64, now: u64) {
        while let Some(seq) = self.rob.tail_seq().filter(|&t| t > branch_seq) {
            // Squash reads the hot record and the destination array only;
            // the cold `DynInst` is neither cloned nor moved — the tail
            // drop just releases the ring slot.
            let hot = *self.rob.hot(seq).expect("tail is in flight");
            debug_assert!(
                hot.wrong_path(),
                "only wrong-path work follows a diverted fetch"
            );
            self.raw.wrong_path_squashed += 1;
            if O::ENABLED {
                self.obs.on_squash(now, seq);
            }
            self.iq.remove(seq);
            self.retry_remove(seq);
            if hot.op.is_mem() {
                self.lsq.remove(seq);
            }
            if let Some(d) = self.rob.dest(seq) {
                let popped = self.dest_seqs[d.class().index()].pop_back();
                debug_assert_eq!(popped, Some(seq), "dest squashes pop from the tail");
                match &mut self.renamer {
                    Renamer::EarlyRelease(_) => unreachable!(
                        "early release rejects wrong-path injection at configuration time"
                    ),
                    Renamer::Conventional(conv) => conv.on_squash_dest(
                        d.logical,
                        d.preg.expect("conventional allocates at rename"),
                        d.prev_preg.expect("recorded at rename"),
                        now,
                    ),
                    Renamer::Vp(vp) => vp.on_squash_dest(
                        d.logical,
                        d.vp.expect("VP rename assigns a tag"),
                        d.prev_vp.expect("recorded at rename"),
                        now,
                    ),
                }
            }
            self.rob.drop_tail();
        }
        // Un-renamed wrong-path instructions in the fetch buffer vanish.
        self.fetch_buffer.retain(|f| !f.wrong_path);
        // Sequence numbers above the branch are recycled; generations keep
        // stale events harmless.
        self.next_seq = branch_seq + 1;
        if let Renamer::Vp(_) = &self.renamer {
            for class in [RegClass::Int, RegClass::Fp] {
                // The per-class program-order dest index names exactly the
                // surviving destination-having instructions — no need to
                // scan the whole reorder buffer.
                let survivors: Vec<(u64, bool)> = self.dest_seqs[class.index()]
                    .iter()
                    .map(|&seq| {
                        let d = self.rob.dest(seq).expect("indexed on dest");
                        (seq, d.preg.is_some())
                    })
                    .collect();
                let Renamer::Vp(vp) = &mut self.renamer else {
                    unreachable!("checked above")
                };
                vp.nrr_rebuild(class, survivors.into_iter());
            }
        }
    }
}

// ----------------------------------------------------------------------
// Checkpoint / restore
// ----------------------------------------------------------------------

impl vpr_snap::Snap for Renamer {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        match self {
            Renamer::Conventional(r) => {
                enc.put_u8(0);
                r.save(enc);
            }
            Renamer::EarlyRelease(r) => {
                enc.put_u8(1);
                r.save(enc);
            }
            Renamer::Vp(r) => {
                enc.put_u8(2);
                r.save(enc);
            }
        }
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        match dec.take_u8() {
            0 => Renamer::Conventional(ConventionalRenamer::load(dec)),
            1 => Renamer::EarlyRelease(EarlyReleaseRenamer::load(dec)),
            2 => Renamer::Vp(VpRenamer::load(dec)),
            other => panic!("snapshot Renamer tag {other}: layout mismatch"),
        }
    }
}

impl<S: InstStream + vpr_snap::Resumable, O: PipeObserver> Processor<S, O> {
    /// Captures the complete microarchitectural state — pipeline, reorder
    /// buffer, instruction queue, functional units, renamer (map tables,
    /// free lists, NRR counters), cache/MSHRs/LSQ/store buffer, branch
    /// state, scheduled events, statistics, and the trace generator's
    /// position — into a versioned [`vpr_snap::Snapshot`]. The observer
    /// is **not** captured: the snapshot payload is identical whether or
    /// not a run is observed, and a restored machine starts with a fresh
    /// observer.
    ///
    /// A processor restored from the snapshot ([`Processor::restore`])
    /// continues **bit-identically** to this one: every subsequent
    /// [`SimStats`] counter matches an uninterrupted run. Snapshots are
    /// taken at cycle boundaries (between [`Processor::step`]s), which is
    /// the only machine state this type ever exposes.
    pub fn snapshot(&self) -> vpr_snap::Snapshot {
        use vpr_snap::Snap as _;
        let mut enc = vpr_snap::Encoder::new();
        self.config.save(&mut enc);
        enc.put_u64(self.cycle);
        enc.put_u64(self.next_seq);
        enc.put_u64(self.gen_counter);
        enc.put_u64(self.last_commit_cycle);
        self.wb_ports_used.save(&mut enc);
        self.raw.save(&mut enc);
        self.base.save(&mut enc);
        self.trace.save_state(&mut enc);
        self.fetch.save(&mut enc);
        self.bht.save(&mut enc);
        self.cache.save(&mut enc);
        self.lsq.save(&mut enc);
        self.store_buffer.save(&mut enc);
        self.renamer.save(&mut enc);
        self.rob.save(&mut enc);
        self.iq.save(&mut enc);
        self.fus.save(&mut enc);
        self.fetch_buffer.save(&mut enc);
        self.cache_retry.save(&mut enc);
        self.retry_memo.save(&mut enc);
        self.dest_seqs.save(&mut enc);
        // Events re-key on restore relative to the restored cycle; saving
        // them in per-cycle drain order makes re-scheduling reproduce the
        // exact drain behaviour (see `CalendarQueue::collect_pending`).
        self.events.collect_pending(self.cycle).save(&mut enc);
        vpr_snap::Snapshot::new(enc.into_bytes())
    }

    /// The checkpoint-at-commit hook: advances the machine to each target
    /// in `targets` (absolute committed-instruction positions, strictly
    /// increasing) and hands the caller a borrow of the paused machine —
    /// typically to call [`Processor::snapshot`] and write a `.vprsnap`
    /// artefact. This is how one warm serial pass produces the per-interval
    /// checkpoints the sampled experiment binaries seed from.
    ///
    /// Each pause lands at the first cycle boundary at or after its target
    /// (a run can overshoot a commit target by up to commit-width − 1); the
    /// achieved position is [`Processor::absolute_committed`].
    ///
    /// # Panics
    ///
    /// Panics if `targets` is not strictly increasing, or if a target lies
    /// behind the machine's current position.
    pub fn checkpoint_at_commits(&mut self, targets: &[u64], mut sink: impl FnMut(&Self, u64)) {
        let mut previous = None;
        for &target in targets {
            assert!(
                previous.is_none_or(|p| p < target),
                "checkpoint targets must be strictly increasing ({previous:?} then {target})"
            );
            assert!(
                target >= self.raw.committed,
                "checkpoint target {target} is behind the machine (at {})",
                self.raw.committed
            );
            previous = Some(target);
            self.run_to_commit(target);
            sink(self, target);
        }
    }

    /// Rebuilds a processor from a snapshot taken by
    /// [`Processor::snapshot`], attaching lifecycle observer `obs` (which
    /// starts empty — observers are never serialised). The unobserved
    /// form is [`Processor::restore`].
    ///
    /// `trace` must be a freshly built generator of the **same workload**
    /// the snapshotted processor ran (same program, same seed); its
    /// position is restored from the snapshot, so where it currently
    /// stands does not matter. The machine configuration travels inside
    /// the snapshot.
    ///
    /// # Errors
    ///
    /// [`vpr_snap::SnapError::Mismatch`] when the payload is inconsistent
    /// (e.g. a renamer that disagrees with the serialised configuration,
    /// or trailing bytes).
    ///
    /// # Panics
    ///
    /// Panics if the payload is malformed at the field level — the
    /// envelope's checksum makes that a logic error, not an input error.
    pub fn restore_with(
        snapshot: &vpr_snap::Snapshot,
        trace: S,
        obs: O,
    ) -> Result<Self, vpr_snap::SnapError> {
        use vpr_snap::Snap as _;
        let dec = &mut vpr_snap::Decoder::new(snapshot.payload());
        let config = SimConfig::load(dec);
        let mut cpu = Processor::with_observer(config, trace, obs);
        cpu.cycle = dec.take_u64();
        cpu.next_seq = dec.take_u64();
        cpu.gen_counter = dec.take_u64();
        cpu.last_commit_cycle = dec.take_u64();
        cpu.wb_ports_used = <[u32; 2]>::load(dec);
        cpu.raw = SimStats::load(dec);
        cpu.base = SimStats::load(dec);
        cpu.trace.restore_state(dec);
        cpu.fetch = vpr_frontend::FetchUnit::load(dec);
        cpu.bht = BranchHistoryTable::load(dec);
        cpu.cache = DataCache::load(dec);
        cpu.lsq = Lsq::load(dec);
        cpu.store_buffer = StoreBuffer::load(dec);
        cpu.renamer = Renamer::load(dec);
        let renamer_fits = matches!(
            (&cpu.renamer, cpu.config.scheme),
            (Renamer::Conventional(_), RenameScheme::Conventional)
                | (
                    Renamer::EarlyRelease(_),
                    RenameScheme::ConventionalEarlyRelease
                )
                | (Renamer::Vp(_), RenameScheme::VirtualPhysicalIssue { .. })
                | (
                    Renamer::Vp(_),
                    RenameScheme::VirtualPhysicalWriteback { .. }
                )
        );
        if !renamer_fits {
            return Err(vpr_snap::SnapError::Mismatch(format!(
                "renamer does not match scheme {:?}",
                cpu.config.scheme
            )));
        }
        cpu.rob = Rob::load(dec);
        cpu.iq = Iq::load(dec);
        cpu.fus = FuPool::load(dec);
        cpu.fetch_buffer = VecDeque::<FetchedInst>::load(dec);
        cpu.cache_retry = Vec::<u64>::load(dec);
        cpu.retry_memo = Option::<(u64, (u64, u64))>::load(dec);
        cpu.dest_seqs = <[VecDeque<u64>; 2]>::load(dec);
        let events = Vec::<(u64, Event)>::load(dec);
        let before = cpu.cycle.saturating_sub(1);
        for (at, ev) in events {
            if at <= before {
                return Err(vpr_snap::SnapError::Mismatch(format!(
                    "event scheduled at cycle {at}, not after cycle {before}"
                )));
            }
            cpu.events.schedule(before, at, ev);
        }
        if dec.remaining() != 0 {
            return Err(vpr_snap::SnapError::Mismatch(format!(
                "{} trailing payload bytes",
                dec.remaining()
            )));
        }
        Ok(cpu)
    }
}

impl<S: InstStream + vpr_snap::Resumable> Processor<S> {
    /// Rebuilds an unobserved processor from a snapshot taken by
    /// [`Processor::snapshot`] — [`Processor::restore_with`] with
    /// [`NoObs`].
    ///
    /// # Errors
    ///
    /// [`vpr_snap::SnapError::Mismatch`] when the payload is inconsistent
    /// (e.g. a renamer that disagrees with the serialised configuration,
    /// or trailing bytes).
    ///
    /// # Panics
    ///
    /// Panics if the payload is malformed at the field level — the
    /// envelope's checksum makes that a logic error, not an input error.
    pub fn restore(snapshot: &vpr_snap::Snapshot, trace: S) -> Result<Self, vpr_snap::SnapError> {
        Self::restore_with(snapshot, trace, NoObs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_isa::{BranchInfo, DynInst, Inst, LogicalReg, MemAccess};

    fn alu(pc: u64, dest: usize, src: usize) -> DynInst {
        DynInst::new(
            pc,
            Inst::new(OpClass::IntAlu)
                .with_dest(LogicalReg::int(dest))
                .with_src1(LogicalReg::int(src)),
        )
    }

    fn fp_chain_inst(pc: u64, op: OpClass) -> DynInst {
        DynInst::new(
            pc,
            Inst::new(op)
                .with_dest(LogicalReg::fp(2))
                .with_src1(LogicalReg::fp(2))
                .with_src2(LogicalReg::fp(10)),
        )
    }

    fn load(pc: u64, dest: usize, addr: u64) -> DynInst {
        DynInst::new(
            pc,
            Inst::new(OpClass::Load)
                .with_dest(LogicalReg::int(dest))
                .with_src1(LogicalReg::int(30)),
        )
        .with_mem(MemAccess::word(addr))
    }

    fn store(pc: u64, data: usize, addr: u64) -> DynInst {
        DynInst::new(
            pc,
            Inst::new(OpClass::Store)
                .with_src1(LogicalReg::int(data))
                .with_src2(LogicalReg::int(30)),
        )
        .with_mem(MemAccess::word(addr))
    }

    fn cfg(scheme: RenameScheme) -> SimConfig {
        SimConfig::builder().scheme(scheme).build()
    }

    fn all_schemes() -> [RenameScheme; 3] {
        [
            RenameScheme::Conventional,
            RenameScheme::VirtualPhysicalIssue { nrr: 32 },
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        ]
    }

    #[test]
    fn straight_line_commits_everything() {
        for scheme in all_schemes() {
            let trace: Vec<DynInst> = (0..200)
                .map(|i| alu(i * 4, (i % 8 + 1) as usize, 0))
                .collect();
            let mut cpu = Processor::new(cfg(scheme), trace.into_iter());
            let stats = cpu.run_to_completion();
            assert_eq!(stats.committed, 200, "{scheme:?}");
            assert!(
                stats.ipc() > 1.0,
                "{scheme:?}: independent ALUs reach IPC {}",
                stats.ipc()
            );
        }
    }

    #[test]
    fn dependent_chain_serialises() {
        // r1 <- r1 chains: one per cycle at best.
        for scheme in all_schemes() {
            let trace: Vec<DynInst> = (0..100).map(|i| alu(i * 4, 1, 1)).collect();
            let mut cpu = Processor::new(cfg(scheme), trace.into_iter());
            let stats = cpu.run_to_completion();
            assert_eq!(stats.committed, 100);
            assert!(
                stats.ipc() <= 1.05,
                "{scheme:?}: dependent chain cannot beat 1 IPC, got {}",
                stats.ipc()
            );
        }
    }

    #[test]
    fn load_hits_and_misses_complete() {
        for scheme in all_schemes() {
            // Two loads to the same line (miss + merge/hit), one far away.
            let trace = vec![
                load(0x0, 1, 0x1000),
                load(0x4, 2, 0x1008),
                load(0x8, 3, 0x20000),
                alu(0xc, 4, 1),
            ];
            let mut cpu = Processor::new(cfg(scheme), trace.into_iter());
            let stats = cpu.run_to_completion();
            assert_eq!(stats.committed, 4, "{scheme:?}");
            assert!(stats.cache.misses >= 2, "{scheme:?}");
            assert!(stats.cycles > 50, "{scheme:?}: a miss costs 50 cycles");
        }
    }

    #[test]
    fn store_load_forwarding_avoids_cache() {
        for scheme in all_schemes() {
            let trace = vec![
                store(0x0, 1, 0x4000),
                load(0x4, 2, 0x4000), // same address: forwards
            ];
            let mut cpu = Processor::new(cfg(scheme), trace.into_iter());
            let stats = cpu.run_to_completion();
            assert_eq!(stats.committed, 2, "{scheme:?}");
            assert!(
                stats.lsq.forwards >= 1 || stats.cache.hits + stats.cache.misses <= 1,
                "{scheme:?}: the load should forward, not read the cache"
            );
        }
    }

    #[test]
    fn memory_violation_triggers_reexecution() {
        // The store's data register r9 is produced by a slow divide, so
        // the load to the same address races ahead and must re-execute.
        let div = DynInst::new(
            0x0,
            Inst::new(OpClass::IntDiv)
                .with_dest(LogicalReg::int(9))
                .with_src1(LogicalReg::int(1)),
        );
        // Store address depends on the divide too (base r9), so the store
        // cannot resolve before the load performs.
        let slow_store = DynInst::new(
            0x4,
            Inst::new(OpClass::Store)
                .with_src1(LogicalReg::int(9))
                .with_src2(LogicalReg::int(9)),
        )
        .with_mem(MemAccess::word(0x4000));
        let racy_load = load(0x8, 2, 0x4000);
        for scheme in all_schemes() {
            let trace = vec![div, slow_store, racy_load];
            let mut cpu = Processor::new(cfg(scheme), trace.into_iter());
            let stats = cpu.run_to_completion();
            assert_eq!(stats.committed, 3, "{scheme:?}");
            assert_eq!(stats.memory_reexecutions, 1, "{scheme:?}");
            assert_eq!(stats.lsq.violations, 1, "{scheme:?}");
        }
    }

    #[test]
    fn conventional_stalls_when_registers_scarce() {
        // 34 physical registers = 2 spare. A long fdiv chain holds
        // registers; rename must stall.
        let mut trace = vec![fp_chain_inst(0, OpClass::FpDiv)];
        for i in 1..40 {
            trace.push(fp_chain_inst(i * 4, OpClass::FpAdd));
        }
        let c = SimConfig::builder()
            .scheme(RenameScheme::Conventional)
            .physical_regs(34)
            .build();
        let mut cpu = Processor::new(c, trace.into_iter());
        let stats = cpu.run_to_completion();
        assert_eq!(stats.committed, 40);
        assert!(stats.fp.rename_stalls > 0, "expected rename stalls");
    }

    #[test]
    fn vp_writeback_reexecutes_when_registers_scarce() {
        // 34 physical registers, NRR 1: plenty of completions will find
        // no register and re-execute — but everything still commits.
        let mut trace = Vec::new();
        for i in 0..64 {
            // Independent FP adds writing different registers: they all
            // complete around the same time and fight for 2 spare regs.
            trace.push(DynInst::new(
                i * 4,
                Inst::new(OpClass::FpAdd)
                    .with_dest(LogicalReg::fp((i % 32) as usize))
                    .with_src1(LogicalReg::fp(0)),
            ));
        }
        let c = SimConfig::builder()
            .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 1 })
            .physical_regs(34)
            .build();
        let mut cpu = Processor::new(c, trace.into_iter());
        let stats = cpu.run_to_completion();
        assert_eq!(stats.committed, 64);
        assert!(
            stats.register_reexecutions > 0,
            "scarce registers must cause re-executions"
        );
        assert!(stats.executions_per_commit() > 1.0);
    }

    #[test]
    fn vp_issue_waits_instead_of_reexecuting() {
        let mut trace = Vec::new();
        for i in 0..64 {
            trace.push(DynInst::new(
                i * 4,
                Inst::new(OpClass::FpAdd)
                    .with_dest(LogicalReg::fp((i % 32) as usize))
                    .with_src1(LogicalReg::fp(0)),
            ));
        }
        let c = SimConfig::builder()
            .scheme(RenameScheme::VirtualPhysicalIssue { nrr: 1 })
            .physical_regs(34)
            .build();
        let mut cpu = Processor::new(c, trace.into_iter());
        let stats = cpu.run_to_completion();
        assert_eq!(stats.committed, 64);
        assert_eq!(
            stats.register_reexecutions, 0,
            "issue allocation never squashes"
        );
        assert!(
            stats.issue_allocation_stalls > 0,
            "it stalls in the queue instead"
        );
        assert!((stats.executions_per_commit() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mispredicted_branch_stalls_fetch() {
        // A not-taken-trained predictor meets a taken branch.
        let b = DynInst::new(0x100, Inst::new(OpClass::BranchCond)).with_branch(BranchInfo {
            taken: true,
            next_pc: 0x4000,
        });
        let trace = vec![alu(0xfc, 1, 0), b, alu(0x4000, 2, 0), alu(0x4004, 3, 0)];
        for scheme in all_schemes() {
            let mut cpu = Processor::new(cfg(scheme), trace.clone().into_iter());
            let stats = cpu.run_to_completion();
            assert_eq!(stats.committed, 4, "{scheme:?}");
            assert_eq!(stats.fetch.mispredictions, 1, "{scheme:?}");
            assert!(stats.fetch.stall_cycles > 0, "{scheme:?}");
        }
    }

    #[test]
    fn wrong_path_injection_recovers_precisely() {
        let b = DynInst::new(0x100, Inst::new(OpClass::BranchCond)).with_branch(BranchInfo {
            taken: true,
            next_pc: 0x4000,
        });
        let mut trace = vec![b];
        for i in 0..50 {
            trace.push(alu(0x4000 + i * 4, (i % 8 + 1) as usize, 0));
        }
        for scheme in all_schemes() {
            let c = SimConfig::builder()
                .scheme(scheme)
                .wrong_path_injection(true)
                .build();
            let mut cpu = Processor::new(c, trace.clone().into_iter());
            let stats = cpu.run_to_completion();
            assert_eq!(stats.committed, 51, "{scheme:?}");
            assert!(
                stats.wrong_path_squashed > 0,
                "{scheme:?}: wrong path was fetched"
            );
            assert!(stats.fetch.wrong_path_fetched > 0, "{scheme:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        for scheme in all_schemes() {
            let mk = || {
                let mut t = Vec::new();
                for i in 0..300u64 {
                    match i % 5 {
                        0 => t.push(load(i * 4, (i % 7 + 1) as usize, 0x1000 + (i * 24) % 65536)),
                        1 => t.push(store(i * 4, 1, 0x2000 + (i * 40) % 65536)),
                        2 => t.push(fp_chain_inst(i * 4, OpClass::FpMul)),
                        _ => t.push(alu(i * 4, (i % 8 + 9) as usize, (i % 3) as usize)),
                    }
                }
                t
            };
            let a = Processor::new(cfg(scheme), mk().into_iter()).run_to_completion();
            let b = Processor::new(cfg(scheme), mk().into_iter()).run_to_completion();
            assert_eq!(a, b, "{scheme:?}: simulation must be deterministic");
        }
    }

    #[test]
    fn warm_up_resets_the_window() {
        let trace: Vec<DynInst> = (0..400).map(|i| alu(i * 4, 1, 1)).collect();
        let mut cpu = Processor::new(cfg(RenameScheme::Conventional), trace.into_iter());
        cpu.warm_up(100);
        let s0 = cpu.stats();
        assert_eq!(s0.committed, 0);
        let s = cpu.run_to_completion();
        assert_eq!(s.committed, 300);
        assert!(s.cycles > 0 && s.cycles < cpu.cycle());
    }

    #[test]
    fn vp_commit_delay_costs_cycles() {
        let trace: Vec<DynInst> = (0..500).map(|i| alu(i * 4, 1, 1)).collect();
        let base = cfg(RenameScheme::VirtualPhysicalWriteback { nrr: 32 });
        let mut delayed = base.clone();
        delayed.vp_commit_delay = true;
        let fast = Processor::new(base, trace.clone().into_iter()).run_to_completion();
        let slow = Processor::new(delayed, trace.into_iter()).run_to_completion();
        assert!(slow.cycles >= fast.cycles, "delay cannot speed things up");
    }

    #[test]
    fn paper_motivating_example_register_pressure() {
        // §3.1: load f2; fdiv f2,f2,f10; fmul f2,f2,f12; fadd f2,f2,f1 —
        // with late allocation each register is held far shorter. Compare
        // total FP hold cycles between conventional and VP write-back.
        let mk = || {
            vec![
                DynInst::new(
                    0x0,
                    Inst::new(OpClass::Load)
                        .with_dest(LogicalReg::fp(2))
                        .with_src1(LogicalReg::int(6)),
                )
                .with_mem(MemAccess::word(0x20000)),
                fp_chain_inst(0x4, OpClass::FpDiv),
                fp_chain_inst(0x8, OpClass::FpMul),
                fp_chain_inst(0xc, OpClass::FpAdd),
            ]
        };
        let conv =
            Processor::new(cfg(RenameScheme::Conventional), mk().into_iter()).run_to_completion();
        let vp = Processor::new(
            cfg(RenameScheme::VirtualPhysicalWriteback { nrr: 32 }),
            mk().into_iter(),
        )
        .run_to_completion();
        assert_eq!(conv.committed, 4);
        assert_eq!(vp.committed, 4);
        assert!(
            vp.fp.hold_cycles * 2 < conv.fp.hold_cycles,
            "late allocation must slash register pressure: vp={} conv={}",
            vp.fp.hold_cycles,
            conv.fp.hold_cycles
        );
    }

    #[test]
    fn observer_never_perturbs_stats() {
        // A mixed trace (ALU chains, loads, stores, branches) must produce
        // bit-identical SimStats with and without a live observer attached —
        // the observer only copies primitives out of the pipeline.
        use vpr_obs::SimObserver;
        let mut trace = Vec::new();
        for i in 0..120u64 {
            trace.push(alu(i * 32, (i % 8 + 1) as usize, (i % 4) as usize));
            trace.push(load(i * 32 + 4, 9, 0x1000 + (i % 16) * 8));
            trace.push(store(i * 32 + 8, 9, 0x8000 + (i % 8) * 64));
            trace.push(
                DynInst::new(
                    i * 32 + 12,
                    Inst::new(OpClass::BranchCond).with_src1(LogicalReg::int(9)),
                )
                .with_branch(BranchInfo {
                    taken: i % 3 == 0,
                    next_pc: (i + 1) * 32,
                }),
            );
        }
        for scheme in all_schemes() {
            let plain = Processor::new(cfg(scheme), trace.clone().into_iter()).run_to_completion();
            let mut observed = Processor::with_observer(
                cfg(scheme),
                trace.clone().into_iter(),
                SimObserver::with_trace(vpr_obs::PipelineTrace::new(
                    256,
                    OpClass::ALL.iter().map(|o| o.to_string()).collect(),
                )),
            );
            let traced = observed.run_to_completion();
            assert_eq!(plain, traced, "{scheme:?}: observer must be invisible");
            let obs = observed.into_observer();
            assert_eq!(obs.metrics.committed, traced.committed, "{scheme:?}");
            assert!(!obs.trace.as_ref().unwrap().is_empty(), "{scheme:?}");
        }
    }
}

#[cfg(test)]
mod early_release_tests {
    use super::*;
    use vpr_isa::{DynInst, Inst, LogicalReg, MemAccess};

    fn chain_trace(n: u64) -> Vec<DynInst> {
        // load f2 (missing), then a dependent FP chain rewriting f2 — the
        // §3.1 pattern that exposes both waste intervals.
        (0..n)
            .flat_map(|i| {
                let pc = 0x1000 + 16 * i;
                vec![
                    DynInst::new(
                        pc,
                        Inst::new(OpClass::Load)
                            .with_dest(LogicalReg::fp(2))
                            .with_src1(LogicalReg::int(6)),
                    )
                    .with_mem(MemAccess::word(0x10_0000 + 64 * i)),
                    DynInst::new(
                        pc + 4,
                        Inst::new(OpClass::FpDiv)
                            .with_dest(LogicalReg::fp(2))
                            .with_src1(LogicalReg::fp(2))
                            .with_src2(LogicalReg::fp(10)),
                    ),
                    DynInst::new(
                        pc + 8,
                        Inst::new(OpClass::FpMul)
                            .with_dest(LogicalReg::fp(2))
                            .with_src1(LogicalReg::fp(2))
                            .with_src2(LogicalReg::fp(12)),
                    ),
                ]
            })
            .collect()
    }

    fn run(scheme: RenameScheme) -> SimStats {
        let config = SimConfig::builder().scheme(scheme).build();
        Processor::new(config, chain_trace(64).into_iter()).run_to_completion()
    }

    #[test]
    fn early_release_commits_everything() {
        let s = run(RenameScheme::ConventionalEarlyRelease);
        assert_eq!(s.committed, 192);
        assert!(s.early_releases > 0, "superseded+read registers free early");
    }

    #[test]
    fn early_release_cuts_pressure_vs_conventional() {
        let conv = run(RenameScheme::Conventional);
        let er = run(RenameScheme::ConventionalEarlyRelease);
        assert_eq!(conv.committed, er.committed);
        assert!(
            er.fp.hold_cycles < conv.fp.hold_cycles,
            "early release must shrink the pressure integral: {} vs {}",
            er.fp.hold_cycles,
            conv.fp.hold_cycles
        );
        // Conservation: every allocation is eventually released (the
        // trace drains completely, so only the 32 architectural mappings
        // remain live — which were boot-allocated, not counted).
        assert_eq!(er.fp.allocations, er.fp.frees);
    }

    #[test]
    fn vp_writeback_still_holds_least() {
        // The paper's two waste intervals: early release removes the
        // read-to-next-writer-commit tail; VP write-back removes the
        // decode-to-writeback head, which dominates for long-latency
        // chains like this one.
        let er = run(RenameScheme::ConventionalEarlyRelease);
        let vp = run(RenameScheme::VirtualPhysicalWriteback { nrr: 32 });
        assert!(
            vp.fp.hold_cycles < er.fp.hold_cycles,
            "VP write-back should beat early release here: {} vs {}",
            vp.fp.hold_cycles,
            er.fp.hold_cycles
        );
    }

    #[test]
    fn early_release_rejects_wrong_path_injection() {
        let mut b = SimConfig::builder();
        b.scheme(RenameScheme::ConventionalEarlyRelease)
            .wrong_path_injection(true);
        assert!(b.try_build().is_err());
    }

    #[test]
    fn early_release_survives_memory_reexecution() {
        // A violated load re-executes and re-reads its sources: counters
        // must re-arm rather than underflow or double free.
        let div = DynInst::new(
            0x0,
            Inst::new(OpClass::IntDiv)
                .with_dest(LogicalReg::int(9))
                .with_src1(LogicalReg::int(1)),
        );
        let slow_store = DynInst::new(
            0x4,
            Inst::new(OpClass::Store)
                .with_src1(LogicalReg::int(9))
                .with_src2(LogicalReg::int(9)),
        )
        .with_mem(MemAccess::word(0x4000));
        let racy_load = DynInst::new(
            0x8,
            Inst::new(OpClass::Load)
                .with_dest(LogicalReg::int(2))
                .with_src1(LogicalReg::int(30)),
        )
        .with_mem(MemAccess::word(0x4000));
        let consumer = DynInst::new(
            0xc,
            Inst::new(OpClass::IntAlu)
                .with_dest(LogicalReg::int(3))
                .with_src1(LogicalReg::int(2)),
        );
        let config = SimConfig::builder()
            .scheme(RenameScheme::ConventionalEarlyRelease)
            .build();
        let trace = vec![div, slow_store, racy_load, consumer];
        let s = Processor::new(config, trace.into_iter()).run_to_completion();
        assert_eq!(s.committed, 4);
        assert_eq!(s.memory_reexecutions, 1);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use vpr_isa::{DynInst, Inst, LogicalReg, MemAccess};
    use vpr_mem::CacheConfig;

    fn alu(pc: u64, dest: usize, src: usize) -> DynInst {
        DynInst::new(
            pc,
            Inst::new(OpClass::IntAlu)
                .with_dest(LogicalReg::int(dest))
                .with_src1(LogicalReg::int(src)),
        )
    }

    fn store(pc: u64, addr: u64) -> DynInst {
        DynInst::new(
            pc,
            Inst::new(OpClass::Store)
                .with_src1(LogicalReg::int(1))
                .with_src2(LogicalReg::int(30)),
        )
        .with_mem(MemAccess::word(addr))
    }

    fn all_schemes() -> [RenameScheme; 4] {
        [
            RenameScheme::Conventional,
            RenameScheme::ConventionalEarlyRelease,
            RenameScheme::VirtualPhysicalIssue { nrr: 1 },
            RenameScheme::VirtualPhysicalWriteback { nrr: 1 },
        ]
    }

    #[test]
    fn width_one_machine_works() {
        for scheme in all_schemes() {
            let cfg = SimConfig::builder().scheme(scheme).width(1).build();
            let trace: Vec<DynInst> = (0..50).map(|i| alu(i * 4, 1, 1)).collect();
            let stats = Processor::new(cfg, trace.into_iter()).run_to_completion();
            assert_eq!(stats.committed, 50, "{scheme:?}");
            assert!(stats.cycles >= 50, "{scheme:?}: at most 1 IPC");
        }
    }

    #[test]
    fn tiny_rob_works() {
        for scheme in all_schemes() {
            let cfg = SimConfig::builder().scheme(scheme).rob_size(4).build();
            let trace: Vec<DynInst> = (0..100)
                .map(|i| alu(i * 4, (i % 8 + 1) as usize, 0))
                .collect();
            let stats = Processor::new(cfg, trace.into_iter()).run_to_completion();
            assert_eq!(stats.committed, 100, "{scheme:?}");
            assert!(
                stats.rob_full_stalls > 0,
                "{scheme:?}: a 4-entry ROB must stall"
            );
        }
    }

    #[test]
    fn minimal_register_file_works() {
        // 33 physical registers: a single spare.
        for scheme in [
            RenameScheme::Conventional,
            RenameScheme::ConventionalEarlyRelease,
            RenameScheme::VirtualPhysicalIssue { nrr: 1 },
            RenameScheme::VirtualPhysicalWriteback { nrr: 1 },
        ] {
            let cfg = SimConfig::builder()
                .scheme(scheme)
                .physical_regs(33)
                .build();
            let trace: Vec<DynInst> = (0..60).map(|i| alu(i * 4, (i % 5) as usize, 2)).collect();
            let stats = Processor::new(cfg, trace.into_iter()).run_to_completion();
            assert_eq!(
                stats.committed, 60,
                "{scheme:?}: single-spare file must not deadlock"
            );
        }
    }

    #[test]
    fn store_buffer_full_stalls_commit_but_progresses() {
        // A tiny store buffer + all-miss stores: commit must stall on the
        // buffer yet everything drains.
        let mut cfg = SimConfig::builder()
            .scheme(RenameScheme::Conventional)
            .build();
        cfg.store_buffer_size = 1;
        cfg.cache = CacheConfig {
            mshrs: 1,
            ..CacheConfig::default()
        };
        let trace: Vec<DynInst> = (0..30).map(|i| store(i * 4, 0x4000 + i * 4096)).collect();
        let stats = Processor::new(cfg, trace.into_iter()).run_to_completion();
        assert_eq!(stats.committed, 30);
        assert!(
            stats.store_buffer_stalls > 0,
            "1-entry buffer must stall commit"
        );
    }

    #[test]
    fn class_independence_one_file_exhausted() {
        // §3.3: "if the processor runs out of a type of registers, the
        // processor is allowed to continue executing instructions of the
        // other type". Saturate the FP file with slow dividers while int
        // work flows.
        let mut trace = Vec::new();
        for i in 0..40u64 {
            trace.push(DynInst::new(
                i * 8,
                Inst::new(OpClass::FpDiv)
                    .with_dest(LogicalReg::fp((i % 32) as usize))
                    .with_src1(LogicalReg::fp(0)),
            ));
            trace.push(alu(i * 8 + 4, (i % 8 + 1) as usize, 0));
        }
        let cfg = SimConfig::builder()
            .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 2 })
            .physical_regs(36)
            .build();
        let stats = Processor::new(cfg, trace.into_iter()).run_to_completion();
        assert_eq!(stats.committed, 80);
        // The int side must not suffer register re-executions.
        assert!(stats.fp.allocations > 0 && stats.int.allocations > 0);
    }

    #[test]
    fn write_port_saturation_defers_completions() {
        // 16 independent 1-cycle ALUs complete in a burst wider than the
        // 8 write ports when issue width allows; shrink ports to force
        // deferrals.
        let mut cfg = SimConfig::builder()
            .scheme(RenameScheme::Conventional)
            .build();
        cfg.regfile_write_ports = 1;
        let trace: Vec<DynInst> = (0..64)
            .map(|i| alu(i * 4, (i % 8 + 1) as usize, 0))
            .collect();
        let stats = Processor::new(cfg, trace.into_iter()).run_to_completion();
        assert_eq!(stats.committed, 64);
        assert!(
            stats.writeback_port_stalls > 0,
            "a single write port must defer parallel completions"
        );
    }

    #[test]
    fn nops_commit_without_executing() {
        let trace: Vec<DynInst> = (0..20)
            .map(|i| DynInst::new(i * 4, Inst::new(OpClass::Nop)))
            .collect();
        for scheme in all_schemes() {
            let cfg = SimConfig::builder().scheme(scheme).build();
            let stats = Processor::new(cfg, trace.clone().into_iter()).run_to_completion();
            assert_eq!(stats.committed, 20, "{scheme:?}");
            assert_eq!(stats.executions, 0, "{scheme:?}: nops never issue");
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        for scheme in all_schemes() {
            let cfg = SimConfig::builder().scheme(scheme).build();
            let stats = Processor::new(cfg, std::iter::empty()).run_to_completion();
            assert_eq!(stats.committed, 0, "{scheme:?}");
        }
    }

    #[test]
    fn run_cycles_stops_on_time() {
        let trace: Vec<DynInst> = (0..100_000).map(|i| alu(i * 4, 1, 1)).collect();
        let cfg = SimConfig::builder()
            .scheme(RenameScheme::Conventional)
            .build();
        let mut cpu = Processor::new(cfg, trace.into_iter());
        let stats = cpu.run_cycles(500);
        assert_eq!(stats.cycles, 500);
        assert!(!cpu.is_done());
    }

    #[test]
    fn run_cycles_stops_on_time_inside_an_idle_stretch() {
        // A missing load plus a dependent consumer: once the load's EA
        // resolves, the machine is fully quiescent until the 50-cycle
        // fill returns, so idle fast-forwarding engages. A cycle budget
        // that lands inside that stretch must still be honoured exactly
        // (and repeatedly: a second capped run must not double-count).
        for scheme in all_schemes() {
            let trace = vec![
                DynInst::new(
                    0x0,
                    Inst::new(OpClass::Load)
                        .with_dest(LogicalReg::int(1))
                        .with_src1(LogicalReg::int(30)),
                )
                .with_mem(MemAccess::word(0x20000)),
                alu(0x4, 2, 1),
            ];
            let cfg = SimConfig::builder().scheme(scheme).build();
            let mut cpu = Processor::new(cfg, trace.clone().into_iter());
            let stats = cpu.run_cycles(20);
            assert_eq!(stats.cycles, 20, "{scheme:?}: capped mid-idle");
            assert!(!cpu.is_done(), "{scheme:?}");
            let stats = cpu.run_cycles(10);
            assert_eq!(
                stats.cycles, 30,
                "{scheme:?}: second cap accumulates exactly"
            );
            // The budget-capped path must agree with an uncapped run of
            // the same trace cycle for cycle.
            let full = Processor::new(
                SimConfig::builder().scheme(scheme).build(),
                trace.into_iter(),
            )
            .run_to_completion();
            let rest = cpu.run_to_completion();
            assert_eq!(
                full, rest,
                "{scheme:?}: capped stepping must not perturb stats"
            );
        }
    }

    #[test]
    fn unconditional_jumps_flow_through() {
        use vpr_isa::BranchInfo;
        let mut trace = Vec::new();
        let mut pc = 0u64;
        for i in 0..30u64 {
            trace.push(alu(pc, (i % 8 + 1) as usize, 0));
            pc += 4;
            let target = pc + 0x100;
            trace.push(
                DynInst::new(pc, Inst::new(OpClass::BranchUncond)).with_branch(BranchInfo {
                    taken: true,
                    next_pc: target,
                }),
            );
            pc = target;
        }
        for scheme in all_schemes() {
            let cfg = SimConfig::builder().scheme(scheme).build();
            let stats = Processor::new(cfg, trace.clone().into_iter()).run_to_completion();
            assert_eq!(stats.committed, 60, "{scheme:?}");
            assert_eq!(
                stats.fetch.mispredictions, 0,
                "{scheme:?}: jumps never mispredict"
            );
        }
    }
}
