//! Property tests for the simulation kernel's throughput data structures:
//! the calendar event queue and the indexed-wakeup instruction queue must
//! behave exactly like the simple `BTreeMap`-based reference models they
//! replaced, for arbitrary operation sequences — not just the access
//! patterns the pipeline happens to produce.

use proptest::prelude::*;
use std::collections::BTreeMap;
use vpr_core::rename::{PhysReg, RenamedSrc, SrcState, VpReg};
use vpr_core::{CalendarQueue, Iq, IqEntry};
use vpr_isa::{OpClass, RegClass};

// ----------------------------------------------------------------------
// Calendar queue vs BTreeMap reference
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive a small-horizon calendar queue (so the overflow path is
    /// exercised constantly) and a `BTreeMap<u64, Vec<u32>>` through the
    /// same schedule/advance script: every drain must yield the same
    /// events in the same order, and `next_occupied` must agree with the
    /// reference's minimum key at every step.
    #[test]
    fn calendar_queue_matches_btreemap_reference(
        deltas in prop::collection::vec((1u64..200, 0u64..3), 1..300),
        horizon in 2usize..64,
    ) {
        let mut cq: CalendarQueue<u32> = CalendarQueue::with_horizon(horizon);
        let mut reference: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut now = 0u64;
        let mut drained = Vec::new();
        for (i, &(delta, advance)) in deltas.iter().enumerate() {
            // Schedule one uniquely-tagged event `delta` cycles out.
            let payload = i as u32;
            cq.schedule(now, now + delta, payload);
            reference.entry(now + delta).or_default().push(payload);
            // Advance 0..3 cycles, draining each cycle on the way.
            for _ in 0..advance {
                now += 1;
                drained.clear();
                cq.drain_at(now, &mut drained);
                let expected = reference.remove(&now).unwrap_or_default();
                prop_assert_eq!(&drained, &expected, "drain at cycle {}", now);
                let ref_next = reference.keys().next().copied();
                prop_assert_eq!(cq.next_occupied(now), ref_next);
                prop_assert_eq!(cq.next_at_or_after(now + 1), ref_next);
                let ref_len: usize = reference.values().map(Vec::len).sum();
                prop_assert_eq!(cq.len(), ref_len);
            }
        }
        // Drain out: jump straight to each remaining occupied cycle, the
        // way idle fast-forwarding does.
        while let Some(at) = cq.next_occupied(now) {
            prop_assert_eq!(Some(at), reference.keys().next().copied());
            now = at;
            drained.clear();
            cq.drain_at(now, &mut drained);
            let expected = reference.remove(&now).expect("reference agrees");
            prop_assert_eq!(&drained, &expected);
        }
        prop_assert!(cq.is_empty());
        prop_assert!(reference.is_empty());
    }
}

// ----------------------------------------------------------------------
// Indexed-wakeup IQ vs scan-based reference
// ----------------------------------------------------------------------

/// The pre-optimisation instruction queue: a `BTreeMap` ordered by
/// sequence number, woken by scanning every entry.
#[derive(Default)]
struct ReferenceIq {
    entries: BTreeMap<u64, IqEntry>,
}

impl ReferenceIq {
    fn insert(&mut self, entry: IqEntry) {
        assert!(self.entries.insert(entry.seq, entry).is_none());
    }

    fn remove(&mut self, seq: u64) -> Option<IqEntry> {
        self.entries.remove(&seq)
    }

    fn wakeup<F: Fn(&RenamedSrc) -> Option<PhysReg>>(&mut self, matches: F) -> usize {
        let mut woken = 0;
        for e in self.entries.values_mut() {
            for s in e.srcs.iter_mut().flatten() {
                if let Some(preg) = matches(s) {
                    s.state = SrcState::Ready(preg);
                    woken += 1;
                }
            }
        }
        woken
    }

    fn wakeup_phys(&mut self, class: RegClass, preg: PhysReg) -> usize {
        self.wakeup(|s| (s.class == class && s.state == SrcState::WaitPhys(preg)).then_some(preg))
    }

    fn wakeup_vp(&mut self, class: RegClass, vp: VpReg, preg: PhysReg) -> usize {
        self.wakeup(|s| (s.class == class && s.state == SrcState::WaitVp(vp)).then_some(preg))
    }

    fn squash_younger_than(&mut self, seq: u64) {
        self.entries.split_off(&(seq + 1));
    }

    fn all(&self) -> Vec<IqEntry> {
        self.entries.values().copied().collect()
    }

    fn ready_seqs(&self) -> Vec<u64> {
        self.entries
            .values()
            .filter(|e| e.is_ready())
            .map(|e| e.seq)
            .collect()
    }
}

/// One scripted queue operation.
#[derive(Debug, Clone, Copy)]
enum IqOp {
    /// Insert a fresh entry (sequence chosen by the driver) whose two
    /// operand slots are described by `(kind, class_bit, tag)` codes.
    Insert([(u8, bool, u16); 2]),
    /// Remove the entry with the n-th smallest live sequence (mod len).
    Remove(u8),
    /// Re-insert the removed entry under a *recycled* sequence number
    /// (wrong-path recovery reuses sequence numbers).
    Reinsert,
    /// Broadcast a physical-register wake-up.
    WakePhys(bool, u16),
    /// Broadcast a VP-tag binding wake-up.
    WakeVp(bool, u16, u16),
    /// Squash everything younger than the n-th smallest live sequence.
    Squash(u8),
}

fn class_of(bit: bool) -> RegClass {
    if bit {
        RegClass::Fp
    } else {
        RegClass::Int
    }
}

/// Decodes an operand description: kind 0 = absent, 1 = ready, 2 = wait
/// on a physical register, 3 = wait on a VP tag.
fn src_of(kind: u8, class_bit: bool, tag: u16) -> Option<RenamedSrc> {
    let class = class_of(class_bit);
    match kind % 4 {
        0 => None,
        1 => Some(RenamedSrc {
            class,
            state: SrcState::Ready(PhysReg(tag)),
        }),
        2 => Some(RenamedSrc {
            class,
            state: SrcState::WaitPhys(PhysReg(tag)),
        }),
        _ => Some(RenamedSrc {
            class,
            state: SrcState::WaitVp(VpReg(tag)),
        }),
    }
}

fn op_strategy() -> impl Strategy<Value = IqOp> {
    let operand = (0u8..4, any::<bool>(), 0u16..24);
    prop_oneof![
        (operand.clone(), operand).prop_map(|(a, b)| IqOp::Insert([a, b])),
        (0u8..255).prop_map(IqOp::Remove),
        Just(IqOp::Reinsert),
        (any::<bool>(), 0u16..24).prop_map(|(c, t)| IqOp::WakePhys(c, t)),
        (any::<bool>(), 0u16..24, 0u16..24).prop_map(|(c, t, p)| IqOp::WakeVp(c, t, p)),
        (0u8..255).prop_map(IqOp::Squash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive the slab/consumer-list queue and the scan-based reference
    /// through the same random script — inserts (fresh and recycled
    /// sequence numbers), removals, both wake-up channels, squashes — and
    /// demand identical observable state after every operation: length,
    /// age-ordered contents, ready set, and per-broadcast woken counts.
    #[test]
    fn indexed_wakeup_iq_matches_scan_reference(
        ops in prop::collection::vec(op_strategy(), 1..150),
        capacity in 1usize..24,
    ) {
        let mut iq = Iq::new(capacity);
        let mut reference = ReferenceIq::default();
        let mut next_seq = 0u64;
        let mut parked: Option<IqEntry> = None;
        for &op in &ops {
            match op {
                IqOp::Insert(descr) => {
                    if iq.is_full() {
                        continue;
                    }
                    let srcs = [
                        src_of(descr[0].0, descr[0].1, descr[0].2),
                        src_of(descr[1].0, descr[1].1, descr[1].2),
                    ];
                    let entry = IqEntry { seq: next_seq, op: OpClass::IntAlu, srcs, alloc_class: None };
                    next_seq += 1;
                    iq.insert(entry);
                    reference.insert(entry);
                }
                IqOp::Remove(pick) => {
                    let live: Vec<u64> = iq.iter().map(|e| e.seq).collect();
                    if live.is_empty() {
                        continue;
                    }
                    let seq = live[pick as usize % live.len()];
                    let a = iq.remove(seq);
                    let b = reference.remove(seq);
                    prop_assert_eq!(a, b);
                    parked = a;
                }
                IqOp::Reinsert => {
                    // Re-execution: the same sequence number comes back.
                    let Some(entry) = parked.take() else { continue };
                    if iq.is_full() {
                        continue;
                    }
                    iq.insert(entry);
                    reference.insert(entry);
                }
                IqOp::WakePhys(class_bit, tag) => {
                    let class = class_of(class_bit);
                    let woke_a = iq.wakeup_phys(class, PhysReg(tag));
                    let woke_b = reference.wakeup_phys(class, PhysReg(tag));
                    prop_assert_eq!(woke_a, woke_b, "phys wake {:?} p{}", class, tag);
                }
                IqOp::WakeVp(class_bit, tag, preg) => {
                    let class = class_of(class_bit);
                    let woke_a = iq.wakeup_vp(class, VpReg(tag), PhysReg(preg));
                    let woke_b = reference.wakeup_vp(class, VpReg(tag), PhysReg(preg));
                    prop_assert_eq!(woke_a, woke_b, "vp wake {:?} v{}", class, tag);
                }
                IqOp::Squash(pick) => {
                    let live: Vec<u64> = iq.iter().map(|e| e.seq).collect();
                    if live.is_empty() {
                        continue;
                    }
                    let seq = live[pick as usize % live.len()];
                    iq.squash_younger_than(seq);
                    reference.squash_younger_than(seq);
                    // Recycled sequence numbers after a squash.
                    next_seq = seq + 1;
                    parked = None;
                }
            }
            // Full observable-state agreement after every operation.
            prop_assert_eq!(iq.len(), reference.entries.len());
            let contents: Vec<IqEntry> = iq.iter().copied().collect();
            prop_assert_eq!(contents, reference.all());
            prop_assert_eq!(iq.ready_seqs(), reference.ready_seqs());
            prop_assert_eq!(iq.ready_len(), reference.ready_seqs().len());
            let ready_via_iter: Vec<u64> = iq.ready_iter().map(|e| e.seq).collect();
            prop_assert_eq!(ready_via_iter, reference.ready_seqs());
        }
    }
}
