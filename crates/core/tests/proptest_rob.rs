//! Property tests for the hot/cold-split reorder buffer: for arbitrary
//! push / pop / drop / mutate scripts, the ring-indexed parallel-array
//! implementation must behave exactly like a naive `VecDeque<RobEntry>`
//! oracle — including across ring wrap-around, tail squashes after a
//! wrap, and interleaved hot-record mutation.

use proptest::prelude::*;
use std::collections::VecDeque;
use vpr_core::{Rob, RobEntry};
use vpr_isa::{DynInst, Inst, MemAccess, OpClass};

/// One step of the random script driving both models.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Dispatch the next sequence number (no-op when full).
    Push,
    /// Commit the oldest entry, comparing the assembled view (no-op when
    /// empty).
    PopHead,
    /// Commit the oldest entry via the index-only hot path.
    DropHead,
    /// Squash the youngest entry, comparing the assembled view.
    PopTail,
    /// Squash the youngest entry via the index-only hot path.
    DropTail,
    /// Flip hot-record state (completed/issued, bump gen/executions) on a
    /// live entry picked by the offset from the head.
    Mutate(u64),
    /// Look up a live entry by head offset and compare every field.
    Lookup(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The repeated Push arms bias the script toward keeping the ring full
    // (the compat prop_oneof! is uniform — no weight syntax).
    prop_oneof![
        Just(Op::Push),
        Just(Op::Push),
        Just(Op::Push),
        Just(Op::PopHead),
        Just(Op::DropHead),
        Just(Op::PopTail),
        Just(Op::DropTail),
        (0u64..16).prop_map(Op::Mutate),
        (0u64..16).prop_map(Op::Lookup),
    ]
}

/// A dispatch-time entry whose cold state is derived from `seq` so any
/// hot/cold ring disagreement shows up as a pc/seq mismatch.
fn fresh_entry(seq: u64) -> RobEntry {
    let op = if seq.is_multiple_of(3) {
        OpClass::Load
    } else {
        OpClass::IntAlu
    };
    let mut di = DynInst::new(seq * 4, Inst::new(op));
    if op == OpClass::Load {
        di = di.with_mem(MemAccess {
            addr: 0x1000 + seq * 8,
            size: 4,
        });
    }
    RobEntry::new(seq, di, seq.is_multiple_of(5), seq.is_multiple_of(7))
}

fn assert_entries_eq(got: &RobEntry, want: &RobEntry) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.seq, want.seq);
    prop_assert_eq!(got.di.pc(), want.di.pc());
    prop_assert_eq!(got.di.op(), want.di.op());
    prop_assert_eq!(got.wrong_path, want.wrong_path);
    prop_assert_eq!(got.mispredicted, want.mispredicted);
    prop_assert_eq!(got.completed, want.completed);
    prop_assert_eq!(got.completed_at, want.completed_at);
    prop_assert_eq!(got.issued, want.issued);
    prop_assert_eq!(got.gen, want.gen);
    prop_assert_eq!(got.mem_phase, want.mem_phase);
    prop_assert_eq!(got.executions, want.executions);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drive the split ROB and a `VecDeque<RobEntry>` oracle through the
    /// same script. Small capacities force constant ring wrap-around.
    #[test]
    fn split_rob_matches_vecdeque_oracle(
        capacity in 1usize..9,
        ops in prop::collection::vec(op_strategy(), 1..400),
    ) {
        let mut rob = Rob::new(capacity);
        let mut oracle: VecDeque<RobEntry> = VecDeque::new();
        let mut next_seq = 100u64;

        for op in ops {
            match op {
                Op::Push => {
                    if !rob.is_full() {
                        // Keep sequences contiguous: continue after the
                        // current tail (squashes rewind next_seq).
                        let seq = oracle.back().map_or(next_seq, |e| e.seq + 1);
                        next_seq = seq + 1;
                        rob.push(fresh_entry(seq));
                        oracle.push_back(fresh_entry(seq));
                    }
                }
                Op::PopHead => {
                    let got = rob.pop_head();
                    let want = oracle.pop_front();
                    prop_assert_eq!(got.is_some(), want.is_some());
                    if let (Some(g), Some(w)) = (got, want) {
                        assert_entries_eq(&g, &w)?;
                    }
                }
                Op::DropHead => {
                    rob.drop_head();
                    oracle.pop_front();
                }
                Op::PopTail => {
                    let got = rob.pop_tail();
                    let want = oracle.pop_back();
                    prop_assert_eq!(got.is_some(), want.is_some());
                    if let (Some(g), Some(w)) = (got, want) {
                        assert_entries_eq(&g, &w)?;
                    }
                }
                Op::DropTail => {
                    rob.drop_tail();
                    oracle.pop_back();
                }
                Op::Mutate(off) => {
                    if !oracle.is_empty() {
                        let k = (off % oracle.len() as u64) as usize;
                        let seq = oracle[k].seq;
                        let h = rob.hot_mut(seq).expect("oracle entry is live");
                        let o = &mut oracle[k];
                        o.completed = !o.completed;
                        h.set_completed(o.completed);
                        o.issued = !o.issued;
                        h.set_issued(o.issued);
                        o.gen += 1;
                        h.gen += 1;
                        o.executions += 1;
                        h.executions += 1;
                        o.completed_at = seq + off;
                        h.completed_at = seq + off;
                    }
                }
                Op::Lookup(off) => {
                    if !oracle.is_empty() {
                        let k = (off % oracle.len() as u64) as usize;
                        let want = &oracle[k];
                        let got = rob.entry(want.seq).expect("oracle entry is live");
                        assert_entries_eq(&got, want)?;
                    }
                }
            }

            // Invariants after every step.
            prop_assert_eq!(rob.len(), oracle.len());
            prop_assert_eq!(rob.is_empty(), oracle.is_empty());
            prop_assert_eq!(rob.head_seq(), oracle.front().map(|e| e.seq));
            prop_assert_eq!(rob.tail_seq(), oracle.back().map(|e| e.seq));
            prop_assert_eq!(rob.hot(next_seq + 1000).is_none(), true);
        }

        // Full sweep: every live entry must assemble identically, in age
        // order, through both iter() and entry().
        let assembled: Vec<RobEntry> = rob.iter().collect();
        prop_assert_eq!(assembled.len(), oracle.len());
        for (got, want) in assembled.iter().zip(&oracle) {
            assert_entries_eq(got, want)?;
            let relooked = rob.entry(want.seq).expect("iter seq is live");
            assert_entries_eq(&relooked, want)?;
        }
    }
}
