//! Property tests for the renaming machinery in isolation: random but
//! well-formed event sequences (rename → allocate → bind → commit /
//! squash) must keep the map tables and free lists consistent.

use proptest::prelude::*;
use vpr_core::rename::VpRenamer;
use vpr_isa::{LogicalReg, RegClass, NUM_LOGICAL_PER_CLASS};

#[derive(Debug, Clone)]
struct InFlight {
    seq: u64,
    logical: LogicalReg,
    vp: vpr_core::rename::VpReg,
    prev_vp: vpr_core::rename::VpReg,
    bound: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive the VP renamer through a random rename/complete/commit
    /// schedule (FIFO commits, like the ROB) and check conservation: after
    /// everything commits, exactly NLR physical registers and NLR tags
    /// remain allocated, and the GMT agrees with the PMT for every
    /// logical register.
    #[test]
    fn vp_renamer_conserves_registers(
        dests in prop::collection::vec(0usize..NUM_LOGICAL_PER_CLASS, 1..120),
        complete_early in prop::collection::vec(any::<bool>(), 120),
        nrr in 1usize..=32,
    ) {
        let mut r = VpRenamer::new(64, 32 + 128, nrr);
        let class = RegClass::Int;
        let mut window: Vec<InFlight> = Vec::new();
        let mut now = 0u64;
        for (i, &d) in dests.iter().enumerate() {
            now += 1;
            // Keep the window below the tag budget (128), like the ROB.
            while window.len() >= 64 {
                commit_oldest(&mut r, &mut window, now);
            }
            let logical = LogicalReg::int(d);
            let seq = i as u64;
            let (vp, prev_vp) = r.rename_dest(logical, seq, now);
            let mut inflight = InFlight { seq, logical, vp, prev_vp, bound: false };
            // Some instructions complete (allocate + bind) immediately.
            if complete_early[i] {
                if let Some(preg) = r.try_allocate(class, seq, now) {
                    r.bind(class, vp, preg);
                    inflight.bound = true;
                }
            }
            window.push(inflight);
        }
        // Drain: complete-if-needed and commit everything in order.
        while !window.is_empty() {
            now += 1;
            commit_oldest(&mut r, &mut window, now);
        }
        // Conservation: only the architectural mappings remain.
        prop_assert_eq!(r.allocated_count(class), NUM_LOGICAL_PER_CLASS);
        prop_assert_eq!(
            r.free_vp_count(class),
            32 + 128 - NUM_LOGICAL_PER_CLASS
        );
        // GMT/PMT agreement for every logical register.
        for l in 0..NUM_LOGICAL_PER_CLASS {
            let e = r.gmt_entry(LogicalReg::int(l));
            prop_assert_eq!(e.preg(), r.pmt_entry(class, e.vp()), "logical r{}", l);
            prop_assert!(e.preg().is_some(), "drained machine: every value produced");
        }
    }
}

fn commit_oldest(r: &mut VpRenamer, window: &mut Vec<InFlight>, now: u64) {
    let mut oldest = window.remove(0);
    let class = oldest.logical.class();
    if !oldest.bound {
        // Completing at commit time: the oldest is always reserved, so
        // allocation cannot fail.
        let preg = r
            .try_allocate(class, oldest.seq, now)
            .expect("oldest instruction is reserved");
        r.bind(class, oldest.vp, preg);
        oldest.bound = true;
    }
    let entrant = window
        .iter()
        .find(|w| w.logical.class() == class && r.nrr(class).pointer().is_some_and(|p| w.seq > p))
        .map(|w| (w.seq, w.bound));
    r.nrr_on_commit(class, oldest.seq, entrant);
    r.on_commit_dest(class, oldest.prev_vp, now);
}
