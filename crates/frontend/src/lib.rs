//! # vpr-frontend — fetch engine and branch prediction
//!
//! The in-order front end of the simulated machine (paper §4.1):
//!
//! * [`BranchHistoryTable`] — 2048-entry table of 2-bit up/down saturating
//!   counters, indexed by branch PC.
//! * [`FetchUnit`] — fetches up to eight *consecutive* instructions per
//!   cycle from a perfect instruction cache (i.e. straight from the trace),
//!   ending a block at a taken branch. Being trace-driven, a mispredicted
//!   conditional branch stalls fetch until the branch resolves in the core
//!   (plus a one-cycle redirect, as with R10000-style checkpoint repair);
//!   optionally the unit synthesises *wrong-path* instructions instead of
//!   stalling, which exercises the renamer's recovery machinery and the
//!   register pressure of mis-speculated work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bht;
mod fetch;
mod wrong_path;

pub use bht::{BhtStats, BranchHistoryTable};
pub use fetch::{FetchStats, FetchUnit, FetchedInst};
pub use wrong_path::WrongPathSynth;
