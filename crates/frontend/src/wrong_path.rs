//! Synthetic wrong-path instruction generation.

use vpr_isa::{DynInst, Inst, LogicalReg, MemAccess, OpClass, NUM_LOGICAL_PER_CLASS};

/// Generates plausible wrong-path instructions after a mispredicted branch.
///
/// Trace-driven simulation only records the committed path, so the
/// instructions a real machine would fetch down the wrong path are not
/// available. When wrong-path injection is enabled, this synthesiser
/// fabricates a deterministic filler stream (ALU ops, loads, FP ops — no
/// further branches) that consumes fetch/rename bandwidth and, crucially
/// for this paper, *rename registers*, until the branch resolves and the
/// core squashes everything younger.
///
/// The generator is a small xorshift PRNG seeded from the mispredicted
/// branch's PC, so runs are reproducible.
#[derive(Debug, Clone)]
pub struct WrongPathSynth {
    state: u64,
    pc: u64,
}

impl WrongPathSynth {
    /// Starts a wrong-path stream after the branch at `branch_pc`.
    pub fn new(branch_pc: u64) -> Self {
        Self {
            // Any nonzero seed works for xorshift; mix the PC in.
            state: branch_pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            pc: branch_pc.wrapping_add(4),
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[inline]
    fn reg(&mut self, fp: bool) -> LogicalReg {
        let idx = (self.next_u64() as usize) % NUM_LOGICAL_PER_CLASS;
        if fp {
            LogicalReg::fp(idx)
        } else {
            LogicalReg::int(idx)
        }
    }

    /// Produces the next synthetic wrong-path instruction.
    pub fn next_inst(&mut self) -> DynInst {
        let pc = self.pc;
        self.pc = self.pc.wrapping_add(4);
        let roll = self.next_u64() % 100;
        if roll < 40 {
            // Integer ALU.
            let d = self.reg(false);
            let s1 = self.reg(false);
            let s2 = self.reg(false);
            DynInst::new(
                pc,
                Inst::new(OpClass::IntAlu)
                    .with_dest(d)
                    .with_src1(s1)
                    .with_src2(s2),
            )
        } else if roll < 65 {
            // Load from a pseudo-random address.
            let d = self.reg(false);
            let s1 = self.reg(false);
            let addr = (self.next_u64() % (1 << 20)) & !7;
            DynInst::new(pc, Inst::new(OpClass::Load).with_dest(d).with_src1(s1))
                .with_mem(MemAccess::word(addr))
        } else if roll < 85 {
            // FP add.
            let d = self.reg(true);
            let s1 = self.reg(true);
            let s2 = self.reg(true);
            DynInst::new(
                pc,
                Inst::new(OpClass::FpAdd)
                    .with_dest(d)
                    .with_src1(s1)
                    .with_src2(s2),
            )
        } else {
            // FP multiply.
            let d = self.reg(true);
            let s1 = self.reg(true);
            let s2 = self.reg(true);
            DynInst::new(
                pc,
                Inst::new(OpClass::FpMul)
                    .with_dest(d)
                    .with_src1(s1)
                    .with_src2(s2),
            )
        }
    }
}

impl vpr_snap::Snap for WrongPathSynth {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.state);
        enc.put_u64(self.pc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            state: dec.take_u64(),
            pc: dec.take_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = WrongPathSynth::new(0x4000);
        let mut b = WrongPathSynth::new(0x4000);
        for _ in 0..64 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = WrongPathSynth::new(0x4000);
        let mut b = WrongPathSynth::new(0x8000);
        let same = (0..32).filter(|_| a.next_inst() == b.next_inst()).count();
        assert!(same < 32, "streams from different PCs should differ");
    }

    #[test]
    fn never_generates_branches_and_pcs_advance() {
        let mut s = WrongPathSynth::new(0x1000);
        let mut pc = 0x1004;
        for _ in 0..256 {
            let di = s.next_inst();
            assert!(!di.op().is_branch());
            assert_eq!(di.pc(), pc);
            pc += 4;
            if di.op().is_mem() {
                assert!(di.mem().is_some());
            }
        }
    }
}
