//! The fetch unit.

use crate::{BranchHistoryTable, WrongPathSynth};
use vpr_isa::{DynInst, InstStream, OpClass};

/// One instruction delivered by the fetch unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedInst {
    /// The dynamic instruction.
    pub di: DynInst,
    /// For conditional branches, the predicted direction.
    pub predicted_taken: Option<bool>,
    /// True when the prediction was wrong: fetch has stopped behind this
    /// branch and the core must call [`FetchUnit::resolve_branch`] when it
    /// executes.
    pub mispredicted: bool,
    /// True for synthesised wrong-path instructions (never committed; the
    /// core squashes them when the triggering branch resolves).
    pub wrong_path: bool,
}

/// Fetch-engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Correct-path instructions delivered.
    pub fetched: u64,
    /// Wrong-path instructions delivered (injection mode only).
    pub wrong_path_fetched: u64,
    /// Conditional branches fetched.
    pub cond_branches: u64,
    /// Conditional branches whose predicted direction was wrong.
    pub mispredictions: u64,
    /// Fetch blocks ended early by a (predicted-)taken branch.
    pub taken_breaks: u64,
    /// Cycles in which fetch delivered nothing because it was waiting for
    /// a mispredicted branch to resolve.
    pub stall_cycles: u64,
}

/// Fetches up to `width` consecutive instructions per cycle from an
/// [`InstStream`], predicting conditional branches with a
/// [`BranchHistoryTable`].
///
/// ### Trace-driven misprediction handling
///
/// The stream contains only the committed path. When the predictor
/// disagrees with the recorded outcome of a conditional branch, the machine
/// would fetch down the wrong path; this unit models that in one of two
/// ways:
///
/// * **Stall mode** (default, matches the paper's methodology): fetch
///   delivers the branch and then nothing until the core reports the branch
///   resolved ([`FetchUnit::resolve_branch`]); fetch resumes the following
///   cycle (one-cycle redirect, R10000-style checkpoint repair).
/// * **Injection mode** ([`FetchUnit::with_wrong_path_injection`]): fetch
///   delivers synthesised wrong-path instructions (flagged
///   [`FetchedInst::wrong_path`]) that consume decode/rename resources and
///   rename registers until the branch resolves.
///
/// A correctly-predicted taken branch simply ends the fetch block
/// (instructions must be consecutive; the target block starts next cycle).
#[derive(Debug)]
pub struct FetchUnit {
    width: usize,
    /// Lookahead slot: an instruction pulled from the stream but not yet
    /// delivered (e.g. fetch width exhausted).
    pending: Option<DynInst>,
    /// Set while a mispredicted branch is unresolved.
    wait_resolve: bool,
    /// Fetch may resume at this cycle (set by `resolve_branch`).
    resume_at: u64,
    injection: bool,
    synth: Option<WrongPathSynth>,
    end_of_stream: bool,
    stats: FetchStats,
}

impl FetchUnit {
    /// Creates a fetch unit delivering at most `width` instructions per
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "fetch width must be positive");
        Self {
            width,
            pending: None,
            wait_resolve: false,
            resume_at: 0,
            injection: false,
            synth: None,
            end_of_stream: false,
            stats: FetchStats::default(),
        }
    }

    /// Enables wrong-path injection (builder style).
    pub fn with_wrong_path_injection(mut self, enabled: bool) -> Self {
        self.injection = enabled;
        self
    }

    /// Counters.
    #[inline]
    pub fn stats(&self) -> &FetchStats {
        &self.stats
    }

    /// True once the stream is exhausted and all buffered instructions have
    /// been delivered.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.end_of_stream && self.pending.is_none()
    }

    /// True while fetch is blocked behind an unresolved mispredicted branch
    /// (stall mode) or fabricating wrong-path instructions (injection
    /// mode).
    #[inline]
    pub fn is_diverted(&self) -> bool {
        self.wait_resolve
    }

    /// The first cycle at which fetch may deliver again after the most
    /// recent [`FetchUnit::resolve_branch`] (0 when never redirected).
    /// Exposed for the core's idle-cycle fast-forwarding: a quiescent
    /// machine must not be skipped past the redirect point.
    #[inline]
    pub fn resume_at(&self) -> u64 {
        self.resume_at
    }

    /// The earliest cycle at or after `now` at which this unit can
    /// deliver instructions on its own — the fetch unit's half of the
    /// core's `next_activity()` governor contract (see `docs/kernel.md`):
    /// the returned cycle is never later than the true next cycle fetch
    /// would do anything, and `None` means fetch generates no activity
    /// until some *external* event changes its state (end of stream, or a
    /// stalled mispredicted branch that only
    /// [`FetchUnit::resolve_branch`] can release).
    ///
    /// Injection mode fabricates wrong-path work every cycle, so a
    /// diverted injecting unit is active `now`.
    pub fn next_activity(&self, now: u64) -> Option<u64> {
        if self.is_done() {
            return None;
        }
        if self.wait_resolve {
            return self.injection.then_some(now);
        }
        Some(self.resume_at.max(now))
    }

    /// Accounts `n` cycles of fetch stall without calling
    /// [`FetchUnit::fetch_block`]. The core's idle-cycle fast-forwarding
    /// uses this to keep [`FetchStats::stall_cycles`] bit-identical when
    /// it skips cycles in which fetch would have stalled (unresolved
    /// mispredicted branch, or pre-`resume_at` redirect shadow).
    pub fn add_stall_cycles(&mut self, n: u64) {
        self.stats.stall_cycles += n;
    }

    /// The core reports that the oldest mispredicted branch resolved at
    /// `now`; fetch resumes on the correct path at `now + 1`.
    pub fn resolve_branch(&mut self, now: u64) {
        debug_assert!(self.wait_resolve, "no unresolved branch outstanding");
        self.wait_resolve = false;
        self.synth = None;
        self.resume_at = now + 1;
    }

    /// Fetches one block of at most `limit` instructions at cycle `now`
    /// (`limit` allows the core to model a partially full decode buffer;
    /// it is clamped to the configured width).
    pub fn fetch_block<S: InstStream>(
        &mut self,
        now: u64,
        stream: &mut S,
        bht: &BranchHistoryTable,
        limit: usize,
    ) -> Vec<FetchedInst> {
        let mut block = Vec::with_capacity(limit.min(self.width));
        self.fetch_block_into(now, stream, bht, limit, &mut |fi| block.push(fi));
        block
    }

    /// Allocation-free variant of [`FetchUnit::fetch_block`]: delivers each
    /// fetched instruction through `sink` (the core appends straight into
    /// its decode buffer, so the per-cycle block `Vec` disappears from the
    /// hot loop — and the sink is generic, so the per-instruction call
    /// inlines instead of going through a vtable).
    pub fn fetch_block_into<S: InstStream>(
        &mut self,
        now: u64,
        stream: &mut S,
        bht: &BranchHistoryTable,
        limit: usize,
        sink: &mut impl FnMut(FetchedInst),
    ) {
        let limit = limit.min(self.width);
        if limit == 0 {
            return;
        }
        if self.wait_resolve {
            if self.injection {
                let synth = self
                    .synth
                    .as_mut()
                    .expect("injection mode always arms the synthesiser");
                for _ in 0..limit {
                    sink(FetchedInst {
                        di: synth.next_inst(),
                        predicted_taken: None,
                        mispredicted: false,
                        wrong_path: true,
                    });
                }
                self.stats.wrong_path_fetched += limit as u64;
            } else {
                self.stats.stall_cycles += 1;
            }
            return;
        }
        if now < self.resume_at {
            self.stats.stall_cycles += 1;
            return;
        }
        let mut delivered = 0;
        while delivered < limit {
            let Some(di) = self.pending.take().or_else(|| stream.next_inst()) else {
                self.end_of_stream = true;
                break;
            };
            let mut fetched = FetchedInst {
                di,
                predicted_taken: None,
                mispredicted: false,
                wrong_path: false,
            };
            let mut end_block = false;
            match di.op() {
                OpClass::BranchCond => {
                    let outcome = di
                        .branch()
                        .expect("trace must record conditional branch outcomes");
                    let predicted = bht.predict(di.pc());
                    fetched.predicted_taken = Some(predicted);
                    self.stats.cond_branches += 1;
                    if predicted != outcome.taken {
                        fetched.mispredicted = true;
                        self.stats.mispredictions += 1;
                        self.wait_resolve = true;
                        if self.injection {
                            self.synth = Some(WrongPathSynth::new(di.pc()));
                        }
                        end_block = true;
                    } else if outcome.taken {
                        self.stats.taken_breaks += 1;
                        end_block = true;
                    }
                }
                OpClass::BranchUncond => {
                    // Direction is trivially known; a perfect BTB supplies
                    // the target, so the only effect is ending the block.
                    self.stats.taken_breaks += 1;
                    end_block = true;
                }
                _ => {}
            }
            self.stats.fetched += 1;
            sink(fetched);
            delivered += 1;
            if end_block {
                break;
            }
        }
    }
}

impl vpr_snap::Snap for FetchedInst {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.di.save(enc);
        self.predicted_taken.save(enc);
        enc.put_bool(self.mispredicted);
        enc.put_bool(self.wrong_path);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            di: DynInst::load(dec),
            predicted_taken: Option::<bool>::load(dec),
            mispredicted: dec.take_bool(),
            wrong_path: dec.take_bool(),
        }
    }
}

impl vpr_snap::Snap for FetchStats {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.fetched);
        enc.put_u64(self.wrong_path_fetched);
        enc.put_u64(self.cond_branches);
        enc.put_u64(self.mispredictions);
        enc.put_u64(self.taken_breaks);
        enc.put_u64(self.stall_cycles);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            fetched: dec.take_u64(),
            wrong_path_fetched: dec.take_u64(),
            cond_branches: dec.take_u64(),
            mispredictions: dec.take_u64(),
            taken_breaks: dec.take_u64(),
            stall_cycles: dec.take_u64(),
        }
    }
}

impl vpr_snap::Snap for FetchUnit {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_usize(self.width);
        self.pending.save(enc);
        enc.put_bool(self.wait_resolve);
        enc.put_u64(self.resume_at);
        enc.put_bool(self.injection);
        self.synth.save(enc);
        enc.put_bool(self.end_of_stream);
        self.stats.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            width: dec.take_usize(),
            pending: Option::<DynInst>::load(dec),
            wait_resolve: dec.take_bool(),
            resume_at: dec.take_u64(),
            injection: dec.take_bool(),
            synth: Option::<WrongPathSynth>::load(dec),
            end_of_stream: dec.take_bool(),
            stats: FetchStats::load(dec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_isa::{BranchInfo, Inst, LogicalReg};

    fn alu(pc: u64) -> DynInst {
        DynInst::new(
            pc,
            Inst::new(OpClass::IntAlu)
                .with_dest(LogicalReg::int(1))
                .with_src1(LogicalReg::int(2)),
        )
    }

    fn branch(pc: u64, taken: bool) -> DynInst {
        DynInst::new(pc, Inst::new(OpClass::BranchCond)).with_branch(BranchInfo {
            taken,
            next_pc: if taken { pc + 0x100 } else { pc + 4 },
        })
    }

    fn straight_line(n: usize) -> Vec<DynInst> {
        (0..n).map(|i| alu(0x1000 + 4 * i as u64)).collect()
    }

    #[test]
    fn fetches_up_to_width() {
        let mut fu = FetchUnit::new(8);
        let bht = BranchHistoryTable::default();
        let mut stream = straight_line(20).into_iter();
        let b = fu.fetch_block(0, &mut stream, &bht, 8);
        assert_eq!(b.len(), 8);
        let b = fu.fetch_block(1, &mut stream, &bht, 8);
        assert_eq!(b.len(), 8);
        let b = fu.fetch_block(2, &mut stream, &bht, 8);
        assert_eq!(b.len(), 4, "stream exhausted mid-block");
        assert!(fu.is_done());
    }

    #[test]
    fn limit_clamps_block_size() {
        let mut fu = FetchUnit::new(8);
        let bht = BranchHistoryTable::default();
        let mut stream = straight_line(20).into_iter();
        let b = fu.fetch_block(0, &mut stream, &bht, 3);
        assert_eq!(b.len(), 3);
        let b = fu.fetch_block(0, &mut stream, &bht, 100);
        assert_eq!(b.len(), 8, "clamped to fetch width");
    }

    #[test]
    fn correctly_predicted_taken_branch_ends_block() {
        let mut fu = FetchUnit::new(8);
        let mut bht = BranchHistoryTable::default();
        // Train the predictor to taken for this PC.
        bht.update(0x2000, true);
        bht.update(0x2000, true);
        let insts = vec![alu(0x1ff8), alu(0x1ffc), branch(0x2000, true), alu(0x2100)];
        let mut stream = insts.into_iter();
        let b = fu.fetch_block(0, &mut stream, &bht, 8);
        assert_eq!(b.len(), 3, "block ends at the taken branch");
        assert!(!b[2].mispredicted);
        assert_eq!(fu.stats().taken_breaks, 1);
        // Target block next cycle.
        let b = fu.fetch_block(1, &mut stream, &bht, 8);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn misprediction_stalls_until_resolved() {
        let mut fu = FetchUnit::new(8);
        let bht = BranchHistoryTable::default(); // predicts not-taken
        let insts = vec![branch(0x2000, true), alu(0x2100), alu(0x2104)];
        let mut stream = insts.into_iter();
        let b = fu.fetch_block(0, &mut stream, &bht, 8);
        assert_eq!(b.len(), 1);
        assert!(b[0].mispredicted);
        assert!(fu.is_diverted());
        // Stalled while unresolved.
        assert!(fu.fetch_block(1, &mut stream, &bht, 8).is_empty());
        assert!(fu.fetch_block(2, &mut stream, &bht, 8).is_empty());
        assert_eq!(fu.stats().stall_cycles, 2);
        // Resolve at cycle 5: fetch resumes at 6.
        fu.resolve_branch(5);
        assert!(fu.fetch_block(5, &mut stream, &bht, 8).is_empty());
        let b = fu.fetch_block(6, &mut stream, &bht, 8);
        assert_eq!(b.len(), 2);
        assert_eq!(fu.stats().mispredictions, 1);
    }

    #[test]
    fn injection_mode_fabricates_wrong_path() {
        let mut fu = FetchUnit::new(8).with_wrong_path_injection(true);
        let bht = BranchHistoryTable::default();
        let insts = vec![branch(0x2000, true), alu(0x2100)];
        let mut stream = insts.into_iter();
        let b = fu.fetch_block(0, &mut stream, &bht, 8);
        assert!(b[0].mispredicted);
        let wp = fu.fetch_block(1, &mut stream, &bht, 8);
        assert_eq!(wp.len(), 8);
        assert!(wp.iter().all(|f| f.wrong_path));
        assert_eq!(fu.stats().wrong_path_fetched, 8);
        fu.resolve_branch(3);
        let b = fu.fetch_block(4, &mut stream, &bht, 8);
        assert_eq!(b.len(), 1);
        assert!(!b[0].wrong_path);
    }

    #[test]
    fn unconditional_branch_breaks_block_without_prediction() {
        let mut fu = FetchUnit::new(8);
        let bht = BranchHistoryTable::default();
        let j = DynInst::new(0x3000, Inst::new(OpClass::BranchUncond)).with_branch(BranchInfo {
            taken: true,
            next_pc: 0x4000,
        });
        let insts = vec![alu(0x2ffc), j, alu(0x4000)];
        let mut stream = insts.into_iter();
        let b = fu.fetch_block(0, &mut stream, &bht, 8);
        assert_eq!(b.len(), 2);
        assert_eq!(b[1].predicted_taken, None);
        assert!(!b[1].mispredicted);
        assert_eq!(fu.stats().cond_branches, 0);
    }

    #[test]
    fn next_activity_lower_bound() {
        // Live stream, nothing pending: active now.
        let mut fu = FetchUnit::new(8);
        let bht = BranchHistoryTable::default();
        assert_eq!(fu.next_activity(5), Some(5));

        // Stalled behind an unresolved mispredicted branch: no
        // self-generated activity (only resolve_branch releases it).
        let mut stream = vec![branch(0x2000, true), alu(0x2100)].into_iter();
        let b = fu.fetch_block(0, &mut stream, &bht, 8);
        assert!(b[0].mispredicted);
        assert_eq!(fu.next_activity(1), None);

        // Redirect shadow: bounded by resume_at, and fetch really does
        // deliver nothing before it.
        fu.resolve_branch(5);
        assert_eq!(fu.next_activity(3), Some(6));
        assert!(fu.fetch_block(5, &mut stream, &bht, 8).is_empty());
        assert_eq!(fu.fetch_block(6, &mut stream, &bht, 8).len(), 1);

        // Drained: never active again.
        assert!(fu.fetch_block(7, &mut stream, &bht, 8).is_empty());
        assert!(fu.is_done());
        assert_eq!(fu.next_activity(8), None);

        // Injection mode fabricates work every cycle while diverted.
        let mut fu = FetchUnit::new(4).with_wrong_path_injection(true);
        let mut stream = vec![branch(0x2000, true), alu(0x2100)].into_iter();
        let b = fu.fetch_block(0, &mut stream, &bht, 4);
        assert!(b[0].mispredicted);
        assert_eq!(fu.next_activity(1), Some(1));
    }

    #[test]
    fn pending_lookahead_not_lost_across_blocks() {
        let mut fu = FetchUnit::new(2);
        let bht = BranchHistoryTable::default();
        let mut stream = straight_line(5).into_iter();
        let mut total = 0;
        for t in 0..5 {
            total += fu.fetch_block(t, &mut stream, &bht, 2).len();
        }
        assert_eq!(total, 5);
    }
}
