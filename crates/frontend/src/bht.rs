//! The branch history table.

/// Prediction accuracy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BhtStats {
    /// Direction updates applied (one per resolved conditional branch).
    pub updates: u64,
    /// Updates whose pre-update prediction matched the outcome.
    pub correct: u64,
}

impl BhtStats {
    /// Fraction of resolved branches predicted correctly.
    pub fn accuracy(&self) -> f64 {
        if self.updates == 0 {
            1.0
        } else {
            self.correct as f64 / self.updates as f64
        }
    }
}

/// A direction predictor: a table of 2-bit up/down saturating counters
/// indexed by branch address (paper §4.1: 2048 entries).
///
/// Counter states 0 and 1 predict not-taken; 2 and 3 predict taken. The
/// counter saturates at both ends, giving each branch hysteresis of one
/// wrong outcome.
///
/// ```
/// use vpr_frontend::BranchHistoryTable;
/// let mut bht = BranchHistoryTable::new(2048);
/// let pc = 0x1000;
/// assert!(!bht.predict(pc));      // counters start at 1 (weak not-taken)
/// bht.update(pc, true);
/// bht.update(pc, true);
/// assert!(bht.predict(pc));       // two taken outcomes flip it
/// ```
#[derive(Debug, Clone)]
pub struct BranchHistoryTable {
    counters: Vec<u8>,
    stats: BhtStats,
}

impl BranchHistoryTable {
    /// Creates a table with `entries` counters, each initialised to the
    /// weak not-taken state (1).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two (the index is a
    /// mask of the word-aligned PC).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "BHT entries must be a nonzero power of two"
        );
        Self {
            counters: vec![1; entries],
            stats: BhtStats::default(),
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        // Instructions are 4-byte aligned; drop the offset bits.
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the counter with a resolved outcome and records accuracy of
    /// the pre-update prediction.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let predicted = self.counters[idx] >= 2;
        self.stats.updates += 1;
        if predicted == taken {
            self.stats.correct += 1;
        }
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Accuracy counters.
    #[inline]
    pub fn stats(&self) -> &BhtStats {
        &self.stats
    }

    /// Number of counters in the table.
    #[inline]
    pub fn entries(&self) -> usize {
        self.counters.len()
    }
}

impl vpr_snap::Snap for BhtStats {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.updates);
        enc.put_u64(self.correct);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            updates: dec.take_u64(),
            correct: dec.take_u64(),
        }
    }
}

impl vpr_snap::Snap for BranchHistoryTable {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.counters.save(enc);
        self.stats.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            counters: Vec::<u8>::load(dec),
            stats: BhtStats::load(dec),
        }
    }
}

impl Default for BranchHistoryTable {
    /// The paper's 2048-entry table.
    fn default() -> Self {
        Self::new(2048)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut bht = BranchHistoryTable::new(4);
        let pc = 0x100;
        for _ in 0..10 {
            bht.update(pc, true);
        }
        assert!(bht.predict(pc));
        // One not-taken outcome does not flip a strongly-taken counter.
        bht.update(pc, false);
        assert!(bht.predict(pc));
        bht.update(pc, false);
        assert!(!bht.predict(pc));
        for _ in 0..10 {
            bht.update(pc, false);
        }
        bht.update(pc, true);
        assert!(!bht.predict(pc), "hysteresis on the not-taken side too");
    }

    #[test]
    fn aliasing_uses_word_aligned_pc() {
        let bht = BranchHistoryTable::new(4);
        // 16 instruction slots alias onto 4 counters.
        assert_eq!(bht.index(0x0), bht.index(0x10 * 4 / 4 * 16));
        assert_eq!(bht.index(0x0), bht.index(0x40));
        assert_ne!(bht.index(0x0), bht.index(0x4));
    }

    #[test]
    fn accuracy_tracking() {
        let mut bht = BranchHistoryTable::new(4);
        let pc = 0;
        bht.update(pc, false); // predicted N (1), outcome N: correct
        bht.update(pc, true); // predicted N (0), outcome T: wrong
        assert_eq!(bht.stats().updates, 2);
        assert_eq!(bht.stats().correct, 1);
        assert!((bht.stats().accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_report_perfect_accuracy() {
        let bht = BranchHistoryTable::default();
        assert_eq!(bht.stats().accuracy(), 1.0);
        assert_eq!(bht.entries(), 2048);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = BranchHistoryTable::new(1000);
    }

    #[test]
    fn loop_branch_learns_taken() {
        let mut bht = BranchHistoryTable::default();
        let pc = 0x2000;
        let mut correct = 0;
        // A loop back-edge taken 99 times then falling through.
        for i in 0..100 {
            let taken = i != 99;
            if bht.predict(pc) == taken {
                correct += 1;
            }
            bht.update(pc, taken);
        }
        assert!(correct >= 97, "2-bit counter learns a loop: {correct}/100");
    }
}
