//! Register classes and logical register names.

use std::fmt;

/// Number of architectural (logical) registers per register class.
///
/// The paper assumes an Alpha-like ISA with 32 integer and 32 floating-point
/// registers; the renaming hardware is replicated per class (paper §3.2).
pub const NUM_LOGICAL_PER_CLASS: usize = 32;

/// The two architectural register files of the machine.
///
/// The virtual-physical renaming scheme is instantiated once per class; all
/// free lists, map tables and NRR reservation state are per-class (paper
/// §3.2: "the implementation described below is replicated for both register
/// files").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General-purpose integer registers (`r0`..`r31`).
    Int,
    /// Floating-point registers (`f0`..`f31`).
    Fp,
}

impl RegClass {
    /// Both classes, in a fixed order convenient for per-class state arrays.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];

    /// Dense index of the class (0 = integer, 1 = floating-point), for use
    /// as an array subscript in per-class state.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        }
    }
}

impl vpr_snap::Snap for RegClass {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u8(self.index() as u8);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        RegClass::ALL[dec.take_u8() as usize]
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register name, e.g. `r7` or `f2`.
///
/// Logical registers are what instructions of the ISA reference; dynamic
/// renaming maps them to virtual-physical tags and ultimately to physical
/// registers.
///
/// ```
/// use vpr_isa::{LogicalReg, RegClass};
/// let r = LogicalReg::int(7);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "r7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalReg {
    class: RegClass,
    index: u8,
}

impl LogicalReg {
    /// Creates an integer register `r<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_LOGICAL_PER_CLASS`.
    #[inline]
    pub fn int(index: usize) -> Self {
        Self::new(RegClass::Int, index)
    }

    /// Creates a floating-point register `f<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_LOGICAL_PER_CLASS`.
    #[inline]
    pub fn fp(index: usize) -> Self {
        Self::new(RegClass::Fp, index)
    }

    /// Creates a register of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_LOGICAL_PER_CLASS`.
    #[inline]
    pub fn new(class: RegClass, index: usize) -> Self {
        assert!(
            index < NUM_LOGICAL_PER_CLASS,
            "logical register index {index} out of range (max {})",
            NUM_LOGICAL_PER_CLASS - 1
        );
        Self {
            class,
            index: index as u8,
        }
    }

    /// The register class (integer or floating-point).
    #[inline]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The register number within its class.
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl vpr_snap::Snap for LogicalReg {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.class.save(enc);
        enc.put_u8(self.index);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        let class = RegClass::load(dec);
        LogicalReg::new(class, dec.take_u8() as usize)
    }
}

impl fmt::Display for LogicalReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense() {
        assert_eq!(RegClass::Int.index(), 0);
        assert_eq!(RegClass::Fp.index(), 1);
        assert_eq!(RegClass::ALL[0], RegClass::Int);
        assert_eq!(RegClass::ALL[1], RegClass::Fp);
    }

    #[test]
    fn constructors_round_trip() {
        let r = LogicalReg::int(31);
        assert_eq!(r.class(), RegClass::Int);
        assert_eq!(r.index(), 31);
        let f = LogicalReg::fp(0);
        assert_eq!(f.class(), RegClass::Fp);
        assert_eq!(f.index(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = LogicalReg::int(NUM_LOGICAL_PER_CLASS);
    }

    #[test]
    fn display_names() {
        assert_eq!(LogicalReg::int(3).to_string(), "r3");
        assert_eq!(LogicalReg::fp(12).to_string(), "f12");
        assert_eq!(RegClass::Int.to_string(), "int");
        assert_eq!(RegClass::Fp.to_string(), "fp");
    }

    #[test]
    fn ordering_and_equality() {
        assert!(LogicalReg::int(1) < LogicalReg::int(2));
        assert_ne!(LogicalReg::int(1), LogicalReg::fp(1));
    }
}
