//! Operation classes and the functional-unit kinds that execute them.

use crate::RegClass;
use std::fmt;

/// Coarse operation class of an instruction.
///
/// This is the full opcode surface the timing model observes. Each class
/// maps to one functional-unit kind (paper Table 1) via [`OpClass::fu_kind`];
/// execution latencies are configuration of the core, not of the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer ALU operation (add, sub, logic, shift, compare).
    IntAlu,
    /// Integer multiply (complex integer unit).
    IntMul,
    /// Integer divide (complex integer unit, unpipelined).
    IntDiv,
    /// Memory load (effective-address unit, then a cache port).
    Load,
    /// Memory store (effective-address unit; data written at commit).
    Store,
    /// Conditional branch (resolved on a simple integer unit).
    BranchCond,
    /// Unconditional branch / jump (always taken, no prediction needed for
    /// direction, still redirects fetch).
    BranchUncond,
    /// Simple FP operation (add, sub, convert, compare).
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide (unpipelined).
    FpDiv,
    /// FP square root (unpipelined, shares the FP divide unit).
    FpSqrt,
    /// No-operation (consumes fetch/decode/commit bandwidth only).
    Nop,
}

impl OpClass {
    /// Every operation class, for exhaustive sweeps in tests and generators.
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::BranchCond,
        OpClass::BranchUncond,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Nop,
    ];

    /// Dense index of the class, matching its position in [`OpClass::ALL`]
    /// (the enum is declared in `ALL` order). Used wherever a class keys a
    /// table without dragging the type along — snapshot tags, observer
    /// hook arguments, display-name lookups.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The functional-unit kind that executes this operation, or `None` for
    /// a [`OpClass::Nop`], which occupies no unit.
    ///
    /// Loads and stores return [`FuKind::EffAddr`]: the address computation
    /// runs there, after which loads arbitrate for a cache port.
    #[inline]
    pub fn fu_kind(self) -> Option<FuKind> {
        match self {
            OpClass::IntAlu | OpClass::BranchCond | OpClass::BranchUncond => {
                Some(FuKind::SimpleInt)
            }
            OpClass::IntMul | OpClass::IntDiv => Some(FuKind::ComplexInt),
            OpClass::Load | OpClass::Store => Some(FuKind::EffAddr),
            OpClass::FpAdd => Some(FuKind::SimpleFp),
            OpClass::FpMul => Some(FuKind::FpMul),
            OpClass::FpDiv | OpClass::FpSqrt => Some(FuKind::FpDiv),
            OpClass::Nop => None,
        }
    }

    /// True for conditional and unconditional branches.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::BranchCond | OpClass::BranchUncond)
    }

    /// True for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True if the operation's functional unit is not fully pipelined
    /// (integer divide, FP divide, FP square root — paper Table 1).
    #[inline]
    pub fn is_unpipelined(self) -> bool {
        matches!(self, OpClass::IntDiv | OpClass::FpDiv | OpClass::FpSqrt)
    }

    /// The register class a destination of this operation would belong to.
    ///
    /// Loads may write either file; this returns the *typical* class and is
    /// only used by generators (the authoritative class is the destination
    /// register of the concrete [`Inst`](crate::Inst)).
    #[inline]
    pub fn natural_dest_class(self) -> Option<RegClass> {
        match self {
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv | OpClass::Load => {
                Some(RegClass::Int)
            }
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => {
                Some(RegClass::Fp)
            }
            OpClass::Store | OpClass::BranchCond | OpClass::BranchUncond | OpClass::Nop => None,
        }
    }
}

impl vpr_snap::Snap for OpClass {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        let tag = OpClass::ALL
            .iter()
            .position(|o| o == self)
            .expect("ALL is exhaustive") as u8;
        enc.put_u8(tag);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        let tag = dec.take_u8() as usize;
        OpClass::ALL[tag]
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int.alu",
            OpClass::IntMul => "int.mul",
            OpClass::IntDiv => "int.div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::BranchCond => "br.cond",
            OpClass::BranchUncond => "br.uncond",
            OpClass::FpAdd => "fp.add",
            OpClass::FpMul => "fp.mul",
            OpClass::FpDiv => "fp.div",
            OpClass::FpSqrt => "fp.sqrt",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Functional-unit kinds of the simulated machine (paper Table 1).
///
/// | Kind | Count (paper) | Latency (paper) |
/// |------|---------------|------------------|
/// | `SimpleInt` | 3 | 1 |
/// | `ComplexInt` | 2 | 9 (mul) / 67 (div) |
/// | `EffAddr` | 3 | 1 |
/// | `SimpleFp` | 3 | 4 |
/// | `FpMul` | 2 | 4 |
/// | `FpDiv` | 2 | 16 (div) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Simple integer ALU; also resolves branches.
    SimpleInt,
    /// Complex integer unit (multiply / divide).
    ComplexInt,
    /// Effective-address computation for loads and stores.
    EffAddr,
    /// Simple FP unit (add / sub / convert).
    SimpleFp,
    /// FP multiplier.
    FpMul,
    /// FP divide / square-root unit.
    FpDiv,
}

impl FuKind {
    /// Every functional-unit kind, in a fixed order usable as array index.
    pub const ALL: [FuKind; 6] = [
        FuKind::SimpleInt,
        FuKind::ComplexInt,
        FuKind::EffAddr,
        FuKind::SimpleFp,
        FuKind::FpMul,
        FuKind::FpDiv,
    ];

    /// Dense index of the kind for per-kind state arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuKind::SimpleInt => 0,
            FuKind::ComplexInt => 1,
            FuKind::EffAddr => 2,
            FuKind::SimpleFp => 3,
            FuKind::FpMul => 4,
            FuKind::FpDiv => 5,
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::SimpleInt => "simple-int",
            FuKind::ComplexInt => "complex-int",
            FuKind::EffAddr => "eff-addr",
            FuKind::SimpleFp => "simple-fp",
            FuKind::FpMul => "fp-mul",
            FuKind::FpDiv => "fp-div",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_index_matches_position_in_all() {
        for (i, op) in OpClass::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "{op} index must match ALL order");
        }
    }

    #[test]
    fn every_non_nop_op_has_a_unit() {
        for op in OpClass::ALL {
            if op == OpClass::Nop {
                assert_eq!(op.fu_kind(), None);
            } else {
                assert!(op.fu_kind().is_some(), "{op} must map to a unit");
            }
        }
    }

    #[test]
    fn fu_indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for kind in FuKind::ALL {
            let i = kind.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn branch_and_mem_predicates() {
        assert!(OpClass::BranchCond.is_branch());
        assert!(OpClass::BranchUncond.is_branch());
        assert!(!OpClass::IntAlu.is_branch());
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::FpMul.is_mem());
    }

    #[test]
    fn unpipelined_ops() {
        assert!(OpClass::IntDiv.is_unpipelined());
        assert!(OpClass::FpDiv.is_unpipelined());
        assert!(OpClass::FpSqrt.is_unpipelined());
        assert!(!OpClass::IntMul.is_unpipelined());
        assert!(!OpClass::FpMul.is_unpipelined());
    }

    #[test]
    fn natural_dest_classes() {
        assert_eq!(OpClass::Load.natural_dest_class(), Some(RegClass::Int));
        assert_eq!(OpClass::FpDiv.natural_dest_class(), Some(RegClass::Fp));
        assert_eq!(OpClass::Store.natural_dest_class(), None);
        assert_eq!(OpClass::BranchCond.natural_dest_class(), None);
    }

    #[test]
    fn display_is_nonempty() {
        for op in OpClass::ALL {
            assert!(!op.to_string().is_empty());
        }
        for fu in FuKind::ALL {
            assert!(!fu.to_string().is_empty());
        }
    }
}
