//! The interface between trace producers and the fetch engine.

use crate::DynInst;

/// A source of dynamic instructions in program order.
///
/// Implemented by the synthetic workload generators in `vpr-trace` and by
/// anything else that can replay a committed-path instruction stream (a
/// recorded trace file, a hand-written snippet in a test). The stream is
/// the *correct* execution path: trace-driven simulation never sees
/// wrong-path instructions unless the frontend synthesises them.
///
/// Any iterator over [`DynInst`] is automatically a stream:
///
/// ```
/// use vpr_isa::{DynInst, Inst, InstStream, OpClass};
/// let insts = vec![DynInst::new(0, Inst::new(OpClass::Nop))];
/// let mut stream = insts.into_iter();
/// assert!(InstStream::next_inst(&mut stream).is_some());
/// assert!(InstStream::next_inst(&mut stream).is_none());
/// ```
pub trait InstStream {
    /// Produces the next dynamic instruction, or `None` at end of trace.
    fn next_inst(&mut self) -> Option<DynInst>;
}

impl<I: Iterator<Item = DynInst>> InstStream for I {
    #[inline]
    fn next_inst(&mut self) -> Option<DynInst> {
        self.next()
    }
}
