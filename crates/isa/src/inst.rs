//! Static instructions: opcode plus register operands.

use crate::{LogicalReg, OpClass, RegClass};
use std::fmt;

/// A static instruction: an operation class plus up to one destination and
/// two source registers.
///
/// This is everything the rename/issue machinery observes about an
/// instruction; immediates and actual data values are irrelevant to the
/// timing model and are not represented. Loads carry their destination here
/// and their address in the enclosing [`DynInst`](crate::DynInst); stores
/// have no destination (`src1` = data register, `src2` = base register).
///
/// ```
/// use vpr_isa::{Inst, LogicalReg, OpClass};
/// // fdiv f2, f2, f10
/// let i = Inst::new(OpClass::FpDiv)
///     .with_dest(LogicalReg::fp(2))
///     .with_src1(LogicalReg::fp(2))
///     .with_src2(LogicalReg::fp(10));
/// assert_eq!(i.sources().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    op: OpClass,
    dest: Option<LogicalReg>,
    src1: Option<LogicalReg>,
    src2: Option<LogicalReg>,
}

impl Inst {
    /// Creates an instruction of the given class with no operands.
    #[inline]
    pub fn new(op: OpClass) -> Self {
        Self {
            op,
            dest: None,
            src1: None,
            src2: None,
        }
    }

    /// Sets the destination register (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the operation class cannot have a destination (stores,
    /// branches, nop): such an instruction would silently confuse the
    /// renaming logic, so it is rejected eagerly.
    #[inline]
    pub fn with_dest(mut self, dest: LogicalReg) -> Self {
        assert!(
            !matches!(
                self.op,
                OpClass::Store | OpClass::BranchCond | OpClass::BranchUncond | OpClass::Nop
            ),
            "{} cannot have a destination register",
            self.op
        );
        self.dest = Some(dest);
        self
    }

    /// Sets the first source register (builder style).
    #[inline]
    pub fn with_src1(mut self, src: LogicalReg) -> Self {
        self.src1 = Some(src);
        self
    }

    /// Sets the second source register (builder style).
    #[inline]
    pub fn with_src2(mut self, src: LogicalReg) -> Self {
        self.src2 = Some(src);
        self
    }

    /// The operation class.
    #[inline]
    pub fn op(&self) -> OpClass {
        self.op
    }

    /// The destination register, if any.
    #[inline]
    pub fn dest(&self) -> Option<LogicalReg> {
        self.dest
    }

    /// The first source register, if any.
    #[inline]
    pub fn src1(&self) -> Option<LogicalReg> {
        self.src1
    }

    /// The second source register, if any.
    #[inline]
    pub fn src2(&self) -> Option<LogicalReg> {
        self.src2
    }

    /// Iterates over the present source registers (at most two).
    #[inline]
    pub fn sources(&self) -> impl Iterator<Item = LogicalReg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }

    /// The class of the destination register, if the instruction has one.
    #[inline]
    pub fn dest_class(&self) -> Option<RegClass> {
        self.dest.map(LogicalReg::class)
    }
}

impl vpr_snap::Snap for Inst {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        self.op.save(enc);
        self.dest.save(enc);
        self.src1.save(enc);
        self.src2.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            op: vpr_snap::Snap::load(dec),
            dest: vpr_snap::Snap::load(dec),
            src1: vpr_snap::Snap::load(dec),
            src2: vpr_snap::Snap::load(dec),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        let mut sep = " ";
        if let Some(d) = self.dest {
            write!(f, "{sep}{d}")?;
            sep = ",";
        }
        for s in self.sources() {
            write!(f, "{sep}{s}")?;
            sep = ",";
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_operands() {
        let i = Inst::new(OpClass::IntAlu)
            .with_dest(LogicalReg::int(1))
            .with_src1(LogicalReg::int(2))
            .with_src2(LogicalReg::int(3));
        assert_eq!(i.dest(), Some(LogicalReg::int(1)));
        assert_eq!(i.src1(), Some(LogicalReg::int(2)));
        assert_eq!(i.src2(), Some(LogicalReg::int(3)));
        assert_eq!(i.sources().count(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot have a destination")]
    fn store_rejects_destination() {
        let _ = Inst::new(OpClass::Store).with_dest(LogicalReg::int(1));
    }

    #[test]
    #[should_panic(expected = "cannot have a destination")]
    fn branch_rejects_destination() {
        let _ = Inst::new(OpClass::BranchCond).with_dest(LogicalReg::int(1));
    }

    #[test]
    fn load_may_write_fp_file() {
        // load f2, 0(r6): destination class is authoritative, not the op's
        // "natural" class.
        let i = Inst::new(OpClass::Load)
            .with_dest(LogicalReg::fp(2))
            .with_src1(LogicalReg::int(6));
        assert_eq!(i.dest_class(), Some(RegClass::Fp));
    }

    #[test]
    fn sources_iterator_handles_gaps() {
        let i = Inst::new(OpClass::Load).with_src1(LogicalReg::int(6));
        assert_eq!(i.sources().count(), 1);
        let j = Inst::new(OpClass::Nop);
        assert_eq!(j.sources().count(), 0);
    }

    #[test]
    fn display_formats_operands() {
        let i = Inst::new(OpClass::FpMul)
            .with_dest(LogicalReg::fp(2))
            .with_src1(LogicalReg::fp(2))
            .with_src2(LogicalReg::fp(12));
        assert_eq!(i.to_string(), "fp.mul f2,f2,f12");
    }
}
