//! Dynamic instructions: one executed instance of a static instruction,
//! as produced by a trace source.

use crate::{Inst, OpClass};
use std::fmt;

/// Resolved outcome of a dynamic branch, recorded in the trace.
///
/// Trace-driven simulation knows the real outcome at fetch time; the fetch
/// engine compares it against the predictor to decide whether fetch must
/// stall until the branch resolves (see `vpr-frontend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch was actually taken.
    pub taken: bool,
    /// The instruction address executed after this branch (fall-through or
    /// target).
    pub next_pc: u64,
}

/// A dynamic memory access: the effective byte address and access size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes (the disambiguation logic checks overlap).
    pub size: u8,
}

impl MemAccess {
    /// Creates an 8-byte access at `addr` (the common case for a 64-bit
    /// machine).
    #[inline]
    pub fn word(addr: u64) -> Self {
        Self { addr, size: 8 }
    }

    /// Whether two accesses overlap in memory.
    #[inline]
    pub fn overlaps(&self, other: &MemAccess) -> bool {
        let a_end = self.addr + u64::from(self.size);
        let b_end = other.addr + u64::from(other.size);
        self.addr < b_end && other.addr < a_end
    }
}

/// One dynamic instruction from a trace: the static instruction plus its PC
/// and, where applicable, its memory address and branch outcome.
///
/// ```
/// use vpr_isa::{DynInst, Inst, LogicalReg, MemAccess, OpClass};
/// let load = DynInst::new(
///     0x1000,
///     Inst::new(OpClass::Load)
///         .with_dest(LogicalReg::fp(2))
///         .with_src1(LogicalReg::int(6)),
/// )
/// .with_mem(MemAccess::word(0x8000));
/// assert!(load.mem().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DynInst {
    pc: u64,
    inst: Inst,
    mem: Option<MemAccess>,
    branch: Option<BranchInfo>,
}

impl DynInst {
    /// Creates a dynamic instance of `inst` at address `pc`.
    #[inline]
    pub fn new(pc: u64, inst: Inst) -> Self {
        Self {
            pc,
            inst,
            mem: None,
            branch: None,
        }
    }

    /// Attaches a memory access (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a load or store.
    #[inline]
    pub fn with_mem(mut self, mem: MemAccess) -> Self {
        assert!(
            self.inst.op().is_mem(),
            "{} cannot carry a memory access",
            self.inst.op()
        );
        self.mem = Some(mem);
        self
    }

    /// Attaches a branch outcome (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a branch.
    #[inline]
    pub fn with_branch(mut self, branch: BranchInfo) -> Self {
        assert!(
            self.inst.op().is_branch(),
            "{} cannot carry a branch outcome",
            self.inst.op()
        );
        self.branch = Some(branch);
        self
    }

    /// The instruction address.
    #[inline]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The static instruction.
    #[inline]
    pub fn inst(&self) -> &Inst {
        &self.inst
    }

    /// Shorthand for the operation class.
    #[inline]
    pub fn op(&self) -> OpClass {
        self.inst.op()
    }

    /// The memory access, for loads and stores.
    #[inline]
    pub fn mem(&self) -> Option<MemAccess> {
        self.mem
    }

    /// The branch outcome, for branches.
    #[inline]
    pub fn branch(&self) -> Option<BranchInfo> {
        self.branch
    }

    /// The dynamic address of the next instruction: the branch target /
    /// fall-through for branches, `pc + 4` otherwise.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        match self.branch {
            Some(b) => b.next_pc,
            None => self.pc + 4,
        }
    }
}

impl vpr_snap::Snap for BranchInfo {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_bool(self.taken);
        enc.put_u64(self.next_pc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            taken: dec.take_bool(),
            next_pc: dec.take_u64(),
        }
    }
}

impl vpr_snap::Snap for MemAccess {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.addr);
        enc.put_u8(self.size);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            addr: dec.take_u64(),
            size: dec.take_u8(),
        }
    }
}

impl vpr_snap::Snap for DynInst {
    fn save(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.pc);
        self.inst.save(enc);
        self.mem.save(enc);
        self.branch.save(enc);
    }

    fn load(dec: &mut vpr_snap::Decoder<'_>) -> Self {
        Self {
            pc: dec.take_u64(),
            inst: Inst::load(dec),
            mem: Option::<MemAccess>::load(dec),
            branch: Option::<BranchInfo>::load(dec),
        }
    }
}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.inst)?;
        if let Some(m) = self.mem {
            write!(f, " [{:#x}+{}]", m.addr, m.size)?;
        }
        if let Some(b) = self.branch {
            write!(
                f,
                " ({} -> {:#x})",
                if b.taken { "T" } else { "N" },
                b.next_pc
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicalReg;

    fn load() -> DynInst {
        DynInst::new(
            0x1000,
            Inst::new(OpClass::Load)
                .with_dest(LogicalReg::int(1))
                .with_src1(LogicalReg::int(2)),
        )
        .with_mem(MemAccess::word(0x2000))
    }

    #[test]
    fn next_pc_falls_through_for_non_branches() {
        assert_eq!(load().next_pc(), 0x1004);
    }

    #[test]
    fn next_pc_uses_branch_outcome() {
        let b = DynInst::new(0x1000, Inst::new(OpClass::BranchCond)).with_branch(BranchInfo {
            taken: true,
            next_pc: 0x4000,
        });
        assert_eq!(b.next_pc(), 0x4000);
    }

    #[test]
    #[should_panic(expected = "cannot carry a memory access")]
    fn non_mem_rejects_mem_access() {
        let _ = DynInst::new(0, Inst::new(OpClass::IntAlu)).with_mem(MemAccess::word(0));
    }

    #[test]
    #[should_panic(expected = "cannot carry a branch outcome")]
    fn non_branch_rejects_branch_info() {
        let _ = DynInst::new(0, Inst::new(OpClass::IntAlu)).with_branch(BranchInfo {
            taken: false,
            next_pc: 4,
        });
    }

    #[test]
    fn mem_overlap() {
        let a = MemAccess {
            addr: 0x100,
            size: 8,
        };
        let b = MemAccess {
            addr: 0x104,
            size: 8,
        };
        let c = MemAccess {
            addr: 0x108,
            size: 8,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn display_includes_details() {
        let s = load().to_string();
        assert!(s.contains("0x1000"), "{s}");
        assert!(s.contains("load"), "{s}");
        assert!(s.contains("0x2000"), "{s}");
    }
}
