//! # vpr-isa — abstract instruction-set model
//!
//! This crate defines the *architectural* vocabulary shared by every other
//! crate in the workspace: register classes and logical register names
//! ([`RegClass`], [`LogicalReg`]), operation classes and the functional-unit
//! kinds that execute them ([`OpClass`], [`FuKind`]), static instructions
//! ([`Inst`]) and dynamic (trace) instructions ([`DynInst`]).
//!
//! The model is deliberately ISA-agnostic: the HPCA-4 paper used Alpha
//! binaries instrumented with Atom, but nothing in the renaming mechanism
//! under study observes opcodes beyond (a) which register file the
//! destination lives in, (b) which functional unit executes the operation
//! and with what latency, (c) whether the instruction touches memory, and
//! (d) whether it is a branch. `vpr-isa` captures exactly that surface.
//!
//! ## Example
//!
//! ```
//! use vpr_isa::{Inst, LogicalReg, OpClass};
//!
//! // fmul f2, f2, f12
//! let i = Inst::new(OpClass::FpMul)
//!     .with_dest(LogicalReg::fp(2))
//!     .with_src1(LogicalReg::fp(2))
//!     .with_src2(LogicalReg::fp(12));
//! assert_eq!(i.dest().unwrap().class(), vpr_isa::RegClass::Fp);
//! assert!(!i.op().is_mem());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dyninst;
mod inst;
mod op;
mod reg;
mod stream;

pub use dyninst::{BranchInfo, DynInst, MemAccess};
pub use inst::Inst;
pub use op::{FuKind, OpClass};
pub use reg::{LogicalReg, RegClass, NUM_LOGICAL_PER_CLASS};
pub use stream::InstStream;
