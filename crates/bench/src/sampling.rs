//! SMARTS/SimPoint-style interval sampling.
//!
//! A full experiment simulates every instruction in detail; after the
//! PR 1–2 kernel work, *run length* — not kernel speed — bounds how long a
//! workload can be measured. This module estimates a long run's metrics
//! from a handful of short **detailed intervals** spread systematically
//! over the instruction stream, fast-forwarding between them:
//!
//! ```text
//! |--skip--|warm|==measure==|--skip--|warm|==measure==|--skip--| ...
//! ```
//!
//! * **Fast-forward** uses [`WorkloadStream::fast_forward`]: positioning
//!   the stream costs nanoseconds per instruction (synthetic generation,
//!   or emulator-only execution for assembled programs) and touches no
//!   simulator state, so skipped spans cost little.
//! * **Detailed warm-up** re-warms microarchitectural state (cache,
//!   predictor, window) from cold at each interval start; its counters are
//!   discarded ([`Processor::warm_up`]).
//! * **Measure** windows contribute to the estimate. The per-interval
//!   simulations are mutually independent, so the harness fans them out
//!   over [`vpr_core::par`] with the same submission-order merge as the
//!   figure sweeps — sampled results are byte-identical for any `--jobs`.
//!
//! The estimator stack, from cheapest to strongest (each falls back to
//! the next): **regression (control-variate)** using functionally-known
//! per-window miss/misprediction rates whose region means are exact →
//! **phase-stratified** (SimPoint-style, weighting per-loop CPI by true
//! phase frequencies) → **pooled mean**.
//!
//! ## Two seeding modes
//!
//! * **Functionally seeded** (above): intervals start from functionally
//!   approximated machine state, produced by *one warm serial functional
//!   pass* over the stream ([`sample_benchmark`]); a detailed warm-up span
//!   per interval repairs what the functional model cannot capture
//!   (window occupancy, in-flight misses). Cheap — the functional pass is
//!   orders of magnitude faster than simulation — but each window carries
//!   residual cold-start bias: ≈ 4 % worst per-configuration IPC error on
//!   the quick table2 grid.
//! * **Checkpoint seeded** ([`sample_from_checkpoints`]): intervals
//!   restore the **exact** machine state of the uninterrupted run from
//!   `.vprsnap` interval checkpoints written by one warm serial *detailed*
//!   pass (`vpr_bench::checkpoints`, `Processor::checkpoint_at_commits`).
//!   Windows are then true slices of the full run — no warm-up, no bias —
//!   and only gap extrapolation remains. The **per-phase regression
//!   estimator** ([`CheckpointedReport::ipc`]) fits window CPI on each
//!   span's exact per-phase instruction composition plus its functional
//!   miss/misprediction rates, and prices every unmeasured gap from its
//!   own exactly-known covariates: ≤ 2 % worst per-configuration error
//!   (−1.5 % observed) and ≤ 1 % harmonic-mean error on the quick table2
//!   grid, from windows covering ≈ half the region. The serial pass is an
//!   artefact, paid once per configuration and reused by every later
//!   sampled run (`--sampled --checkpoint-dir` on the figure/table
//!   binaries).
//!
//! Accuracy is *reported*, not assumed: [`evaluate_sampling`] runs the
//! uninterrupted simulation next to the sampled one and reports the
//! relative per-metric error, and `tests/sampling_accuracy.rs` gates both
//! modes — the functional estimator at ≤ 2 % harmonic-mean / ≤ 10 %
//! per-configuration error from ≤ 25 % detailed instructions, the
//! checkpoint-seeded estimator at ≤ 1 % / ≤ 2 % from ≤ 50 %. On this
//! deliberately tiny CI workload (30 k-instruction region, windows of a
//! few hundred instructions) the estimates carry irreducible sampling
//! variance; at real run lengths both the window count and the window
//! length grow, and the error shrinks with both (the full-size table2
//! grid samples to within ≈ 0.5 % per configuration).

use crate::harness::ExperimentConfig;
use crate::workloads::{Workload, WorkloadStream};
use std::fmt::Write as _;
use vpr_core::{par, Processor, RenameScheme, SimConfig, SimStats};

/// Shape of one sampled estimate: where the estimated region lies in the
/// instruction stream and how much of it is simulated in detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPlan {
    /// Instructions skipped before the estimated region (the full run's
    /// warm-up span, which its measurement window never covers either).
    pub offset: u64,
    /// Length of the estimated region, in committed instructions.
    pub region: u64,
    /// Number of detailed intervals, spread evenly over the region.
    pub intervals: usize,
    /// Detailed warm-up commits per interval (simulated, discarded).
    pub detailed_warmup: u64,
    /// Measured commits per interval.
    pub detailed_measure: u64,
    /// Functional-warming span per interval: how many of the skipped
    /// instructions leading up to each interval are replayed through the
    /// functional cache/predictor warmers ([`DataCache::warm_touch`] /
    /// BHT training) before detailed simulation starts. `None` warms over
    /// the interval's whole prefix — most faithful, still two orders of
    /// magnitude cheaper than detailed simulation.
    ///
    /// [`DataCache::warm_touch`]: vpr_mem::DataCache::warm_touch
    pub functional_window: Option<u64>,
}

impl SamplingPlan {
    /// The plan used against [`ExperimentConfig::quick`]'s full run
    /// (warm-up 2 000 + measure 30 000): eighteen 440-instruction detailed
    /// intervals — 7 920 detailed instructions, 24.75 % of the full run's
    /// 32 000. The split (180 warm-up / 260 measured) was tuned
    /// empirically: FP chain codes need ≥ ~180 commits of detailed
    /// warm-up to re-establish steady-state window overlap, and more,
    /// smaller intervals beat fewer, larger ones once the regression
    /// estimator absorbs miss/misprediction variance.
    pub fn quick() -> Self {
        Self {
            offset: 2_000,
            region: 30_000,
            intervals: 18,
            detailed_warmup: 180,
            detailed_measure: 260,
            functional_window: None,
        }
    }

    /// A plan matched to `exp`: the tuned [`SamplingPlan::quick`] for the
    /// quick workload shape, otherwise the same design scaled to the
    /// experiment's warm-up/measure spans.
    pub fn for_experiment(exp: &ExperimentConfig) -> Self {
        let quick = Self::quick();
        if exp.warmup == quick.offset && exp.measure == quick.region {
            return quick;
        }
        let per_interval = ((exp.warmup + exp.measure) / 4 / 18).max(44);
        Self {
            offset: exp.warmup,
            region: exp.measure,
            intervals: 18,
            detailed_warmup: per_interval * 9 / 22,
            detailed_measure: per_interval * 13 / 22,
            functional_window: None,
        }
    }

    /// The plan used for **checkpoint-seeded** sampling of the quick
    /// workload: 48 windows of 310 commits, no per-interval detailed
    /// warm-up (each window restores the *exact* machine state of the
    /// uninterrupted run from its interval checkpoint, so there is nothing
    /// to re-warm). 46.5 % of the region is simulated in detail — more
    /// than the functional plan affords, because here the detailed windows
    /// are the *only* simulation a sampled run pays (the serial pass that
    /// produced the checkpoints is a reusable artefact), and denser
    /// windows are what pushes the worst per-configuration error under
    /// 2 % (empirically −1.5 % on the quick table2 grid, vs ≈4 % for the
    /// functionally-seeded plan).
    pub fn quick_checkpointed() -> Self {
        Self {
            offset: 2_000,
            region: 30_000,
            intervals: 48,
            detailed_warmup: 0,
            detailed_measure: 310,
            functional_window: None,
        }
    }

    /// A checkpoint-seeded plan matched to `exp`: the tuned
    /// [`SamplingPlan::quick_checkpointed`] for the quick workload shape,
    /// otherwise the same design (warm-up-free windows covering ≈46.5 %
    /// of the region) scaled to the experiment's spans. Tiny regions get
    /// fewer intervals and windows are floored at 16 commits: consecutive
    /// interval starts are never closer than one window, and a window must
    /// exceed the commit-width overshoot (≤ 7) or the serial pass could be
    /// asked to checkpoint behind its own position.
    pub fn for_experiment_checkpointed(exp: &ExperimentConfig) -> Self {
        let quick = Self::quick_checkpointed();
        if exp.warmup == quick.offset && exp.measure == quick.region {
            return quick;
        }
        let min_measure = 16u64;
        let intervals = 48.min((exp.measure / (2 * min_measure)).max(1)) as usize;
        Self {
            offset: exp.warmup,
            region: exp.measure,
            intervals,
            detailed_warmup: 0,
            detailed_measure: (exp.measure * 93 / 200 / intervals as u64).max(min_measure),
            functional_window: None,
        }
    }

    /// Detailed commits per interval (warm-up + measure).
    pub fn detailed_per_interval(&self) -> u64 {
        self.detailed_warmup + self.detailed_measure
    }

    /// Fraction of the full run (`offset + region`) simulated in detail.
    pub fn detailed_fraction(&self) -> f64 {
        (self.intervals as u64 * self.detailed_per_interval()) as f64
            / (self.offset + self.region) as f64
    }

    /// Interval start positions (committed-instruction offsets into the
    /// stream): one per stride, jittered inside its stride by a
    /// deterministic golden-ratio sequence so the sample pattern cannot
    /// alias with the workload's loop periodicity (plain systematic
    /// sampling measurably biases phase-heavy workloads).
    pub fn starts(&self) -> Vec<u64> {
        let stride = self.region / self.intervals.max(1) as u64;
        let slack = stride.saturating_sub(self.detailed_per_interval());
        (0..self.intervals)
            .map(|i| {
                // Low-discrepancy fraction of the stride's slack:
                // frac(i * phi) via 64-bit fixed point.
                let phi = 0x9E37_79B9_7F4A_7C15u64; // 2^64 / golden ratio
                let frac = (i as u64).wrapping_mul(phi) >> 32;
                let jitter = (slack * frac) >> 32;
                self.offset + i as u64 * stride + jitter
            })
            .collect()
    }

    /// Checks the plan's consistency.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint: at least one interval,
    /// a non-empty measure span, and detailed spans that fit the region.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.intervals == 0 {
            return Err("need at least one interval".into());
        }
        if self.detailed_measure == 0 {
            return Err("intervals must measure something".into());
        }
        if self.intervals as u64 * self.detailed_per_interval() > self.region {
            return Err(format!(
                "detailed spans exceed the sampled region ({} intervals x {} > {})",
                self.intervals,
                self.detailed_per_interval(),
                self.region
            ));
        }
        Ok(())
    }

    /// Validates the plan.
    ///
    /// # Panics
    ///
    /// Panics if there are no intervals, no measured commits, or the
    /// detailed spans overrun the region ([`SamplingPlan::try_validate`]).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("invalid sampling plan: {e}");
        }
    }
}

/// One detailed interval's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// Committed-instruction offset at which the interval began.
    pub start: u64,
    /// Phase label at the interval start: the generator's active loop
    /// index (see [`WorkloadStream::current_loop`]; always 0 for
    /// assembled programs).
    pub phase: usize,
    /// Functional cache misses per instruction over the measured span
    /// (from the no-timing model — the regression estimator's first
    /// auxiliary variable).
    pub func_miss_rate: f64,
    /// Functional branch mispredictions per instruction over the measured
    /// span (second auxiliary variable).
    pub func_mispred_rate: f64,
    /// Measurement-window statistics of the interval.
    pub stats: SimStats,
}

/// A sampled estimate of a long run.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingReport {
    /// The plan that produced it.
    pub plan: SamplingPlan,
    /// Per-interval results, in stream order.
    pub samples: Vec<IntervalSample>,
    /// True per-phase instruction weights over the estimated region, from
    /// the functional profiling pass (`weights[p]` = fraction of region
    /// instructions executed in loop `p`; sums to 1).
    pub phase_weights: Vec<f64>,
    /// Functional cache misses per instruction over the whole region.
    pub region_miss_rate: f64,
    /// Functional branch mispredictions per instruction over the whole
    /// region.
    pub region_mispred_rate: f64,
}

impl SamplingReport {
    /// Estimated IPC — the harness's best estimator: a **regression
    /// (control-variate) estimate** over the sampled windows, falling back
    /// to the phase-stratified and pooled means when the regression is
    /// ill-conditioned.
    ///
    /// Each window's CPI is paired with two *functionally known*
    /// covariates — its no-timing cache-miss and branch-misprediction
    /// rates — whose exact region-wide means the profiling pass computed.
    /// Fitting `CPI ≈ β₀ + β₁·miss + β₂·mispred` on the samples and
    /// evaluating at the region means removes the variance those two
    /// mechanisms explain, which is most of what distinguishes one window
    /// from another at this machine's bottlenecks.
    pub fn ipc(&self) -> f64 {
        match self.cpi_regression() {
            Some(cpi) => 1.0 / cpi,
            None => self.ipc_stratified(),
        }
    }

    /// The regression estimate of region CPI, when well-conditioned.
    fn cpi_regression(&self) -> Option<f64> {
        let n = self.samples.len();
        if n < 6 {
            return None;
        }
        let mut min_cpi = f64::INFINITY;
        let mut max_cpi = 0.0f64;
        // Normal equations for y = b0 + b1 x1 + b2 x2 (ridge-stabilised).
        let mut xtx = [[0.0f64; 3]; 3];
        let mut xty = [0.0f64; 3];
        for s in &self.samples {
            if s.stats.committed == 0 {
                return None;
            }
            let y = s.stats.cycles as f64 / s.stats.committed as f64;
            min_cpi = min_cpi.min(y);
            max_cpi = max_cpi.max(y);
            let x = [1.0, s.func_miss_rate, s.func_mispred_rate];
            for i in 0..3 {
                for j in 0..3 {
                    xtx[i][j] += x[i] * x[j];
                }
                xty[i] += x[i] * y;
            }
        }
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += if i == 0 { 1e-9 } else { 1e-7 };
        }
        let beta = solve3(xtx, xty)?;
        let cpi = beta[0] + beta[1] * self.region_miss_rate + beta[2] * self.region_mispred_rate;
        // Guard against an extrapolation blow-up: the region mean must
        // land inside (a modest widening of) the observed window range.
        if !cpi.is_finite() || cpi < min_cpi * 0.7 || cpi > max_cpi * 1.3 {
            return None;
        }
        Some(cpi)
    }

    /// Estimated IPC, **phase-stratified** (SimPoint-style): samples are
    /// grouped by the phase (generator loop) they landed in, each group's
    /// cycles-per-instruction is weighted by the phase's *true* share of
    /// the region (from the functional profiling pass), and phases no
    /// sample landed in fall back to the pooled CPI. This removes the
    /// aliasing error a plain pooled mean suffers when systematic sample
    /// positions beat against the workload's loop structure.
    pub fn ipc_stratified(&self) -> f64 {
        let committed: u64 = self.samples.iter().map(|s| s.stats.committed).sum();
        let cycles: u64 = self.samples.iter().map(|s| s.stats.cycles).sum();
        if committed == 0 || cycles == 0 {
            return 0.0;
        }
        let pooled_cpi = cycles as f64 / committed as f64;
        if self.phase_weights.is_empty() {
            return 1.0 / pooled_cpi;
        }
        let phases = self.phase_weights.len();
        let mut phase_committed = vec![0u64; phases];
        let mut phase_cycles = vec![0u64; phases];
        for s in &self.samples {
            if s.phase < phases {
                phase_committed[s.phase] += s.stats.committed;
                phase_cycles[s.phase] += s.stats.cycles;
            }
        }
        let mut cpi = 0.0;
        for (p, &w) in self.phase_weights.iter().enumerate() {
            cpi += w * if phase_committed[p] > 0 {
                phase_cycles[p] as f64 / phase_committed[p] as f64
            } else {
                pooled_cpi
            };
        }
        1.0 / cpi
    }

    /// Estimated IPC from the pooled (unstratified) mean: total measured
    /// commits over total measured cycles.
    pub fn ipc_pooled(&self) -> f64 {
        let committed: u64 = self.samples.iter().map(|s| s.stats.committed).sum();
        let cycles: u64 = self.samples.iter().map(|s| s.stats.cycles).sum();
        if cycles == 0 {
            0.0
        } else {
            committed as f64 / cycles as f64
        }
    }

    /// Estimated cache miss ratio over the measured windows.
    pub fn miss_ratio(&self) -> f64 {
        let (mut miss, mut total) = (0u64, 0u64);
        for s in &self.samples {
            miss += s.stats.cache.misses + s.stats.cache.merged_misses;
            total += s.stats.cache.hits + s.stats.cache.misses + s.stats.cache.merged_misses;
        }
        if total == 0 {
            0.0
        } else {
            miss as f64 / total as f64
        }
    }

    /// Estimated executions per committed instruction (re-execution rate).
    pub fn executions_per_commit(&self) -> f64 {
        let committed: u64 = self.samples.iter().map(|s| s.stats.committed).sum();
        let executions: u64 = self.samples.iter().map(|s| s.stats.executions).sum();
        if committed == 0 {
            0.0
        } else {
            executions as f64 / committed as f64
        }
    }
}

/// Solves the 3×3 system `a·x = b` by Gaussian elimination with partial
/// pivoting; `None` when singular.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-18 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in 0..3 {
            if row == col {
                continue;
            }
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, v) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= f * v;
            }
            b[row] -= f * b[col];
        }
    }
    Some([b[0] / a[0][0], b[1] / a[1][1], b[2] / a[2][2]])
}

/// Solves the dense `n × n` system `a·x = b` by Gaussian elimination with
/// partial pivoting (`n` is the per-phase regression's phase count plus
/// two covariates — single digits); `None` when singular.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in 0..n {
            if row == col {
                continue;
            }
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            let pivot_row = std::mem::take(&mut a[col]);
            for (k, v) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= f * v;
            }
            a[col] = pivot_row;
            b[row] -= f * b[col];
        }
    }
    Some((0..n).map(|i| b[i] / a[i][i]).collect())
}

// ----------------------------------------------------------------------
// Checkpoint-seeded sampling
// ----------------------------------------------------------------------

/// Functionally-known description of one committed-stream span: its exact
/// per-phase instruction composition and functional miss/misprediction
/// rates. These are the per-phase regression estimator's covariates — all
/// derived from a generation-only pass, never from timing simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanProfile {
    /// First committed-instruction position of the span (inclusive).
    pub begin: u64,
    /// One past the last position (exclusive).
    pub end: u64,
    /// Exact fraction of the span's instructions executed in each
    /// generator loop (phase); sums to 1.
    pub phase_fracs: Vec<f64>,
    /// Functional cache misses per span instruction.
    pub miss_rate: f64,
    /// Functional branch mispredictions per span instruction.
    pub mispred_rate: f64,
}

impl SpanProfile {
    /// Span length in committed instructions.
    pub fn len(&self) -> u64 {
        self.end - self.begin
    }

    /// True when the span is empty.
    pub fn is_empty(&self) -> bool {
        self.end == self.begin
    }
}

/// One measured window of a checkpoint-seeded sampled run: the span's
/// functional profile plus the *exact* measurement-window statistics of
/// the restored machine (bit-identical to the uninterrupted run over the
/// same span).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointedSample {
    /// The window's span and covariates.
    pub span: SpanProfile,
    /// Detailed statistics of the window.
    pub stats: SimStats,
}

/// A checkpoint-seeded sampled estimate: exact window measurements plus
/// functionally-profiled gaps, combined by the **per-phase regression
/// estimator** ([`CheckpointedReport::ipc`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointedReport {
    /// The plan that produced it.
    pub plan: SamplingPlan,
    /// Measured windows, in stream order.
    pub windows: Vec<CheckpointedSample>,
    /// Unmeasured gaps between (and after) the windows, in stream order.
    pub gaps: Vec<SpanProfile>,
}

impl CheckpointedReport {
    /// Estimated region IPC — the checkpoint-seeded harness's estimator.
    ///
    /// The measured windows' cycles are **exact** (each window restored
    /// the uninterrupted run's machine state from its checkpoint), so only
    /// the gaps need estimating. Window CPI is regressed on the spans'
    /// functionally-known covariates — the per-phase instruction
    /// composition (an intercept *per generator-loop phase*, entered
    /// fractionally so windows spanning a phase transition inform both
    /// phases) plus cache-miss and branch-misprediction rates, the control
    /// variates — and each gap's CPI is predicted from its own exactly-
    /// known covariates. Predictions falling outside the observed window
    /// CPI range (widened ×1.5) fall back to the pooled window CPI, as
    /// does everything when the fit is singular.
    pub fn ipc(&self) -> f64 {
        let committed: u64 = self
            .windows
            .iter()
            .map(|w| w.stats.committed)
            .chain(self.gaps.iter().map(SpanProfile::len))
            .sum();
        let cycles = self.estimated_cycles();
        if cycles <= 0.0 {
            return 0.0;
        }
        committed as f64 / cycles
    }

    /// Total estimated cycles over windows (measured) plus gaps
    /// (predicted).
    fn estimated_cycles(&self) -> f64 {
        let window_cycles: u64 = self.windows.iter().map(|w| w.stats.cycles).sum();
        let pooled = self.pooled_cpi();
        let predict = self.fit_gap_predictor();
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for w in &self.windows {
            if w.stats.committed > 0 {
                let cpi = w.stats.cycles as f64 / w.stats.committed as f64;
                lo = lo.min(cpi);
                hi = hi.max(cpi);
            }
        }
        let mut cycles = window_cycles as f64;
        for gap in &self.gaps {
            let mut cpi = predict.as_ref().map_or(pooled, |p| p.predict(gap));
            if !cpi.is_finite() || cpi < lo / 1.5 || cpi > hi * 1.5 {
                cpi = pooled;
            }
            cycles += gap.len() as f64 * cpi;
        }
        cycles
    }

    /// Fits the per-phase regression on the measured windows; `None` when
    /// under-determined or singular.
    fn fit_gap_predictor(&self) -> Option<GapPredictor> {
        let phases = self
            .windows
            .iter()
            .map(|w| w.span.phase_fracs.len())
            .max()?;
        // Phases at least one window actually executed in; unseen phases
        // cannot be fitted and are priced at the pooled CPI instead.
        let present: Vec<usize> = (0..phases)
            .filter(|&p| {
                self.windows
                    .iter()
                    .any(|w| w.span.phase_fracs.get(p).copied().unwrap_or(0.0) > 0.0)
            })
            .collect();
        let dims = present.len() + 2;
        if self.windows.len() < dims + 2 {
            return None;
        }
        let mut xtx = vec![vec![0.0f64; dims]; dims];
        let mut xty = vec![0.0f64; dims];
        let mut row = vec![0.0f64; dims];
        for w in &self.windows {
            if w.stats.committed == 0 {
                return None;
            }
            let y = w.stats.cycles as f64 / w.stats.committed as f64;
            for (i, &p) in present.iter().enumerate() {
                row[i] = w.span.phase_fracs.get(p).copied().unwrap_or(0.0);
            }
            row[present.len()] = w.span.miss_rate;
            row[present.len() + 1] = w.span.mispred_rate;
            for i in 0..dims {
                for j in 0..dims {
                    xtx[i][j] += row[i] * row[j];
                }
                xty[i] += row[i] * y;
            }
        }
        for (i, r) in xtx.iter_mut().enumerate() {
            r[i] += 1e-7;
        }
        let beta = solve_dense(xtx, xty)?;
        Some(GapPredictor {
            present,
            beta,
            pooled: self.pooled_cpi(),
        })
    }

    /// Pooled CPI over the measured windows (the estimator of last
    /// resort).
    fn pooled_cpi(&self) -> f64 {
        let committed: u64 = self.windows.iter().map(|w| w.stats.committed).sum();
        let cycles: u64 = self.windows.iter().map(|w| w.stats.cycles).sum();
        if committed == 0 {
            0.0
        } else {
            cycles as f64 / committed as f64
        }
    }

    /// Estimated IPC from the pooled window mean alone (no gap modelling)
    /// — the diagnostic baseline the regression is judged against.
    pub fn ipc_pooled(&self) -> f64 {
        let cpi = self.pooled_cpi();
        if cpi == 0.0 {
            0.0
        } else {
            1.0 / cpi
        }
    }

    /// Cache miss ratio over the measured windows.
    pub fn miss_ratio(&self) -> f64 {
        let (mut miss, mut total) = (0u64, 0u64);
        for w in &self.windows {
            miss += w.stats.cache.misses + w.stats.cache.merged_misses;
            total += w.stats.cache.hits + w.stats.cache.misses + w.stats.cache.merged_misses;
        }
        if total == 0 {
            0.0
        } else {
            miss as f64 / total as f64
        }
    }

    /// Executions per committed instruction over the measured windows (the
    /// re-execution rate Table 2 reports for the VP write-back scheme).
    pub fn executions_per_commit(&self) -> f64 {
        let committed: u64 = self.windows.iter().map(|w| w.stats.committed).sum();
        let executions: u64 = self.windows.iter().map(|w| w.stats.executions).sum();
        if committed == 0 {
            0.0
        } else {
            executions as f64 / committed as f64
        }
    }

    /// Fraction of the estimated region actually simulated in detail.
    pub fn detailed_fraction_achieved(&self) -> f64 {
        let windows: u64 = self.windows.iter().map(|w| w.stats.committed).sum();
        let gaps: u64 = self.gaps.iter().map(SpanProfile::len).sum();
        if windows + gaps == 0 {
            0.0
        } else {
            windows as f64 / (windows + gaps) as f64
        }
    }
}

/// The fitted per-phase regression: CPI ≈ Σ_p frac_p·α_p + β₁·miss +
/// β₂·mispred, with phases absent from every window priced at the pooled
/// window CPI.
struct GapPredictor {
    present: Vec<usize>,
    beta: Vec<f64>,
    pooled: f64,
}

impl GapPredictor {
    fn predict(&self, span: &SpanProfile) -> f64 {
        let k = self.present.len();
        let mut cpi = self.beta[k] * span.miss_rate + self.beta[k + 1] * span.mispred_rate;
        let mut seen_frac = 0.0;
        for (i, &p) in self.present.iter().enumerate() {
            let f = span.phase_fracs.get(p).copied().unwrap_or(0.0);
            cpi += f * self.beta[i];
            seen_frac += f;
        }
        // Instructions in phases no window sampled: pooled CPI.
        cpi + (1.0 - seen_frac).max(0.0) * self.pooled
    }
}

/// Profiles an ordered, disjoint list of spans (given by their
/// `[begin, end)` committed positions) in **one** functional pass over the
/// stream: exact per-phase composition and functional miss/misprediction
/// rates per span.
fn profile_spans(
    workload: Workload,
    seed: u64,
    spans: &[(u64, u64)],
    config: &SimConfig,
) -> Vec<SpanProfile> {
    let mut trace = workload.stream(seed);
    let mut model = FunctionalModel::new(config);
    let phases = trace.loop_count();
    let mut pos = 0u64;
    let mut out = Vec::with_capacity(spans.len());
    for &(begin, end) in spans {
        // Consecutive windows can overlap by up to commit-width − 1 when a
        // window's achieved end runs past the next checkpoint's start; the
        // single forward pass then profiles the later span from where it
        // stands (≤ a few instructions short — covariates only).
        let begin = begin.max(pos);
        let end = end.max(begin);
        while pos < begin {
            let di = trace.next().expect("synthetic traces are infinite");
            model.step(&di);
            pos += 1;
        }
        let mut counts = vec![0u64; phases];
        let (mut misses, mut mispreds) = (0u64, 0u64);
        while pos < end {
            counts[trace.current_loop()] += 1;
            let di = trace.next().expect("synthetic traces are infinite");
            let (miss, mispred) = model.step(&di);
            misses += u64::from(miss);
            mispreds += u64::from(mispred);
            pos += 1;
        }
        let n = (end - begin).max(1) as f64;
        out.push(SpanProfile {
            begin,
            end,
            phase_fracs: counts.into_iter().map(|c| c as f64 / n).collect(),
            miss_rate: misses as f64 / n,
            mispred_rate: mispreds as f64 / n,
        });
    }
    out
}

/// Runs a **checkpoint-seeded** sampled estimate: every interval restores
/// the exact machine state of the uninterrupted run from its checkpoint
/// (`checkpoints[i] = (interval start, snapshot)`, as produced by
/// `vpr_bench::checkpoints::generate_checkpoints` or loaded from a
/// `.vprsnap` directory) and simulates only the measured window — no
/// functional re-warming, no discarded detailed warm-up. Window runs fan
/// out over [`vpr_core::par`] with submission-order determinism.
///
/// # Panics
///
/// Panics if the checkpoint list does not match the plan's interval
/// count, or if a snapshot fails to restore (a validated checkpoint that
/// does not restore is a bug, not an input error).
pub fn sample_from_checkpoints(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    plan: &SamplingPlan,
    checkpoints: &[(u64, vpr_snap::Snapshot)],
    jobs: usize,
) -> CheckpointedReport {
    let workload = workload.into();
    plan.validate();
    assert_eq!(
        checkpoints.len(),
        plan.intervals,
        "need one checkpoint per interval"
    );
    let config = crate::checkpoints::sim_config(scheme, physical_regs, exp);
    let measure = plan.detailed_warmup + plan.detailed_measure;
    let windows: Vec<(u64, u64, SimStats)> = par::par_map(
        jobs.max(1),
        checkpoints.to_vec(),
        move |_, (_, snapshot)| {
            let fresh = workload.stream(exp.seed);
            let mut cpu: Processor<WorkloadStream> =
                Processor::restore(&snapshot, fresh).expect("interval checkpoint restores");
            // Shared (canonical-NRR) checkpoints serve every NRR value of
            // their scheme family: re-price the NRR-dependent state for
            // the target configuration before measuring. Non-shared
            // checkpoints already carry the target scheme (a no-op here).
            assert!(
                crate::checkpoints::same_family(cpu.config().scheme, scheme),
                "checkpoint scheme {:?} cannot seed a {scheme:?} window",
                cpu.config().scheme
            );
            if let Some(target_nrr) = scheme.nrr() {
                if cpu.config().scheme.nrr() != Some(target_nrr) {
                    // Mild downshifts (the only re-targets the sharing
                    // policy produces — `checkpoints::shares_group_pass`)
                    // measure well as direct slices under write-back
                    // allocation: the canonical operating point is close
                    // enough that no settling span is needed (worst
                    // observed +0.9 % over the exact-seeded error on the
                    // quick fig4 grid). Issue allocation is touchier —
                    // the NRR gates *waiting* instructions, so window
                    // occupancy needs to re-equilibrate — and gets half a
                    // window of discarded settling commits (10 % → 2.9 %
                    // worst error on the quick fig5 grid; a full window
                    // overshoots the stride and drifts li by ~3.5 %).
                    cpu.retarget_nrr(target_nrr);
                    if matches!(scheme, RenameScheme::VirtualPhysicalIssue { .. }) {
                        cpu.run(plan.detailed_measure / 2);
                    }
                }
            }
            let begin = cpu.absolute_committed();
            cpu.reset_window();
            let stats = cpu.run(measure);
            (begin, cpu.absolute_committed(), stats)
        },
    );
    // Span accounting: windows are exact slices of the uninterrupted run;
    // the gaps between them (and the tail out to the region end) are what
    // the estimator predicts. Consecutive windows can overlap by up to
    // commit-width − 1 instructions when an interval's achieved end runs
    // past the next checkpoint's achieved start — the overlapped commits
    // are counted in both windows (numerator and denominator alike, a
    // ≤0.1 % effect at quick scale), and the gap in between is empty.
    let region_end = (plan.offset + plan.region).max(windows.last().map_or(0, |w| w.1));
    let mut gap_spans = Vec::with_capacity(windows.len());
    for (i, &(_, end, _)) in windows.iter().enumerate() {
        let next_begin = windows
            .get(i + 1)
            .map_or(region_end, |&(begin, _, _)| begin);
        if next_begin > end {
            gap_spans.push((end, next_begin));
        }
    }
    // One functional pass profiles windows and gaps together: label the
    // interleaved spans, sort by position, and split the profiles back
    // out afterwards (ordering within each class is preserved).
    let mut labelled: Vec<(u64, u64, bool)> = windows
        .iter()
        .map(|&(b, e, _)| (b, e, false))
        .chain(gap_spans.iter().map(|&(b, e)| (b, e, true)))
        .collect();
    labelled.sort_unstable();
    let spans: Vec<(u64, u64)> = labelled.iter().map(|&(b, e, _)| (b, e)).collect();
    let profiles = profile_spans(workload, exp.seed, &spans, &config);
    let mut window_profiles = Vec::with_capacity(windows.len());
    let mut gap_profiles = Vec::with_capacity(gap_spans.len());
    for (profile, &(_, _, is_gap)) in profiles.into_iter().zip(&labelled) {
        if is_gap {
            gap_profiles.push(profile);
        } else {
            window_profiles.push(profile);
        }
    }
    CheckpointedReport {
        plan: *plan,
        windows: window_profiles
            .into_iter()
            .zip(windows)
            .map(|(span, (_, _, stats))| CheckpointedSample { span, stats })
            .collect(),
        gaps: gap_profiles,
    }
}

/// The no-timing functional machine model: a trained branch predictor and
/// a resident-line cache. It is what fast-forwarded spans are replayed
/// through — warming the state a detailed interval starts from, and
/// counting the functional miss/misprediction events the regression
/// estimator uses as covariates.
#[derive(Clone)]
struct FunctionalModel {
    bht: vpr_frontend::BranchHistoryTable,
    cache: vpr_mem::DataCache,
}

impl FunctionalModel {
    fn new(config: &SimConfig) -> Self {
        Self {
            bht: vpr_frontend::BranchHistoryTable::new(config.bht_entries),
            cache: vpr_mem::DataCache::new(config.cache),
        }
    }

    /// Processes one instruction; returns `(functional_miss, mispredict)`.
    fn step(&mut self, di: &vpr_isa::DynInst) -> (bool, bool) {
        match di.op() {
            vpr_isa::OpClass::BranchCond => {
                let b = di.branch().expect("trace records outcomes");
                let mispredict = self.bht.predict(di.pc()) != b.taken;
                self.bht.update(di.pc(), b.taken);
                (false, mispredict)
            }
            op if op.is_mem() => {
                let m = di.mem().expect("memory op carries an access");
                let hit = self.cache.would_hit(m.addr);
                self.cache.warm_touch(m.addr, op == vpr_isa::OpClass::Store);
                (!hit, false)
            }
            _ => (false, false),
        }
    }
}

/// The functional profiling pass over the estimated region: per-phase
/// instruction weights plus the region's functional miss and
/// misprediction rates (the regression estimator's known means).
pub struct RegionProfile {
    /// `weights[p]` = fraction of region instructions executed in loop `p`.
    pub phase_weights: Vec<f64>,
    /// Functional cache misses per region instruction.
    pub miss_rate: f64,
    /// Functional branch mispredictions per region instruction.
    pub mispred_rate: f64,
}

/// Profiles `[offset, offset + region)` functionally — one generation-only
/// pass, no simulation. The model is warmed over the `offset` prefix so
/// region rates carry no cold-start artefacts.
pub fn profile_region(
    workload: impl Into<Workload>,
    seed: u64,
    offset: u64,
    region: u64,
    config: &SimConfig,
) -> RegionProfile {
    let mut trace = workload.into().stream(seed);
    let mut model = FunctionalModel::new(config);
    for _ in 0..offset {
        let di = trace.next().expect("synthetic traces are infinite");
        model.step(&di);
    }
    let mut counts = vec![0u64; trace.loop_count()];
    let (mut misses, mut mispreds) = (0u64, 0u64);
    for _ in 0..region {
        counts[trace.current_loop()] += 1;
        let di = trace.next().expect("synthetic traces are infinite");
        let (miss, mispred) = model.step(&di);
        misses += u64::from(miss);
        mispreds += u64::from(mispred);
    }
    RegionProfile {
        phase_weights: counts
            .into_iter()
            .map(|c| c as f64 / region as f64)
            .collect(),
        miss_rate: misses as f64 / region as f64,
        mispred_rate: mispreds as f64 / region as f64,
    }
}

/// One interval's functional seed: the stream position (as [`Resumable`]
/// state), the warmed predictor/cache to preheat the processor with, the
/// phase label, and the measured window's functional covariates.
///
/// [`Resumable`]: vpr_snap::Resumable
struct FunctionalSeed {
    phase: usize,
    trace_state: Vec<u8>,
    bht: vpr_frontend::BranchHistoryTable,
    cache: vpr_mem::DataCache,
    func_miss_rate: f64,
    func_mispred_rate: f64,
}

/// Seeds every interval from **one warm serial functional pass**: a single
/// generation-only walk over `[0, last interval end)` that checkpoints the
/// stream cursor and the warmed predictor/cache at each interval start,
/// and tallies each measured window's functional covariates along the
/// way. State-identical to independently re-warming each interval over
/// its whole prefix (the model is deterministic and the walk is the same),
/// at O(region) rather than O(intervals × region) functional work.
fn functional_seeds(
    workload: Workload,
    seed: u64,
    plan: &SamplingPlan,
    config: &SimConfig,
) -> Vec<FunctionalSeed> {
    use vpr_snap::Resumable as _;
    let mut trace = workload.stream(seed);
    let mut model = FunctionalModel::new(config);
    let mut pos = 0u64;
    let step = |trace: &mut WorkloadStream, model: &mut FunctionalModel| {
        let di = trace.next().expect("synthetic traces are infinite");
        model.step(&di)
    };
    let mut seeds = Vec::with_capacity(plan.intervals);
    for start in plan.starts() {
        while pos < start {
            step(&mut trace, &mut model);
            pos += 1;
        }
        let mut enc = vpr_snap::Encoder::new();
        trace.save_state(&mut enc);
        let phase = trace.current_loop();
        let bht = model.bht.clone();
        let cache = model.cache.clone();
        // Covariates of the measured span [start + warmup, + measure):
        // the plan guarantees the detailed span fits inside the stride, so
        // the window ends before the next interval starts.
        let wstart = start + plan.detailed_warmup;
        while pos < wstart {
            step(&mut trace, &mut model);
            pos += 1;
        }
        let (mut misses, mut mispreds) = (0u64, 0u64);
        while pos < wstart + plan.detailed_measure {
            let (miss, mispred) = step(&mut trace, &mut model);
            misses += u64::from(miss);
            mispreds += u64::from(mispred);
            pos += 1;
        }
        seeds.push(FunctionalSeed {
            phase,
            trace_state: enc.into_bytes(),
            bht,
            cache,
            func_miss_rate: misses as f64 / plan.detailed_measure as f64,
            func_mispred_rate: mispreds as f64 / plan.detailed_measure as f64,
        });
    }
    seeds
}

/// One interval's prepared inputs: the positioned generator, the warmed
/// functional state to preheat the processor with, the phase label, and
/// the window's functional covariates.
struct PreparedInterval {
    trace: WorkloadStream,
    model: FunctionalModel,
    phase: usize,
    func_miss_rate: f64,
    func_mispred_rate: f64,
}

/// Positions a fresh generator at `start` with the functional model warmed
/// over the leading span, and extracts the measured window's functional
/// miss/misprediction rates from a throw-away clone.
fn prepare_interval(
    workload: Workload,
    seed: u64,
    start: u64,
    plan: &SamplingPlan,
    config: &SimConfig,
) -> PreparedInterval {
    let mut trace = workload.stream(seed);
    let warm_span = plan.functional_window.map_or(start, |w| w.min(start));
    trace.fast_forward(start - warm_span);
    let mut model = FunctionalModel::new(config);
    for _ in 0..warm_span {
        let di = trace.next().expect("synthetic traces are infinite");
        model.step(&di);
    }
    let phase = trace.current_loop();
    // Covariates for the measured span `[start + warmup, start + warmup +
    // measure)`, from clones — the real generator/model must stay at
    // `start` for the detailed simulation.
    let mut ftrace = trace.clone();
    let mut fmodel = model.clone();
    for _ in 0..plan.detailed_warmup {
        let di = ftrace.next().expect("synthetic traces are infinite");
        fmodel.step(&di);
    }
    let (mut misses, mut mispreds) = (0u64, 0u64);
    for _ in 0..plan.detailed_measure {
        let di = ftrace.next().expect("synthetic traces are infinite");
        let (miss, mispred) = fmodel.step(&di);
        misses += u64::from(miss);
        mispreds += u64::from(mispred);
    }
    PreparedInterval {
        trace,
        model,
        phase,
        func_miss_rate: misses as f64 / plan.detailed_measure as f64,
        func_mispred_rate: mispreds as f64 / plan.detailed_measure as f64,
    }
}

/// Runs one sampled estimate: `plan.intervals` independent detailed
/// simulations fanned out over the worker pool (submission-order merge —
/// the report is byte-identical for every `exp.jobs`).
pub fn sample_benchmark(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    plan: &SamplingPlan,
) -> SamplingReport {
    let workload = workload.into();
    let profile_config = crate::checkpoints::sim_config(scheme, physical_regs, exp);
    let profile = profile_region(
        workload,
        exp.seed,
        plan.offset,
        plan.region,
        &profile_config,
    );
    sample_benchmark_with_profile(workload, scheme, physical_regs, exp, plan, &profile)
}

/// [`sample_benchmark`] with a precomputed [`RegionProfile`]: the profile
/// depends only on the workload (benchmark, seed, spans) and the
/// cache/predictor geometry — not on the renaming scheme — so callers
/// sweeping several schemes over one benchmark profile once and reuse it.
pub fn sample_benchmark_with_profile(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    plan: &SamplingPlan,
    profile: &RegionProfile,
) -> SamplingReport {
    let workload = workload.into();
    plan.validate();
    let starts = plan.starts();
    let exp = *exp;
    let plan = *plan;
    let build_config = move || crate::checkpoints::sim_config(scheme, physical_regs, &exp);
    let outcomes = if plan.functional_window.is_none() {
        // One warm serial functional pass seeds every interval; only the
        // detailed windows fan out over the pool.
        let seeds = functional_seeds(workload, exp.seed, &plan, &build_config());
        par::par_map(exp.effective_jobs(), seeds, move |_, seed| {
            use vpr_snap::Resumable as _;
            let mut trace = workload.stream(exp.seed);
            trace.restore_state(&mut vpr_snap::Decoder::new(&seed.trace_state));
            let mut cpu = Processor::new(build_config(), trace);
            cpu.preheat(seed.bht, seed.cache);
            cpu.warm_up(plan.detailed_warmup);
            let stats = cpu.run(plan.detailed_measure);
            (
                seed.phase,
                seed.func_miss_rate,
                seed.func_mispred_rate,
                stats,
            )
        })
    } else {
        // A bounded functional window re-warms each interval
        // independently (the windows may overlap arbitrarily, so no
        // single pass covers them).
        par::par_map(exp.effective_jobs(), starts.clone(), move |_, start| {
            let config = build_config();
            let prepared = prepare_interval(workload, exp.seed, start, &plan, &config);
            let mut cpu = Processor::new(config, prepared.trace);
            cpu.preheat(prepared.model.bht, prepared.model.cache);
            cpu.warm_up(plan.detailed_warmup);
            let stats = cpu.run(plan.detailed_measure);
            (
                prepared.phase,
                prepared.func_miss_rate,
                prepared.func_mispred_rate,
                stats,
            )
        })
    };
    SamplingReport {
        plan,
        samples: starts
            .into_iter()
            .zip(outcomes)
            .map(
                |(start, (phase, func_miss_rate, func_mispred_rate, stats))| IntervalSample {
                    start,
                    phase,
                    func_miss_rate,
                    func_mispred_rate,
                    stats,
                },
            )
            .collect(),
        phase_weights: profile.phase_weights.clone(),
        region_miss_rate: profile.miss_rate,
        region_mispred_rate: profile.mispred_rate,
    }
}

/// A sampled estimate next to its full-run reference.
#[derive(Debug, Clone)]
pub struct SamplingAccuracy {
    /// The workload.
    pub workload: Workload,
    /// The renaming scheme.
    pub scheme: RenameScheme,
    /// IPC of the uninterrupted full run's measurement window.
    pub full_ipc: f64,
    /// IPC estimated from the sampled intervals.
    pub sampled_ipc: f64,
    /// Cache miss ratio of the full run.
    pub full_miss_ratio: f64,
    /// Cache miss ratio estimated from the samples.
    pub sampled_miss_ratio: f64,
    /// Fraction of the full run simulated in detail by the sampled
    /// estimate.
    pub detailed_fraction: f64,
}

impl SamplingAccuracy {
    /// Relative IPC error of the sampled estimate, in percent.
    pub fn ipc_error_percent(&self) -> f64 {
        if self.full_ipc == 0.0 {
            0.0
        } else {
            (self.sampled_ipc / self.full_ipc - 1.0) * 100.0
        }
    }
}

/// Runs the full simulation and the sampled estimate side by side.
pub fn evaluate_sampling(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    plan: &SamplingPlan,
) -> SamplingAccuracy {
    let workload = workload.into();
    let config = crate::checkpoints::sim_config(scheme, physical_regs, exp);
    let profile = profile_region(workload, exp.seed, plan.offset, plan.region, &config);
    evaluate_sampling_with_profile(workload, scheme, physical_regs, exp, plan, &profile)
}

/// [`evaluate_sampling`] with a precomputed, scheme-independent
/// [`RegionProfile`] (see [`sample_benchmark_with_profile`]).
pub fn evaluate_sampling_with_profile(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    plan: &SamplingPlan,
    profile: &RegionProfile,
) -> SamplingAccuracy {
    let workload = workload.into();
    let full = crate::run_benchmark(workload, scheme, physical_regs, exp);
    let sampled =
        sample_benchmark_with_profile(workload, scheme, physical_regs, exp, plan, profile);
    SamplingAccuracy {
        workload,
        scheme,
        full_ipc: full.ipc(),
        sampled_ipc: sampled.ipc(),
        full_miss_ratio: full.cache.miss_ratio(),
        sampled_miss_ratio: sampled.miss_ratio(),
        detailed_fraction: plan.detailed_fraction(),
    }
}

/// Renders a set of accuracy rows as JSON (`vpr-bench-sampling/v1`),
/// mirroring the other artefacts' hand-rolled style.
pub fn accuracy_to_json(rows: &[SamplingAccuracy], plan: &SamplingPlan) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"vpr-bench-sampling/v1\",\n");
    let _ = writeln!(
        s,
        "  \"plan\": {{\"offset\": {}, \"region\": {}, \"intervals\": {}, \
         \"detailed_warmup\": {}, \"detailed_measure\": {}, \"detailed_fraction\": {:.4}}},",
        plan.offset,
        plan.region,
        plan.intervals,
        plan.detailed_warmup,
        plan.detailed_measure,
        plan.detailed_fraction()
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"benchmark\": \"{}\", \"scheme\": \"{}\", \"full_ipc\": {:.4}, \
             \"sampled_ipc\": {:.4}, \"ipc_error_percent\": {:.3}, \
             \"full_miss_ratio\": {:.4}, \"sampled_miss_ratio\": {:.4}}}",
            r.workload.name(),
            crate::harness::scheme_label(r.scheme),
            r.full_ipc,
            r.sampled_ipc,
            r.ipc_error_percent(),
            r.full_miss_ratio,
            r.sampled_miss_ratio
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let worst = rows
        .iter()
        .map(|r| r.ipc_error_percent().abs())
        .fold(0.0f64, f64::max);
    let _ = writeln!(s, "  ],\n  \"worst_ipc_error_percent\": {worst:.3}");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_trace::Benchmark;

    #[test]
    fn plan_geometry() {
        let plan = SamplingPlan::quick();
        plan.validate();
        assert_eq!(plan.starts().len(), plan.intervals);
        assert_eq!(plan.starts()[0], plan.offset);
        assert!(
            plan.detailed_fraction() <= 0.25,
            "{}",
            plan.detailed_fraction()
        );
        let for_exp = SamplingPlan::for_experiment(&ExperimentConfig::quick());
        for_exp.validate();
        assert!(for_exp.detailed_fraction() <= 0.25);
    }

    #[test]
    fn sampled_report_is_deterministic_across_jobs() {
        let plan = SamplingPlan {
            offset: 500,
            region: 6_000,
            intervals: 3,
            detailed_warmup: 100,
            detailed_measure: 300,
            functional_window: Some(1_000),
        };
        let mut exp = ExperimentConfig {
            warmup: 500,
            measure: 6_000,
            ..ExperimentConfig::default()
        };
        exp.jobs = 1;
        let serial = sample_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, &exp, &plan);
        exp.jobs = 4;
        let parallel =
            sample_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, &exp, &plan);
        assert_eq!(serial, parallel, "sampling must merge deterministically");
        assert!(serial.ipc() > 0.0);
    }

    #[test]
    #[should_panic(expected = "exceed the sampled region")]
    fn oversized_plan_rejected() {
        SamplingPlan {
            offset: 0,
            region: 100,
            intervals: 10,
            detailed_warmup: 10,
            detailed_measure: 10,
            functional_window: None,
        }
        .validate();
    }
}
