//! # vpr-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (§4.2) on the synthetic workload suite:
//!
//! | paper artefact | function | binary |
//! |----------------|----------|--------|
//! | Table 2 (IPC, conv vs VP write-back) | [`experiments::table2`] | `table2` |
//! | Figure 4 (write-back speedup vs NRR) | [`experiments::fig4`] | `fig4` |
//! | Figure 5 (issue speedup vs NRR) | [`experiments::fig5`] | `fig5` |
//! | Figure 6 (write-back vs issue) | [`experiments::fig6`] | `fig6` |
//! | Figure 7 (IPC vs register-file size) | [`experiments::fig7`] | `fig7` |
//!
//! Run e.g. `cargo run --release -p vpr-bench --bin table2`, or `--bin
//! all` for the whole evaluation. Binaries accept `--warmup`, `--measure`,
//! `--seed`, `--miss-penalty` and `--jobs` flags, plus `--json PATH` to
//! relocate their machine-readable artefact — and `--sampled`
//! (optionally with `--checkpoint-dir DIR`) to estimate every
//! configuration from checkpoint-seeded detailed windows instead of
//! simulating it full-length (see [`sampling`] and `docs/sampling.md`).
//!
//! ## The parallel sweep engine
//!
//! Every artefact above is a grid of independent `(benchmark, scheme,
//! registers)` simulations. The [`sweep`] module fans such grids out over
//! a dependency-free work-stealing thread pool (`vpr_core::par`) and
//! merges the results in submission order, so **sweep output is
//! byte-identical for every worker count** — `--jobs 1` (fully serial),
//! `--jobs N`, or the default `--jobs 0` (one worker per host core).
//! `tests/parallel_determinism.rs` enforces the contract.
//!
//! ## Machine-readable artefacts
//!
//! Each binary writes a JSON twin next to its text table (`table2.json`,
//! `fig4.json`–`fig7.json`, `eval.json` for `--bin all`, `probe.json`,
//! `BENCH_throughput.json`), in hand-rolled schemas
//! (`vpr-bench-<artefact>/v1`) mirroring the throughput harness — the
//! build environment has no serde. The throughput report
//! (`vpr-bench-throughput/v3`) records per-configuration sim-MIPS
//! (best of `--runs` repetitions), the parallel sweep's wall-clock, and a
//! fixed host-ops/sec calibration (`sim_mips_per_host_mops`) so sim-MIPS
//! regressions can be judged independently of runner load; its
//! `--check BASELINE.json` mode is the CI regression gate.
//!
//! ## Sampled simulation and checkpoint artefacts
//!
//! The [`sampling`] module estimates arbitrarily long runs from detailed
//! intervals, in two modes: functionally seeded (functional-warmup →
//! detailed-interval → fast-forward, with regression/stratified
//! estimators) and **checkpoint seeded** (each window restores the exact
//! machine state from a `.vprsnap` interval checkpoint and a per-phase
//! regression prices the gaps). The [`checkpoints`] module manages the
//! artefacts: `--bin checkpoint` creates/inspects/verifies checkpoint
//! directories, the experiment binaries consume them via
//! `--checkpoint-dir`, and `--bin sample` reports both estimators'
//! accuracy against full-run references. Every JSON artefact records a
//! `sampling` provenance block, so sampled and exact results are never
//! confusable. The formats live in `docs/snapshot-format.md`, the
//! methodology in `docs/sampling.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoints;
pub mod experiments;
pub mod harness;
pub mod jobs;
pub mod sampling;
pub mod sweep;
pub mod table;
pub mod workloads;

pub use harness::{run_benchmark, run_benchmark_observed, ExperimentConfig};
pub use jobs::{execute_job, JobOutput, JobSpec};
pub use sampling::{
    sample_benchmark, sample_from_checkpoints, CheckpointedReport, SamplingPlan, SamplingReport,
};
pub use sweep::{run_sweep, run_sweep_metrics, SweepContext, SweepPoint};
pub use table::Table;
pub use workloads::{Workload, WorkloadStream};

/// Extracts `flag VALUE` from `args` (mutating it), for flags the shared
/// [`ExperimentConfig::from_args`] parser does not know (e.g. `--json`).
///
/// # Panics
///
/// Exits the process with status 2 when the flag is present without a
/// value (binary CLI convention).
pub fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Extracts `--workload NAME[,NAME..]` from `args` (mutating it) and
/// parses each comma-separated entry with [`Workload::parse`] — synthetic
/// benchmark names (`swim`) and assembled programs (`asm:matmul`) mix
/// freely. `None` when the flag is absent, leaving the binary's default
/// workload set in force.
///
/// # Panics
///
/// Exits the process with status 2 on an unknown workload name (binary
/// CLI convention, matching [`take_flag_value`]).
pub fn take_workloads(args: &mut Vec<String>) -> Option<Vec<Workload>> {
    take_flag_value(args, "--workload").map(|list| {
        list.split(',')
            .map(|name| {
                Workload::parse(name.trim()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            })
            .collect()
    })
}

/// Extracts a boolean `flag` from `args` (mutating it); `true` when the
/// flag was present.
pub fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

/// Writes a machine-readable artefact next to a binary's text output and
/// says so on stdout (the figure/table binaries all emit JSON alongside
/// their tables; pass `--json PATH` to relocate it).
pub fn write_json_artifact(path: &std::path::Path, json: &str) {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

/// The path an experiment's run-telemetry twin lives at: the artefact's
/// extension replaced by `run.telemetry.json` (`table2.json` →
/// `table2.run.telemetry.json`).
pub fn telemetry_path(json_path: &std::path::Path) -> std::path::PathBuf {
    json_path.with_extension("run.telemetry.json")
}

/// Writes a sweep's run-telemetry next to the experiment artefact at
/// `json_path`. Telemetry is host wall-clock data, deliberately kept in
/// its own file so the experiment JSON stays byte-reproducible across
/// runs and `--jobs` values; a write failure is reported but never fatal
/// (telemetry must not take an experiment down).
pub fn write_run_telemetry(json_path: &std::path::Path, telemetry: &vpr_obs::RunTelemetry) {
    let path = telemetry_path(json_path);
    match std::fs::write(&path, telemetry.to_json()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// Writes the aggregated metric series as Prometheus text exposition
/// (the `--metrics-prom PATH` flag). Sampled sweeps carry no sound
/// full-run series; the file is then not written and a note says why.
pub fn write_prometheus_metrics(path: &std::path::Path, metrics: &sweep::MetricsBlock) {
    match metrics.to_prometheus() {
        Some(text) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
        }
        None => eprintln!(
            "note: sampled sweeps export no metric series; {} not written",
            path.display()
        ),
    }
}
