//! # vpr-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (§4.2) on the synthetic workload suite:
//!
//! | paper artefact | function | binary |
//! |----------------|----------|--------|
//! | Table 2 (IPC, conv vs VP write-back) | [`experiments::table2`] | `table2` |
//! | Figure 4 (write-back speedup vs NRR) | [`experiments::fig4`] | `fig4` |
//! | Figure 5 (issue speedup vs NRR) | [`experiments::fig5`] | `fig5` |
//! | Figure 6 (write-back vs issue) | [`experiments::fig6`] | `fig6` |
//! | Figure 7 (IPC vs register-file size) | [`experiments::fig7`] | `fig7` |
//!
//! Run e.g. `cargo run --release -p vpr-bench --bin table2`, or `--bin
//! all` for the whole evaluation. Binaries accept `--warmup`, `--measure`,
//! `--seed` and (where meaningful) `--miss-penalty` flags.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::{run_benchmark, ExperimentConfig};
pub use table::Table;
