//! Regenerates the paper's Figure 4: speedup of the virtual-physical
//! scheme with **write-back** allocation over the conventional scheme,
//! for NRR ∈ {1, 4, 8, 16, 24, 32} at 64 physical registers.

use vpr_bench::sweep::SweepContext;
use vpr_bench::{
    experiments, take_flag, take_flag_value, take_workloads, write_json_artifact,
    write_prometheus_metrics, write_run_telemetry, ExperimentConfig, Workload,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag_value(&mut args, "--json").unwrap_or_else(|| "fig4.json".into());
    let sampled = take_flag(&mut args, "--sampled");
    let checkpoint_dir: Option<std::path::PathBuf> =
        take_flag_value(&mut args, "--checkpoint-dir").map(Into::into);
    let metrics_prom = take_flag_value(&mut args, "--metrics-prom");
    let workloads = take_workloads(&mut args).unwrap_or_else(Workload::synthetic);
    let exp = ExperimentConfig::from_args(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("Figure 4 — VP write-back speedup vs NRR (64 regs/file)\n");
    let ctx = SweepContext::new(sampled, checkpoint_dir.as_deref());
    if let Err(e) = ctx.try_validate(&exp) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let sweep = experiments::fig4_for(&workloads, &exp, &ctx);
    print!("{}", sweep.render());
    println!("\npaper: FP best at NRR=24-32 (mean 1.3); tiny NRR can lose to conventional");
    write_json_artifact(std::path::Path::new(&json), &sweep.to_json());
    write_run_telemetry(std::path::Path::new(&json), &sweep.telemetry);
    if let Some(p) = metrics_prom {
        write_prometheus_metrics(std::path::Path::new(&p), &sweep.metrics);
    }
}
