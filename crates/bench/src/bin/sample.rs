//! Sampled-simulation accuracy report: estimates the quick table2
//! workload (all nine benchmarks under conventional and VP write-back
//! renaming, or an explicit `--workload` list that may include assembled
//! programs like `asm:matmul`) from detailed intervals and compares
//! against the uninterrupted full-run reference.
//!
//! ```text
//! cargo run --release -p vpr-bench --bin sample -- \
//!     [--json PATH] [--max-error PCT] [--checkpointed] [--checkpoint-dir DIR] \
//!     [--workload NAME[,NAME..]] \
//!     [--intervals N] [--interval-warmup N] [--interval-measure N] \
//!     [--warmup N] [--measure N] [--seed N] [--miss-penalty N] [--jobs N]
//! ```
//!
//! Two estimators can be evaluated:
//!
//! * default — **functionally-seeded** sampling (functional warm-up →
//!   detailed warm-up → measure, ≤ 25 % detailed): cheap enough to run
//!   cold, worst per-config error ≈ 4 % at the quick scale;
//! * `--checkpointed` — **checkpoint-seeded** sampling (each window
//!   restores the exact machine state from an interval checkpoint): the
//!   estimator behind `--sampled` experiment runs, worst per-config error
//!   ≤ 2 % at the quick scale. With `--checkpoint-dir` the interval
//!   checkpoints are loaded from/persisted to disk.
//!
//! `--max-error PCT` turns the run into a gate: exits non-zero when any
//! configuration's sampled IPC deviates from the full run by more than
//! `PCT` percent — the CI sampling-accuracy smoke steps.

use vpr_bench::sampling::{
    accuracy_to_json, evaluate_sampling_with_profile, profile_region, SamplingAccuracy,
    SamplingPlan,
};
use vpr_bench::sweep::{run_sweep_metrics, SweepContext, SweepPoint};
use vpr_bench::workloads::{Workload, TABLE2_SCHEMES};
use vpr_bench::{
    take_flag, take_flag_value, take_workloads, write_json_artifact, ExperimentConfig, Table,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json: std::path::PathBuf = take_flag_value(&mut args, "--json")
        .map(Into::into)
        .unwrap_or_else(|| "sampling.json".into());
    let max_error: Option<f64> = take_flag_value(&mut args, "--max-error").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad value for --max-error: {e}");
            std::process::exit(2);
        })
    });
    let checkpointed = take_flag(&mut args, "--checkpointed");
    let workloads = take_workloads(&mut args).unwrap_or_else(Workload::synthetic);
    let checkpoint_dir: Option<std::path::PathBuf> =
        take_flag_value(&mut args, "--checkpoint-dir").map(Into::into);
    let parse_num = |name: &str, v: Option<String>| -> Option<u64> {
        v.map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("bad value for {name}: {e}");
                std::process::exit(2);
            })
        })
    };
    let intervals = parse_num("--intervals", take_flag_value(&mut args, "--intervals"));
    let iwarm = parse_num(
        "--interval-warmup",
        take_flag_value(&mut args, "--interval-warmup"),
    );
    let imeasure = parse_num(
        "--interval-measure",
        take_flag_value(&mut args, "--interval-measure"),
    );
    // Remaining flags override the *quick* defaults (throughput-bin style,
    // so a flag explicitly set to a default value is still honoured); plan
    // overrides apply after the plan is derived from the experiment.
    let mut exp = ExperimentConfig::quick();
    if let Err(e) = exp.apply_args(args) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let mut plan = if checkpointed {
        SamplingPlan::for_experiment_checkpointed(&exp)
    } else {
        SamplingPlan::for_experiment(&exp)
    };
    if let Some(n) = intervals {
        plan.intervals = n as usize;
    }
    if let Some(w) = iwarm {
        plan.detailed_warmup = w;
    }
    if let Some(m) = imeasure {
        plan.detailed_measure = m;
    }
    if let Err(e) = plan.try_validate() {
        eprintln!("invalid sampling plan: {e}");
        std::process::exit(2);
    }

    let rows = if checkpointed {
        evaluate_checkpointed(&workloads, &exp, &plan, checkpoint_dir.as_deref())
    } else {
        evaluate_functional(&workloads, &exp, &plan)
    };

    let mut table = Table::new(
        ["bench", "scheme", "full IPC", "sampled IPC", "err %"]
            .map(String::from)
            .to_vec(),
    );
    for r in &rows {
        table.add_row(vec![
            r.workload.name(),
            vpr_bench::workloads::scheme_label(r.scheme),
            format!("{:.3}", r.full_ipc),
            format!("{:.3}", r.sampled_ipc),
            format!("{:+.2}", r.ipc_error_percent()),
        ]);
    }
    println!(
        "sampled simulation ({}): {} intervals x {} detailed commits \
         ({:.1}% of the full run in detailed mode)",
        if checkpointed {
            "checkpoint-seeded"
        } else {
            "functionally-seeded"
        },
        plan.intervals,
        plan.detailed_per_interval(),
        plan.detailed_fraction() * 100.0
    );
    print!("{table}");
    let worst = rows
        .iter()
        .map(|r| r.ipc_error_percent().abs())
        .fold(0.0f64, f64::max);
    println!("worst |IPC error|: {worst:.2}%");

    write_json_artifact(&json, &accuracy_to_json(&rows, &plan));

    if let Some(bound) = max_error {
        if worst > bound {
            eprintln!("FAIL: sampled IPC error {worst:.2}% exceeds the {bound:.2}% bound");
            std::process::exit(1);
        }
        println!("sampling accuracy check passed (bound {bound:.2}%)");
    }
}

/// The functionally-seeded estimator, evaluated per configuration against
/// its full-run reference.
fn evaluate_functional(
    workloads: &[Workload],
    exp: &ExperimentConfig,
    plan: &SamplingPlan,
) -> Vec<SamplingAccuracy> {
    let mut rows = Vec::new();
    for &workload in workloads {
        // The functional region profile is scheme-independent: one pass
        // per workload, shared across the scheme sweep.
        let profile_config = vpr_bench::checkpoints::sim_config(TABLE2_SCHEMES[0], 64, exp);
        let profile = profile_region(
            workload,
            exp.seed,
            plan.offset,
            plan.region,
            &profile_config,
        );
        for scheme in TABLE2_SCHEMES {
            rows.push(evaluate_sampling_with_profile(
                workload, scheme, 64, exp, plan, &profile,
            ));
        }
    }
    rows
}

/// The checkpoint-seeded estimator: exact and sampled table2-grid sweeps
/// side by side (the sampled sweep loads/persists `.vprsnap` interval
/// checkpoints when a directory is given).
fn evaluate_checkpointed(
    workloads: &[Workload],
    exp: &ExperimentConfig,
    plan: &SamplingPlan,
    dir: Option<&std::path::Path>,
) -> Vec<SamplingAccuracy> {
    let points: Vec<SweepPoint> = workloads
        .iter()
        .flat_map(|&w| TABLE2_SCHEMES.iter().map(move |&s| SweepPoint::at64(w, s)))
        .collect();
    let exact = run_sweep_metrics(&points, exp, &SweepContext::exact());
    let mut ctx = SweepContext::new(true, dir);
    ctx.plan = Some(*plan);
    let sampled = run_sweep_metrics(&points, exp, &ctx);
    points
        .iter()
        .zip(exact.points.iter().zip(&sampled.points))
        .map(|(p, (e, s))| SamplingAccuracy {
            workload: p.workload,
            scheme: p.scheme,
            full_ipc: e.ipc,
            sampled_ipc: s.ipc,
            full_miss_ratio: e.miss_ratio,
            sampled_miss_ratio: s.miss_ratio,
            detailed_fraction: plan.detailed_fraction(),
        })
        .collect()
}
