//! Sampled-simulation accuracy report: estimates the quick table2
//! workload (all nine benchmarks under conventional and VP write-back
//! renaming) from detailed intervals covering ≤ 25 % of each run, and
//! compares against the uninterrupted full-run reference.
//!
//! ```text
//! cargo run --release -p vpr-bench --bin sample -- \
//!     [--json PATH] [--max-error PCT] \
//!     [--intervals N] [--interval-warmup N] [--interval-measure N] \
//!     [--warmup N] [--measure N] [--seed N] [--miss-penalty N] [--jobs N]
//! ```
//!
//! `--max-error PCT` turns the run into a gate: exits non-zero when any
//! configuration's sampled IPC deviates from the full run by more than
//! `PCT` percent — the CI sampling-accuracy smoke step.

use vpr_bench::sampling::{
    accuracy_to_json, evaluate_sampling_with_profile, profile_region, SamplingPlan,
};
use vpr_bench::{take_flag_value, write_json_artifact, ExperimentConfig, Table};
use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json: std::path::PathBuf = take_flag_value(&mut args, "--json")
        .map(Into::into)
        .unwrap_or_else(|| "sampling.json".into());
    let max_error: Option<f64> = take_flag_value(&mut args, "--max-error").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad value for --max-error: {e}");
            std::process::exit(2);
        })
    });
    // Flags override the *quick* defaults (throughput-bin style, so a
    // flag explicitly set to a default value is still honoured); plan
    // overrides apply after the plan is derived from the experiment.
    let mut exp = ExperimentConfig::quick();
    let mut intervals: Option<usize> = None;
    let mut iwarm: Option<u64> = None;
    let mut imeasure: Option<u64> = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> u64 {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
                .parse()
                .unwrap_or_else(|e| {
                    eprintln!("bad value for {name}: {e}");
                    std::process::exit(2);
                })
        };
        match flag.as_str() {
            "--warmup" => exp.warmup = take("--warmup"),
            "--measure" => exp.measure = take("--measure"),
            "--seed" => exp.seed = take("--seed"),
            "--miss-penalty" => exp.miss_penalty = take("--miss-penalty"),
            "--jobs" => exp.jobs = take("--jobs") as usize,
            "--intervals" => intervals = Some(take("--intervals") as usize),
            "--interval-warmup" => iwarm = Some(take("--interval-warmup")),
            "--interval-measure" => imeasure = Some(take("--interval-measure")),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let mut plan = SamplingPlan::for_experiment(&exp);
    if let Some(n) = intervals {
        plan.intervals = n;
    }
    if let Some(w) = iwarm {
        plan.detailed_warmup = w;
    }
    if let Some(m) = imeasure {
        plan.detailed_measure = m;
    }
    if let Err(e) = plan.try_validate() {
        eprintln!("invalid sampling plan: {e}");
        std::process::exit(2);
    }

    let schemes = [
        RenameScheme::Conventional,
        RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
    ];
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        // The functional region profile is scheme-independent: one pass
        // per benchmark, shared across the scheme sweep.
        let profile_config = vpr_core::SimConfig::builder()
            .scheme(schemes[0])
            .physical_regs(64)
            .miss_penalty(exp.miss_penalty)
            .build();
        let profile = profile_region(
            benchmark,
            exp.seed,
            plan.offset,
            plan.region,
            &profile_config,
        );
        for scheme in schemes {
            rows.push(evaluate_sampling_with_profile(
                benchmark, scheme, 64, &exp, &plan, &profile,
            ));
        }
    }

    let mut table = Table::new(
        ["bench", "scheme", "full IPC", "sampled IPC", "err %"]
            .map(String::from)
            .to_vec(),
    );
    for r in &rows {
        table.add_row(vec![
            r.benchmark.name().into(),
            vpr_bench::harness::scheme_label(r.scheme),
            format!("{:.3}", r.full_ipc),
            format!("{:.3}", r.sampled_ipc),
            format!("{:+.2}", r.ipc_error_percent()),
        ]);
    }
    println!(
        "sampled simulation: {} intervals x {} detailed commits \
         ({:.1}% of the full run in detailed mode)",
        plan.intervals,
        plan.detailed_per_interval(),
        plan.detailed_fraction() * 100.0
    );
    print!("{table}");
    let worst = rows
        .iter()
        .map(|r| r.ipc_error_percent().abs())
        .fold(0.0f64, f64::max);
    println!("worst |IPC error|: {worst:.2}%");

    write_json_artifact(&json, &accuracy_to_json(&rows, &plan));

    if let Some(bound) = max_error {
        if worst > bound {
            eprintln!("FAIL: sampled IPC error {worst:.2}% exceeds the {bound:.2}% bound");
            std::process::exit(1);
        }
        println!("sampling accuracy check passed (bound {bound:.2}%)");
    }
}
