//! Detailed single-run diagnostics: run one benchmark under one scheme
//! and dump every counter the simulator keeps. Useful for model
//! calibration and for understanding *why* a configuration performs the
//! way it does.
//!
//! ```text
//! cargo run --release -p vpr-bench --bin probe -- swim vp-wb 64 32
//!     [--measure N] [--warmup N] [--seed N] [--miss-penalty N]
//! ```
//!
//! Scheme names: `conv`, `vp-issue`, `vp-wb`.

use vpr_bench::{run_benchmark, take_flag_value, write_json_artifact, ExperimentConfig};
use vpr_core::RenameScheme;
use vpr_isa::RegClass;
use vpr_trace::Benchmark;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag_value(&mut args, "--json").unwrap_or_else(|| "probe.json".into());
    if args.len() < 4 {
        eprintln!(
            "usage: probe <benchmark> <conv|conv-er|vp-issue|vp-wb> <physical-regs> <nrr> [flags]"
        );
        std::process::exit(2);
    }
    let benchmark: Benchmark = args[0].parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let regs: usize = args[2].parse().expect("physical-regs must be a number");
    let nrr: usize = args[3].parse().expect("nrr must be a number");
    let scheme = match args[1].as_str() {
        "conv" => RenameScheme::Conventional,
        "conv-er" => RenameScheme::ConventionalEarlyRelease,
        "vp-issue" => RenameScheme::VirtualPhysicalIssue { nrr },
        "vp-wb" => RenameScheme::VirtualPhysicalWriteback { nrr },
        other => {
            eprintln!("unknown scheme `{other}` (conv|conv-er|vp-issue|vp-wb)");
            std::process::exit(2);
        }
    };
    let exp = ExperimentConfig::from_args(args[4..].iter().cloned()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let s = run_benchmark(benchmark, scheme, regs, &exp);
    println!("{benchmark} / {scheme:?} / {regs} regs");
    println!("  cycles                 {}", s.cycles);
    println!("  committed              {}", s.committed);
    println!("  IPC                    {:.3}", s.ipc());
    println!("  exec/commit            {:.2}", s.executions_per_commit());
    println!("  reexec (register)      {}", s.register_reexecutions);
    println!("  reexec (memory)        {}", s.memory_reexecutions);
    println!("  early releases         {}", s.early_releases);
    println!("  issue alloc stalls     {}", s.issue_allocation_stalls);
    println!("  wb port stalls         {}", s.writeback_port_stalls);
    println!(
        "  rob/iq/lsq full        {}/{}/{}",
        s.rob_full_stalls, s.iq_full_stalls, s.lsq_full_stalls
    );
    println!("  store-buffer stalls    {}", s.store_buffer_stalls);
    for class in [RegClass::Int, RegClass::Fp] {
        let cs = s.class(class);
        println!(
            "  [{class}] alloc {} free {} mean-hold {:.1} occ {:.1} empty-cycles {} rename-stalls {}",
            cs.allocations,
            cs.frees,
            cs.mean_hold(),
            s.mean_occupancy(class),
            cs.empty_free_list_cycles,
            cs.rename_stalls
        );
    }
    println!(
        "  fetch: {} fetched, {} cond branches, {} mispredicted, {} stall cycles",
        s.fetch.fetched, s.fetch.cond_branches, s.fetch.mispredictions, s.fetch.stall_cycles
    );
    println!("  bht accuracy           {:.3}", s.bht.accuracy());
    println!(
        "  cache: {} hits, {} misses, {} merged, miss ratio {:.3}, {} port retries, {} mshr retries",
        s.cache.hits, s.cache.misses, s.cache.merged_misses, s.cache.miss_ratio(),
        s.cache.port_retries, s.cache.mshr_retries
    );
    println!(
        "  lsq: {} forwards, {} speculative, {} violations",
        s.lsq.forwards, s.lsq.speculative_loads, s.lsq.violations
    );
    // The machine-readable counterpart: the full counter set, wrapped
    // with the probed configuration (mirrors the throughput harness's
    // schema style).
    let wrapped = format!(
        "{{\"schema\": \"vpr-bench-probe/v1\",\n \"benchmark\": \"{benchmark}\", \"scheme\": \"{}\", \"physical_regs\": {regs},\n \"stats\": {}}}\n",
        args[1],
        s.to_json().trim_end(),
    );
    write_json_artifact(std::path::Path::new(&json), &wrapped);
}
