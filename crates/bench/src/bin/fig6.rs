//! Regenerates the paper's Figure 6: write-back vs issue allocation,
//! each at its optimal NRR (32), as speedups over conventional renaming.

use vpr_bench::{experiments, ExperimentConfig};

fn main() {
    let exp = ExperimentConfig::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("Figure 6 — write-back vs issue register allocation (NRR=32, 64 regs/file)\n");
    let f6 = experiments::fig6(&exp);
    print!("{}", f6.render());
    println!(
        "\nwrite-back wins on {:.0}% of benchmarks (paper: write-back significantly outperforms issue)",
        100.0 * f6.writeback_win_rate()
    );
}
