//! Regenerates the paper's Figure 6: write-back vs issue allocation,
//! each at its optimal NRR (32), as speedups over conventional renaming.

use vpr_bench::sweep::SweepContext;
use vpr_bench::{
    experiments, take_flag, take_flag_value, take_workloads, write_json_artifact,
    write_prometheus_metrics, write_run_telemetry, ExperimentConfig, Workload,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag_value(&mut args, "--json").unwrap_or_else(|| "fig6.json".into());
    let sampled = take_flag(&mut args, "--sampled");
    let checkpoint_dir: Option<std::path::PathBuf> =
        take_flag_value(&mut args, "--checkpoint-dir").map(Into::into);
    let metrics_prom = take_flag_value(&mut args, "--metrics-prom");
    let workloads = take_workloads(&mut args).unwrap_or_else(Workload::synthetic);
    let exp = ExperimentConfig::from_args(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("Figure 6 — write-back vs issue register allocation (NRR=32, 64 regs/file)\n");
    let ctx = SweepContext::new(sampled, checkpoint_dir.as_deref());
    if let Err(e) = ctx.try_validate(&exp) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let f6 = experiments::fig6_for(&workloads, &exp, &ctx);
    print!("{}", f6.render());
    println!(
        "\nwrite-back wins on {:.0}% of benchmarks (paper: write-back significantly outperforms issue)",
        100.0 * f6.writeback_win_rate()
    );
    write_json_artifact(std::path::Path::new(&json), &f6.to_json());
    write_run_telemetry(std::path::Path::new(&json), &f6.telemetry);
    if let Some(p) = metrics_prom {
        write_prometheus_metrics(std::path::Path::new(&p), &f6.metrics);
    }
}
