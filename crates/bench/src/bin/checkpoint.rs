//! Manages `.vprsnap` checkpoint artefacts: `create` populates a
//! checkpoint directory from one warm serial pass per configuration,
//! `inspect` lists what a directory holds, `verify` re-validates every
//! artefact against its manifest (optionally continuing each restored
//! machine and comparing bit-for-bit against a fresh uninterrupted run),
//! and `repair` quarantines corrupt artefacts, drops dead manifest
//! entries and sweeps debris left by interrupted writes.
//!
//! ```text
//! cargo run --release -p vpr-bench --bin checkpoint -- <create|inspect|verify|repair>
//!     [--dir DIR]                      # checkpoint directory (default: checkpoints)
//!     [--workload a,b,...]             # workload names (synthetic or asm:NAME);
//!                                      #   default: all nine synthetic benchmarks
//!                                      #   (--benchmarks is an accepted alias)
//!     [--schemes l1,l2,...]            # scheme labels; default: conventional,vp-wb-nrr32
//!     [--regs N]                       # physical registers per class (default 64)
//!     [--intervals]                    # create: also write per-interval checkpoints
//!     [--shared]                       # create: family (canonical-NRR) artefacts
//!     [--run N]                        # verify: continue each restore by N commits
//!                                      #         and compare against an exact rerun
//!     [--cross-nrr N1,N2]              # verify: shared-artefact re-target contract
//!     [--max-age SECS]                 # repair: also reclaim *.corrupt quarantine
//!                                      #         files at least SECS old (kept otherwise)
//!     [--warmup N] [--measure N] [--seed N] [--miss-penalty N] [--jobs N]
//! ```
//!
//! `create` writes one **warm** checkpoint per (benchmark, scheme) at the
//! end of warm-up; with `--intervals` it additionally checkpoints every
//! start of the checkpoint-seeded sampling plan, which is what
//! `--sampled --checkpoint-dir` experiment runs seed their windows from.
//! With `--shared` it instead writes one set per *scheme family* under
//! the canonical (maximum) NRR — the artefacts a sampled NRR sweep
//! restores for every NRR value via `Processor::retarget_nrr` (see
//! `docs/sampling.md` §1.3). Stale artefacts (different configuration,
//! seed, or snapshot format) are rejected at load by the manifest's
//! config hash — `verify` reports them, `create` replaces them.
//!
//! `verify --cross-nrr N1,N2` additionally pins the shared-artefact
//! contract on every shared interval checkpoint: re-targeting to the
//! canonical NRR must be a bit-exact no-op, and for each requested NRR
//! two independent restore + re-target + run passes must agree on every
//! counter.

use std::path::PathBuf;
use vpr_bench::checkpoints::{
    checkpoint_key_labelled, config_hash, generate_checkpoints, generate_group_checkpoints,
    group_scheme_label, load_usage, parse_checkpoint_scheme, shares_group_pass, sim_config,
    CheckpointLoadError, CheckpointStore, KIND_INTERVAL,
};
use vpr_bench::sampling::SamplingPlan;
use vpr_bench::workloads::{parse_scheme, scheme_label, TABLE2_SCHEMES};
use vpr_bench::{take_flag, take_flag_value, ExperimentConfig, Table, Workload, WorkloadStream};
use vpr_core::{par, Processor, RenameScheme};

struct Cli {
    command: String,
    dir: PathBuf,
    workloads: Vec<Workload>,
    schemes: Vec<RenameScheme>,
    regs: usize,
    intervals: bool,
    shared: bool,
    run: Option<u64>,
    cross_nrr: Option<(usize, usize)>,
    max_age: Option<u64>,
    exp: ExperimentConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: checkpoint <create|inspect|verify|repair> [--dir DIR] [--workload a,b,...] \
         [--schemes l1,l2,...] [--regs N] [--intervals] [--shared] [--run N] \
         [--cross-nrr N1,N2] [--max-age SECS] \
         [--warmup N] [--measure N] [--seed N] [--miss-penalty N] [--jobs N]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args.remove(0);
    if !matches!(command.as_str(), "create" | "inspect" | "verify" | "repair") {
        eprintln!("unknown command `{command}`");
        usage();
    }
    let dir: PathBuf = take_flag_value(&mut args, "--dir")
        .map(Into::into)
        .unwrap_or_else(|| "checkpoints".into());
    // `--workload` is the canonical spelling; `--benchmarks` stays as an
    // alias from before assembled programs joined the workload set.
    let workload_csv = take_flag_value(&mut args, "--workload")
        .or_else(|| take_flag_value(&mut args, "--benchmarks"));
    let workloads = match workload_csv {
        None => Workload::synthetic(),
        Some(csv) => csv
            .split(',')
            .map(|name| {
                Workload::parse(name.trim()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            })
            .collect(),
    };
    let schemes = match take_flag_value(&mut args, "--schemes") {
        None => TABLE2_SCHEMES.to_vec(),
        Some(csv) => csv
            .split(',')
            .map(|label| {
                parse_scheme(label).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            })
            .collect(),
    };
    let regs = take_flag_value(&mut args, "--regs")
        .map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("bad value for --regs: {e}");
                std::process::exit(2);
            })
        })
        .unwrap_or(64);
    let intervals = take_flag(&mut args, "--intervals");
    let shared = take_flag(&mut args, "--shared");
    let run = take_flag_value(&mut args, "--run").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad value for --run: {e}");
            std::process::exit(2);
        })
    });
    let max_age = take_flag_value(&mut args, "--max-age").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad value for --max-age: {e}");
            std::process::exit(2);
        })
    });
    let cross_nrr = take_flag_value(&mut args, "--cross-nrr").map(|v| {
        let parts: Vec<usize> = v
            .split(',')
            .map(|n| {
                n.parse().unwrap_or_else(|e| {
                    eprintln!("bad value for --cross-nrr: {e}");
                    std::process::exit(2);
                })
            })
            .collect();
        let [a, b] = parts[..] else {
            eprintln!("--cross-nrr needs exactly two comma-separated NRR values");
            std::process::exit(2);
        };
        (a, b)
    });
    // Remaining flags override the quick defaults (matching the other
    // artefact-producing binaries: checkpoints default to the quick
    // workload every test and smoke gate runs).
    let mut exp = ExperimentConfig::quick();
    if let Err(e) = exp.apply_args(args) {
        eprintln!("{e}");
        usage();
    }
    Cli {
        command,
        dir,
        workloads,
        schemes,
        regs,
        intervals,
        shared,
        run,
        cross_nrr,
        max_age,
        exp,
    }
}

fn create(cli: &Cli) {
    // Open (and thereby validate) the target directory before paying for
    // any simulation: a corrupt manifest fails in milliseconds here.
    let mut store = CheckpointStore::open(&cli.dir).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", cli.dir.display());
        std::process::exit(1);
    });
    let plan = cli
        .intervals
        .then(|| SamplingPlan::for_experiment_checkpointed(&cli.exp));
    let exp = cli.exp;
    let regs = cli.regs;
    // --shared: create the *family* (canonical-NRR) artefacts the sampled
    // NRR sweeps restore, one set per family rather than per scheme.
    let schemes: Vec<RenameScheme> = if cli.shared {
        let mut labels = Vec::new();
        let mut out = Vec::new();
        for &scheme in &cli.schemes {
            if !shares_group_pass(scheme, regs, &exp) {
                eprintln!(
                    "--shared: scheme {} has no shared family pass",
                    scheme_label(scheme)
                );
                std::process::exit(2);
            }
            let label = group_scheme_label(scheme, regs, &exp);
            if !labels.contains(&label) {
                labels.push(label);
                out.push(scheme);
            }
        }
        out
    } else {
        cli.schemes.clone()
    };
    let grid = vpr_bench::workloads::grid(&cli.workloads, &schemes);
    let shared = cli.shared;
    let generated = par::par_map(exp.effective_jobs(), grid, move |_, (workload, scheme)| {
        if shared {
            generate_group_checkpoints(workload, scheme, regs, &exp, plan.as_ref())
        } else {
            generate_checkpoints(workload, scheme, regs, &exp, plan.as_ref())
        }
    });
    let mut files = 0usize;
    for batch in &generated {
        if let Err(e) = store.save_all(batch) {
            eprintln!("cannot write checkpoints: {e}");
            std::process::exit(1);
        }
        files += batch.len();
    }
    if let Err(e) = store.flush() {
        eprintln!("cannot write manifest: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {files} checkpoint(s) for {} configuration(s) into {} ({})",
        generated.len(),
        cli.dir.display(),
        match &plan {
            Some(p) => format!("warm + {} interval starts each", p.intervals),
            None => "warm only".to_string(),
        }
    );
}

/// Renders a file age compactly (`41s`, `12m`, `3h`, `5d`); `-` when the
/// filesystem does not expose an mtime.
fn age_of(meta: &std::fs::Metadata) -> String {
    let Ok(modified) = meta.modified() else {
        return "-".into();
    };
    let secs = std::time::SystemTime::now()
        .duration_since(modified)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    match secs {
        0..=119 => format!("{secs}s"),
        120..=7199 => format!("{}m", secs / 60),
        7200..=172_799 => format!("{}h", secs / 3600),
        _ => format!("{}d", secs / 86_400),
    }
}

fn inspect(cli: &Cli) {
    let store = open_store(cli);
    // Reuse counts come from the sweeps' best-effort usage ledger
    // (`usage.tsv`); artefacts never restored simply have no entry.
    let usage = load_usage(&store.dir);
    let mut table = Table::new(
        [
            "benchmark",
            "scheme",
            "kind",
            "target",
            "committed",
            "cycle",
            "cursor",
            "bytes",
            "age",
            "config-hash",
            "reuses",
        ]
        .map(String::from)
        .to_vec(),
    );
    for e in &store.manifest.entries {
        let meta = std::fs::metadata(store.dir.join(&e.file));
        let (size, age) = match &meta {
            Ok(m) => (m.len().to_string(), age_of(m)),
            Err(_) => ("missing".into(), "-".into()),
        };
        let reuses = usage
            .iter()
            .find(|(file, _)| *file == e.file)
            .map(|(_, n)| n.to_string())
            .unwrap_or_else(|| "0".into());
        table.add_row(vec![
            e.key.benchmark.clone(),
            e.key.scheme.clone(),
            e.key.kind.clone(),
            e.key.target.to_string(),
            e.committed.to_string(),
            e.cycle.to_string(),
            e.trace_cursor.to_string(),
            size,
            age,
            format!("{:016x}", e.config_hash),
            reuses,
        ]);
    }
    println!(
        "{} checkpoint(s) in {} (snapshot format v{})",
        store.manifest.entries.len(),
        store.dir.display(),
        vpr_snap::FORMAT_VERSION
    );
    print!("{table}");
}

fn open_store(cli: &Cli) -> CheckpointStore {
    CheckpointStore::open(&cli.dir).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", cli.dir.display());
        std::process::exit(1);
    })
}

struct Continuation {
    label: String,
    end_committed: u64,
    stats: vpr_core::SimStats,
    cycle: u64,
}

/// One manifest entry resolved for verification: the re-derived
/// experiment coordinates plus the snapshot, loaded through the
/// validating path (config hash, format version, payload checksum).
struct ResolvedEntry {
    workload: Workload,
    exp: ExperimentConfig,
    regs: usize,
    snapshot: vpr_snap::Snapshot,
}

/// Re-derives the configuration `entry` claims and loads its snapshot —
/// the shared front half of both verification passes. `Err` carries the
/// printable failure reason.
fn resolve_and_load(
    cli: &Cli,
    store: &CheckpointStore,
    entry: &vpr_snap::manifest::ManifestEntry,
) -> Result<ResolvedEntry, String> {
    let workload = Workload::parse(&entry.key.benchmark)?;
    let exp = ExperimentConfig {
        warmup: entry.key.warmup,
        seed: entry.key.seed,
        miss_penalty: entry.key.miss_penalty,
        ..cli.exp
    };
    let regs = entry.key.physical_regs as usize;
    // Shared family labels resolve to the canonical (maximum-NRR)
    // configuration their warm pass ran under.
    let scheme = parse_checkpoint_scheme(&entry.key.scheme, regs, &exp)?;
    let config = sim_config(scheme, regs, &exp);
    let hash = config_hash(workload, &config, exp.seed);
    let key = checkpoint_key_labelled(
        workload,
        entry.key.scheme.clone(),
        regs,
        &exp,
        &entry.key.kind,
        entry.key.target,
    );
    let (_, snapshot) = store.load(&key, hash).map_err(|e| e.to_string())?;
    Ok(ResolvedEntry {
        workload,
        exp,
        regs,
        snapshot,
    })
}

fn verify(cli: &Cli) {
    let store = open_store(cli);
    if store.manifest.entries.is_empty() {
        eprintln!("{} holds no checkpoints", cli.dir.display());
        std::process::exit(1);
    }
    let mut failures = 0usize;
    let mut checked = 0usize;
    type ConfigKey = (String, String, usize, u64, u64);
    let mut continuations: std::collections::BTreeMap<ConfigKey, Vec<Continuation>> =
        Default::default();
    for entry in &store.manifest.entries {
        checked += 1;
        let label = format!(
            "{}/{} {}@{}",
            entry.key.benchmark, entry.key.scheme, entry.key.kind, entry.key.target
        );
        let resolved = match resolve_and_load(cli, &store, entry) {
            Ok(r) => r,
            Err(e) => {
                println!("FAIL {label}: {e}");
                failures += 1;
                continue;
            }
        };
        let (workload, exp, regs, snapshot) = (
            resolved.workload,
            resolved.exp,
            resolved.regs,
            resolved.snapshot,
        );
        let fresh = workload.stream(exp.seed);
        let mut restored: Processor<WorkloadStream> = match Processor::restore(&snapshot, fresh) {
            Ok(cpu) => cpu,
            Err(e) => {
                println!("FAIL {label}: restore: {e}");
                failures += 1;
                continue;
            }
        };
        if restored.absolute_committed() != entry.committed || restored.cycle() != entry.cycle {
            println!(
                "FAIL {label}: restored position ({} commits, cycle {}) disagrees with \
                 manifest ({}, {})",
                restored.absolute_committed(),
                restored.cycle(),
                entry.committed,
                entry.cycle
            );
            failures += 1;
            continue;
        }
        if let Some(run) = cli.run {
            // Golden continuation: run the restored machine forward now;
            // all continuations of one configuration are compared against
            // a single shared reference pass afterwards (an uninterrupted
            // run visits every achieved position exactly once, so one pass
            // serves every checkpoint of the configuration).
            restored.run(run);
            continuations
                .entry((
                    entry.key.benchmark.clone(),
                    entry.key.scheme.clone(),
                    regs,
                    exp.seed,
                    exp.miss_penalty,
                ))
                .or_default()
                .push(Continuation {
                    label,
                    end_committed: restored.absolute_committed(),
                    stats: restored.stats(),
                    cycle: restored.cycle(),
                });
        } else {
            println!("ok   {label}");
        }
    }
    // The shared reference passes, one per configuration, stopping at each
    // continuation's achieved end position in stream order.
    for ((workload_name, scheme_label_, regs, seed, miss_penalty), mut group) in continuations {
        let workload = Workload::parse(&workload_name).expect("validated above");
        let exp = ExperimentConfig {
            seed,
            miss_penalty,
            ..cli.exp
        };
        let scheme = parse_checkpoint_scheme(&scheme_label_, regs, &exp).expect("validated above");
        let trace = workload.stream(seed);
        let mut reference = Processor::new(sim_config(scheme, regs, &exp), trace);
        group.sort_by_key(|c| c.end_committed);
        for c in group {
            reference.run_to_commit(c.end_committed);
            if reference.stats() != c.stats
                || reference.cycle() != c.cycle
                || reference.absolute_committed() != c.end_committed
            {
                println!(
                    "FAIL {}: continuation diverged from the uninterrupted run",
                    c.label
                );
                failures += 1;
            } else {
                println!("ok   {}", c.label);
            }
        }
    }
    // --cross-nrr: the shared-artefact contract. Each shared interval
    // checkpoint must (a) re-target to the canonical NRR as a bit-exact
    // no-op (snapshot equality), and (b) restore bit-identically for each
    // requested NRR value: two independent restore + re-target + run
    // passes must agree on every counter — the property that lets one
    // warm serial pass serve a whole NRR sweep.
    let mut shared_checked = 0usize;
    if let Some((nrr_a, nrr_b)) = cli.cross_nrr {
        for entry in &store.manifest.entries {
            if !entry.key.scheme.ends_with("-shared") || entry.key.kind != KIND_INTERVAL {
                continue;
            }
            let label = format!(
                "{}/{} {}@{} x-nrr",
                entry.key.benchmark, entry.key.scheme, entry.key.kind, entry.key.target
            );
            let resolved = match resolve_and_load(cli, &store, entry) {
                Ok(r) => r,
                Err(e) => {
                    println!("FAIL {label}: {e}");
                    failures += 1;
                    continue;
                }
            };
            let (workload, exp, snapshot) = (resolved.workload, resolved.exp, resolved.snapshot);
            shared_checked += 1;
            let restore = || {
                let fresh = workload.stream(exp.seed);
                Processor::<WorkloadStream>::restore(&snapshot, fresh)
            };
            let mut canonical = match restore() {
                Ok(cpu) => cpu,
                Err(e) => {
                    println!("FAIL {label}: restore: {e}");
                    failures += 1;
                    continue;
                }
            };
            let canonical_nrr = canonical.config().scheme.nrr().expect("shared implies VP");
            // Re-targets are only legal downward from the canonical NRR
            // (and never to zero): report out-of-range requests as
            // failures instead of letting `retarget_nrr` abort the run.
            if let Some(&bad) = [nrr_a, nrr_b]
                .iter()
                .find(|&&n| n == 0 || n > canonical_nrr)
            {
                println!(
                    "FAIL {label}: --cross-nrr {bad} outside this artefact's legal \
                     range 1..={canonical_nrr}"
                );
                failures += 1;
                continue;
            }
            canonical.retarget_nrr(canonical_nrr);
            if canonical.snapshot() != snapshot {
                println!("FAIL {label}: canonical re-target is not a bit-exact no-op");
                failures += 1;
                continue;
            }
            let run = cli.run.unwrap_or(500);
            let mut ok = true;
            for nrr in [nrr_a, nrr_b] {
                let (mut first, mut second) = match (restore(), restore()) {
                    (Ok(a), Ok(b)) => (a, b),
                    (Err(e), _) | (_, Err(e)) => {
                        println!("FAIL {label}: restore: {e}");
                        failures += 1;
                        ok = false;
                        continue;
                    }
                };
                first.retarget_nrr(nrr);
                second.retarget_nrr(nrr);
                if first.snapshot() != second.snapshot() {
                    println!("FAIL {label}: NRR {nrr} re-targets disagree at restore");
                    failures += 1;
                    ok = false;
                    continue;
                }
                first.run(run);
                second.run(run);
                if first.stats() != second.stats() || first.cycle() != second.cycle() {
                    println!("FAIL {label}: NRR {nrr} continuations diverge");
                    failures += 1;
                    ok = false;
                }
            }
            if ok {
                println!("ok   {label} (nrr {nrr_a}/{nrr_b})");
            }
        }
        if shared_checked == 0 {
            eprintln!(
                "--cross-nrr: {} holds no shared interval artefacts",
                cli.dir.display()
            );
            std::process::exit(1);
        }
    }
    if failures > 0 {
        eprintln!("{failures}/{checked} checkpoint(s) failed verification");
        std::process::exit(1);
    }
    println!(
        "all {checked} checkpoint(s) verified{}{}",
        match cli.run {
            Some(n) => format!(" (with {n}-commit golden continuations)"),
            None => String::new(),
        },
        match cli.cross_nrr {
            Some((a, b)) =>
                format!(" ({shared_checked} shared artefacts cross-checked at NRR {a}/{b})"),
            None => String::new(),
        }
    );
}

/// `repair`: brings a damaged checkpoint directory back to a state every
/// other command accepts without simulating anything. Corrupt artefacts
/// are quarantined to `*.corrupt` (a side effect of the validating load),
/// manifest entries whose artefact is missing, corrupt or unparseable are
/// dropped, and `*.tmp` debris left by interrupted atomic writes is
/// swept. Stale-but-intact artefacts (config-hash or format mismatch
/// against this invocation's flags) are kept — they may serve another
/// configuration, and `create` replaces them in place.
///
/// Quarantined `*.corrupt` files are evidence and are kept by default;
/// `--max-age SECS` reclaims the ones at least SECS old and reports the
/// bytes freed (`--max-age 0` reclaims them all).
fn repair(cli: &Cli) {
    use vpr_snap::manifest::ManifestError;
    let (mut store, note) = CheckpointStore::open_resilient(&cli.dir);
    if let Some(note) = note {
        println!("note {note}");
    }
    let mut swept = 0usize;
    let mut reclaimed_files = 0usize;
    let mut reclaimed_bytes = 0u64;
    if let Ok(dir) = std::fs::read_dir(&store.dir) {
        for entry in dir.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") && std::fs::remove_file(&path).is_ok() {
                println!("swept {}", path.display());
                swept += 1;
                continue;
            }
            // Orphaned quarantine files: evidence from past corruption,
            // reclaimed only when the operator sets a retention age.
            let Some(max_age) = cli.max_age else { continue };
            if path.extension().is_none_or(|e| e != "corrupt") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let age_secs = meta
                .modified()
                .ok()
                .and_then(|m| std::time::SystemTime::now().duration_since(m).ok())
                .map(|d| d.as_secs());
            if age_secs.is_some_and(|age| age >= max_age) && std::fs::remove_file(&path).is_ok() {
                println!("reclaimed {} ({} bytes)", path.display(), meta.len());
                reclaimed_files += 1;
                reclaimed_bytes += meta.len();
            }
        }
    }
    let entries = store.manifest.entries.clone();
    let mut keep = vec![true; entries.len()];
    let (mut dropped, mut stale) = (0usize, 0usize);
    for (i, entry) in entries.iter().enumerate() {
        let label = format!(
            "{}/{} {}@{}",
            entry.key.benchmark, entry.key.scheme, entry.key.kind, entry.key.target
        );
        let loaded = Workload::parse(&entry.key.benchmark).and_then(|workload| {
            let exp = ExperimentConfig {
                warmup: entry.key.warmup,
                seed: entry.key.seed,
                miss_penalty: entry.key.miss_penalty,
                ..cli.exp
            };
            let regs = entry.key.physical_regs as usize;
            let scheme = parse_checkpoint_scheme(&entry.key.scheme, regs, &exp)?;
            let hash = config_hash(workload, &sim_config(scheme, regs, &exp), exp.seed);
            let key = checkpoint_key_labelled(
                workload,
                entry.key.scheme.clone(),
                regs,
                &exp,
                &entry.key.kind,
                entry.key.target,
            );
            store.load(&key, hash).map_err(|e| match e {
                // Stale entries are intact artefacts for some other
                // configuration: keep them on disk and in the manifest.
                CheckpointLoadError::Manifest(
                    ManifestError::StaleConfig { .. } | ManifestError::StaleFormat { .. },
                ) => String::new(),
                other => other.to_string(),
            })
        });
        match loaded {
            Ok(_) => println!("ok      {label}"),
            Err(reason) if reason.is_empty() => {
                stale += 1;
                println!("stale   {label} (kept; `create` replaces it)");
            }
            Err(reason) => {
                keep[i] = false;
                dropped += 1;
                println!("dropped {label}: {reason}");
            }
        }
    }
    let mut it = keep.iter();
    store
        .manifest
        .entries
        .retain(|_| *it.next().expect("same length"));
    if let Err(e) = store.flush() {
        eprintln!("cannot rewrite manifest in {}: {e}", store.dir.display());
        std::process::exit(1);
    }
    println!(
        "repaired {}: {} entr{} kept ({stale} stale), {dropped} dropped, {swept} temp file(s) swept{}",
        store.dir.display(),
        store.manifest.entries.len(),
        if store.manifest.entries.len() == 1 { "y" } else { "ies" },
        match cli.max_age {
            Some(_) => format!(
                ", {reclaimed_files} quarantine file(s) reclaimed ({reclaimed_bytes} bytes)"
            ),
            None => String::new(),
        },
    );
}

fn main() {
    let cli = parse_cli();
    // Scheme labels round-trip through the manifest; fail early if a
    // requested scheme cannot be expressed.
    for &scheme in &cli.schemes {
        let label = scheme_label(scheme);
        assert_eq!(parse_scheme(&label), Ok(scheme), "label round-trip");
    }
    match cli.command.as_str() {
        "create" => create(&cli),
        "inspect" => inspect(&cli),
        "verify" => verify(&cli),
        "repair" => repair(&cli),
        _ => unreachable!("validated in parse_cli"),
    }
}
