//! Regenerates the paper's Figure 7: IPC of the conventional and
//! virtual-physical (write-back) schemes for 48, 64 and 96 physical
//! registers per file (NRR = 16, 32 and 64 respectively).

use vpr_bench::sweep::SweepContext;
use vpr_bench::{
    experiments, take_flag, take_flag_value, take_workloads, write_json_artifact,
    write_prometheus_metrics, write_run_telemetry, ExperimentConfig, Workload,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag_value(&mut args, "--json").unwrap_or_else(|| "fig7.json".into());
    let sampled = take_flag(&mut args, "--sampled");
    let checkpoint_dir: Option<std::path::PathBuf> =
        take_flag_value(&mut args, "--checkpoint-dir").map(Into::into);
    let metrics_prom = take_flag_value(&mut args, "--metrics-prom");
    let workloads = take_workloads(&mut args).unwrap_or_else(Workload::synthetic);
    let exp = ExperimentConfig::from_args(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("Figure 7 — IPC vs register-file size (conv vs VP write-back)\n");
    let ctx = SweepContext::new(sampled, checkpoint_dir.as_deref());
    if let Err(e) = ctx.try_validate(&exp) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let f7 = experiments::fig7_for(&workloads, &exp, &ctx);
    print!("{}", f7.render());
    let imp = f7.mean_improvements_percent();
    println!(
        "\nmean improvement: 48 regs {:+.0}%, 64 regs {:+.0}%, 96 regs {:+.0}% (paper: +31/+19/+8)",
        imp[0], imp[1], imp[2]
    );
    let ipcs = f7.mean_ipcs();
    println!(
        "VP at 48 regs ({:.2}) vs conventional at 64 ({:.2}) — paper finds them about equal",
        ipcs[0].1, ipcs[1].0
    );
    write_json_artifact(std::path::Path::new(&json), &f7.to_json());
    write_run_telemetry(std::path::Path::new(&json), &f7.telemetry);
    if let Some(p) = metrics_prom {
        write_prometheus_metrics(std::path::Path::new(&p), &f7.metrics);
    }
}
