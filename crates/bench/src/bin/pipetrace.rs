//! Per-instruction pipeline lifecycle tracing (`--trace-pipeline` of the
//! experiment suite, packaged as its own binary).
//!
//! Runs one benchmark/scheme configuration with the ring-buffered
//! [`vpr_obs::PipelineTrace`] attached and emits the retained lifecycle
//! records as compact JSONL (machine-checkable, see `--validate`) or
//! Konata-compatible pipeline-viewer text:
//!
//! ```text
//! cargo run --release -p vpr-bench --bin pipetrace -- \
//!     [--bench NAME]          # workload (default: go)
//!     [--scheme LABEL]        # conventional | conv-er | vp-issue-nrrN | vp-wb-nrrN
//!     [--regs N]              # physical registers per class (default 64)
//!     [--out PATH]            # trace file; `-` = stdout (default: pipetrace.jsonl)
//!     [--format jsonl|konata] # rendering (default: jsonl)
//!     [--ring N]              # ring capacity, i.e. last-N events kept (default 65536)
//!     [--last N]              # anomaly-dump tail length (default 256)
//!     [--verify-governor]     # compare against the single-cycle reference kernel
//!     [--inject-divergence]   # perturb the reference (tests the anomaly hook)
//!     [--validate PATH]       # validate an existing JSONL trace and exit
//!     [--warmup N] [--measure N] [--seed N] [--miss-penalty N]
//! ```
//!
//! `--verify-governor` reruns the same configuration through
//! [`Processor::step_single_cycle`] — the governor-free reference kernel
//! — and compares measurement-window `SimStats` bit-for-bit. On
//! divergence the **anomaly hook** fires: the last `--last` ring records
//! are dumped to `<out>.anomaly.jsonl` and the process exits 2.
//! `--inject-divergence` deliberately runs the reference under a
//! different miss penalty so CI can assert the hook end-to-end.

use std::io::{BufRead, Write};
use vpr_bench::workloads::parse_scheme;
use vpr_bench::{take_flag, take_flag_value, ExperimentConfig};
use vpr_core::{Processor, SimConfig, SimObserver, SimStats};
use vpr_isa::OpClass;
use vpr_obs::trace::validate_jsonl_line;
use vpr_obs::PipelineTrace;
use vpr_trace::{Benchmark, TraceBuilder, TraceGen};

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn parse_num(args: &mut Vec<String>, flag: &str, default: usize) -> usize {
    match take_flag_value(args, flag) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|e| die(&format!("bad value for {flag}: {e}"))),
    }
}

/// Validates an existing JSONL trace file line by line; exits 1 on the
/// first malformed line. Self-contained (no simulation) so CI can check
/// artefacts produced elsewhere.
fn validate_file(path: &str) -> ! {
    let file =
        std::fs::File::open(path).unwrap_or_else(|e| die(&format!("cannot open {path}: {e}")));
    let mut lines = 0usize;
    for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        if let Err(e) = validate_jsonl_line(&line) {
            eprintln!("{path}:{}: {e}", i + 1);
            std::process::exit(1);
        }
        lines += 1;
    }
    println!("{path}: {lines} valid trace record(s)");
    std::process::exit(0);
}

/// Runs the single-cycle reference kernel over the same skip-then-measure
/// window and returns its window stats.
fn reference_stats(
    benchmark: Benchmark,
    scheme: vpr_core::RenameScheme,
    regs: usize,
    exp: &ExperimentConfig,
    miss_penalty: u64,
) -> SimStats {
    let config = SimConfig::builder()
        .scheme(scheme)
        .physical_regs(regs)
        .miss_penalty(miss_penalty)
        .build();
    let trace = TraceBuilder::new(benchmark).seed(exp.seed).build();
    let mut cpu: Processor<TraceGen> = Processor::new(config, trace);
    while cpu.absolute_committed() < exp.warmup && !cpu.is_done() {
        cpu.step_single_cycle();
    }
    cpu.reset_window();
    // Anchor the measurement target at the *achieved* warm-up count —
    // `Processor::run` counts from wherever warm-up overshot to, and the
    // comparison must mirror that exactly.
    let target = cpu.absolute_committed() + exp.measure;
    while cpu.absolute_committed() < target && !cpu.is_done() {
        cpu.step_single_cycle();
    }
    cpu.stats()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = take_flag_value(&mut args, "--validate") {
        validate_file(&path);
    }
    let benchmark: Benchmark = take_flag_value(&mut args, "--bench")
        .unwrap_or_else(|| "go".into())
        .parse()
        .unwrap_or_else(|e| die(&format!("{e}")));
    let scheme = parse_scheme(
        &take_flag_value(&mut args, "--scheme").unwrap_or_else(|| "vp-wb-nrr32".into()),
    )
    .unwrap_or_else(|e| die(&e));
    let regs = parse_num(&mut args, "--regs", 64);
    let out = take_flag_value(&mut args, "--out").unwrap_or_else(|| "pipetrace.jsonl".into());
    let format = take_flag_value(&mut args, "--format").unwrap_or_else(|| "jsonl".into());
    if format != "jsonl" && format != "konata" {
        die(&format!("unknown --format `{format}` (jsonl|konata)"));
    }
    let ring = parse_num(&mut args, "--ring", 65_536);
    let last = parse_num(&mut args, "--last", 256);
    let verify = take_flag(&mut args, "--verify-governor");
    let inject = take_flag(&mut args, "--inject-divergence");
    let mut exp = ExperimentConfig::quick();
    if let Err(e) = exp.apply_args(args) {
        die(&e.to_string());
    }

    // The traced, governed run — the subject under observation.
    let op_names: Vec<String> = OpClass::ALL.iter().map(|o| o.to_string()).collect();
    let obs = SimObserver::with_trace(PipelineTrace::new(ring, op_names));
    let (stats, obs) = vpr_bench::run_benchmark_observed(benchmark, scheme, regs, &exp, obs);
    let trace = obs.trace.expect("observer was constructed with a trace");
    eprintln!(
        "traced {benchmark:?}/{scheme:?}@{regs}r: {} commits in {} cycles, {} record(s) retained \
         ({} dropped by the {}-entry ring)",
        stats.committed,
        stats.cycles,
        trace.len(),
        trace.dropped(),
        trace.capacity(),
    );

    // Anomaly hook: a governed/reference comparison that diverges dumps
    // the last-N ring for post-mortem before exiting non-zero.
    if verify || inject {
        let mp = if inject {
            exp.miss_penalty + 13
        } else {
            exp.miss_penalty
        };
        let reference = reference_stats(benchmark, scheme, regs, &exp, mp);
        if reference != stats {
            let anomaly = format!("{out}.anomaly.jsonl");
            let mut f = std::fs::File::create(&anomaly)
                .unwrap_or_else(|e| die(&format!("cannot write {anomaly}: {e}")));
            trace
                .dump_last(last, &mut f)
                .unwrap_or_else(|e| die(&format!("cannot write {anomaly}: {e}")));
            eprintln!(
                "DIVERGENCE: governed run and single-cycle reference disagree \
                 (committed {} vs {}, cycles {} vs {}); last {} trace record(s) dumped to {anomaly}",
                stats.committed,
                reference.committed,
                stats.cycles,
                reference.cycles,
                last.min(trace.len()),
            );
            std::process::exit(2);
        }
        eprintln!("governor-equivalence check passed (SimStats bit-identical)");
    }

    let render = |mut w: &mut dyn Write| match format.as_str() {
        "konata" => trace.emit_konata(&mut w),
        _ => trace.emit_jsonl(&mut w),
    };
    if out == "-" {
        let stdout = std::io::stdout();
        render(&mut stdout.lock()).unwrap_or_else(|e| die(&format!("cannot write trace: {e}")));
    } else {
        let mut f = std::fs::File::create(&out)
            .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        render(&mut f).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        println!("wrote {out}");
    }
}
