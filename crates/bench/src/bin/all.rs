//! Runs the complete evaluation — Table 2 and Figures 4-7 — and prints
//! each artefact, plus a Markdown rendering suitable for EXPERIMENTS.md.

use vpr_bench::{experiments, ExperimentConfig};

fn main() {
    let exp = ExperimentConfig::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!(
        "# Full evaluation (warmup {}, measure {}, seed {})\n",
        exp.warmup, exp.measure, exp.seed
    );

    println!("## Table 2 — conv vs VP write-back (NRR=32, 64 regs)\n");
    let t2 = experiments::table2(&exp);
    println!("{}", t2.render().to_markdown());
    println!(
        "mean improvement: {:+.0}% (paper: +19%)\n",
        t2.mean_improvement_percent()
    );

    let exp20 = ExperimentConfig {
        miss_penalty: 20,
        ..exp
    };
    let t2b = experiments::table2(&exp20);
    println!("### Table 2 variant — 20-cycle miss penalty\n");
    println!(
        "mean improvement: {:+.0}% (paper: +12%)\n",
        t2b.mean_improvement_percent()
    );

    println!("## Figure 4 — VP write-back speedup vs NRR\n");
    println!("{}", experiments::fig4(&exp).render().to_markdown());

    println!("## Figure 5 — VP issue speedup vs NRR\n");
    println!("{}", experiments::fig5(&exp).render().to_markdown());

    println!("## Figure 6 — write-back vs issue (NRR=32)\n");
    let f6 = experiments::fig6(&exp);
    println!("{}", f6.render().to_markdown());
    println!(
        "write-back win rate: {:.0}%\n",
        100.0 * f6.writeback_win_rate()
    );

    println!("## Figure 7 — IPC vs register-file size\n");
    let f7 = experiments::fig7(&exp);
    println!("{}", f7.render().to_markdown());
    let imp = f7.mean_improvements_percent();
    println!(
        "mean improvements: {:+.0}% / {:+.0}% / {:+.0}% for 48/64/96 regs (paper: +31/+19/+8)",
        imp[0], imp[1], imp[2]
    );
}
