//! Regenerates the paper's Table 2: committed IPC of the conventional and
//! virtual-physical (write-back allocation, NRR = 32) schemes at 64
//! physical registers per file.
//!
//! ```text
//! cargo run --release -p vpr-bench --bin table2 [--measure N] [--warmup N]
//!     [--seed N] [--miss-penalty N]
//! ```

use vpr_bench::{experiments, take_flag_value, write_json_artifact, ExperimentConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag_value(&mut args, "--json").unwrap_or_else(|| "table2.json".into());
    let exp = ExperimentConfig::from_args(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("Table 2 — conventional vs virtual-physical (write-back, NRR=32), 64 regs/file");
    println!(
        "(miss penalty {} cycles, {} warm-up + {} measured instructions, seed {})\n",
        exp.miss_penalty, exp.warmup, exp.measure, exp.seed
    );
    let t2 = experiments::table2(&exp);
    print!("{}", t2.render());
    let mean_reexec: f64 = t2
        .rows
        .iter()
        .map(|r| r.vp_executions_per_commit)
        .sum::<f64>()
        / t2.rows.len() as f64;
    println!(
        "\nmean executions per committed instruction (VP write-back): {mean_reexec:.2} (paper: 3.3)"
    );
    write_json_artifact(std::path::Path::new(&json), &t2.to_json());
}
