//! Regenerates the paper's Table 2: committed IPC of the conventional and
//! virtual-physical (write-back allocation, NRR = 32) schemes at 64
//! physical registers per file.
//!
//! ```text
//! cargo run --release -p vpr-bench --bin table2 -- [--measure N] [--warmup N]
//!     [--seed N] [--miss-penalty N] [--jobs N] [--json PATH]
//!     [--sampled] [--checkpoint-dir DIR] [--check-exact PCT]
//!     [--workload NAME[,NAME..]]
//! ```
//!
//! `--workload` replaces the default nine-benchmark synthetic suite with
//! an explicit list; assembled programs (`asm:matmul`) mix freely with
//! synthetic names (`swim`). Paper-reference columns show `—` for
//! workloads the paper did not measure.
//!
//! `--sampled` estimates every configuration from checkpoint-seeded
//! detailed windows instead of simulating it full-length; with
//! `--checkpoint-dir` the interval checkpoints are loaded from (or, when
//! absent, deposited into) a `.vprsnap` directory so the warm serial pass
//! is paid once and shared across runs. The JSON artefact records the
//! mode in its `sampling` block either way.
//!
//! `--check-exact PCT` (sampled mode) also runs the exact table and exits
//! non-zero if any configuration's sampled IPC deviates by more than
//! `PCT` percent, or either scheme's harmonic-mean IPC by more than half
//! of `PCT` — the CI `--sampled` smoke gate.

use vpr_bench::sweep::SweepContext;
use vpr_bench::{
    experiments, take_flag, take_flag_value, take_workloads, write_json_artifact,
    write_prometheus_metrics, write_run_telemetry, ExperimentConfig, Workload,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag_value(&mut args, "--json").unwrap_or_else(|| "table2.json".into());
    let sampled = take_flag(&mut args, "--sampled");
    let checkpoint_dir: Option<std::path::PathBuf> =
        take_flag_value(&mut args, "--checkpoint-dir").map(Into::into);
    let metrics_prom = take_flag_value(&mut args, "--metrics-prom");
    let workloads = take_workloads(&mut args).unwrap_or_else(Workload::synthetic);
    let check_exact: Option<f64> = take_flag_value(&mut args, "--check-exact").map(|v| {
        v.parse().unwrap_or_else(|e| {
            eprintln!("bad value for --check-exact: {e}");
            std::process::exit(2);
        })
    });
    let exp = ExperimentConfig::from_args(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let ctx = SweepContext::new(sampled, checkpoint_dir.as_deref());
    if let Err(e) = ctx.try_validate(&exp) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    println!("Table 2 — conventional vs virtual-physical (write-back, NRR=32), 64 regs/file");
    println!(
        "(miss penalty {} cycles, {} warm-up + {} measured instructions, seed {}{})\n",
        exp.miss_penalty,
        exp.warmup,
        exp.measure,
        exp.seed,
        if sampled {
            ", checkpoint-seeded sampling"
        } else {
            ""
        }
    );
    let t2 = experiments::table2_for(&workloads, &exp, &ctx);
    print!("{}", t2.render());
    let mean_reexec: f64 = t2
        .rows
        .iter()
        .map(|r| r.vp_executions_per_commit)
        .sum::<f64>()
        / t2.rows.len() as f64;
    println!(
        "\nmean executions per committed instruction (VP write-back): {mean_reexec:.2} (paper: 3.3)"
    );
    write_json_artifact(std::path::Path::new(&json), &t2.to_json());
    write_run_telemetry(std::path::Path::new(&json), &t2.telemetry);
    if let Some(p) = metrics_prom {
        write_prometheus_metrics(std::path::Path::new(&p), &t2.metrics);
    }

    if let Some(bound) = check_exact {
        if !sampled {
            eprintln!("--check-exact requires --sampled");
            std::process::exit(2);
        }
        // The exact reference restores warm checkpoints when the directory
        // holds them (bit-identical to simulating the warm-up, and the
        // sampled sweep above just deposited them).
        let exact = experiments::table2_for(
            &workloads,
            &exp,
            &SweepContext::new(false, checkpoint_dir.as_deref()),
        );
        let mut worst = 0.0f64;
        for (s, e) in t2.rows.iter().zip(&exact.rows) {
            for (sv, ev) in [(s.conv_ipc, e.conv_ipc), (s.vp_ipc, e.vp_ipc)] {
                worst = worst.max(((sv / ev - 1.0) * 100.0).abs());
            }
        }
        let (sc, sv) = t2.harmonic_means();
        let (ec, ev) = exact.harmonic_means();
        let hm_worst = ((sc / ec - 1.0) * 100.0)
            .abs()
            .max(((sv / ev - 1.0) * 100.0).abs());
        println!(
            "sampled vs exact: worst per-config |IPC error| {worst:.2}%, \
             worst harmonic-mean |error| {hm_worst:.2}%"
        );
        if worst > bound || hm_worst > bound / 2.0 {
            eprintln!(
                "FAIL: sampled table2 off by {worst:.2}% per-config / {hm_worst:.2}% \
                 harmonic-mean (bounds {bound:.2}% / {:.2}%)",
                bound / 2.0
            );
            std::process::exit(1);
        }
        println!(
            "sampled table2 within bounds ({bound:.2}% per-config, {:.2}% harmonic-mean)",
            bound / 2.0
        );
    }
}
