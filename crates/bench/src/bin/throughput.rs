//! Measures simulator throughput (sim-MIPS: simulated committed
//! instructions per host second) on the quick table2 workload under all
//! four renaming schemes, prints the sweep, and records it as
//! machine-readable `BENCH_throughput.json`.
//!
//! ```text
//! cargo run --release -p vpr-bench --bin throughput -- \
//!     [--out PATH] [--runs N] [--check BASELINE.json] [--tolerance PCT] \
//!     [--warmup N] [--measure N] [--seed N] [--miss-penalty N] [--jobs N]
//! ```
//!
//! Each configuration is timed `--runs` times (default 3) and the fastest
//! wall-clock is kept — simulated results are deterministic, so the
//! repetitions only shed host scheduler noise. The whole grid is then run
//! once more through the parallel sweep engine for the `sweep` wall-clock
//! block of the report.
//!
//! `--check BASELINE.json` compares the fresh harmonic-mean sim-MIPS
//! against the `harmonic_mean_sim_mips` recorded in an earlier report and
//! exits non-zero when it regressed by more than `--tolerance` percent
//! (default 20) — the CI throughput smoke gate.
//!
//! The default output path is `BENCH_throughput.json` in the current
//! directory; CI and PR authors check the file in so the repository keeps
//! a perf trajectory.

use vpr_bench::harness::{measure_throughput, write_throughput_json};
use vpr_bench::{take_flag_value, ExperimentConfig};

/// Pulls the `harmonic_mean_sim_mips` value out of a throughput report
/// without a JSON parser (the build environment has no serde): accepts
/// both the v1 and v2 schema (the field name is stable).
fn baseline_harmonic(path: &std::path::Path) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let key = "\"harmonic_mean_sim_mips\":";
    let at = text
        .find(key)
        .ok_or_else(|| format!("{}: no harmonic_mean_sim_mips field", path.display()))?;
    let rest = text[at + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("{}: bad harmonic_mean_sim_mips: {e}", path.display()))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out: std::path::PathBuf = take_flag_value(&mut args, "--out")
        .map(Into::into)
        .unwrap_or_else(|| "BENCH_throughput.json".into());
    let check: Option<std::path::PathBuf> = take_flag_value(&mut args, "--check").map(Into::into);

    let parse_num = |name: &str, v: Option<String>| -> Option<u64> {
        v.map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("bad value for {name}: {e}");
                std::process::exit(2);
            })
        })
    };
    let runs_per_config = parse_num("--runs", take_flag_value(&mut args, "--runs"))
        .map_or(3usize, |n| (n as usize).max(1));
    let tolerance = parse_num("--tolerance", take_flag_value(&mut args, "--tolerance"))
        .map_or(20.0f64, |n| n as f64);
    // Remaining flags override the *quick* defaults: throughput tracking
    // wants a fast, standard workload, not the full-size experiment runs.
    let mut exp = ExperimentConfig::quick();
    if let Err(e) = exp.apply_args(args) {
        eprintln!("{e}");
        std::process::exit(2);
    }

    let report = measure_throughput(&exp, runs_per_config);
    println!(
        "simulator throughput (warmup {}, measure {}, seed {}, best of {}):",
        exp.warmup, exp.measure, exp.seed, runs_per_config
    );
    for run in &report.runs {
        println!(
            "  {:<36} {:>9.2} sim-MIPS  (ipc {:.3}, {:.3}s host)",
            run.label, run.sim_mips, run.ipc, run.host_seconds
        );
    }
    let harmonic = report.harmonic_mean_sim_mips();
    println!("  harmonic mean: {harmonic:.2} sim-MIPS");
    println!(
        "  host calibration: {:.1} Mops/s ({:.3}s for {} ops) -> {:.4} sim-MIPS per host-Mops",
        report.host.mops,
        report.host.seconds,
        report.host.ops,
        report.sim_mips_per_host_mops()
    );
    println!(
        "  parallel sweep: {} configs in {:.3}s wall with {} jobs ({:.3}s serial, {:.2}x)",
        report.runs.len(),
        report.sweep.wall_seconds,
        report.sweep.jobs,
        report.sweep.serial_seconds,
        report.sweep.serial_seconds / report.sweep.wall_seconds
    );

    if let Err(e) = write_throughput_json(&out, &report) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());

    if let Some(baseline_path) = check {
        let baseline = baseline_harmonic(&baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot check against baseline: {e}");
            std::process::exit(2);
        });
        let floor = baseline * (1.0 - tolerance / 100.0);
        println!(
            "throughput check: {harmonic:.2} vs baseline {baseline:.2} (floor {floor:.2}, \
             tolerance {tolerance:.0}%)"
        );
        if harmonic < floor {
            eprintln!(
                "FAIL: harmonic-mean sim-MIPS {harmonic:.2} regressed more than {tolerance:.0}% \
                 below the checked-in baseline {baseline:.2}"
            );
            std::process::exit(1);
        }
        println!("throughput check passed");
    }
}
