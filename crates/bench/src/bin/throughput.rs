//! Measures simulator throughput (sim-MIPS: simulated committed
//! instructions per host second) on the quick table2 workload under all
//! four renaming schemes, prints the sweep, and records it as
//! machine-readable `BENCH_throughput.json`.
//!
//! ```text
//! cargo run --release -p vpr-bench --bin throughput -- \
//!     [--out PATH] [--runs N] [--check BASELINE.json] [--tolerance PCT] \
//!     [--notes "TEXT"] [--profile] \
//!     [--warmup N] [--measure N] [--seed N] [--miss-penalty N] [--jobs N]
//! ```
//!
//! Each configuration is timed `--runs` times (default 3) and the fastest
//! wall-clock is kept — simulated results are deterministic, so the
//! repetitions only shed host scheduler noise. The whole grid is then run
//! once more through the parallel sweep engine for the `sweep` wall-clock
//! block of the report.
//!
//! `--check BASELINE.json` compares the fresh **host-calibrated**
//! throughput — `sim_mips_per_host_mops`, sim-MIPS per million host
//! reference operations per second — against the value recorded in an
//! earlier report, plus the same figure over the `go/*` rows only (the
//! mispredict-shadow workload the event-driven governor targets), and
//! exits non-zero when either regressed by more than `--tolerance`
//! percent (default 20). Normalising by the host calibration keeps
//! shared-runner load swings (±40 % raw sim-MIPS minute to minute) from
//! eating the tolerance: both the fresh run and the baseline carry their
//! own same-epoch calibration.
//!
//! `--profile` re-runs the grid once more in profiled mode (per-stage
//! host-ns attribution plus exact per-stage event counts) after the timed
//! sweep, prints a per-stage table, and embeds the figures in the JSON
//! report (schema v5's optional `profile` block). The profiled pass is
//! deliberately separate from the timed runs so the sim-MIPS figures stay
//! free of per-phase clock-read overhead.
//!
//! The default output path is `BENCH_throughput.json` in the current
//! directory; CI and PR authors check the file in so the repository keeps
//! a perf trajectory.

use vpr_bench::harness::{measure_throughput, profile_throughput, write_throughput_json};
use vpr_bench::{take_flag, take_flag_value, ExperimentConfig};
use vpr_core::Stage;

/// The baseline's gate figures: `(overall, go)` host-calibrated
/// throughput, read through the workspace's minimal JSON parser
/// (`vpr_snap::manifest`). The overall figure is read directly (schema
/// v3+); the `go` figure is read from v4 reports and derived from the
/// `go/*` run rows of older ones, so the gate can tighten without
/// invalidating the checked-in baseline.
fn baseline_figures(path: &std::path::Path) -> Result<(f64, f64), String> {
    let what = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{what}: {e}"))?;
    let doc = vpr_snap::manifest::parse_json(&text).map_err(|e| format!("{what}: {e}"))?;
    let root = doc
        .as_object()
        .ok_or_else(|| format!("{what}: not a JSON object"))?;
    let field_f64 = |name: &str| -> Result<f64, String> {
        root.get(name)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{what}: no numeric {name} field"))
    };
    let overall = field_f64("sim_mips_per_host_mops")?;
    if let Ok(go) = field_f64("go_sim_mips_per_host_mops") {
        return Ok((overall, go));
    }
    // Pre-v4 baseline: harmonic-mean the go/* rows by hand.
    let mops = root
        .get("host_calibration")
        .and_then(|v| v.as_object())
        .and_then(|cal| cal.get("mops"))
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("{what}: no host_calibration.mops field"))?;
    let runs = root
        .get("runs")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{what}: no runs array"))?;
    let mut inv_sum = 0.0f64;
    let mut n = 0usize;
    for run in runs {
        let Some(run) = run.as_object() else { continue };
        let is_go = run
            .get("label")
            .and_then(|v| v.as_str())
            .is_some_and(|l| l.starts_with("go/"));
        if !is_go {
            continue;
        }
        let mips = run
            .get("sim_mips")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{what}: go row without sim_mips"))?;
        inv_sum += 1.0 / mips;
        n += 1;
    }
    if n == 0 || mops == 0.0 {
        return Err(format!("{what}: no go/* rows to derive the go gate from"));
    }
    Ok((overall, (n as f64 / inv_sum) / mops))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out: std::path::PathBuf = take_flag_value(&mut args, "--out")
        .map(Into::into)
        .unwrap_or_else(|| "BENCH_throughput.json".into());
    let check: Option<std::path::PathBuf> = take_flag_value(&mut args, "--check").map(Into::into);

    let parse_num = |name: &str, v: Option<String>| -> Option<u64> {
        v.map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("bad value for {name}: {e}");
                std::process::exit(2);
            })
        })
    };
    let runs_per_config = parse_num("--runs", take_flag_value(&mut args, "--runs"))
        .map_or(3usize, |n| (n as usize).max(1));
    let tolerance = parse_num("--tolerance", take_flag_value(&mut args, "--tolerance"))
        .map_or(20.0f64, |n| n as f64);
    let notes = take_flag_value(&mut args, "--notes");
    let profile = take_flag(&mut args, "--profile");
    // Remaining flags override the *quick* defaults: throughput tracking
    // wants a fast, standard workload, not the full-size experiment runs.
    let mut exp = ExperimentConfig::quick();
    if let Err(e) = exp.apply_args(args) {
        eprintln!("{e}");
        std::process::exit(2);
    }

    let mut report = measure_throughput(&exp, runs_per_config);
    if let Some(notes) = notes {
        report.notes = notes;
    }
    println!(
        "simulator throughput (warmup {}, measure {}, seed {}, best of {}):",
        exp.warmup, exp.measure, exp.seed, runs_per_config
    );
    for run in &report.runs {
        println!(
            "  {:<36} {:>9.2} sim-MIPS  (ipc {:.3}, {:.3}s host)",
            run.label, run.sim_mips, run.ipc, run.host_seconds
        );
    }
    let harmonic = report.harmonic_mean_sim_mips();
    println!("  harmonic mean: {harmonic:.2} sim-MIPS");
    println!(
        "  host calibration: {:.1} Mops/s ({:.3}s for {} ops) -> {:.4} sim-MIPS per host-Mops",
        report.host.mops,
        report.host.seconds,
        report.host.ops,
        report.sim_mips_per_host_mops()
    );
    println!(
        "  parallel sweep: {} configs in {:.3}s wall with {} jobs ({:.3}s serial, {:.2}x)",
        report.runs.len(),
        report.sweep.wall_seconds,
        report.sweep.jobs,
        report.sweep.serial_seconds,
        report.sweep.serial_seconds / report.sweep.wall_seconds
    );

    if profile {
        let prof = profile_throughput(&exp);
        let total_ns = prof.total_ns().max(1);
        println!(
            "per-stage host-cost profile ({} active cycles over the grid):",
            prof.steps
        );
        println!(
            "  {:<12} {:>12} {:>12} {:>8} {:>10}",
            "stage", "host-ns", "events", "%host", "ns/event"
        );
        for stage in Stage::ALL {
            let rec = prof.stage(stage);
            let per_event = if rec.events == 0 {
                0.0
            } else {
                rec.ns as f64 / rec.events as f64
            };
            println!(
                "  {:<12} {:>12} {:>12} {:>7.1}% {:>10.1}",
                stage.name(),
                rec.ns,
                rec.events,
                100.0 * rec.ns as f64 / total_ns as f64,
                per_event
            );
        }
        report.profile = Some(prof);
    }

    if let Err(e) = write_throughput_json(&out, &report) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());

    if let Some(baseline_path) = check {
        let (base_overall, base_go) = baseline_figures(&baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot check against baseline: {e}");
            std::process::exit(2);
        });
        let mut failed = false;
        let gates = [
            ("overall", report.sim_mips_per_host_mops(), base_overall),
            ("go", report.go_sim_mips_per_host_mops(), base_go),
        ];
        for (name, fresh, baseline) in gates {
            let floor = baseline * (1.0 - tolerance / 100.0);
            println!(
                "throughput check ({name}, host-calibrated): {fresh:.4} vs baseline \
                 {baseline:.4} (floor {floor:.4}, tolerance {tolerance:.0}%)"
            );
            if fresh < floor {
                eprintln!(
                    "FAIL: {name} sim-MIPS-per-host-Mops {fresh:.4} regressed more than \
                     {tolerance:.0}% below the checked-in baseline {baseline:.4}"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("throughput check passed");
    }
}
