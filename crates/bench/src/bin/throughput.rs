//! Measures simulator throughput (sim-MIPS: simulated committed
//! instructions per host second) on the quick table2 workload under all
//! four renaming schemes, prints the sweep, and records it as
//! machine-readable `BENCH_throughput.json`.
//!
//! ```text
//! cargo run --release -p vpr-bench --bin throughput -- \
//!     [--out PATH] [--warmup N] [--measure N] [--seed N] [--miss-penalty N]
//! ```
//!
//! The default output path is `BENCH_throughput.json` in the current
//! directory; CI and PR authors check the file in so the repository keeps
//! a perf trajectory across changes.

use vpr_bench::harness::{measure_throughput, write_throughput_json};
use vpr_bench::ExperimentConfig;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::path::PathBuf::from("BENCH_throughput.json");
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        if pos + 1 >= args.len() {
            eprintln!("--out needs a value");
            std::process::exit(2);
        }
        out = std::path::PathBuf::from(args.remove(pos + 1));
        args.remove(pos);
    }
    // Flags override the *quick* defaults: throughput tracking wants a
    // fast, standard workload, not the full-size experiment runs.
    let mut exp = ExperimentConfig::quick();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> u64 {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                })
                .parse()
                .unwrap_or_else(|e| {
                    eprintln!("bad value for {name}: {e}");
                    std::process::exit(2);
                })
        };
        match flag.as_str() {
            "--warmup" => exp.warmup = take("--warmup"),
            "--measure" => exp.measure = take("--measure"),
            "--seed" => exp.seed = take("--seed"),
            "--miss-penalty" => exp.miss_penalty = take("--miss-penalty"),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }

    let report = measure_throughput(&exp);
    println!(
        "simulator throughput (warmup {}, measure {}, seed {}):",
        exp.warmup, exp.measure, exp.seed
    );
    for run in &report.runs {
        println!(
            "  {:<36} {:>9.2} sim-MIPS  (ipc {:.3}, {:.3}s host)",
            run.label, run.sim_mips, run.ipc, run.host_seconds
        );
    }
    println!(
        "  harmonic mean: {:.2} sim-MIPS",
        report.harmonic_mean_sim_mips()
    );

    if let Err(e) = write_throughput_json(&out, &report) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());
}
