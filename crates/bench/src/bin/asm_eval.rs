//! Evaluates the rename schemes on **real programs**: every assembled
//! workload (`asm/*.s` via `vpr-exec`) plus two synthetic references runs
//! under all four schemes at 64 physical registers, and the table reports
//! per-scheme IPC and the virtual-physical write-back speedup, with
//! harmonic means split by workload group (assembled vs synthetic).
//!
//! ```text
//! cargo run --release -p vpr-bench --bin asm_eval -- [--measure N] [--warmup N]
//!     [--seed N] [--miss-penalty N] [--jobs N] [--json PATH]
//!     [--sampled] [--checkpoint-dir DIR] [--workload NAME[,NAME..]]
//! ```
//!
//! `--workload` replaces the default set (all assembled programs + swim +
//! go) with an explicit list; `--sampled` estimates each configuration
//! from checkpoint-seeded detailed windows exactly as the figure binaries
//! do. The JSON artefact (`asm_eval.json`, schema `vpr-bench-asm-eval/v1`)
//! records per-row IPCs and the per-group harmonic-mean speedups.

use vpr_bench::sweep::SweepContext;
use vpr_bench::{
    experiments, take_flag, take_flag_value, take_workloads, write_json_artifact,
    write_prometheus_metrics, write_run_telemetry, ExperimentConfig,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag_value(&mut args, "--json").unwrap_or_else(|| "asm_eval.json".into());
    let sampled = take_flag(&mut args, "--sampled");
    let checkpoint_dir: Option<std::path::PathBuf> =
        take_flag_value(&mut args, "--checkpoint-dir").map(Into::into);
    let metrics_prom = take_flag_value(&mut args, "--metrics-prom");
    let workloads = take_workloads(&mut args).unwrap_or_else(experiments::asm_eval_workloads);
    let exp = ExperimentConfig::from_args(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("Assembled-program evaluation — all rename schemes, 64 regs/file\n");
    let ctx = SweepContext::new(sampled, checkpoint_dir.as_deref());
    if let Err(e) = ctx.try_validate(&exp) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let eval = experiments::asm_eval_for(&workloads, &exp, &ctx);
    print!("{}", eval.render());
    let (asm, synth) = eval.group_speedups();
    if let (Some(asm), Some(synth)) = (asm, synth) {
        println!(
            "\nVP write-back harmonic-mean speedup: {asm:.3}x on assembled programs \
             vs {synth:.3}x on synthetic traces"
        );
    }
    write_json_artifact(std::path::Path::new(&json), &eval.to_json());
    write_run_telemetry(std::path::Path::new(&json), &eval.telemetry);
    if let Some(p) = metrics_prom {
        write_prometheus_metrics(std::path::Path::new(&p), &eval.metrics);
    }
}
