//! A reusable single-job execution API, extracted from the sweep engine
//! for the `vpr-serve` daemon.
//!
//! The batch sweep ([`crate::sweep`]) executes a whole grid in one
//! process invocation; the service executes the *same* work one job at a
//! time, across daemon restarts, with concurrent tenants sharing a warm
//! checkpoint store. This module is the common denominator: a
//! [`JobSpec`] that round-trips through the workspace's line-JSON wire
//! format, and [`execute_job`], which produces metrics **bit-identical**
//! to the batch path for the same spec — the property every service
//! robustness test pins.
//!
//! ### Warm-pass dedup
//!
//! `execute_job` with a store restores the point's warm checkpoint when
//! present and otherwise *deposits* one as a side effect of running (the
//! batch miss path computes without depositing). That deposit is what
//! makes cross-tenant dedup work: the first job of a (workload, seed,
//! scheme, warm-up) coordinate pays the warm pass, every later job — from
//! any client — restores it. Restored continuations are bit-identical to
//! uninterrupted runs (the `vpr-snap` contract), so dedup never changes a
//! result, only its cost. The store mutex is held only around manifest
//! lookups and artefact writes, never across a simulation.

use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::checkpoints::{
    checkpoint_key, config_hash, generate_checkpoints, group_scheme_label, sim_config,
    CheckpointLoadError, CheckpointOutcome, CheckpointStore, KIND_WARM,
};
use crate::sweep::{json_escape, json_num, PointMetrics};
use crate::workloads::{parse_scheme, scheme_label, Workload, WorkloadStream};
use crate::ExperimentConfig;
use vpr_core::{Processor, RenameScheme};
use vpr_snap::manifest::JsonValue;

/// One unit of service work: a single sweep point plus the experiment
/// parameters it runs under. Two specs with equal fields produce
/// byte-identical results — the service's dedup and replay machinery
/// depends on nothing else.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The workload (synthetic benchmark or assembled program).
    pub workload: Workload,
    /// The renaming scheme.
    pub scheme: RenameScheme,
    /// Physical (or virtual-physical) register-file size.
    pub physical_regs: usize,
    /// Warm-up/measurement lengths, seed, and miss penalty.
    pub exp: ExperimentConfig,
}

impl JobSpec {
    /// The job's stable label — same shape as the sweep engine's point
    /// label (`swim/vp-wb-nrr32@64r`), used for fault-injection matching
    /// and failure reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}@{}r",
            self.workload.name(),
            scheme_label(self.scheme),
            self.physical_regs
        )
    }

    /// The single-flight key two tenants' warm passes coalesce on: the
    /// (workload, seed, scheme-family) coordinate, via the checkpoint
    /// store's family-label machinery. Family members serialise their
    /// warm passes behind one lock; identical points behind it dedup
    /// outright.
    pub fn group_key(&self) -> String {
        format!(
            "{}/{}@{}r/s{}/w{}/mp{}",
            self.workload.name(),
            group_scheme_label(self.scheme, self.physical_regs, &self.exp),
            self.physical_regs,
            self.exp.seed,
            self.exp.warmup,
            self.exp.miss_penalty
        )
    }

    /// Wire rendering: one JSON object (no newlines), parseable by
    /// [`JobSpec::from_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"scheme\": \"{}\", \"regs\": {}, \
             \"warmup\": {}, \"measure\": {}, \"seed\": {}, \"miss_penalty\": {}}}",
            json_escape(&self.workload.name()),
            json_escape(&scheme_label(self.scheme)),
            self.physical_regs,
            self.exp.warmup,
            self.exp.measure,
            self.exp.seed,
            self.exp.miss_penalty
        )
    }

    /// Parses the object produced by [`JobSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the missing or malformed field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let obj = v.as_object().ok_or("job spec must be a JSON object")?;
        let field = |k: &str| obj.get(k).ok_or_else(|| format!("missing field `{k}`"));
        let num = |k: &str| -> Result<u64, String> {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("field `{k}` must be a non-negative integer"))
        };
        let workload = Workload::parse(
            field("workload")?
                .as_str()
                .ok_or("field `workload` must be a string")?,
        )?;
        let scheme = parse_scheme(
            field("scheme")?
                .as_str()
                .ok_or("field `scheme` must be a string")?,
        )?;
        Ok(Self {
            workload,
            scheme,
            physical_regs: num("regs")? as usize,
            exp: ExperimentConfig {
                warmup: num("warmup")?,
                measure: num("measure")?,
                seed: num("seed")?,
                miss_penalty: num("miss_penalty")?,
                jobs: 0,
            },
        })
    }
}

/// The terminal product of one job: the figure/table metrics plus how
/// the warm checkpoint store was used (the service's dedup accounting).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// The point metrics (all-NaN for a degraded job; see
    /// [`PointMetrics::failed`]).
    pub metrics: PointMetrics,
    /// Warm-checkpoint outcome: `Hit` means this job skipped its warm
    /// pass thanks to a previously deposited artefact.
    pub outcome: CheckpointOutcome,
    /// Degradation note (store trouble the job recovered around), if any.
    pub note: Option<String>,
}

impl JobOutput {
    /// Wire rendering: one JSON object carrying the metrics at full
    /// round-trip precision (`{}` on an `f64` prints the shortest string
    /// that parses back to the same bits — the byte-identity tests
    /// compare through exactly this representation).
    pub fn to_json(&self) -> String {
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let mut s = format!(
            "{{\"ipc\": {}, \"miss_ratio\": {}, \"executions_per_commit\": {}, \"warm\": \"{}\"",
            f(self.metrics.ipc),
            f(self.metrics.miss_ratio),
            f(self.metrics.executions_per_commit),
            match &self.outcome {
                CheckpointOutcome::Hit(_) => "hit",
                CheckpointOutcome::Miss => "miss",
                CheckpointOutcome::NoStore => "no-store",
            }
        );
        if let Some(note) = &self.note {
            s.push_str(&format!(", \"note\": \"{}\"", json_escape(note)));
        }
        s.push('}');
        s
    }

    /// Parses the object produced by [`JobOutput::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the missing or malformed field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let obj = v.as_object().ok_or("job output must be a JSON object")?;
        let num = |k: &str| -> Result<f64, String> {
            match obj.get(k) {
                None => Err(format!("missing field `{k}`")),
                Some(JsonValue::Null) => Ok(f64::NAN),
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| format!("field `{k}` must be a number or null")),
            }
        };
        let outcome = match obj.get("warm").and_then(JsonValue::as_str) {
            Some("hit") => CheckpointOutcome::Hit(String::new()),
            Some("miss") => CheckpointOutcome::Miss,
            _ => CheckpointOutcome::NoStore,
        };
        Ok(Self {
            metrics: PointMetrics {
                ipc: num("ipc")?,
                miss_ratio: num("miss_ratio")?,
                executions_per_commit: num("executions_per_commit")?,
            },
            outcome,
            note: obj
                .get("note")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
        })
    }

    /// Renders the metrics the way the batch tables do (4 decimals, NaN
    /// as `null`) — the representation CI compares against `table2.json`.
    pub fn table_cells(&self) -> (String, String, String) {
        (
            json_num(self.metrics.ipc, 4),
            json_num(self.metrics.miss_ratio, 4),
            json_num(self.metrics.executions_per_commit, 4),
        )
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Executes one job, bit-identical to the batch path for the same spec.
///
/// Without a store this is exactly [`crate::run_benchmark`]. With a
/// store, the job restores its warm checkpoint when one is present and
/// valid, and otherwise runs its warm pass through the checkpointing
/// path and **deposits** the artefact for later tenants; either way the
/// measurement window is the one the uninterrupted run would produce.
/// Store trouble (corrupt artefact, failed write) degrades to a note —
/// it never changes the metrics and never fails the job.
pub fn execute_job(spec: &JobSpec, store: Option<&Mutex<CheckpointStore>>) -> JobOutput {
    let Some(store) = store else {
        let stats = crate::run_benchmark(spec.workload, spec.scheme, spec.physical_regs, &spec.exp);
        return JobOutput {
            metrics: PointMetrics {
                ipc: stats.ipc(),
                miss_ratio: stats.cache.miss_ratio(),
                executions_per_commit: stats.executions_per_commit(),
            },
            outcome: CheckpointOutcome::NoStore,
            note: None,
        };
    };

    let config = sim_config(spec.scheme, spec.physical_regs, &spec.exp);
    let hash = config_hash(spec.workload, &config, spec.exp.seed);
    let key = checkpoint_key(
        spec.workload,
        spec.scheme,
        spec.physical_regs,
        &spec.exp,
        KIND_WARM,
        spec.exp.warmup,
    );
    let mut note = None;

    // Manifest lookup under the lock; simulation never is.
    let loaded = lock(store).load(&key, hash);
    match loaded {
        Ok((entry, snapshot)) => {
            let fresh = spec.workload.stream(spec.exp.seed);
            match Processor::<WorkloadStream>::restore(&snapshot, fresh) {
                Ok(mut cpu) => {
                    cpu.reset_window();
                    let stats = cpu.run(spec.exp.measure);
                    return JobOutput {
                        metrics: PointMetrics {
                            ipc: stats.ipc(),
                            miss_ratio: stats.cache.miss_ratio(),
                            executions_per_commit: stats.executions_per_commit(),
                        },
                        outcome: CheckpointOutcome::Hit(entry.file),
                        note: None,
                    };
                }
                Err(e) => note = Some(format!("restore failed: {e}")),
            }
        }
        Err(CheckpointLoadError::Manifest(_)) => {}
        Err(e) => note = Some(e.to_string()),
    }

    // Warm-pass path: run the warm-up through the checkpointing pass,
    // continue the restored machine through the measurement window
    // (bit-identical to never pausing), and deposit the artefact.
    let generated = generate_checkpoints(
        spec.workload,
        spec.scheme,
        spec.physical_regs,
        &spec.exp,
        None,
    );
    let warm = generated
        .iter()
        .find(|g| g.key.kind == KIND_WARM)
        .expect("warm pass always yields a warm checkpoint");
    let fresh = spec.workload.stream(spec.exp.seed);
    let stats = match Processor::<WorkloadStream>::restore(&warm.snapshot, fresh) {
        Ok(mut cpu) => {
            cpu.reset_window();
            cpu.run(spec.exp.measure)
        }
        // A snapshot this process just took failing to restore is a bug,
        // but degrade rather than wedge: pay the full uninterrupted run.
        Err(e) => {
            note = Some(format!("fresh warm snapshot failed to restore: {e}"));
            crate::run_benchmark(spec.workload, spec.scheme, spec.physical_regs, &spec.exp)
        }
    };
    {
        let mut guard = lock(store);
        if let Err(e) = guard.save_all(&generated).and_then(|()| guard.flush()) {
            note = Some(format!("checkpoint persist failed: {e}"));
        }
    }
    JobOutput {
        metrics: PointMetrics {
            ipc: stats.ipc(),
            miss_ratio: stats.cache.miss_ratio(),
            executions_per_commit: stats.executions_per_commit(),
        },
        outcome: CheckpointOutcome::Miss,
        note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_snap::manifest::parse_json;
    use vpr_trace::Benchmark;

    fn spec() -> JobSpec {
        JobSpec {
            workload: Benchmark::Swim.into(),
            scheme: RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            physical_regs: 64,
            exp: ExperimentConfig {
                warmup: 500,
                measure: 3_000,
                ..ExperimentConfig::quick()
            },
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec();
        let parsed = JobSpec::from_json(&parse_json(&s.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.label(), "swim/vp-wb-nrr32@64r");
        // Asm workloads exercise the `:`-bearing name path.
        let asm = JobSpec {
            workload: Workload::parse("asm:matmul").unwrap(),
            ..s
        };
        let parsed = JobSpec::from_json(&parse_json(&asm.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, asm);
    }

    #[test]
    fn spec_rejects_malformed_objects() {
        for bad in [
            "{}",
            "{\"workload\": \"swim\"}",
            "{\"workload\": \"nope\", \"scheme\": \"conventional\", \"regs\": 64, \
             \"warmup\": 1, \"measure\": 1, \"seed\": 1, \"miss_penalty\": 1}",
            "{\"workload\": \"swim\", \"scheme\": \"nope\", \"regs\": 64, \
             \"warmup\": 1, \"measure\": 1, \"seed\": 1, \"miss_penalty\": 1}",
        ] {
            assert!(
                JobSpec::from_json(&parse_json(bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn output_round_trips_including_nan_degradation() {
        let out = JobOutput {
            metrics: PointMetrics {
                ipc: 1.2345678901234,
                miss_ratio: 0.0625,
                executions_per_commit: 1.0,
            },
            outcome: CheckpointOutcome::Miss,
            note: Some("checkpoint persist failed: disk full".into()),
        };
        let parsed = JobOutput::from_json(&parse_json(&out.to_json()).unwrap()).unwrap();
        assert_eq!(parsed.metrics.ipc.to_bits(), out.metrics.ipc.to_bits());
        assert_eq!(
            parsed.note.as_deref(),
            Some("checkpoint persist failed: disk full")
        );

        let failed = JobOutput {
            metrics: PointMetrics::failed(),
            outcome: CheckpointOutcome::NoStore,
            note: None,
        };
        let parsed = JobOutput::from_json(&parse_json(&failed.to_json()).unwrap()).unwrap();
        assert!(parsed.metrics.is_failed());
    }

    #[test]
    fn execution_matches_batch_and_dedups_via_the_store() {
        let s = spec();
        let batch = execute_job(&s, None);
        assert!(matches!(batch.outcome, CheckpointOutcome::NoStore));

        let dir = std::env::temp_dir().join("vpr-bench-jobs-exec-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Mutex::new(CheckpointStore::open(&dir).unwrap());

        // First run: warm miss, deposits the artefact, matches batch bits.
        let first = execute_job(&s, Some(&store));
        assert!(
            matches!(first.outcome, CheckpointOutcome::Miss),
            "{:?}",
            first.outcome
        );
        assert_eq!(first.metrics.ipc.to_bits(), batch.metrics.ipc.to_bits());

        // Second run (another tenant): warm hit, identical bits.
        let second = execute_job(&s, Some(&store));
        assert!(
            matches!(second.outcome, CheckpointOutcome::Hit(_)),
            "{:?}",
            second.outcome
        );
        assert_eq!(second.metrics.ipc.to_bits(), batch.metrics.ipc.to_bits());
        assert_eq!(
            second.metrics.executions_per_commit.to_bits(),
            batch.metrics.executions_per_commit.to_bits()
        );
        assert_eq!(
            second.metrics.miss_ratio.to_bits(),
            batch.metrics.miss_ratio.to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_key_coalesces_family_members() {
        let a = spec();
        let b = JobSpec {
            scheme: RenameScheme::VirtualPhysicalWriteback { nrr: 16 },
            ..a.clone()
        };
        // nrr 16 and 32 share a warm-pass family at 64 regs.
        assert_eq!(a.group_key(), b.group_key());
        let c = JobSpec {
            scheme: RenameScheme::Conventional,
            ..a.clone()
        };
        assert_ne!(a.group_key(), c.group_key());
        let d = JobSpec {
            exp: ExperimentConfig { seed: 7, ..a.exp },
            ..a.clone()
        };
        assert_ne!(a.group_key(), d.group_key());
    }
}
