//! The paper's evaluation artefacts (§4.2), as reusable functions.
//!
//! Each function sweeps the relevant configurations, returns a structured
//! result, and can render it as a [`Table`] shaped like the paper's
//! corresponding table or figure.

use crate::{run_benchmark, ExperimentConfig, Table};
use vpr_core::{harmonic_mean, RenameScheme};
use vpr_trace::Benchmark;

/// The NRR values swept in Figures 4 and 5.
pub const NRR_SWEEP: [usize; 6] = [1, 4, 8, 16, 24, 32];

/// Register-file sizes (and the NRR used with each) swept in Figure 7.
pub const REG_SWEEP: [(usize, usize); 3] = [(48, 16), (64, 32), (96, 64)];

// ----------------------------------------------------------------------
// Table 2
// ----------------------------------------------------------------------

/// One benchmark row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// IPC under conventional renaming.
    pub conv_ipc: f64,
    /// IPC under virtual-physical write-back allocation (NRR = 32).
    pub vp_ipc: f64,
    /// Executions per committed instruction under the VP scheme (the
    /// paper reports 3.3 on average).
    pub vp_executions_per_commit: f64,
}

impl Table2Row {
    /// Percentage IPC improvement of VP over conventional.
    pub fn improvement_percent(&self) -> f64 {
        (self.vp_ipc / self.conv_ipc - 1.0) * 100.0
    }
}

/// The full Table 2 result.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Per-benchmark rows, integer benchmarks first (paper order).
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Harmonic means of the two IPC columns `(conventional, vp)`.
    pub fn harmonic_means(&self) -> (f64, f64) {
        let conv: Vec<f64> = self.rows.iter().map(|r| r.conv_ipc).collect();
        let vp: Vec<f64> = self.rows.iter().map(|r| r.vp_ipc).collect();
        (harmonic_mean(&conv), harmonic_mean(&vp))
    }

    /// Mean improvement of the harmonic means, in percent (the paper's
    /// headline 19%).
    pub fn mean_improvement_percent(&self) -> f64 {
        let (c, v) = self.harmonic_means();
        (v / c - 1.0) * 100.0
    }

    /// Renders the paper-shaped table (with the paper's reference numbers
    /// alongside for comparison).
    pub fn render(&self) -> Table {
        let mut t = Table::new(
            [
                "bench",
                "conv IPC",
                "VP IPC",
                "imp.%",
                "paper conv",
                "paper VP",
                "paper imp.%",
            ]
            .map(String::from)
            .to_vec(),
        );
        for r in &self.rows {
            t.add_row(vec![
                r.benchmark.name().into(),
                format!("{:.2}", r.conv_ipc),
                format!("{:.2}", r.vp_ipc),
                format!("{:+.0}", r.improvement_percent()),
                format!("{:.2}", r.benchmark.paper_conventional_ipc()),
                format!("{:.2}", r.benchmark.paper_vp_writeback_ipc()),
                format!("{:+.0}", r.benchmark.paper_improvement_percent()),
            ]);
        }
        let (c, v) = self.harmonic_means();
        t.add_row(vec![
            "harm.mean".into(),
            format!("{c:.2}"),
            format!("{v:.2}"),
            format!("{:+.0}", self.mean_improvement_percent()),
            "1.23".into(),
            "1.46".into(),
            "+19".into(),
        ]);
        t
    }
}

/// Regenerates Table 2: conventional vs. VP write-back (NRR = 32) at 64
/// physical registers per file.
pub fn table2(exp: &ExperimentConfig) -> Table2 {
    let rows = Benchmark::ALL
        .iter()
        .map(|&b| {
            let conv = run_benchmark(b, RenameScheme::Conventional, 64, exp);
            let vp = run_benchmark(
                b,
                RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
                64,
                exp,
            );
            Table2Row {
                benchmark: b,
                conv_ipc: conv.ipc(),
                vp_ipc: vp.ipc(),
                vp_executions_per_commit: vp.executions_per_commit(),
            }
        })
        .collect();
    Table2 { rows }
}

// ----------------------------------------------------------------------
// Figures 4 and 5 — speedup vs NRR
// ----------------------------------------------------------------------

/// Speedups of one benchmark across the NRR sweep.
#[derive(Debug, Clone)]
pub struct NrrSweepRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// IPC of the conventional baseline.
    pub conv_ipc: f64,
    /// `IPC_vp / IPC_conv` for each NRR in [`NRR_SWEEP`].
    pub speedups: Vec<f64>,
}

/// A Figure-4/Figure-5-shaped result: per-benchmark speedup series over
/// the NRR sweep.
#[derive(Debug, Clone)]
pub struct NrrSweep {
    /// Which allocation policy was swept.
    pub scheme_name: &'static str,
    /// Per-benchmark series.
    pub rows: Vec<NrrSweepRow>,
}

impl NrrSweep {
    /// Mean (harmonic, over benchmarks) speedup for each NRR value.
    pub fn mean_speedups(&self) -> Vec<f64> {
        (0..NRR_SWEEP.len())
            .map(|i| {
                let conv: Vec<f64> = self.rows.iter().map(|r| r.conv_ipc).collect();
                let vp: Vec<f64> = self
                    .rows
                    .iter()
                    .map(|r| r.conv_ipc * r.speedups[i])
                    .collect();
                harmonic_mean(&vp) / harmonic_mean(&conv)
            })
            .collect()
    }

    /// Renders the figure as a table: one row per benchmark, one column
    /// per NRR.
    pub fn render(&self) -> Table {
        let mut headers = vec!["bench".to_string()];
        headers.extend(NRR_SWEEP.iter().map(|n| format!("NRR={n}")));
        let mut t = Table::new(headers);
        for r in &self.rows {
            let mut row = vec![r.benchmark.name().to_string()];
            row.extend(r.speedups.iter().map(|s| format!("{s:.2}")));
            t.add_row(row);
        }
        let mut mean_row = vec!["harm.mean".to_string()];
        mean_row.extend(self.mean_speedups().iter().map(|s| format!("{s:.2}")));
        t.add_row(mean_row);
        t
    }
}

fn nrr_sweep(exp: &ExperimentConfig, writeback: bool) -> NrrSweep {
    let rows = Benchmark::ALL
        .iter()
        .map(|&b| {
            let conv = run_benchmark(b, RenameScheme::Conventional, 64, exp).ipc();
            let speedups = NRR_SWEEP
                .iter()
                .map(|&nrr| {
                    let scheme = if writeback {
                        RenameScheme::VirtualPhysicalWriteback { nrr }
                    } else {
                        RenameScheme::VirtualPhysicalIssue { nrr }
                    };
                    run_benchmark(b, scheme, 64, exp).ipc() / conv
                })
                .collect();
            NrrSweepRow {
                benchmark: b,
                conv_ipc: conv,
                speedups,
            }
        })
        .collect();
    NrrSweep {
        scheme_name: if writeback { "write-back" } else { "issue" },
        rows,
    }
}

/// Regenerates Figure 4: VP write-back speedup over conventional for
/// NRR ∈ {1, 4, 8, 16, 24, 32}.
pub fn fig4(exp: &ExperimentConfig) -> NrrSweep {
    nrr_sweep(exp, true)
}

/// Regenerates Figure 5: VP issue-allocation speedup over conventional
/// for the same NRR sweep.
pub fn fig5(exp: &ExperimentConfig) -> NrrSweep {
    nrr_sweep(exp, false)
}

// ----------------------------------------------------------------------
// Figure 6 — write-back vs issue
// ----------------------------------------------------------------------

/// One benchmark's head-to-head comparison at the optimal NRR (32).
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Speedup of write-back allocation over conventional.
    pub writeback_speedup: f64,
    /// Speedup of issue allocation over conventional.
    pub issue_speedup: f64,
}

/// The Figure 6 result.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig6Row>,
}

impl Fig6 {
    /// Renders the figure as a table.
    pub fn render(&self) -> Table {
        let mut t = Table::new(["bench", "write-back", "issue"].map(String::from).to_vec());
        for r in &self.rows {
            t.add_row(vec![
                r.benchmark.name().into(),
                format!("{:.2}", r.writeback_speedup),
                format!("{:.2}", r.issue_speedup),
            ]);
        }
        t
    }

    /// Fraction of benchmarks where write-back beats issue allocation
    /// (the paper: write-back "significantly outperforms" issue).
    pub fn writeback_win_rate(&self) -> f64 {
        let wins = self
            .rows
            .iter()
            .filter(|r| r.writeback_speedup >= r.issue_speedup)
            .count();
        wins as f64 / self.rows.len() as f64
    }
}

/// Regenerates Figure 6: both allocation policies at NRR = 32, 64
/// registers.
pub fn fig6(exp: &ExperimentConfig) -> Fig6 {
    let rows = Benchmark::ALL
        .iter()
        .map(|&b| {
            let conv = run_benchmark(b, RenameScheme::Conventional, 64, exp).ipc();
            let wb = run_benchmark(
                b,
                RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
                64,
                exp,
            )
            .ipc();
            let is =
                run_benchmark(b, RenameScheme::VirtualPhysicalIssue { nrr: 32 }, 64, exp).ipc();
            Fig6Row {
                benchmark: b,
                writeback_speedup: wb / conv,
                issue_speedup: is / conv,
            }
        })
        .collect();
    Fig6 { rows }
}

// ----------------------------------------------------------------------
// Figure 7 — varying the number of physical registers
// ----------------------------------------------------------------------

/// One benchmark's IPCs across register-file sizes.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// `(conv_ipc, vp_ipc)` for each size in [`REG_SWEEP`].
    pub ipcs: Vec<(f64, f64)>,
}

/// The Figure 7 result.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig7Row>,
}

impl Fig7 {
    /// Mean improvement (of harmonic-mean IPCs) per register-file size,
    /// in percent. The paper reports ≈31%, 19% and 8% for 48/64/96.
    pub fn mean_improvements_percent(&self) -> Vec<f64> {
        (0..REG_SWEEP.len())
            .map(|i| {
                let conv: Vec<f64> = self.rows.iter().map(|r| r.ipcs[i].0).collect();
                let vp: Vec<f64> = self.rows.iter().map(|r| r.ipcs[i].1).collect();
                (harmonic_mean(&vp) / harmonic_mean(&conv) - 1.0) * 100.0
            })
            .collect()
    }

    /// Harmonic-mean IPC columns `(conv, vp)` per register-file size.
    pub fn mean_ipcs(&self) -> Vec<(f64, f64)> {
        (0..REG_SWEEP.len())
            .map(|i| {
                let conv: Vec<f64> = self.rows.iter().map(|r| r.ipcs[i].0).collect();
                let vp: Vec<f64> = self.rows.iter().map(|r| r.ipcs[i].1).collect();
                (harmonic_mean(&conv), harmonic_mean(&vp))
            })
            .collect()
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> Table {
        let mut headers = vec!["bench".to_string()];
        for (size, _) in REG_SWEEP {
            headers.push(format!("conv({size})"));
            headers.push(format!("virt({size})"));
        }
        let mut t = Table::new(headers);
        for r in &self.rows {
            let mut row = vec![r.benchmark.name().to_string()];
            for (c, v) in &r.ipcs {
                row.push(format!("{c:.2}"));
                row.push(format!("{v:.2}"));
            }
            t.add_row(row);
        }
        let mut mean_row = vec!["harm.mean".to_string()];
        for (c, v) in self.mean_ipcs() {
            mean_row.push(format!("{c:.2}"));
            mean_row.push(format!("{v:.2}"));
        }
        t.add_row(mean_row);
        t
    }
}

/// Regenerates Figure 7: conventional vs VP write-back for 48, 64 and 96
/// physical registers (NRR = 16, 32, 64 respectively).
pub fn fig7(exp: &ExperimentConfig) -> Fig7 {
    let rows = Benchmark::ALL
        .iter()
        .map(|&b| {
            let ipcs = REG_SWEEP
                .iter()
                .map(|&(size, nrr)| {
                    let conv = run_benchmark(b, RenameScheme::Conventional, size, exp).ipc();
                    let vp =
                        run_benchmark(b, RenameScheme::VirtualPhysicalWriteback { nrr }, size, exp)
                            .ipc();
                    (conv, vp)
                })
                .collect();
            Fig7Row { benchmark: b, ipcs }
        })
        .collect();
    Fig7 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes_up_quickly() {
        let exp = ExperimentConfig {
            warmup: 500,
            measure: 4_000,
            ..ExperimentConfig::default()
        };
        // One FP and one integer benchmark to keep the test fast.
        let conv = run_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, &exp);
        let vp = run_benchmark(
            Benchmark::Swim,
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            64,
            &exp,
        );
        assert!(
            vp.ipc() > conv.ipc(),
            "swim must improve: {} vs {}",
            vp.ipc(),
            conv.ipc()
        );
    }

    #[test]
    fn render_shapes() {
        let t2 = Table2 {
            rows: vec![Table2Row {
                benchmark: Benchmark::Swim,
                conv_ipc: 1.0,
                vp_ipc: 2.0,
                vp_executions_per_commit: 3.3,
            }],
        };
        let rendered = t2.render().to_string();
        assert!(rendered.contains("swim"));
        assert!(rendered.contains("+100"));
        let (c, v) = t2.harmonic_means();
        assert_eq!((c, v), (1.0, 2.0));
    }
}
