//! The paper's evaluation artefacts (§4.2), as reusable functions.
//!
//! Each function sweeps the relevant configurations, returns a structured
//! result, and can render it as a [`Table`] shaped like the paper's
//! corresponding table or figure.

use crate::sweep::{
    failures_json, json_num, run_sweep_metrics, MetricsBlock, SamplingProvenance, SweepContext,
    SweepFailure, SweepPoint,
};
use crate::workloads::Workload;
use crate::{ExperimentConfig, Table};
use vpr_core::{harmonic_mean, RenameScheme};
use vpr_obs::RunTelemetry;

/// The NRR values swept in Figures 4 and 5.
pub const NRR_SWEEP: [usize; 6] = [1, 4, 8, 16, 24, 32];

/// Register-file sizes (and the NRR used with each) swept in Figure 7.
pub const REG_SWEEP: [(usize, usize); 3] = [(48, 16), (64, 32), (96, 64)];

// ----------------------------------------------------------------------
// Table 2
// ----------------------------------------------------------------------

/// One benchmark row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// The workload (benchmark or assembled program).
    pub workload: Workload,
    /// IPC under conventional renaming.
    pub conv_ipc: f64,
    /// IPC under virtual-physical write-back allocation (NRR = 32).
    pub vp_ipc: f64,
    /// Executions per committed instruction under the VP scheme (the
    /// paper reports 3.3 on average).
    pub vp_executions_per_commit: f64,
}

impl Table2Row {
    /// Percentage IPC improvement of VP over conventional.
    pub fn improvement_percent(&self) -> f64 {
        (self.vp_ipc / self.conv_ipc - 1.0) * 100.0
    }
}

/// The full Table 2 result.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Per-benchmark rows, integer benchmarks first (paper order).
    pub rows: Vec<Table2Row>,
    /// How the numbers were obtained (exact vs sampled) — recorded into
    /// the JSON artefact so the two are never confusable.
    pub sampling: SamplingProvenance,
    /// Faults the sweep survived or degraded around (empty on a clean
    /// run).
    pub failures: Vec<SweepFailure>,
    /// Aggregated simulated-machine metrics of the sweep (the artefact's
    /// `metrics` block; per-run series for exact sweeps).
    pub metrics: MetricsBlock,
    /// Sweep-engine run telemetry (written to `run.telemetry.json`, not
    /// into the experiment artefact).
    pub telemetry: RunTelemetry,
}

impl Table2 {
    /// Harmonic means of the two IPC columns `(conventional, vp)`.
    pub fn harmonic_means(&self) -> (f64, f64) {
        let conv: Vec<f64> = self.rows.iter().map(|r| r.conv_ipc).collect();
        let vp: Vec<f64> = self.rows.iter().map(|r| r.vp_ipc).collect();
        (harmonic_mean(&conv), harmonic_mean(&vp))
    }

    /// Mean improvement of the harmonic means, in percent (the paper's
    /// headline 19%).
    pub fn mean_improvement_percent(&self) -> f64 {
        let (c, v) = self.harmonic_means();
        (v / c - 1.0) * 100.0
    }

    /// Renders the result as JSON (`vpr-bench-table2/v4`), mirroring the
    /// throughput harness's hand-rolled style. v2 added the `sampling`
    /// provenance block; v3 added `failures` and renders unmeasured
    /// metrics as `null` instead of panicking or emitting bare NaN; v4
    /// adds the aggregated `metrics` block (see `docs/observability.md`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"vpr-bench-table2/v4\",\n");
        let _ = writeln!(s, "  \"sampling\": {},", self.sampling.to_json_value());
        let _ = writeln!(s, "  \"failures\": {},", failures_json(&self.failures));
        let _ = writeln!(s, "  \"metrics\": {},", self.metrics.to_json_value());
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"benchmark\": \"{}\", \"conv_ipc\": {}, \"vp_ipc\": {}, \"improvement_percent\": {}, \"vp_executions_per_commit\": {}}}",
                r.workload.name(),
                json_num(r.conv_ipc, 4),
                json_num(r.vp_ipc, 4),
                json_num(r.improvement_percent(), 2),
                json_num(r.vp_executions_per_commit, 4)
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        let (c, v) = self.harmonic_means();
        let _ = writeln!(
            s,
            "  ],\n  \"harmonic_mean_conv_ipc\": {},\n  \"harmonic_mean_vp_ipc\": {},\n  \"mean_improvement_percent\": {}",
            json_num(c, 4),
            json_num(v, 4),
            json_num(self.mean_improvement_percent(), 2)
        );
        s.push_str("}\n");
        s
    }

    /// Renders the paper-shaped table (with the paper's reference numbers
    /// alongside for comparison).
    pub fn render(&self) -> Table {
        let mut t = Table::new(
            [
                "bench",
                "conv IPC",
                "VP IPC",
                "imp.%",
                "paper conv",
                "paper VP",
                "paper imp.%",
            ]
            .map(String::from)
            .to_vec(),
        );
        let opt = |v: Option<f64>, fmt: fn(f64) -> String| v.map_or_else(|| "\u{2014}".into(), fmt);
        for r in &self.rows {
            t.add_row(vec![
                r.workload.name(),
                format!("{:.2}", r.conv_ipc),
                format!("{:.2}", r.vp_ipc),
                format!("{:+.0}", r.improvement_percent()),
                opt(r.workload.paper_conventional_ipc(), |v| format!("{v:.2}")),
                opt(r.workload.paper_vp_writeback_ipc(), |v| format!("{v:.2}")),
                opt(r.workload.paper_improvement_percent(), |v| {
                    format!("{v:+.0}")
                }),
            ]);
        }
        let (c, v) = self.harmonic_means();
        t.add_row(vec![
            "harm.mean".into(),
            format!("{c:.2}"),
            format!("{v:.2}"),
            format!("{:+.0}", self.mean_improvement_percent()),
            "1.23".into(),
            "1.46".into(),
            "+19".into(),
        ]);
        t
    }
}

/// Regenerates Table 2: conventional vs. VP write-back (NRR = 32) at 64
/// physical registers per file. The grid runs through the parallel sweep
/// engine (`exp.jobs` workers); rows are assembled in benchmark order, so
/// the result is identical for any worker count.
pub fn table2(exp: &ExperimentConfig) -> Table2 {
    table2_in(exp, &SweepContext::exact())
}

/// [`table2`] in an explicit [`SweepContext`]: exact (optionally restoring
/// warm checkpoints) or sampled (checkpoint-seeded estimation).
pub fn table2_in(exp: &ExperimentConfig, ctx: &SweepContext) -> Table2 {
    table2_for(&Workload::synthetic(), exp, ctx)
}

/// [`table2_in`] over an explicit workload list (`--workload` on the
/// binary): same two-scheme comparison, any mix of synthetic benchmarks
/// and assembled programs.
pub fn table2_for(workloads: &[Workload], exp: &ExperimentConfig, ctx: &SweepContext) -> Table2 {
    let points: Vec<SweepPoint> = workloads
        .iter()
        .flat_map(|&w| {
            [
                SweepPoint::at64(w, RenameScheme::Conventional),
                SweepPoint::at64(w, RenameScheme::VirtualPhysicalWriteback { nrr: 32 }),
            ]
        })
        .collect();
    let sweep = run_sweep_metrics(&points, exp, ctx);
    let rows = workloads
        .iter()
        .zip(sweep.points.chunks_exact(2))
        .map(|(&w, pair)| Table2Row {
            workload: w,
            conv_ipc: pair[0].ipc,
            vp_ipc: pair[1].ipc,
            vp_executions_per_commit: pair[1].executions_per_commit,
        })
        .collect();
    Table2 {
        rows,
        sampling: sweep.provenance,
        failures: sweep.failures,
        metrics: sweep.metrics,
        telemetry: sweep.telemetry,
    }
}

// ----------------------------------------------------------------------
// Figures 4 and 5 — speedup vs NRR
// ----------------------------------------------------------------------

/// Speedups of one benchmark across the NRR sweep.
#[derive(Debug, Clone)]
pub struct NrrSweepRow {
    /// The workload.
    pub workload: Workload,
    /// IPC of the conventional baseline.
    pub conv_ipc: f64,
    /// `IPC_vp / IPC_conv` for each NRR in [`NRR_SWEEP`].
    pub speedups: Vec<f64>,
}

/// A Figure-4/Figure-5-shaped result: per-benchmark speedup series over
/// the NRR sweep.
#[derive(Debug, Clone)]
pub struct NrrSweep {
    /// Which allocation policy was swept.
    pub scheme_name: &'static str,
    /// Per-benchmark series.
    pub rows: Vec<NrrSweepRow>,
    /// How the numbers were obtained.
    pub sampling: SamplingProvenance,
    /// Faults the sweep survived or degraded around (empty on a clean
    /// run).
    pub failures: Vec<SweepFailure>,
    /// Aggregated simulated-machine metrics of the sweep (the artefact's
    /// `metrics` block; per-run series for exact sweeps).
    pub metrics: MetricsBlock,
    /// Sweep-engine run telemetry (written to `run.telemetry.json`, not
    /// into the experiment artefact).
    pub telemetry: RunTelemetry,
}

impl NrrSweep {
    /// Mean (harmonic, over benchmarks) speedup for each NRR value.
    pub fn mean_speedups(&self) -> Vec<f64> {
        (0..NRR_SWEEP.len())
            .map(|i| {
                let conv: Vec<f64> = self.rows.iter().map(|r| r.conv_ipc).collect();
                let vp: Vec<f64> = self
                    .rows
                    .iter()
                    .map(|r| r.conv_ipc * r.speedups[i])
                    .collect();
                harmonic_mean(&vp) / harmonic_mean(&conv)
            })
            .collect()
    }

    /// Renders the result as JSON (`vpr-bench-nrr-sweep/v4`); `scheme`
    /// distinguishes Figure 4 (write-back) from Figure 5 (issue). v2
    /// added the `sampling` provenance block; v3 added `failures` and
    /// `null` for unmeasured metrics; v4 adds the aggregated `metrics`
    /// block.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let join = |xs: &[f64]| {
            xs.iter()
                .map(|x| json_num(*x, 4))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"vpr-bench-nrr-sweep/v4\",\n");
        let _ = writeln!(s, "  \"sampling\": {},", self.sampling.to_json_value());
        let _ = writeln!(s, "  \"failures\": {},", failures_json(&self.failures));
        let _ = writeln!(s, "  \"metrics\": {},", self.metrics.to_json_value());
        let _ = writeln!(s, "  \"scheme\": \"{}\",", self.scheme_name);
        let nrrs = NRR_SWEEP
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(s, "  \"nrr\": [{nrrs}],");
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"benchmark\": \"{}\", \"conv_ipc\": {}, \"speedups\": [{}]}}",
                r.workload.name(),
                json_num(r.conv_ipc, 4),
                join(&r.speedups)
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(
            s,
            "  ],\n  \"mean_speedups\": [{}]",
            join(&self.mean_speedups())
        );
        s.push_str("}\n");
        s
    }

    /// Renders the figure as a table: one row per benchmark, one column
    /// per NRR.
    pub fn render(&self) -> Table {
        let mut headers = vec!["bench".to_string()];
        headers.extend(NRR_SWEEP.iter().map(|n| format!("NRR={n}")));
        let mut t = Table::new(headers);
        for r in &self.rows {
            let mut row = vec![r.workload.name()];
            row.extend(r.speedups.iter().map(|s| format!("{s:.2}")));
            t.add_row(row);
        }
        let mut mean_row = vec!["harm.mean".to_string()];
        mean_row.extend(self.mean_speedups().iter().map(|s| format!("{s:.2}")));
        t.add_row(mean_row);
        t
    }
}

fn nrr_sweep(
    workloads: &[Workload],
    exp: &ExperimentConfig,
    ctx: &SweepContext,
    writeback: bool,
) -> NrrSweep {
    let vp = |nrr| {
        if writeback {
            RenameScheme::VirtualPhysicalWriteback { nrr }
        } else {
            RenameScheme::VirtualPhysicalIssue { nrr }
        }
    };
    let points: Vec<SweepPoint> = workloads
        .iter()
        .flat_map(|&w| {
            std::iter::once(SweepPoint::at64(w, RenameScheme::Conventional)).chain(
                NRR_SWEEP
                    .iter()
                    .map(move |&nrr| SweepPoint::at64(w, vp(nrr))),
            )
        })
        .collect();
    let sweep = run_sweep_metrics(&points, exp, ctx);
    let rows = workloads
        .iter()
        .zip(sweep.points.chunks_exact(1 + NRR_SWEEP.len()))
        .map(|(&w, group)| {
            let conv = group[0].ipc;
            NrrSweepRow {
                workload: w,
                conv_ipc: conv,
                speedups: group[1..].iter().map(|m| m.ipc / conv).collect(),
            }
        })
        .collect();
    NrrSweep {
        scheme_name: if writeback { "write-back" } else { "issue" },
        rows,
        sampling: sweep.provenance,
        failures: sweep.failures,
        metrics: sweep.metrics,
        telemetry: sweep.telemetry,
    }
}

/// Regenerates Figure 4: VP write-back speedup over conventional for
/// NRR ∈ {1, 4, 8, 16, 24, 32}.
pub fn fig4(exp: &ExperimentConfig) -> NrrSweep {
    fig4_in(exp, &SweepContext::exact())
}

/// [`fig4`] in an explicit [`SweepContext`].
pub fn fig4_in(exp: &ExperimentConfig, ctx: &SweepContext) -> NrrSweep {
    nrr_sweep(&Workload::synthetic(), exp, ctx, true)
}

/// [`fig4_in`] over an explicit workload list.
pub fn fig4_for(workloads: &[Workload], exp: &ExperimentConfig, ctx: &SweepContext) -> NrrSweep {
    nrr_sweep(workloads, exp, ctx, true)
}

/// Regenerates Figure 5: VP issue-allocation speedup over conventional
/// for the same NRR sweep.
pub fn fig5(exp: &ExperimentConfig) -> NrrSweep {
    fig5_in(exp, &SweepContext::exact())
}

/// [`fig5`] in an explicit [`SweepContext`].
pub fn fig5_in(exp: &ExperimentConfig, ctx: &SweepContext) -> NrrSweep {
    nrr_sweep(&Workload::synthetic(), exp, ctx, false)
}

/// [`fig5_in`] over an explicit workload list.
pub fn fig5_for(workloads: &[Workload], exp: &ExperimentConfig, ctx: &SweepContext) -> NrrSweep {
    nrr_sweep(workloads, exp, ctx, false)
}

// ----------------------------------------------------------------------
// Figure 6 — write-back vs issue
// ----------------------------------------------------------------------

/// One benchmark's head-to-head comparison at the optimal NRR (32).
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// The workload.
    pub workload: Workload,
    /// Speedup of write-back allocation over conventional.
    pub writeback_speedup: f64,
    /// Speedup of issue allocation over conventional.
    pub issue_speedup: f64,
}

/// The Figure 6 result.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig6Row>,
    /// How the numbers were obtained.
    pub sampling: SamplingProvenance,
    /// Faults the sweep survived or degraded around (empty on a clean
    /// run).
    pub failures: Vec<SweepFailure>,
    /// Aggregated simulated-machine metrics of the sweep (the artefact's
    /// `metrics` block; per-run series for exact sweeps).
    pub metrics: MetricsBlock,
    /// Sweep-engine run telemetry (written to `run.telemetry.json`, not
    /// into the experiment artefact).
    pub telemetry: RunTelemetry,
}

impl Fig6 {
    /// Renders the result as JSON (`vpr-bench-fig6/v4`; v2 added the
    /// `sampling` provenance block, v3 added `failures` and `null` for
    /// unmeasured metrics, v4 adds the aggregated `metrics` block).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"vpr-bench-fig6/v4\",\n");
        let _ = writeln!(s, "  \"sampling\": {},", self.sampling.to_json_value());
        let _ = writeln!(s, "  \"failures\": {},", failures_json(&self.failures));
        let _ = writeln!(s, "  \"metrics\": {},", self.metrics.to_json_value());
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"benchmark\": \"{}\", \"writeback_speedup\": {}, \"issue_speedup\": {}}}",
                r.workload.name(),
                json_num(r.writeback_speedup, 4),
                json_num(r.issue_speedup, 4)
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(
            s,
            "  ],\n  \"writeback_win_rate\": {}",
            json_num(self.writeback_win_rate(), 4)
        );
        s.push_str("}\n");
        s
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> Table {
        let mut t = Table::new(["bench", "write-back", "issue"].map(String::from).to_vec());
        for r in &self.rows {
            t.add_row(vec![
                r.workload.name(),
                format!("{:.2}", r.writeback_speedup),
                format!("{:.2}", r.issue_speedup),
            ]);
        }
        t
    }

    /// Fraction of benchmarks where write-back beats issue allocation
    /// (the paper: write-back "significantly outperforms" issue).
    pub fn writeback_win_rate(&self) -> f64 {
        let wins = self
            .rows
            .iter()
            .filter(|r| r.writeback_speedup >= r.issue_speedup)
            .count();
        wins as f64 / self.rows.len() as f64
    }
}

/// Regenerates Figure 6: both allocation policies at NRR = 32, 64
/// registers.
pub fn fig6(exp: &ExperimentConfig) -> Fig6 {
    fig6_in(exp, &SweepContext::exact())
}

/// [`fig6`] in an explicit [`SweepContext`].
pub fn fig6_in(exp: &ExperimentConfig, ctx: &SweepContext) -> Fig6 {
    fig6_for(&Workload::synthetic(), exp, ctx)
}

/// [`fig6_in`] over an explicit workload list.
pub fn fig6_for(workloads: &[Workload], exp: &ExperimentConfig, ctx: &SweepContext) -> Fig6 {
    let points: Vec<SweepPoint> = workloads
        .iter()
        .flat_map(|&w| {
            [
                SweepPoint::at64(w, RenameScheme::Conventional),
                SweepPoint::at64(w, RenameScheme::VirtualPhysicalWriteback { nrr: 32 }),
                SweepPoint::at64(w, RenameScheme::VirtualPhysicalIssue { nrr: 32 }),
            ]
        })
        .collect();
    let sweep = run_sweep_metrics(&points, exp, ctx);
    let rows = workloads
        .iter()
        .zip(sweep.points.chunks_exact(3))
        .map(|(&w, group)| {
            let conv = group[0].ipc;
            Fig6Row {
                workload: w,
                writeback_speedup: group[1].ipc / conv,
                issue_speedup: group[2].ipc / conv,
            }
        })
        .collect();
    Fig6 {
        rows,
        sampling: sweep.provenance,
        failures: sweep.failures,
        metrics: sweep.metrics,
        telemetry: sweep.telemetry,
    }
}

// ----------------------------------------------------------------------
// Figure 7 — varying the number of physical registers
// ----------------------------------------------------------------------

/// One benchmark's IPCs across register-file sizes.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// The workload.
    pub workload: Workload,
    /// `(conv_ipc, vp_ipc)` for each size in [`REG_SWEEP`].
    pub ipcs: Vec<(f64, f64)>,
}

/// The Figure 7 result.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per-benchmark rows.
    pub rows: Vec<Fig7Row>,
    /// How the numbers were obtained.
    pub sampling: SamplingProvenance,
    /// Faults the sweep survived or degraded around (empty on a clean
    /// run).
    pub failures: Vec<SweepFailure>,
    /// Aggregated simulated-machine metrics of the sweep (the artefact's
    /// `metrics` block; per-run series for exact sweeps).
    pub metrics: MetricsBlock,
    /// Sweep-engine run telemetry (written to `run.telemetry.json`, not
    /// into the experiment artefact).
    pub telemetry: RunTelemetry,
}

impl Fig7 {
    /// Mean improvement (of harmonic-mean IPCs) per register-file size,
    /// in percent. The paper reports ≈31%, 19% and 8% for 48/64/96.
    pub fn mean_improvements_percent(&self) -> Vec<f64> {
        (0..REG_SWEEP.len())
            .map(|i| {
                let conv: Vec<f64> = self.rows.iter().map(|r| r.ipcs[i].0).collect();
                let vp: Vec<f64> = self.rows.iter().map(|r| r.ipcs[i].1).collect();
                (harmonic_mean(&vp) / harmonic_mean(&conv) - 1.0) * 100.0
            })
            .collect()
    }

    /// Harmonic-mean IPC columns `(conv, vp)` per register-file size.
    pub fn mean_ipcs(&self) -> Vec<(f64, f64)> {
        (0..REG_SWEEP.len())
            .map(|i| {
                let conv: Vec<f64> = self.rows.iter().map(|r| r.ipcs[i].0).collect();
                let vp: Vec<f64> = self.rows.iter().map(|r| r.ipcs[i].1).collect();
                (harmonic_mean(&conv), harmonic_mean(&vp))
            })
            .collect()
    }

    /// Renders the result as JSON (`vpr-bench-fig7/v4`; v2 added the
    /// `sampling` provenance block, v3 added `failures` and `null` for
    /// unmeasured metrics, v4 adds the aggregated `metrics` block).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"vpr-bench-fig7/v4\",\n");
        let _ = writeln!(s, "  \"sampling\": {},", self.sampling.to_json_value());
        let _ = writeln!(s, "  \"failures\": {},", failures_json(&self.failures));
        let _ = writeln!(s, "  \"metrics\": {},", self.metrics.to_json_value());
        let sizes = REG_SWEEP
            .iter()
            .map(|(size, nrr)| format!("{{\"physical_regs\": {size}, \"nrr\": {nrr}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(s, "  \"sweep\": [{sizes}],");
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let ipcs = r
                .ipcs
                .iter()
                .map(|(c, v)| {
                    format!(
                        "{{\"conv_ipc\": {}, \"vp_ipc\": {}}}",
                        json_num(*c, 4),
                        json_num(*v, 4)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                s,
                "    {{\"benchmark\": \"{}\", \"ipcs\": [{ipcs}]}}",
                r.workload.name()
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        let means = self
            .mean_improvements_percent()
            .iter()
            .map(|x| json_num(*x, 2))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(s, "  ],\n  \"mean_improvements_percent\": [{means}]");
        s.push_str("}\n");
        s
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> Table {
        let mut headers = vec!["bench".to_string()];
        for (size, _) in REG_SWEEP {
            headers.push(format!("conv({size})"));
            headers.push(format!("virt({size})"));
        }
        let mut t = Table::new(headers);
        for r in &self.rows {
            let mut row = vec![r.workload.name()];
            for (c, v) in &r.ipcs {
                row.push(format!("{c:.2}"));
                row.push(format!("{v:.2}"));
            }
            t.add_row(row);
        }
        let mut mean_row = vec!["harm.mean".to_string()];
        for (c, v) in self.mean_ipcs() {
            mean_row.push(format!("{c:.2}"));
            mean_row.push(format!("{v:.2}"));
        }
        t.add_row(mean_row);
        t
    }
}

/// Regenerates Figure 7: conventional vs VP write-back for 48, 64 and 96
/// physical registers (NRR = 16, 32, 64 respectively).
pub fn fig7(exp: &ExperimentConfig) -> Fig7 {
    fig7_in(exp, &SweepContext::exact())
}

/// [`fig7`] in an explicit [`SweepContext`].
pub fn fig7_in(exp: &ExperimentConfig, ctx: &SweepContext) -> Fig7 {
    fig7_for(&Workload::synthetic(), exp, ctx)
}

/// [`fig7_in`] over an explicit workload list.
pub fn fig7_for(workloads: &[Workload], exp: &ExperimentConfig, ctx: &SweepContext) -> Fig7 {
    let points: Vec<SweepPoint> = workloads
        .iter()
        .flat_map(|&w| {
            REG_SWEEP.iter().flat_map(move |&(size, nrr)| {
                [
                    SweepPoint {
                        workload: w,
                        scheme: RenameScheme::Conventional,
                        physical_regs: size,
                    },
                    SweepPoint {
                        workload: w,
                        scheme: RenameScheme::VirtualPhysicalWriteback { nrr },
                        physical_regs: size,
                    },
                ]
            })
        })
        .collect();
    let sweep = run_sweep_metrics(&points, exp, ctx);
    let rows = workloads
        .iter()
        .zip(sweep.points.chunks_exact(2 * REG_SWEEP.len()))
        .map(|(&w, group)| Fig7Row {
            workload: w,
            ipcs: group
                .chunks_exact(2)
                .map(|p| (p[0].ipc, p[1].ipc))
                .collect(),
        })
        .collect();
    Fig7 {
        rows,
        sampling: sweep.provenance,
        failures: sweep.failures,
        metrics: sweep.metrics,
        telemetry: sweep.telemetry,
    }
}

// ----------------------------------------------------------------------
// asm_eval — rename schemes on real (assembled) programs vs synthetic
// ----------------------------------------------------------------------

/// One workload row of the [`asm_eval`] figure: IPC of all four rename
/// schemes at 64 physical registers per class.
#[derive(Debug, Clone, Copy)]
pub struct AsmEvalRow {
    /// The workload.
    pub workload: Workload,
    /// IPC under conventional renaming.
    pub conv_ipc: f64,
    /// IPC under conventional renaming with early release.
    pub early_ipc: f64,
    /// IPC under virtual-physical issue allocation (NRR = 32).
    pub vp_issue_ipc: f64,
    /// IPC under virtual-physical write-back allocation (NRR = 32).
    pub vp_wb_ipc: f64,
}

impl AsmEvalRow {
    /// Speedup of the headline VP write-back scheme over conventional.
    pub fn vp_wb_speedup(&self) -> f64 {
        self.vp_wb_ipc / self.conv_ipc
    }
}

/// The `asm_eval` result: every rename scheme over a mixed workload list
/// — assembled programs through the `vpr-exec` emulator next to the
/// synthetic benchmark models — so the paper's claims can be checked on
/// instruction streams that were *executed*, not generated.
#[derive(Debug, Clone)]
pub struct AsmEval {
    /// Per-workload rows, in the order the workloads were given.
    pub rows: Vec<AsmEvalRow>,
    /// How the numbers were obtained.
    pub sampling: SamplingProvenance,
    /// Faults the sweep survived or degraded around (empty on a clean
    /// run).
    pub failures: Vec<SweepFailure>,
    /// Aggregated simulated-machine metrics of the sweep.
    pub metrics: MetricsBlock,
    /// Sweep-engine run telemetry (written to `run.telemetry.json`, not
    /// into the experiment artefact).
    pub telemetry: RunTelemetry,
}

impl AsmEval {
    /// Harmonic-mean VP write-back speedup over the assembled-program
    /// rows, and over the synthetic rows, in that order (`None` for an
    /// absent group). The headline comparison: does the improvement the
    /// paper measures on synthetic streams survive on real programs?
    pub fn group_speedups(&self) -> (Option<f64>, Option<f64>) {
        let group = |asm: bool| {
            let rows: Vec<&AsmEvalRow> = self
                .rows
                .iter()
                .filter(|r| matches!(r.workload, Workload::Asm(_)) == asm)
                .collect();
            if rows.is_empty() {
                return None;
            }
            let conv: Vec<f64> = rows.iter().map(|r| r.conv_ipc).collect();
            let vp: Vec<f64> = rows.iter().map(|r| r.vp_wb_ipc).collect();
            Some(harmonic_mean(&vp) / harmonic_mean(&conv))
        };
        (group(true), group(false))
    }

    /// Renders the result as JSON (`vpr-bench-asm-eval/v1`), in the
    /// hand-rolled style of the other artefacts.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"vpr-bench-asm-eval/v1\",\n");
        let _ = writeln!(s, "  \"sampling\": {},", self.sampling.to_json_value());
        let _ = writeln!(s, "  \"failures\": {},", failures_json(&self.failures));
        let _ = writeln!(s, "  \"metrics\": {},", self.metrics.to_json_value());
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"workload\": \"{}\", \"is_asm\": {}, \"conv_ipc\": {}, \
                 \"early_ipc\": {}, \"vp_issue_ipc\": {}, \"vp_wb_ipc\": {}, \
                 \"vp_wb_speedup\": {}}}",
                r.workload.name(),
                matches!(r.workload, Workload::Asm(_)),
                json_num(r.conv_ipc, 4),
                json_num(r.early_ipc, 4),
                json_num(r.vp_issue_ipc, 4),
                json_num(r.vp_wb_ipc, 4),
                json_num(r.vp_wb_speedup(), 4)
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        let (asm, synthetic) = self.group_speedups();
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| json_num(x, 4));
        let _ = writeln!(
            s,
            "  ],\n  \"asm_harmonic_vp_wb_speedup\": {},\n  \
             \"synthetic_harmonic_vp_wb_speedup\": {}",
            opt(asm),
            opt(synthetic)
        );
        s.push_str("}\n");
        s
    }

    /// Renders the figure as a table: one row per workload, one IPC
    /// column per scheme, plus the VP write-back speedup.
    pub fn render(&self) -> Table {
        let mut t = Table::new(
            [
                "workload",
                "conv",
                "early",
                "vp-issue",
                "vp-wb",
                "wb-speedup",
            ]
            .map(String::from)
            .to_vec(),
        );
        for r in &self.rows {
            t.add_row(vec![
                r.workload.name(),
                format!("{:.2}", r.conv_ipc),
                format!("{:.2}", r.early_ipc),
                format!("{:.2}", r.vp_issue_ipc),
                format!("{:.2}", r.vp_wb_ipc),
                format!("{:.2}", r.vp_wb_speedup()),
            ]);
        }
        let (asm, synthetic) = self.group_speedups();
        for (label, v) in [("harm.mean asm", asm), ("harm.mean synth", synthetic)] {
            if let Some(v) = v {
                t.add_row(vec![
                    label.into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{v:.2}"),
                ]);
            }
        }
        t
    }
}

/// The default `asm_eval` workload list: every bundled assembled program
/// plus two synthetic reference points (one FP-heavy, one branchy
/// integer).
pub fn asm_eval_workloads() -> Vec<Workload> {
    let mut ws = Workload::asm();
    ws.push(vpr_trace::Benchmark::Swim.into());
    ws.push(vpr_trace::Benchmark::Go.into());
    ws
}

/// Regenerates the `asm_eval` figure over the default workload list.
pub fn asm_eval(exp: &ExperimentConfig) -> AsmEval {
    asm_eval_in(exp, &SweepContext::exact())
}

/// [`asm_eval`] in an explicit [`SweepContext`].
pub fn asm_eval_in(exp: &ExperimentConfig, ctx: &SweepContext) -> AsmEval {
    asm_eval_for(&asm_eval_workloads(), exp, ctx)
}

/// [`asm_eval_in`] over an explicit workload list.
pub fn asm_eval_for(workloads: &[Workload], exp: &ExperimentConfig, ctx: &SweepContext) -> AsmEval {
    let schemes = crate::workloads::THROUGHPUT_SCHEMES;
    let points: Vec<SweepPoint> = workloads
        .iter()
        .flat_map(|&w| schemes.iter().map(move |&s| SweepPoint::at64(w, s)))
        .collect();
    let sweep = run_sweep_metrics(&points, exp, ctx);
    let rows = workloads
        .iter()
        .zip(sweep.points.chunks_exact(schemes.len()))
        .map(|(&w, group)| AsmEvalRow {
            workload: w,
            conv_ipc: group[0].ipc,
            early_ipc: group[1].ipc,
            vp_issue_ipc: group[2].ipc,
            vp_wb_ipc: group[3].ipc,
        })
        .collect();
    AsmEval {
        rows,
        sampling: sweep.provenance,
        failures: sweep.failures,
        metrics: sweep.metrics,
        telemetry: sweep.telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use vpr_trace::Benchmark;

    #[test]
    fn table2_shapes_up_quickly() {
        let exp = ExperimentConfig {
            warmup: 500,
            measure: 4_000,
            ..ExperimentConfig::default()
        };
        // One FP and one integer benchmark to keep the test fast.
        let conv = run_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, &exp);
        let vp = run_benchmark(
            Benchmark::Swim,
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            64,
            &exp,
        );
        assert!(
            vp.ipc() > conv.ipc(),
            "swim must improve: {} vs {}",
            vp.ipc(),
            conv.ipc()
        );
    }

    #[test]
    fn render_shapes() {
        let t2 = Table2 {
            rows: vec![Table2Row {
                workload: Benchmark::Swim.into(),
                conv_ipc: 1.0,
                vp_ipc: 2.0,
                vp_executions_per_commit: 3.3,
            }],
            sampling: SamplingProvenance::Exact,
            failures: Vec::new(),
            metrics: MetricsBlock::Exact(Default::default()),
            telemetry: RunTelemetry::default(),
        };
        let rendered = t2.render().to_string();
        assert!(rendered.contains("swim"));
        assert!(rendered.contains("+100"));
        let (c, v) = t2.harmonic_means();
        assert_eq!((c, v), (1.0, 2.0));
        let json = t2.to_json();
        assert!(json.contains("\"failures\": []"));
        assert!(json.contains("vpr-bench-table2/v4"));
        assert!(json.contains("\"metrics\": {\"mode\": \"exact\""));
    }

    #[test]
    fn failed_points_render_as_null_not_nan() {
        let t2 = Table2 {
            rows: vec![Table2Row {
                workload: Benchmark::Swim.into(),
                conv_ipc: f64::NAN,
                vp_ipc: f64::NAN,
                vp_executions_per_commit: f64::NAN,
            }],
            sampling: SamplingProvenance::Exact,
            failures: vec![SweepFailure {
                point: "swim/conv@64r".into(),
                stage: "simulate",
                error: "injected fault: job panic (swim/conv@64r)".into(),
                attempts: 2,
                recovered: false,
            }],
            metrics: MetricsBlock::Exact(Default::default()),
            telemetry: RunTelemetry::default(),
        };
        let json = t2.to_json();
        assert!(!json.contains("NaN"), "bare NaN is invalid JSON:\n{json}");
        assert!(json.contains("\"conv_ipc\": null"));
        assert!(json.contains("\"stage\": \"simulate\""));
        assert!(json.contains("\"recovered\": false"));
    }
}
