//! Shared simulation driver for all experiments.

use vpr_core::{Processor, RenameScheme, SimConfig, SimStats};
use vpr_trace::{Benchmark, TraceBuilder};

/// How much to simulate and with which trace seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Committed instructions to skip before measuring (the paper skips
    /// 100 M; the synthetic models reach steady state much sooner).
    pub warmup: u64,
    /// Committed instructions in the measurement window (the paper
    /// measures 50 M).
    pub measure: u64,
    /// Trace-generator seed.
    pub seed: u64,
    /// L1 miss penalty in cycles (the paper uses 50, with a 20-cycle
    /// sensitivity point for Table 2).
    pub miss_penalty: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            warmup: 50_000,
            measure: 500_000,
            seed: 42,
            miss_penalty: 50,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests and Criterion benches.
    pub fn quick() -> Self {
        Self {
            warmup: 2_000,
            measure: 30_000,
            ..Self::default()
        }
    }

    /// Parses `--warmup N`, `--measure N`, `--seed N`, `--miss-penalty N`
    /// from a command line, starting from the defaults.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or unparsable values.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> Result<u64, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("bad value for {name}: {e}"))
            };
            match flag.as_str() {
                "--warmup" => cfg.warmup = take("--warmup")?,
                "--measure" => cfg.measure = take("--measure")?,
                "--seed" => cfg.seed = take("--seed")?,
                "--miss-penalty" => cfg.miss_penalty = take("--miss-penalty")?,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// Runs one benchmark under one scheme and register-file size, returning
/// the measurement-window statistics.
pub fn run_benchmark(
    benchmark: Benchmark,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
) -> SimStats {
    let config = SimConfig::builder()
        .scheme(scheme)
        .physical_regs(physical_regs)
        .miss_penalty(exp.miss_penalty)
        .build();
    let trace = TraceBuilder::new(benchmark).seed(exp.seed).build();
    let mut cpu = Processor::new(config, trace);
    cpu.warm_up(exp.warmup);
    cpu.run(exp.measure)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing_round_trip() {
        let cfg = ExperimentConfig::from_args(
            ["--measure", "1000", "--seed", "7", "--miss-penalty", "20"]
                .map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.measure, 1000);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.miss_penalty, 20);
        assert_eq!(cfg.warmup, ExperimentConfig::default().warmup);
        assert!(ExperimentConfig::from_args(["--bogus".to_string()]).is_err());
        assert!(ExperimentConfig::from_args(["--seed".to_string()]).is_err());
    }

    #[test]
    fn run_produces_sane_stats() {
        let exp = ExperimentConfig {
            warmup: 500,
            measure: 5_000,
            ..ExperimentConfig::default()
        };
        let s = run_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, &exp);
        assert!(s.committed >= 5_000);
        assert!(s.ipc() > 0.1 && s.ipc() < 8.0);
    }
}
