//! Shared simulation driver for all experiments, plus host-side
//! throughput instrumentation.
//!
//! Besides the paper-facing [`run_benchmark`] driver, this module measures
//! the *simulator's own* speed: [`measure_throughput`] times the quick
//! table2 workload under all four renaming schemes and reports simulated
//! committed instructions per host second (**sim-MIPS**), and
//! [`write_throughput_json`] records the result as machine-readable
//! `BENCH_throughput.json` so every PR leaves a perf trajectory.

use crate::sweep::{run_sweep, SweepPoint};
use crate::workloads::Workload;
use std::fmt::Write as _;
use std::time::Instant;
use vpr_core::{
    harmonic_mean, par, Processor, RenameScheme, SimConfig, SimStats, Stage, StageProfile,
};
use vpr_trace::TraceBuilder;

/// How much to simulate and with which trace seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Committed instructions to skip before measuring (the paper skips
    /// 100 M; the synthetic models reach steady state much sooner).
    pub warmup: u64,
    /// Committed instructions in the measurement window (the paper
    /// measures 50 M).
    pub measure: u64,
    /// Trace-generator seed.
    pub seed: u64,
    /// L1 miss penalty in cycles (the paper uses 50, with a 20-cycle
    /// sensitivity point for Table 2).
    pub miss_penalty: u64,
    /// Worker threads for sweeps (`0` = one per host core). Purely a
    /// host-side knob: sweep outputs are byte-identical for every value
    /// (see [`crate::sweep`]).
    pub jobs: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            warmup: 50_000,
            measure: 500_000,
            seed: 42,
            miss_penalty: 50,
            jobs: 0,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests and Criterion benches.
    pub fn quick() -> Self {
        Self {
            warmup: 2_000,
            measure: 30_000,
            ..Self::default()
        }
    }

    /// The sweep worker count this configuration resolves to.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            par::default_jobs()
        } else {
            self.jobs
        }
    }

    /// Parses `--warmup N`, `--measure N`, `--seed N`, `--miss-penalty N`,
    /// `--jobs N` from a command line, starting from the defaults.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or unparsable values.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cfg = Self::default();
        cfg.apply_args(args)?;
        Ok(cfg)
    }

    /// Parses the shared experiment flags onto `self` (whatever base —
    /// [`ExperimentConfig::default`] or [`ExperimentConfig::quick`] — the
    /// caller started from). Binaries with extra flags extract those via
    /// [`crate::take_flag_value`] first and hand the rest here, so the
    /// flag set is parsed in exactly one place.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or unparsable values.
    pub fn apply_args<I: IntoIterator<Item = String>>(&mut self, args: I) -> Result<(), String> {
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> Result<u64, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("bad value for {name}: {e}"))
            };
            match flag.as_str() {
                "--warmup" => self.warmup = take("--warmup")?,
                "--measure" => self.measure = take("--measure")?,
                "--seed" => self.seed = take("--seed")?,
                "--miss-penalty" => self.miss_penalty = take("--miss-penalty")?,
                "--jobs" => self.jobs = take("--jobs")? as usize,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(())
    }
}

/// Runs one workload (synthetic benchmark or assembled program) under one
/// scheme and register-file size, returning the measurement-window
/// statistics. Accepts anything convertible into a [`Workload`], so
/// `run_benchmark(Benchmark::Swim, ..)` call sites read unchanged.
pub fn run_benchmark(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
) -> SimStats {
    let workload = workload.into();
    let config = SimConfig::builder()
        .scheme(scheme)
        .physical_regs(physical_regs)
        .miss_penalty(exp.miss_penalty)
        .build();
    let mut cpu = Processor::new(config, workload.stream(exp.seed));
    cpu.warm_up(exp.warmup);
    cpu.run(exp.measure)
}

/// [`run_benchmark`] with a lifecycle observer attached, returning both
/// the measurement-window statistics and the observer it fed.
///
/// The observer is reset at the measurement-window boundary, so its
/// metrics cover *exactly* the measured instructions — the same window
/// [`SimStats`] covers, and the same window a checkpoint-restored run
/// measures. With [`vpr_core::NoObs`] this monomorphises back to
/// [`run_benchmark`] exactly (zero-overhead contract, see
/// `docs/observability.md`).
pub fn run_benchmark_observed<O: vpr_core::PipeObserver>(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    obs: O,
) -> (SimStats, O) {
    let workload = workload.into();
    let config = SimConfig::builder()
        .scheme(scheme)
        .physical_regs(physical_regs)
        .miss_penalty(exp.miss_penalty)
        .build();
    let mut cpu = Processor::with_observer(config, workload.stream(exp.seed), obs);
    cpu.warm_up(exp.warmup);
    cpu.observer_mut().reset();
    let stats = cpu.run(exp.measure);
    (stats, cpu.into_observer())
}

// ----------------------------------------------------------------------
// Simulator throughput (sim-MIPS)
// ----------------------------------------------------------------------

pub use crate::workloads::{scheme_label, THROUGHPUT_BENCHMARKS, THROUGHPUT_SCHEMES};

/// A fixed-work host-speed reference measurement.
///
/// The sim-MIPS numbers in `BENCH_throughput.json` are hostage to the
/// build host's momentary load: the shared runner swings tens of percent
/// minute to minute. Recording how fast the *same fixed arithmetic
/// workload* runs next to every sweep lets a reader (or a future gate)
/// judge sim-MIPS regressions load-independently via
/// [`ThroughputReport::sim_mips_per_host_mops`]: simulator work per unit
/// of host capability rather than per wall-clock second.
#[derive(Debug, Clone, Copy)]
pub struct HostCalibration {
    /// Operations executed (fixed across runs and hosts).
    pub ops: u64,
    /// Wall-clock seconds the reference loop took (best of 3).
    pub seconds: f64,
    /// Millions of reference operations per second.
    pub mops: f64,
}

/// Reference operation count for [`calibrate_host`]. Fixed forever: the
/// recorded `mops` figures are only comparable across reports because the
/// work is identical.
pub const HOST_CALIBRATION_OPS: u64 = 1 << 26;

/// Times the fixed xorshift64* reference loop (best of 3 runs, to shed
/// scheduler noise the same way the sim timings do). Dependency-free and
/// allocation-free: the loop is pure register arithmetic, so its speed
/// tracks the host's scalar throughput — the same resource the simulator
/// kernel is bound by.
pub fn calibrate_host() -> HostCalibration {
    let mut best = f64::INFINITY;
    for round in 0..3u64 {
        let start = Instant::now();
        let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ (round + 1);
        let mut acc = 0u64;
        for _ in 0..HOST_CALIBRATION_OPS {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            acc = acc.wrapping_add(x.wrapping_mul(0x2545_F491_4F6C_DD1D));
        }
        std::hint::black_box(acc);
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
    }
    HostCalibration {
        ops: HOST_CALIBRATION_OPS,
        seconds: best,
        mops: HOST_CALIBRATION_OPS as f64 / best / 1e6,
    }
}

/// One timed simulation: how fast the *simulator* ran, not the simulated
/// machine.
#[derive(Debug, Clone)]
pub struct ThroughputRun {
    /// `"<benchmark>/<scheme>"`.
    pub label: String,
    /// Simulated instructions committed (warm-up plus measurement window).
    pub committed: u64,
    /// Simulated cycles covered in the same span.
    pub cycles: u64,
    /// Host wall-clock seconds for the whole run, including trace
    /// generation and processor construction.
    pub host_seconds: f64,
    /// Simulated committed instructions per host second, in millions.
    pub sim_mips: f64,
    /// IPC of the measurement window (sanity anchor: the *simulated*
    /// performance must not change when the kernel gets faster).
    pub ipc: f64,
}

/// Wall-clock timing of the whole sweep run through the parallel engine,
/// next to the serial per-run timings.
#[derive(Debug, Clone, Copy)]
pub struct SweepTiming {
    /// Worker threads the parallel sweep used.
    pub jobs: usize,
    /// Wall-clock seconds for the whole grid under [`run_sweep`].
    pub wall_seconds: f64,
    /// Sum of the serial per-run host seconds (the best-of-N minima) —
    /// the wall-clock a one-worker sweep would need.
    pub serial_seconds: f64,
}

/// The full throughput sweep produced by [`measure_throughput`].
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The experiment configuration the sweep ran under.
    pub config: ExperimentConfig,
    /// Timed repetitions per configuration; each run reports its fastest
    /// (repetitions exist to shed scheduler noise, not to change what is
    /// measured — the simulated outcome is identical every time).
    pub runs_per_config: usize,
    /// One entry per (benchmark, scheme) pair.
    pub runs: Vec<ThroughputRun>,
    /// Parallel-sweep wall-clock measurement.
    pub sweep: SweepTiming,
    /// The host-speed reference measured next to the sweep.
    pub host: HostCalibration,
    /// Free-form notes recorded into the artefact (PR context, observed
    /// speedups, host caveats); empty when none were given.
    pub notes: String,
    /// Per-stage host-cost attribution over the whole grid (see
    /// [`profile_throughput`]); `None` unless `--profile` was requested.
    pub profile: Option<StageProfile>,
}

impl ThroughputReport {
    /// Harmonic mean of the per-run sim-MIPS figures (matches how the
    /// paper aggregates IPC, and penalises slow outliers).
    pub fn harmonic_mean_sim_mips(&self) -> f64 {
        let rates: Vec<f64> = self.runs.iter().map(|r| r.sim_mips).collect();
        harmonic_mean(&rates)
    }

    /// Harmonic-mean sim-MIPS per million host reference operations per
    /// second — the load-independent throughput figure (see
    /// [`HostCalibration`]).
    pub fn sim_mips_per_host_mops(&self) -> f64 {
        if self.host.mops == 0.0 {
            0.0
        } else {
            self.harmonic_mean_sim_mips() / self.host.mops
        }
    }

    /// Harmonic-mean sim-MIPS over the `go/*` rows only — the
    /// mispredict-shadow workload the event-driven governor targets, and
    /// the per-workload micro-gate's numerator.
    pub fn go_harmonic_sim_mips(&self) -> f64 {
        let rates: Vec<f64> = self
            .runs
            .iter()
            .filter(|r| r.label.starts_with("go/"))
            .map(|r| r.sim_mips)
            .collect();
        if rates.is_empty() {
            0.0
        } else {
            harmonic_mean(&rates)
        }
    }

    /// [`ThroughputReport::go_harmonic_sim_mips`] per host Mops — the
    /// host-calibrated `go` figure the CI micro-gate compares.
    pub fn go_sim_mips_per_host_mops(&self) -> f64 {
        if self.host.mops == 0.0 {
            0.0
        } else {
            self.go_harmonic_sim_mips() / self.host.mops
        }
    }

    /// Renders the report as a small, stable JSON document
    /// (`vpr-bench-throughput/v5`). Hand-rolled: the build environment has
    /// no serde. v2 added `runs_per_config` (per-run sim-MIPS is the best
    /// of that many timed repetitions) and the `sweep` wall-clock block
    /// for the parallel engine; v3 added the `host_calibration` block and
    /// `sim_mips_per_host_mops`, so sim-MIPS regressions can be judged
    /// independently of the runner's momentary load; v4 adds
    /// `go_sim_mips_per_host_mops` (the `go` micro-gate figure) and the
    /// free-form `notes` string; v5 adds the optional `profile` block
    /// (per-stage host-ns and event counts, present only for `--profile`
    /// runs — the key is omitted otherwise).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"vpr-bench-throughput/v5\",\n");
        let _ = writeln!(
            s,
            "  \"config\": {{\"warmup\": {}, \"measure\": {}, \"seed\": {}, \"miss_penalty\": {}}},",
            self.config.warmup, self.config.measure, self.config.seed, self.config.miss_penalty
        );
        let _ = writeln!(s, "  \"runs_per_config\": {},", self.runs_per_config);
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"label\": \"{}\", \"committed\": {}, \"cycles\": {}, \
                 \"host_seconds\": {:.6}, \"sim_mips\": {:.3}, \"ipc\": {:.4}}}",
                r.label, r.committed, r.cycles, r.host_seconds, r.sim_mips, r.ipc
            );
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        let _ = writeln!(
            s,
            "  \"harmonic_mean_sim_mips\": {:.3},",
            self.harmonic_mean_sim_mips()
        );
        let _ = writeln!(
            s,
            "  \"sweep\": {{\"jobs\": {}, \"wall_seconds\": {:.6}, \"serial_seconds\": {:.6}}},",
            self.sweep.jobs, self.sweep.wall_seconds, self.sweep.serial_seconds
        );
        let _ = writeln!(
            s,
            "  \"host_calibration\": {{\"ops\": {}, \"seconds\": {:.6}, \"mops\": {:.3}}},",
            self.host.ops, self.host.seconds, self.host.mops
        );
        let _ = writeln!(
            s,
            "  \"sim_mips_per_host_mops\": {:.6},",
            self.sim_mips_per_host_mops()
        );
        let _ = writeln!(
            s,
            "  \"go_sim_mips_per_host_mops\": {:.6},",
            self.go_sim_mips_per_host_mops()
        );
        if let Some(p) = &self.profile {
            let _ = writeln!(
                s,
                "  \"profile\": {{\"steps\": {}, \"total_ns\": {}, \"stages\": [",
                p.steps,
                p.total_ns()
            );
            for (i, stage) in Stage::ALL.iter().enumerate() {
                let rec = p.stage(*stage);
                let _ = write!(
                    s,
                    "    {{\"stage\": \"{}\", \"ns\": {}, \"events\": {}}}",
                    stage.name(),
                    rec.ns,
                    rec.events
                );
                s.push_str(if i + 1 < Stage::ALL.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            s.push_str("  ]},\n");
        }
        // Full JSON string escaping: notes are free-form user input and
        // may contain newlines or other control characters.
        let mut escaped = String::with_capacity(self.notes.len());
        for c in self.notes.chars() {
            match c {
                '\\' => escaped.push_str("\\\\"),
                '"' => escaped.push_str("\\\""),
                '\n' => escaped.push_str("\\n"),
                '\r' => escaped.push_str("\\r"),
                '\t' => escaped.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(escaped, "\\u{:04x}", c as u32);
                }
                c => escaped.push(c),
            }
        }
        let _ = writeln!(s, "  \"notes\": \"{escaped}\"");
        s.push_str("}\n");
        s
    }
}

/// Times one `(benchmark, scheme)` simulation end to end and converts it
/// to sim-MIPS. With `repeats > 1` the simulation is run that many times
/// and the fastest wall-clock is reported — the simulated outcome is
/// deterministic, so repetition only sheds host scheduler noise.
pub fn time_one_best(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    exp: &ExperimentConfig,
    repeats: usize,
) -> ThroughputRun {
    let workload = workload.into();
    let mut best: Option<ThroughputRun> = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let config = SimConfig::builder()
            .scheme(scheme)
            .physical_regs(64)
            .miss_penalty(exp.miss_penalty)
            .build();
        let mut cpu = Processor::new(config, workload.stream(exp.seed));
        cpu.warm_up(exp.warmup);
        let stats = cpu.run(exp.measure);
        let host_seconds = start.elapsed().as_secs_f64().max(1e-9);
        let committed = exp.warmup + stats.committed;
        let run = ThroughputRun {
            label: format!("{}/{}", workload.name(), scheme_label(scheme)),
            committed,
            cycles: cpu.cycle(),
            host_seconds,
            sim_mips: committed as f64 / host_seconds / 1e6,
            ipc: stats.ipc(),
        };
        if best
            .as_ref()
            .is_none_or(|b| run.host_seconds < b.host_seconds)
        {
            best = Some(run);
        }
    }
    best.expect("repeats >= 1")
}

/// Times one `(benchmark, scheme)` simulation end to end and converts it
/// to sim-MIPS.
pub fn time_one(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    exp: &ExperimentConfig,
) -> ThroughputRun {
    time_one_best(workload, scheme, exp, 1)
}

/// The throughput grid: [`THROUGHPUT_BENCHMARKS`] × [`THROUGHPUT_SCHEMES`]
/// at 64 registers per class.
pub fn throughput_points() -> Vec<SweepPoint> {
    crate::workloads::throughput_grid()
        .into_iter()
        .map(|(benchmark, scheme)| SweepPoint::at64(benchmark, scheme))
        .collect()
}

/// Runs the throughput sweep: each grid point timed serially
/// (`runs_per_config` repetitions, fastest kept), then the whole grid
/// once more through the parallel engine for the sweep wall-clock.
pub fn measure_throughput(exp: &ExperimentConfig, runs_per_config: usize) -> ThroughputReport {
    let mut runs = Vec::new();
    for benchmark in THROUGHPUT_BENCHMARKS {
        for scheme in THROUGHPUT_SCHEMES {
            runs.push(time_one_best(benchmark, scheme, exp, runs_per_config));
        }
    }
    let points = throughput_points();
    let wall = Instant::now();
    let sweep_stats = run_sweep(&points, exp);
    let wall_seconds = wall.elapsed().as_secs_f64().max(1e-9);
    debug_assert_eq!(sweep_stats.len(), runs.len());
    ThroughputReport {
        config: *exp,
        runs_per_config: runs_per_config.max(1),
        sweep: SweepTiming {
            jobs: exp.effective_jobs(),
            wall_seconds,
            serial_seconds: runs.iter().map(|r| r.host_seconds).sum(),
        },
        host: calibrate_host(),
        runs,
        notes: String::new(),
        profile: None,
    }
}

/// Runs the whole throughput grid once more in profile mode — every
/// active cycle stepped through `Processor::step_profiled` — and returns
/// the merged per-stage host-cost attribution (`throughput --profile`,
/// schema v5's `profile` block).
///
/// Profiled stepping pays two monotonic-clock reads per stage per active
/// cycle, so this runs *separately from* (and slower than) the timed
/// sweep: the sim-MIPS figures stay clean, and the profile explains them.
/// The event counts are architectural and deterministic; only the ns
/// attributions carry host noise.
pub fn profile_throughput(exp: &ExperimentConfig) -> StageProfile {
    let mut total = StageProfile::new();
    for benchmark in THROUGHPUT_BENCHMARKS {
        for scheme in THROUGHPUT_SCHEMES {
            let config = SimConfig::builder()
                .scheme(scheme)
                .physical_regs(64)
                .miss_penalty(exp.miss_penalty)
                .build();
            let trace = TraceBuilder::new(benchmark).seed(exp.seed).build();
            let mut cpu = Processor::new(config, trace);
            let mut prof = StageProfile::new();
            cpu.run_profiled(exp.warmup + exp.measure, &mut prof);
            total.merge(&prof);
        }
    }
    total
}

/// Writes `report` to `path` as `BENCH_throughput.json`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_throughput_json(
    path: &std::path::Path,
    report: &ThroughputReport,
) -> std::io::Result<()> {
    std::fs::write(path, report.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_trace::Benchmark;

    #[test]
    fn arg_parsing_round_trip() {
        let cfg = ExperimentConfig::from_args(
            ["--measure", "1000", "--seed", "7", "--miss-penalty", "20"].map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.measure, 1000);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.miss_penalty, 20);
        assert_eq!(cfg.warmup, ExperimentConfig::default().warmup);
        assert!(ExperimentConfig::from_args(["--bogus".to_string()]).is_err());
        assert!(ExperimentConfig::from_args(["--seed".to_string()]).is_err());
    }

    #[test]
    fn run_produces_sane_stats() {
        let exp = ExperimentConfig {
            warmup: 500,
            measure: 5_000,
            ..ExperimentConfig::default()
        };
        let s = run_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, &exp);
        assert!(s.committed >= 5_000);
        assert!(s.ipc() > 0.1 && s.ipc() < 8.0);
    }

    #[test]
    fn throughput_report_is_sane_and_serialises() {
        let exp = ExperimentConfig {
            warmup: 200,
            measure: 2_000,
            ..ExperimentConfig::default()
        };
        let run = time_one(Benchmark::Swim, RenameScheme::Conventional, &exp);
        assert!(run.committed >= 2_200);
        assert!(run.sim_mips > 0.0);
        assert!(run.host_seconds > 0.0);
        let report = ThroughputReport {
            config: exp,
            runs_per_config: 1,
            sweep: SweepTiming {
                jobs: 1,
                wall_seconds: run.host_seconds,
                serial_seconds: run.host_seconds,
            },
            host: HostCalibration {
                ops: HOST_CALIBRATION_OPS,
                seconds: 0.1,
                mops: HOST_CALIBRATION_OPS as f64 / 0.1 / 1e6,
            },
            runs: vec![run],
            notes: "governor \"refresh\"".into(),
            profile: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"vpr-bench-throughput/v5\""));
        assert!(json.contains("\"runs_per_config\": 1"));
        assert!(json.contains("\"sweep\": {\"jobs\": 1"));
        assert!(json.contains("\"host_calibration\": {\"ops\": "));
        assert!(json.contains("sim_mips_per_host_mops"));
        assert!(json.contains("go_sim_mips_per_host_mops"));
        assert!(json.contains("\"notes\": \"governor \\\"refresh\\\"\""));
        assert!(json.contains("swim/conventional"));
        assert!(json.contains("harmonic_mean_sim_mips"));
        assert!(
            !json.contains("\"profile\""),
            "unprofiled reports omit the profile block"
        );
        assert!(report.harmonic_mean_sim_mips() > 0.0);
        assert!(report.sim_mips_per_host_mops() > 0.0);
        // No go rows in this report: the go figures degrade to zero
        // rather than poisoning the harmonic mean.
        assert_eq!(report.go_harmonic_sim_mips(), 0.0);
    }

    #[test]
    fn profile_block_serialises_all_stages() {
        let exp = ExperimentConfig {
            warmup: 200,
            measure: 2_000,
            ..ExperimentConfig::default()
        };
        let run = time_one(Benchmark::Swim, RenameScheme::Conventional, &exp);
        let mut prof = StageProfile::new();
        prof.record(Stage::Commit, std::time::Duration::from_nanos(10), 3);
        prof.steps = 1;
        let report = ThroughputReport {
            config: exp,
            runs_per_config: 1,
            sweep: SweepTiming {
                jobs: 1,
                wall_seconds: run.host_seconds,
                serial_seconds: run.host_seconds,
            },
            host: HostCalibration {
                ops: HOST_CALIBRATION_OPS,
                seconds: 0.1,
                mops: HOST_CALIBRATION_OPS as f64 / 0.1 / 1e6,
            },
            runs: vec![run],
            notes: String::new(),
            profile: Some(prof),
        };
        let json = report.to_json();
        assert!(json.contains("\"profile\": {\"steps\": 1"));
        for stage in Stage::ALL {
            assert!(
                json.contains(&format!("\"stage\": \"{}\"", stage.name())),
                "missing stage {}",
                stage.name()
            );
        }
    }

    #[test]
    fn host_calibration_is_sane() {
        let cal = calibrate_host();
        assert_eq!(cal.ops, HOST_CALIBRATION_OPS);
        assert!(cal.seconds > 0.0);
        assert!(cal.mops > 0.0);
    }

    #[test]
    fn scheme_labels_are_stable() {
        assert_eq!(scheme_label(RenameScheme::Conventional), "conventional");
        assert_eq!(
            scheme_label(RenameScheme::VirtualPhysicalWriteback { nrr: 32 }),
            "vp-wb-nrr32"
        );
        assert_eq!(
            scheme_label(RenameScheme::VirtualPhysicalIssue { nrr: 8 }),
            "vp-issue-nrr8"
        );
    }
}
