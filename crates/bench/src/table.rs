//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple right-aligned text table.
///
/// ```
/// use vpr_bench::Table;
/// let mut t = Table::new(vec!["bench".into(), "IPC".into()]);
/// t.add_row(vec!["swim".into(), "1.12".into()]);
/// let s = t.to_string();
/// assert!(s.contains("swim"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as Markdown (pipes and a separator row), for
    /// EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}")?;
            }
            writeln!(f)
        };
        render(&self.headers, f)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(row, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["a".into(), "bbb".into()]);
        t.add_row(vec!["x".into(), "1".into()]);
        t.add_row(vec!["yyyy".into(), "2".into()]);
        t
    }

    #[test]
    fn alignment_pads_to_widest_cell() {
        let s = sample().to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[2].ends_with('1'));
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1] || w[1] <= w[0]));
    }

    #[test]
    fn markdown_has_separator() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| a | bbb |"));
        assert!(md.lines().nth(1).unwrap().contains("---"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.add_row(vec!["x".into(), "y".into()]);
    }
}
