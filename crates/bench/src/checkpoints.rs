//! `.vprsnap` checkpoint artefacts: creation, storage, validated loading.
//!
//! A checkpoint directory turns warm-up work into a shared artefact: one
//! **warm** checkpoint per (workload, scheme, warm-up length) lets every
//! exact experiment skip its warm-up, and one **interval** checkpoint per
//! sampling-interval start — all taken during a *single warm serial pass*
//! per configuration — lets `--sampled` experiment runs seed each detailed
//! window from the exact machine state of the uninterrupted run instead of
//! functional re-warming (see [`crate::sampling`]).
//!
//! On disk, a directory holds one `.vprsnap` file per checkpoint (the
//! `vpr-snap` envelope, unchanged) plus a `checkpoints.json` manifest
//! ([`vpr_snap::manifest`]) recording for each artefact its experiment
//! key, the configuration hash it was taken under, its trace cursor, and
//! its payload checksum. Loading re-derives the configuration hash from
//! the configuration *about to run* and rejects any mismatch — stale
//! artefacts fail loudly at load, never silently skew an experiment.
//!
//! The `checkpoint` binary is the user-facing face of this module:
//! `checkpoint create` populates a directory, `checkpoint inspect` lists
//! it, `checkpoint verify` re-validates every artefact (optionally
//! continuing each restored machine and comparing against a fresh
//! uninterrupted run).

use crate::sampling::SamplingPlan;
use crate::workloads::scheme_label;
use crate::workloads::{Workload, WorkloadStream};
use crate::ExperimentConfig;
use std::path::{Path, PathBuf};
use vpr_core::{Processor, RenameScheme, SimConfig, SimStats};
use vpr_snap::manifest::{CheckpointKey, Manifest, ManifestEntry, ManifestError};
use vpr_snap::{Snap as _, Snapshot};

/// Checkpoint kind label: taken at the end of warm-up.
pub const KIND_WARM: &str = "warm";
/// Checkpoint kind label: taken at a sampling-interval start.
pub const KIND_INTERVAL: &str = "interval";

/// The configuration whose warm pass a point's *sharing group* reuses:
/// for the virtual-physical schemes, the same scheme at the
/// configuration's **maximum** NRR ([`SimConfig::max_nrr`]) — the NRR is
/// an allocation-policy parameter only, so one warm pass per (benchmark,
/// seed, scheme family) serves every NRR value via
/// `Processor::retarget_nrr`; for every other scheme, the point's own
/// configuration (nothing to share across).
///
/// The canonical NRR must be the maximum because re-targeting is only
/// sound *downward*: the §3.3 invariant `free ≥ NRR − Used` survives
/// shrinking the reserved set (removing a reserved slot removes at most
/// one allocated one) but not growing it — a machine warmed under a
/// small NRR may hold too few free registers to honour a larger reserved
/// set's guarantee.
pub fn group_config(
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
) -> SimConfig {
    let own = sim_config(scheme, physical_regs, exp);
    if !shares_group_pass(scheme, physical_regs, exp) {
        return own;
    }
    let canonical = match scheme {
        RenameScheme::VirtualPhysicalIssue { .. } => {
            RenameScheme::VirtualPhysicalIssue { nrr: own.max_nrr() }
        }
        RenameScheme::VirtualPhysicalWriteback { .. } => {
            RenameScheme::VirtualPhysicalWriteback { nrr: own.max_nrr() }
        }
        other => other,
    };
    sim_config(canonical, physical_regs, exp)
}

/// Whether a point restores its family's shared canonical-NRR pass
/// instead of paying its own: true for NRR values within 4× of the
/// canonical (maximum) NRR. Deeper downshifts leave the canonical
/// trajectory's operating regime entirely — a machine re-targeted from
/// NRR 32 to NRR 1 settles into a register-re-execution equilibrium a
/// from-scratch NRR-1 run never enters, and no affordable re-warm span
/// escapes it (observed ≈ 22 % IPC bias on wave5) — so such points keep
/// their own serial pass and stay exact-seeded.
pub fn shares_group_pass(
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
) -> bool {
    match scheme.nrr() {
        Some(nrr) => nrr * 4 >= sim_config(scheme, physical_regs, exp).max_nrr(),
        None => false,
    }
}

/// The manifest scheme label a point's sharing group stores its
/// checkpoints under: an NRR-independent family label for
/// virtual-physical schemes that share the canonical pass
/// ([`shares_group_pass`]), the point's own label otherwise. The
/// separate namespace keeps shared (canonical-NRR) artefacts from ever
/// colliding with exact per-configuration ones.
pub fn group_scheme_label(
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
) -> String {
    if !shares_group_pass(scheme, physical_regs, exp) {
        return scheme_label(scheme);
    }
    match scheme {
        RenameScheme::VirtualPhysicalIssue { .. } => "vp-issue-shared".into(),
        RenameScheme::VirtualPhysicalWriteback { .. } => "vp-wb-shared".into(),
        other => scheme_label(other),
    }
}

/// Parses a manifest scheme label, including the shared family labels
/// [`group_scheme_label`] produces: `vp-issue-shared` / `vp-wb-shared`
/// resolve to the family's canonical (maximum-NRR) scheme for
/// `physical_regs`, everything else through
/// [`crate::workloads::parse_scheme`].
///
/// # Errors
///
/// Describes the accepted forms when `label` matches none of them.
pub fn parse_checkpoint_scheme(
    label: &str,
    physical_regs: usize,
    exp: &ExperimentConfig,
) -> Result<RenameScheme, String> {
    let canonical = |family: fn(usize) -> RenameScheme| {
        let probe = sim_config(family(1), physical_regs, exp);
        family(probe.max_nrr())
    };
    match label {
        "vp-issue-shared" => Ok(canonical(|nrr| RenameScheme::VirtualPhysicalIssue { nrr })),
        "vp-wb-shared" => Ok(canonical(|nrr| RenameScheme::VirtualPhysicalWriteback {
            nrr,
        })),
        other => crate::workloads::parse_scheme(other),
    }
}

/// True when two schemes belong to the same sharing family (equal up to
/// the NRR parameter).
pub fn same_family(a: RenameScheme, b: RenameScheme) -> bool {
    matches!(
        (a, b),
        (RenameScheme::Conventional, RenameScheme::Conventional)
            | (
                RenameScheme::ConventionalEarlyRelease,
                RenameScheme::ConventionalEarlyRelease
            )
            | (
                RenameScheme::VirtualPhysicalIssue { .. },
                RenameScheme::VirtualPhysicalIssue { .. }
            )
            | (
                RenameScheme::VirtualPhysicalWriteback { .. },
                RenameScheme::VirtualPhysicalWriteback { .. }
            )
    )
}

/// Builds the simulator configuration for one sweep point (the same
/// construction every experiment path uses).
pub fn sim_config(scheme: RenameScheme, physical_regs: usize, exp: &ExperimentConfig) -> SimConfig {
    SimConfig::builder()
        .scheme(scheme)
        .physical_regs(physical_regs)
        .miss_penalty(exp.miss_penalty)
        .build()
}

/// FNV-1a hash of everything a checkpoint's validity depends on besides
/// its position: the full serialised simulator configuration (scheme,
/// register files, cache geometry, latencies, …), the workload identity,
/// and the trace seed. Any change to any of those produces a different
/// hash, and the manifest's staleness gate refuses the artefact.
pub fn config_hash(workload: impl Into<Workload>, config: &SimConfig, seed: u64) -> u64 {
    let mut enc = vpr_snap::Encoder::new();
    config.save(&mut enc);
    enc.put_u64(seed);
    let mut bytes = enc.into_bytes();
    bytes.extend_from_slice(workload.into().name().as_bytes());
    vpr_snap::fnv1a(&bytes)
}

/// The manifest key of one checkpoint.
pub fn checkpoint_key(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    kind: &str,
    target: u64,
) -> CheckpointKey {
    checkpoint_key_labelled(
        workload,
        scheme_label(scheme),
        physical_regs,
        exp,
        kind,
        target,
    )
}

/// [`checkpoint_key`] with an explicit scheme label (the group keys use
/// family labels that do not name a single scheme).
pub fn checkpoint_key_labelled(
    workload: impl Into<Workload>,
    scheme: String,
    physical_regs: usize,
    exp: &ExperimentConfig,
    kind: &str,
    target: u64,
) -> CheckpointKey {
    CheckpointKey {
        benchmark: workload.into().name(),
        scheme,
        physical_regs: physical_regs as u64,
        seed: exp.seed,
        miss_penalty: exp.miss_penalty,
        warmup: exp.warmup,
        kind: kind.to_string(),
        target,
    }
}

/// File name a checkpoint is stored under (unique per key). Workload
/// names can contain `:` (`asm:matmul`), which is not portable in file
/// names — it becomes `-` on disk; the manifest key keeps the real name.
pub fn checkpoint_file_name(key: &CheckpointKey) -> String {
    format!(
        "{}_{}_{}r_s{}_mp{}_w{}_{}{}.vprsnap",
        key.benchmark.replace(':', "-"),
        key.scheme,
        key.physical_regs,
        key.seed,
        key.miss_penalty,
        key.warmup,
        key.kind,
        key.target
    )
}

/// One checkpoint produced by [`generate_checkpoints`]: its manifest key,
/// position metadata, and the snapshot itself (not yet on disk).
#[derive(Debug, Clone)]
pub struct GeneratedCheckpoint {
    /// The manifest key.
    pub key: CheckpointKey,
    /// Achieved committed-instruction position.
    pub committed: u64,
    /// Machine cycle at the snapshot.
    pub cycle: u64,
    /// Trace-generator cursor (instructions emitted).
    pub trace_cursor: u64,
    /// Hash of the configuration the pass ran under.
    pub config_hash: u64,
    /// The snapshot.
    pub snapshot: Snapshot,
}

impl GeneratedCheckpoint {
    /// The manifest row describing this checkpoint once written to `file`.
    pub fn manifest_entry(&self, file: String) -> ManifestEntry {
        ManifestEntry {
            key: self.key.clone(),
            file,
            committed: self.committed,
            cycle: self.cycle,
            trace_cursor: self.trace_cursor,
            config_hash: self.config_hash,
            payload_checksum: self.snapshot.checksum(),
            format_version: vpr_snap::FORMAT_VERSION,
        }
    }
}

/// Runs **one warm serial pass** for `(workload, scheme)` and checkpoints
/// it at every requested position: always at the end of warm-up
/// (`exp.warmup`, kind [`KIND_WARM`]) and — when a sampling plan is given —
/// at each of the plan's interval starts (kind [`KIND_INTERVAL`]).
///
/// The pass is the plain uninterrupted simulation, paused via
/// [`Processor::checkpoint_at_commits`]; restored continuations are
/// therefore bit-identical to never having paused (the contract
/// `tests/snapshot_roundtrip.rs` pins).
pub fn generate_checkpoints(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    plan: Option<&SamplingPlan>,
) -> Vec<GeneratedCheckpoint> {
    let config = sim_config(scheme, physical_regs, exp);
    generate_checkpoints_for(
        workload.into(),
        config,
        scheme_label(scheme),
        physical_regs,
        exp,
        plan,
    )
}

/// Runs the **group** (canonical-configuration) warm serial pass for
/// `scheme`'s sharing family and checkpoints it under the family's
/// manifest label — the artefacts every NRR value of the family restores
/// (re-targeted via `Processor::retarget_nrr`). Identical to
/// [`generate_checkpoints`] for schemes with nothing to share.
pub fn generate_group_checkpoints(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    plan: Option<&SamplingPlan>,
) -> Vec<GeneratedCheckpoint> {
    let config = group_config(scheme, physical_regs, exp);
    generate_checkpoints_for(
        workload.into(),
        config,
        group_scheme_label(scheme, physical_regs, exp),
        physical_regs,
        exp,
        plan,
    )
}

fn generate_checkpoints_for(
    workload: Workload,
    config: SimConfig,
    label: String,
    physical_regs: usize,
    exp: &ExperimentConfig,
    plan: Option<&SamplingPlan>,
) -> Vec<GeneratedCheckpoint> {
    let hash = config_hash(workload, &config, exp.seed);
    // Sorted unique targets, each mapping to the kinds checkpointed there.
    let mut targets: Vec<(u64, Vec<&str>)> = vec![(exp.warmup, vec![KIND_WARM])];
    if let Some(plan) = plan {
        for start in plan.starts() {
            match targets.iter_mut().find(|(t, _)| *t == start) {
                Some((_, kinds)) => kinds.push(KIND_INTERVAL),
                None => targets.push((start, vec![KIND_INTERVAL])),
            }
        }
    }
    targets.sort_by_key(|(t, _)| *t);
    let positions: Vec<u64> = targets.iter().map(|(t, _)| *t).collect();

    let mut cpu = Processor::new(config, workload.stream(exp.seed));
    let mut out = Vec::new();
    let mut at = 0usize;
    cpu.checkpoint_at_commits(&positions, |cpu, target| {
        let snapshot = cpu.snapshot();
        for kind in &targets[at].1 {
            out.push(GeneratedCheckpoint {
                key: checkpoint_key_labelled(
                    workload,
                    label.clone(),
                    physical_regs,
                    exp,
                    kind,
                    target,
                ),
                committed: cpu.absolute_committed(),
                cycle: cpu.cycle(),
                trace_cursor: cpu.trace().emitted(),
                config_hash: hash,
                snapshot: snapshot.clone(),
            });
        }
        at += 1;
    });
    out
}

/// A checkpoint directory opened for reading: the manifest plus the path
/// the `.vprsnap` files resolve against.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    /// Directory the artefacts live in.
    pub dir: PathBuf,
    /// Its parsed manifest.
    pub manifest: Manifest,
}

/// Moves a torn/corrupt artefact out of the way by renaming it to
/// `<name>.corrupt` next to itself, so a regenerated replacement can take
/// its place and the evidence survives for post-mortem. Returns the
/// quarantine path, or `None` when the rename itself failed (read-only
/// directory, file already gone) — quarantine is best-effort and never
/// blocks recovery.
pub fn quarantine_artefact(path: &Path) -> Option<PathBuf> {
    let mut name = path.file_name()?.to_os_string();
    name.push(".corrupt");
    let dest = path.with_file_name(name);
    std::fs::rename(path, &dest).ok()?;
    Some(dest)
}

/// Why a checkpoint could not be loaded from a store.
#[derive(Debug)]
pub enum CheckpointLoadError {
    /// The manifest has no (valid) entry for the key.
    Manifest(ManifestError),
    /// The `.vprsnap` file could not be read (the error names the path).
    Io(std::io::Error),
    /// The `.vprsnap` file is torn, truncated, or corrupt — it failed
    /// envelope validation or disagrees with its manifest row — and has
    /// been quarantined (renamed to `*.corrupt`) so a regenerated artefact
    /// can take its place.
    Corrupt {
        /// The artefact that failed validation.
        path: PathBuf,
        /// Where it was moved, when the quarantine rename succeeded.
        quarantined_to: Option<PathBuf>,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointLoadError::Manifest(e) => write!(f, "{e}"),
            CheckpointLoadError::Io(e) => write!(f, "{e}"),
            CheckpointLoadError::Corrupt {
                path,
                quarantined_to,
                detail,
            } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())?;
                match quarantined_to {
                    Some(q) => write!(f, " (quarantined to {})", q.display()),
                    None => write!(f, " (quarantine failed; file left in place)"),
                }
            }
        }
    }
}

impl std::error::Error for CheckpointLoadError {}

impl CheckpointStore {
    /// Opens a checkpoint directory (an absent manifest reads as empty).
    ///
    /// # Errors
    ///
    /// I/O failures and malformed manifests.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        Ok(Self {
            dir: dir.to_path_buf(),
            manifest: Manifest::load(dir)?,
        })
    }

    /// Opens a checkpoint directory for a sweep that must survive a
    /// damaged store: a torn/corrupt `checkpoints.json` is quarantined
    /// (renamed to `checkpoints.json.corrupt`) and the store opens empty —
    /// every load then misses, callers regenerate from warm passes, and
    /// the degradation is reported through the returned note instead of
    /// aborting the sweep. Other I/O failures (permissions, not a
    /// directory) likewise degrade to an empty store with a note.
    pub fn open_resilient(dir: &Path) -> (Self, Option<String>) {
        match Self::open(dir) {
            Ok(store) => (store, None),
            Err(e) => {
                let note = if e.kind() == std::io::ErrorKind::InvalidData {
                    let manifest_path = dir.join(vpr_snap::manifest::MANIFEST_FILE);
                    match quarantine_artefact(&manifest_path) {
                        Some(q) => format!(
                            "corrupt manifest quarantined to {}; regenerating checkpoints: {e}",
                            q.display()
                        ),
                        None => format!(
                            "corrupt manifest (quarantine failed); regenerating checkpoints: {e}"
                        ),
                    }
                } else {
                    format!("checkpoint dir unusable; regenerating checkpoints: {e}")
                };
                (
                    Self {
                        dir: dir.to_path_buf(),
                        manifest: Manifest::default(),
                    },
                    Some(note),
                )
            }
        }
    }

    /// Writes generated checkpoints into the directory and records them in
    /// the in-memory manifest. Call [`CheckpointStore::flush`] afterwards
    /// to persist the manifest itself.
    ///
    /// # Errors
    ///
    /// Propagates file-write failures.
    pub fn save_all(&mut self, generated: &[GeneratedCheckpoint]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        for g in generated {
            let file = checkpoint_file_name(&g.key);
            g.snapshot.write_to(&self.dir.join(&file))?;
            self.manifest.upsert(g.manifest_entry(file));
        }
        Ok(())
    }

    /// Persists the manifest (`checkpoints.json`).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn flush(&self) -> std::io::Result<()> {
        self.manifest.store(&self.dir)
    }

    /// Loads and validates the checkpoint under `key` for a run whose
    /// configuration hashes to `expected_hash`: the manifest entry must
    /// exist, match the hash and snapshot format version, and the file's
    /// payload checksum must equal the manifest's record.
    ///
    /// # Errors
    ///
    /// [`CheckpointLoadError::Manifest`] for missing/stale entries,
    /// [`CheckpointLoadError::Io`] for unreadable files, and
    /// [`CheckpointLoadError::Corrupt`] for torn/corrupt artefacts —
    /// which are **quarantined** (renamed to `*.corrupt`) as a side
    /// effect, so the caller's regenerated replacement can be written
    /// under the original name.
    pub fn load(
        &self,
        key: &CheckpointKey,
        expected_hash: u64,
    ) -> Result<(ManifestEntry, Snapshot), CheckpointLoadError> {
        let entry = self.manifest.find(key).ok_or_else(|| {
            CheckpointLoadError::Manifest(ManifestError::NotFound(format!(
                "{}/{} {}@{}",
                key.benchmark, key.scheme, key.kind, key.target
            )))
        })?;
        let path = self.dir.join(&entry.file);
        let snapshot = Snapshot::read_from(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                // Torn or corrupt envelope: move it out of the way so the
                // caller's warm-pass regeneration replaces it cleanly.
                // The read error already names the path; Corrupt's
                // Display re-adds it, so strip the duplicate prefix.
                let msg = e.to_string();
                let prefix = format!("{}: ", path.display());
                let detail = msg.strip_prefix(&prefix).map(str::to_string).unwrap_or(msg);
                CheckpointLoadError::Corrupt {
                    quarantined_to: quarantine_artefact(&path),
                    path: path.clone(),
                    detail,
                }
            } else {
                CheckpointLoadError::Io(e)
            }
        })?;
        match Manifest::validate(entry, expected_hash, snapshot.checksum()) {
            Ok(()) => Ok((entry.clone(), snapshot)),
            // The envelope is internally consistent but does not hold the
            // payload the manifest row promised — same quarantine-and-
            // regenerate treatment as a torn file.
            Err(e @ ManifestError::ChecksumMismatch { .. }) => Err(CheckpointLoadError::Corrupt {
                quarantined_to: quarantine_artefact(&path),
                path,
                detail: e.to_string(),
            }),
            // Stale (config/format) entries are *valid* artefacts for a
            // different experiment: refuse them but leave them on disk.
            Err(e) => Err(CheckpointLoadError::Manifest(e)),
        }
    }

    /// Loads the full set of interval checkpoints for a sampling plan, in
    /// interval order. `None` (with a reason) when any is missing or
    /// stale — callers then fall back to generating the serial pass.
    pub fn load_interval_set(
        &self,
        workload: impl Into<Workload>,
        scheme: RenameScheme,
        physical_regs: usize,
        exp: &ExperimentConfig,
        plan: &SamplingPlan,
    ) -> Result<Vec<(u64, Snapshot)>, CheckpointLoadError> {
        let config = sim_config(scheme, physical_regs, exp);
        self.load_interval_set_for(
            workload.into(),
            &config,
            scheme_label(scheme),
            physical_regs,
            exp,
            plan,
        )
    }

    /// Loads the full set of **group** (shared, canonical-configuration)
    /// interval checkpoints for `scheme`'s sharing family — what a
    /// sampled NRR sweep restores and re-targets. Falls back exactly like
    /// [`CheckpointStore::load_interval_set`].
    ///
    /// # Errors
    ///
    /// See [`CheckpointStore::load_interval_set`].
    pub fn load_group_interval_set(
        &self,
        workload: impl Into<Workload>,
        scheme: RenameScheme,
        physical_regs: usize,
        exp: &ExperimentConfig,
        plan: &SamplingPlan,
    ) -> Result<Vec<(u64, Snapshot)>, CheckpointLoadError> {
        let config = group_config(scheme, physical_regs, exp);
        self.load_interval_set_for(
            workload.into(),
            &config,
            group_scheme_label(scheme, physical_regs, exp),
            physical_regs,
            exp,
            plan,
        )
    }

    fn load_interval_set_for(
        &self,
        workload: Workload,
        config: &SimConfig,
        label: String,
        physical_regs: usize,
        exp: &ExperimentConfig,
        plan: &SamplingPlan,
    ) -> Result<Vec<(u64, Snapshot)>, CheckpointLoadError> {
        let hash = config_hash(workload, config, exp.seed);
        let mut out = Vec::with_capacity(plan.intervals);
        for start in plan.starts() {
            let key = checkpoint_key_labelled(
                workload,
                label.clone(),
                physical_regs,
                exp,
                KIND_INTERVAL,
                start,
            );
            let (_, snapshot) = self.load(&key, hash)?;
            out.push((start, snapshot));
        }
        Ok(out)
    }
}

// ----------------------------------------------------------------------
// Checkpoint reuse ledger
// ----------------------------------------------------------------------

/// Per-directory reuse ledger file: one `<count>\t<file>` line per
/// artefact that has ever been restored from this store. Best-effort
/// telemetry — sweeps update it after the measurement so `checkpoint
/// inspect` can show which artefacts actually earn their keep, but a
/// missing or unwritable ledger never affects results.
pub const USAGE_FILE: &str = "usage.tsv";

/// Reads the reuse ledger of `dir`: `(file name, restore count)` pairs.
/// Malformed lines and a missing ledger read as empty — the ledger is
/// advisory.
pub fn load_usage(dir: &Path) -> Vec<(String, u64)> {
    let Ok(text) = std::fs::read_to_string(dir.join(USAGE_FILE)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        if let Some((count, file)) = line.split_once('\t') {
            if let (Ok(n), false) = (count.trim().parse::<u64>(), file.is_empty()) {
                out.push((file.to_string(), n));
            }
        }
    }
    out
}

/// Folds one sweep's restored-artefact file names into the ledger
/// (read-merge-rewrite through [`vpr_snap::atomic_write`], so a crash
/// mid-update leaves the previous ledger intact). Duplicate names in
/// `used_files` count once each.
///
/// # Errors
///
/// Propagates I/O failures; callers treat them as ignorable.
pub fn record_usage(dir: &Path, used_files: &[String]) -> std::io::Result<()> {
    if used_files.is_empty() {
        return Ok(());
    }
    let mut counts = load_usage(dir);
    for f in used_files {
        match counts.iter_mut().find(|(name, _)| name == f) {
            Some((_, n)) => *n += 1,
            None => counts.push((f.clone(), 1)),
        }
    }
    counts.sort_by(|a, b| a.0.cmp(&b.0));
    let mut text = String::new();
    for (file, n) in &counts {
        text.push_str(&format!("{n}\t{file}\n"));
    }
    std::fs::create_dir_all(dir)?;
    vpr_snap::atomic_write(&dir.join(USAGE_FILE), text.as_bytes())
}

/// How one sweep point's warm-up was satisfied — the raw material for the
/// run-telemetry checkpoint hit/miss counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointOutcome {
    /// A valid warm checkpoint was restored; carries the artefact's file
    /// name for the reuse ledger ([`record_usage`]).
    Hit(String),
    /// A store was available but held no usable artefact for this point;
    /// the warm-up was simulated.
    Miss,
    /// No checkpoint store was configured.
    NoStore,
}

/// Runs one exact measurement for a sweep point, restoring the warm
/// checkpoint from `store` when a valid one exists (skipping the warm-up
/// simulation) and simulating the warm-up otherwise. Restored
/// continuations are bit-identical to uninterrupted runs, so the result
/// does not depend on which path was taken.
pub fn run_benchmark_checkpointed(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    store: Option<&CheckpointStore>,
) -> SimStats {
    let workload = workload.into();
    let (stats, note) =
        run_benchmark_checkpointed_noted(workload, scheme, physical_regs, exp, store);
    if let Some(note) = note {
        eprintln!(
            "note: simulating warm-up for {}/{}: {note}",
            workload.name(),
            scheme_label(scheme)
        );
    }
    stats
}

/// [`run_benchmark_checkpointed`], but degradation is **reported, not
/// printed**: when the checkpoint path had to be abandoned for a reason
/// worth surfacing (stale entry, corrupt-and-quarantined artefact, a
/// snapshot that refused to restore), the note says why, and the stats
/// come from the bit-identical exact fallback. An absent checkpoint is
/// normal (the directory is merely unpopulated for this point) and
/// produces no note.
pub fn run_benchmark_checkpointed_noted(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    store: Option<&CheckpointStore>,
) -> (SimStats, Option<String>) {
    let (stats, note, vpr_core::NoObs, _) = run_benchmark_checkpointed_obs(
        workload,
        scheme,
        physical_regs,
        exp,
        store,
        vpr_core::NoObs,
    );
    (stats, note)
}

/// [`run_benchmark_checkpointed_noted`] with a lifecycle observer and an
/// explicit [`CheckpointOutcome`] — the sweep engine's workhorse. The
/// observer is reset at the measurement-window boundary on *both* paths
/// (restored and simulated warm-up), so its metrics cover exactly the
/// measured window either way, and `SimStats`/metrics stay independent of
/// whether the checkpoint was hit. `O = NoObs` monomorphises the
/// instrumentation away entirely.
///
/// The observer must be `Clone` because a restore that fails after
/// validation consumes its argument; the pre-measurement observer is
/// cheap (typically freshly constructed) so the clone is free in
/// practice.
pub fn run_benchmark_checkpointed_obs<O: vpr_core::PipeObserver + Clone>(
    workload: impl Into<Workload>,
    scheme: RenameScheme,
    physical_regs: usize,
    exp: &ExperimentConfig,
    store: Option<&CheckpointStore>,
    obs: O,
) -> (SimStats, Option<String>, O, CheckpointOutcome) {
    let workload = workload.into();
    let mut note = None;
    let mut outcome = CheckpointOutcome::NoStore;
    if let Some(store) = store {
        outcome = CheckpointOutcome::Miss;
        let config = sim_config(scheme, physical_regs, exp);
        let hash = config_hash(workload, &config, exp.seed);
        let key = checkpoint_key(workload, scheme, physical_regs, exp, KIND_WARM, exp.warmup);
        match store.load(&key, hash) {
            Ok((entry, snapshot)) => {
                let fresh = workload.stream(exp.seed);
                match Processor::<WorkloadStream, O>::restore_with(&snapshot, fresh, obs.clone()) {
                    Ok(mut cpu) => {
                        cpu.reset_window();
                        cpu.observer_mut().reset();
                        let stats = cpu.run(exp.measure);
                        return (
                            stats,
                            None,
                            cpu.into_observer(),
                            CheckpointOutcome::Hit(entry.file),
                        );
                    }
                    // A snapshot that validates but refuses to restore
                    // (shape mismatch) is as good as stale: fall back.
                    Err(e) => note = Some(format!("restore failed: {e}")),
                }
            }
            Err(CheckpointLoadError::Manifest(ManifestError::NotFound(_))) => {}
            Err(e) => note = Some(e.to_string()),
        }
    }
    let (stats, obs) = crate::run_benchmark_observed(workload, scheme, physical_regs, exp, obs);
    (stats, note, obs, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_trace::{Benchmark, TraceBuilder, TraceGen};

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            warmup: 500,
            measure: 3_000,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn config_hash_tracks_configuration_and_workload() {
        let exp = quick();
        let base = sim_config(RenameScheme::Conventional, 64, &exp);
        let h = config_hash(Benchmark::Swim, &base, exp.seed);
        assert_eq!(h, config_hash(Benchmark::Swim, &base, exp.seed));
        assert_ne!(h, config_hash(Benchmark::Go, &base, exp.seed));
        assert_ne!(h, config_hash(Benchmark::Swim, &base, exp.seed + 1));
        let other = sim_config(RenameScheme::VirtualPhysicalWriteback { nrr: 32 }, 64, &exp);
        assert_ne!(h, config_hash(Benchmark::Swim, &other, exp.seed));
        let mp = sim_config(
            RenameScheme::Conventional,
            64,
            &ExperimentConfig {
                miss_penalty: 20,
                ..exp
            },
        );
        assert_ne!(h, config_hash(Benchmark::Swim, &mp, exp.seed));
    }

    #[test]
    fn warm_checkpoint_restores_to_the_uninterrupted_run() {
        let exp = quick();
        let generated =
            generate_checkpoints(Benchmark::Swim, RenameScheme::Conventional, 64, &exp, None);
        assert_eq!(generated.len(), 1);
        assert_eq!(generated[0].key.kind, KIND_WARM);
        assert!(generated[0].committed >= exp.warmup);

        let fresh = TraceBuilder::new(Benchmark::Swim).seed(exp.seed).build();
        let mut restored: Processor<TraceGen> =
            Processor::restore(&generated[0].snapshot, fresh).unwrap();
        restored.reset_window();
        let from_checkpoint = restored.run(exp.measure);
        let reference = crate::run_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, &exp);
        assert_eq!(from_checkpoint, reference);
    }

    #[test]
    fn store_round_trips_and_rejects_stale_configs() {
        let exp = quick();
        let dir = std::env::temp_dir().join("vpr-bench-ckpt-store-test");
        let _ = std::fs::remove_dir_all(&dir);
        let generated =
            generate_checkpoints(Benchmark::Go, RenameScheme::Conventional, 64, &exp, None);
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save_all(&generated).unwrap();
        store.flush().unwrap();

        let reopened = CheckpointStore::open(&dir).unwrap();
        let config = sim_config(RenameScheme::Conventional, 64, &exp);
        let hash = config_hash(Benchmark::Go, &config, exp.seed);
        let key = checkpoint_key(
            Benchmark::Go,
            RenameScheme::Conventional,
            64,
            &exp,
            KIND_WARM,
            exp.warmup,
        );
        let (entry, snapshot) = reopened.load(&key, hash).unwrap();
        assert_eq!(snapshot, generated[0].snapshot);
        assert_eq!(entry.committed, generated[0].committed);

        // A different configuration must be refused as stale.
        let stale = reopened.load(&key, hash ^ 1);
        assert!(matches!(
            stale,
            Err(CheckpointLoadError::Manifest(
                ManifestError::StaleConfig { .. }
            ))
        ));

        // A missing key is NotFound, not a panic.
        let mut other = key.clone();
        other.target += 1;
        assert!(matches!(
            reopened.load(&other, hash),
            Err(CheckpointLoadError::Manifest(ManifestError::NotFound(_)))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artefact_is_quarantined_and_run_degrades_to_exact() {
        let exp = quick();
        let dir = std::env::temp_dir().join("vpr-bench-ckpt-quarantine-test");
        let _ = std::fs::remove_dir_all(&dir);
        let generated =
            generate_checkpoints(Benchmark::Swim, RenameScheme::Conventional, 64, &exp, None);
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save_all(&generated).unwrap();
        store.flush().unwrap();

        // Flip one payload byte on disk.
        let file = dir.join(checkpoint_file_name(&generated[0].key));
        let mut bytes = std::fs::read(&file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&file, &bytes).unwrap();

        let reopened = CheckpointStore::open(&dir).unwrap();
        let config = sim_config(RenameScheme::Conventional, 64, &exp);
        let hash = config_hash(Benchmark::Swim, &config, exp.seed);
        let err = reopened.load(&generated[0].key, hash).unwrap_err();
        let CheckpointLoadError::Corrupt {
            path,
            quarantined_to,
            ..
        } = err
        else {
            panic!("expected Corrupt, got {err:?}");
        };
        assert_eq!(path, file);
        let quarantined = quarantined_to.expect("rename succeeded");
        assert!(quarantined.to_string_lossy().ends_with(".corrupt"));
        assert!(quarantined.exists());
        assert!(!file.exists(), "corrupt file moved aside");

        // Re-plant the corrupt artefact: the sweep path must quarantine
        // it itself, degrade to the exact run with a note, and stay
        // bit-identical to never having had a checkpoint directory.
        std::fs::write(&file, &bytes).unwrap();
        let (stats, note) = run_benchmark_checkpointed_noted(
            Benchmark::Swim,
            RenameScheme::Conventional,
            64,
            &exp,
            Some(&reopened),
        );
        assert!(note.expect("degradation surfaced").contains("corrupt"));
        let reference = crate::run_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, &exp);
        assert_eq!(stats, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_opens_resilient_as_empty_with_note() {
        let dir = std::env::temp_dir().join("vpr-bench-ckpt-resilient-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest_path = dir.join(vpr_snap::manifest::MANIFEST_FILE);
        std::fs::write(&manifest_path, b"{ this is not json").unwrap();

        assert!(CheckpointStore::open(&dir).is_err(), "strict open refuses");
        let (store, note) = CheckpointStore::open_resilient(&dir);
        assert!(store.manifest.entries.is_empty());
        assert!(note.expect("note recorded").contains("quarantined"));
        assert!(!manifest_path.exists(), "corrupt manifest moved aside");
        assert!(dir
            .join(format!("{}.corrupt", vpr_snap::manifest::MANIFEST_FILE))
            .exists());

        // A healthy (absent-manifest) directory opens with no note.
        let (_, no_note) = CheckpointStore::open_resilient(&dir);
        assert!(no_note.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_exact_run_falls_back_without_artifacts() {
        let exp = quick();
        let dir = std::env::temp_dir().join("vpr-bench-ckpt-fallback-test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        let with = run_benchmark_checkpointed(
            Benchmark::Swim,
            RenameScheme::Conventional,
            64,
            &exp,
            Some(&store),
        );
        let without = crate::run_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, &exp);
        assert_eq!(with, without);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
