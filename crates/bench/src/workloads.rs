//! Shared workload tables, the [`Workload`] abstraction, and
//! scheme-label plumbing.
//!
//! Several binaries sweep the same standard grids — the throughput
//! harness, the `sample` accuracy report, and the `checkpoint`
//! artefact manager all iterate (benchmark × scheme) tables that used to
//! be set up independently in each `main`. This module is the single
//! source of those tables, plus the label ↔ [`RenameScheme`] mapping the
//! JSON artefacts and the checkpoint manifest key entries use.
//!
//! Since the `vpr-exec` crate landed, a sweep point's instruction source
//! is no longer always a synthetic [`Benchmark`] model: it can also be a
//! real assembled program run through the functional emulator
//! ([`vpr_exec::AsmProgram`]). [`Workload`] is the closed union of both,
//! and [`WorkloadStream`] the matching committed-path stream — every
//! harness entry point (sweeps, checkpoints, sampling) runs over these,
//! so the rename schemes, checkpointing and sampled simulation work
//! unchanged on either source.

use vpr_core::RenameScheme;
use vpr_exec::{AsmProgram, ExecStream};
use vpr_snap::{Decoder, Encoder, Resumable};
use vpr_trace::{Benchmark, TraceBuilder, TraceGen};

/// An instruction source a sweep point can run: a synthetic benchmark
/// model (the paper's SPEC95 stand-ins) or a real assembled program
/// executed by the `vpr-exec` functional emulator.
///
/// Names are stable identifiers used in labels, JSON artefacts and
/// checkpoint keys: the benchmark's paper name (`"swim"`) or
/// `"asm:<program>"` (`"asm:matmul"`). [`Workload::parse`] inverts
/// [`Workload::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// A synthetic benchmark model from `vpr-trace`.
    Synthetic(Benchmark),
    /// An assembled program emulated by `vpr-exec`.
    Asm(AsmProgram),
}

impl From<Benchmark> for Workload {
    fn from(b: Benchmark) -> Self {
        Workload::Synthetic(b)
    }
}

impl From<AsmProgram> for Workload {
    fn from(p: AsmProgram) -> Self {
        Workload::Asm(p)
    }
}

impl Workload {
    /// Every built-in workload: the nine synthetic benchmarks followed by
    /// the bundled assembly programs.
    pub fn all() -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .map(|&b| Workload::Synthetic(b))
            .chain(AsmProgram::ALL.iter().map(|&p| Workload::Asm(p)))
            .collect()
    }

    /// The default experiment grid: the paper's nine synthetic
    /// benchmarks.
    pub fn synthetic() -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .map(|&b| Workload::Synthetic(b))
            .collect()
    }

    /// The bundled assembly programs, in `AsmProgram::ALL` order.
    pub fn asm() -> Vec<Workload> {
        AsmProgram::ALL.iter().map(|&p| Workload::Asm(p)).collect()
    }

    /// Stable identifier: the benchmark's paper name, or `asm:<program>`.
    pub fn name(&self) -> String {
        match self {
            Workload::Synthetic(b) => b.name().to_string(),
            Workload::Asm(p) => format!("asm:{}", p.name()),
        }
    }

    /// Parses a [`Workload::name`] identifier.
    ///
    /// # Errors
    ///
    /// Lists the accepted forms when `name` matches none of them.
    pub fn parse(name: &str) -> Result<Workload, String> {
        if let Some(asm) = name.strip_prefix("asm:") {
            return AsmProgram::parse(asm).map(Workload::Asm).ok_or_else(|| {
                let known = AsmProgram::ALL
                    .iter()
                    .map(|p| format!("asm:{}", p.name()))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("unknown asm workload `{name}` (expected one of {known})")
            });
        }
        name.parse::<Benchmark>()
            .map(Workload::Synthetic)
            .map_err(|_| {
                format!(
                    "unknown workload `{name}` (expected a benchmark name like `swim` \
                     or an assembled program like `asm:matmul`)"
                )
            })
    }

    /// Opens the committed-path instruction stream for this workload.
    ///
    /// Synthetic benchmarks are seeded generators; assembled programs run
    /// in [`vpr_exec::Mode::Repeat`] (the wrap-around jump keeps the
    /// stream infinite, matching the generators' contract) and ignore the
    /// seed — a real program's instruction stream is what it is.
    pub fn stream(&self, seed: u64) -> WorkloadStream {
        match self {
            Workload::Synthetic(b) => {
                WorkloadStream::Synthetic(TraceBuilder::new(*b).seed(seed).build())
            }
            Workload::Asm(p) => WorkloadStream::Asm(p.stream(vpr_exec::Mode::Repeat)),
        }
    }

    /// The paper's Table 2 conventional IPC, for synthetic benchmarks
    /// only — assembled programs have no paper reference column.
    pub fn paper_conventional_ipc(&self) -> Option<f64> {
        match self {
            Workload::Synthetic(b) => Some(b.paper_conventional_ipc()),
            Workload::Asm(_) => None,
        }
    }

    /// The paper's Table 2 VP write-back IPC, when this workload has one.
    pub fn paper_vp_writeback_ipc(&self) -> Option<f64> {
        match self {
            Workload::Synthetic(b) => Some(b.paper_vp_writeback_ipc()),
            Workload::Asm(_) => None,
        }
    }

    /// The paper's Table 2 improvement percentage, when available.
    pub fn paper_improvement_percent(&self) -> Option<f64> {
        match self {
            Workload::Synthetic(b) => Some(b.paper_improvement_percent()),
            Workload::Asm(_) => None,
        }
    }
}

/// The committed-path stream of a [`Workload`]: either a synthetic
/// generator or an emulator-backed [`ExecStream`].
///
/// Implements `Iterator<Item = DynInst>` (and therefore `InstStream`) and
/// [`Resumable`], so every [`vpr_core::Processor`] facility — warm-up,
/// snapshots, checkpoint-seeded sampling — works identically on both
/// variants. The `Resumable` encoding delegates to the inner stream with
/// no added framing: the variant is part of the workload's identity (and
/// of every checkpoint key), so synthetic snapshots stay byte-compatible
/// with those written before this type existed.
// One stream exists per processor, never in bulk collections, so the
// size gap between a TraceGen and a full emulator is irrelevant; boxing
// would only add indirection on the hot `next()` path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum WorkloadStream {
    /// A seeded synthetic trace generator.
    Synthetic(TraceGen),
    /// An assembled program's emulator stream.
    Asm(ExecStream),
}

impl WorkloadStream {
    /// Instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        match self {
            WorkloadStream::Synthetic(t) => t.emitted(),
            WorkloadStream::Asm(s) => s.emitted(),
        }
    }

    /// Skips `n` instructions without yielding them (positioning for
    /// sampled simulation).
    pub fn fast_forward(&mut self, n: u64) {
        match self {
            WorkloadStream::Synthetic(t) => t.fast_forward(n),
            WorkloadStream::Asm(s) => s.fast_forward(n),
        }
    }

    /// Number of phases (generator loops) this stream distinguishes. An
    /// assembled program is treated as a single phase: the sampling
    /// estimators then stratify on the covariates alone, which is exactly
    /// the right degeneration (phase weights carry no information).
    pub fn loop_count(&self) -> usize {
        match self {
            WorkloadStream::Synthetic(t) => t.loop_count(),
            WorkloadStream::Asm(_) => 1,
        }
    }

    /// The phase the stream is currently in (always 0 for assembled
    /// programs).
    pub fn current_loop(&self) -> usize {
        match self {
            WorkloadStream::Synthetic(t) => t.current_loop(),
            WorkloadStream::Asm(_) => 0,
        }
    }
}

impl Iterator for WorkloadStream {
    type Item = vpr_isa::DynInst;

    fn next(&mut self) -> Option<vpr_isa::DynInst> {
        match self {
            WorkloadStream::Synthetic(t) => t.next(),
            WorkloadStream::Asm(s) => s.next(),
        }
    }
}

impl Resumable for WorkloadStream {
    fn save_state(&self, enc: &mut Encoder) {
        match self {
            WorkloadStream::Synthetic(t) => t.save_state(enc),
            WorkloadStream::Asm(s) => s.save_state(enc),
        }
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) {
        match self {
            WorkloadStream::Synthetic(t) => t.restore_state(dec),
            WorkloadStream::Asm(s) => s.restore_state(dec),
        }
    }
}

/// The two schemes of the paper's Table 2: the conventional baseline and
/// the headline virtual-physical write-back allocator at NRR = 32.
pub const TABLE2_SCHEMES: [RenameScheme; 2] = [
    RenameScheme::Conventional,
    RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
];

/// The renaming schemes the throughput harness sweeps: all four
/// implementations at their headline parameters.
pub const THROUGHPUT_SCHEMES: [RenameScheme; 4] = [
    RenameScheme::Conventional,
    RenameScheme::ConventionalEarlyRelease,
    RenameScheme::VirtualPhysicalIssue { nrr: 32 },
    RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
];

/// The benchmarks the throughput harness runs each scheme on (one
/// FP-heavy, one branchy integer workload).
pub const THROUGHPUT_BENCHMARKS: [Benchmark; 2] = [Benchmark::Swim, Benchmark::Go];

/// A short, stable identifier for a scheme (used in labels, JSON
/// artefacts, and checkpoint manifest keys). [`parse_scheme`] inverts it.
pub fn scheme_label(scheme: RenameScheme) -> String {
    match scheme {
        RenameScheme::Conventional => "conventional".into(),
        RenameScheme::ConventionalEarlyRelease => "conventional-early-release".into(),
        RenameScheme::VirtualPhysicalIssue { nrr } => format!("vp-issue-nrr{nrr}"),
        RenameScheme::VirtualPhysicalWriteback { nrr } => format!("vp-wb-nrr{nrr}"),
    }
}

/// Parses a label produced by [`scheme_label`].
///
/// # Errors
///
/// Describes the accepted forms when `label` matches none of them.
pub fn parse_scheme(label: &str) -> Result<RenameScheme, String> {
    let nrr_suffix = |prefix: &str| -> Option<Result<usize, String>> {
        label.strip_prefix(prefix).map(|digits| {
            digits
                .parse::<usize>()
                .map_err(|e| format!("bad NRR in scheme label `{label}`: {e}"))
        })
    };
    match label {
        "conventional" => Ok(RenameScheme::Conventional),
        "conventional-early-release" => Ok(RenameScheme::ConventionalEarlyRelease),
        _ => {
            if let Some(nrr) = nrr_suffix("vp-issue-nrr") {
                return Ok(RenameScheme::VirtualPhysicalIssue { nrr: nrr? });
            }
            if let Some(nrr) = nrr_suffix("vp-wb-nrr") {
                return Ok(RenameScheme::VirtualPhysicalWriteback { nrr: nrr? });
            }
            Err(format!(
                "unknown scheme `{label}` (expected conventional, conventional-early-release, \
                 vp-issue-nrrN or vp-wb-nrrN)"
            ))
        }
    }
}

/// The Table 2 workload grid: all nine benchmarks under both
/// [`TABLE2_SCHEMES`], in paper row order.
pub fn table2_grid() -> Vec<(Benchmark, RenameScheme)> {
    grid(&Benchmark::ALL, &TABLE2_SCHEMES)
}

/// The throughput grid: [`THROUGHPUT_BENCHMARKS`] × [`THROUGHPUT_SCHEMES`].
pub fn throughput_grid() -> Vec<(Benchmark, RenameScheme)> {
    grid(&THROUGHPUT_BENCHMARKS, &THROUGHPUT_SCHEMES)
}

/// Cross product of a workload (or benchmark) list and a scheme list,
/// workload-major.
pub fn grid<W: Copy>(workloads: &[W], schemes: &[RenameScheme]) -> Vec<(W, RenameScheme)> {
    workloads
        .iter()
        .flat_map(|&w| schemes.iter().map(move |&s| (w, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for scheme in THROUGHPUT_SCHEMES {
            assert_eq!(parse_scheme(&scheme_label(scheme)), Ok(scheme));
        }
        assert_eq!(
            parse_scheme("vp-issue-nrr8"),
            Ok(RenameScheme::VirtualPhysicalIssue { nrr: 8 })
        );
        assert!(parse_scheme("vp-wb-nrr").is_err());
        assert!(parse_scheme("vp-wb-nrrx").is_err());
        assert!(parse_scheme("something").is_err());
    }

    #[test]
    fn workload_names_round_trip_through_parse() {
        for w in Workload::all() {
            assert_eq!(Workload::parse(&w.name()), Ok(w), "{}", w.name());
        }
        assert!(Workload::parse("asm:missing").is_err());
        assert!(Workload::parse("nope").is_err());
        assert_eq!(Workload::all().len(), 9 + 5);
    }

    #[test]
    fn workload_streams_emit_and_resume() {
        for w in [
            Workload::from(Benchmark::Swim),
            Workload::from(AsmProgram::Fib),
        ] {
            let mut s = w.stream(42);
            s.fast_forward(100);
            assert_eq!(s.emitted(), 100);
            assert!(s.current_loop() < s.loop_count());
            let mut enc = Encoder::new();
            s.save_state(&mut enc);
            let bytes = enc.into_bytes();
            let mut r = w.stream(42);
            r.restore_state(&mut Decoder::new(&bytes));
            for _ in 0..50 {
                assert_eq!(r.next(), s.next(), "{} diverged after restore", w.name());
            }
        }
    }

    #[test]
    fn grids_have_the_expected_shapes() {
        assert_eq!(table2_grid().len(), 18);
        assert_eq!(throughput_grid().len(), 8);
        // Benchmark-major: the first two rows share a benchmark.
        let t2 = table2_grid();
        assert_eq!(t2[0].0, t2[1].0);
        assert_eq!(t2[0].1, RenameScheme::Conventional);
    }
}
