//! Shared workload tables and scheme-label plumbing.
//!
//! Several binaries sweep the same standard grids — the throughput
//! harness, the `sample` accuracy report, and the `checkpoint`
//! artefact manager all iterate (benchmark × scheme) tables that used to
//! be set up independently in each `main`. This module is the single
//! source of those tables, plus the label ↔ [`RenameScheme`] mapping the
//! JSON artefacts and the checkpoint manifest key entries use.

use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

/// The two schemes of the paper's Table 2: the conventional baseline and
/// the headline virtual-physical write-back allocator at NRR = 32.
pub const TABLE2_SCHEMES: [RenameScheme; 2] = [
    RenameScheme::Conventional,
    RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
];

/// The renaming schemes the throughput harness sweeps: all four
/// implementations at their headline parameters.
pub const THROUGHPUT_SCHEMES: [RenameScheme; 4] = [
    RenameScheme::Conventional,
    RenameScheme::ConventionalEarlyRelease,
    RenameScheme::VirtualPhysicalIssue { nrr: 32 },
    RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
];

/// The benchmarks the throughput harness runs each scheme on (one
/// FP-heavy, one branchy integer workload).
pub const THROUGHPUT_BENCHMARKS: [Benchmark; 2] = [Benchmark::Swim, Benchmark::Go];

/// A short, stable identifier for a scheme (used in labels, JSON
/// artefacts, and checkpoint manifest keys). [`parse_scheme`] inverts it.
pub fn scheme_label(scheme: RenameScheme) -> String {
    match scheme {
        RenameScheme::Conventional => "conventional".into(),
        RenameScheme::ConventionalEarlyRelease => "conventional-early-release".into(),
        RenameScheme::VirtualPhysicalIssue { nrr } => format!("vp-issue-nrr{nrr}"),
        RenameScheme::VirtualPhysicalWriteback { nrr } => format!("vp-wb-nrr{nrr}"),
    }
}

/// Parses a label produced by [`scheme_label`].
///
/// # Errors
///
/// Describes the accepted forms when `label` matches none of them.
pub fn parse_scheme(label: &str) -> Result<RenameScheme, String> {
    let nrr_suffix = |prefix: &str| -> Option<Result<usize, String>> {
        label.strip_prefix(prefix).map(|digits| {
            digits
                .parse::<usize>()
                .map_err(|e| format!("bad NRR in scheme label `{label}`: {e}"))
        })
    };
    match label {
        "conventional" => Ok(RenameScheme::Conventional),
        "conventional-early-release" => Ok(RenameScheme::ConventionalEarlyRelease),
        _ => {
            if let Some(nrr) = nrr_suffix("vp-issue-nrr") {
                return Ok(RenameScheme::VirtualPhysicalIssue { nrr: nrr? });
            }
            if let Some(nrr) = nrr_suffix("vp-wb-nrr") {
                return Ok(RenameScheme::VirtualPhysicalWriteback { nrr: nrr? });
            }
            Err(format!(
                "unknown scheme `{label}` (expected conventional, conventional-early-release, \
                 vp-issue-nrrN or vp-wb-nrrN)"
            ))
        }
    }
}

/// The Table 2 workload grid: all nine benchmarks under both
/// [`TABLE2_SCHEMES`], in paper row order.
pub fn table2_grid() -> Vec<(Benchmark, RenameScheme)> {
    grid(&Benchmark::ALL, &TABLE2_SCHEMES)
}

/// The throughput grid: [`THROUGHPUT_BENCHMARKS`] × [`THROUGHPUT_SCHEMES`].
pub fn throughput_grid() -> Vec<(Benchmark, RenameScheme)> {
    grid(&THROUGHPUT_BENCHMARKS, &THROUGHPUT_SCHEMES)
}

/// Cross product of a benchmark list and a scheme list, benchmark-major.
pub fn grid(benchmarks: &[Benchmark], schemes: &[RenameScheme]) -> Vec<(Benchmark, RenameScheme)> {
    benchmarks
        .iter()
        .flat_map(|&b| schemes.iter().map(move |&s| (b, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for scheme in THROUGHPUT_SCHEMES {
            assert_eq!(parse_scheme(&scheme_label(scheme)), Ok(scheme));
        }
        assert_eq!(
            parse_scheme("vp-issue-nrr8"),
            Ok(RenameScheme::VirtualPhysicalIssue { nrr: 8 })
        );
        assert!(parse_scheme("vp-wb-nrr").is_err());
        assert!(parse_scheme("vp-wb-nrrx").is_err());
        assert!(parse_scheme("something").is_err());
    }

    #[test]
    fn grids_have_the_expected_shapes() {
        assert_eq!(table2_grid().len(), 18);
        assert_eq!(throughput_grid().len(), 8);
        // Benchmark-major: the first two rows share a benchmark.
        let t2 = table2_grid();
        assert_eq!(t2[0].0, t2[1].0);
        assert_eq!(t2[0].1, RenameScheme::Conventional);
    }
}
