//! The parallel sweep engine.
//!
//! Every paper artefact is a sweep: the same simulator run over a grid of
//! `(benchmark, scheme, register-file size)` points. The points are
//! mutually independent and each simulation is deterministic, so
//! [`run_sweep`] fans them out over [`vpr_core::par`]'s work-stealing
//! pool and merges the [`SimStats`] back **in submission order** — the
//! output is byte-identical to running the same points serially, for any
//! worker count (`--jobs 1` included). The cycle-exact goldens and
//! `tests/parallel_determinism.rs` pin this down.
//!
//! The experiment functions in [`crate::experiments`] all route through
//! here; pass `--jobs N` to any figure/table binary (0 = one worker per
//! host core, the default) to control the pool.

use crate::checkpoints::{
    generate_group_checkpoints, group_scheme_label, record_usage, run_benchmark_checkpointed_obs,
    CheckpointLoadError, CheckpointOutcome, CheckpointStore, KIND_INTERVAL,
};
use crate::sampling::{sample_from_checkpoints, SamplingPlan};
use crate::workloads::scheme_label;
use crate::{run_benchmark, ExperimentConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;
use vpr_core::par;
use vpr_core::{RenameScheme, SimObserver, SimStats};
use vpr_obs::{JobOutcome, JobTelemetry, Progress, RunTelemetry, SimMetrics};
use vpr_snap::manifest::ManifestError;

use crate::workloads::Workload;

/// One point of a sweep grid: a full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// The workload (synthetic benchmark or assembled program).
    pub workload: Workload,
    /// The renaming scheme under test.
    pub scheme: RenameScheme,
    /// Physical registers per class.
    pub physical_regs: usize,
}

impl SweepPoint {
    /// Shorthand for the common 64-registers-per-class configuration.
    pub fn at64(workload: impl Into<Workload>, scheme: RenameScheme) -> Self {
        Self {
            workload: workload.into(),
            scheme,
            physical_regs: 64,
        }
    }
}

/// Runs every point of `points` under `exp` — one simulator per point,
/// `exp.effective_jobs()` at a time — and returns their measurement-window
/// statistics in `points` order.
pub fn run_sweep(points: &[SweepPoint], exp: &ExperimentConfig) -> Vec<SimStats> {
    let exp = *exp;
    par::par_map(exp.effective_jobs(), points.to_vec(), move |_, p| {
        run_benchmark(p.workload, p.scheme, p.physical_regs, &exp)
    })
}

// ----------------------------------------------------------------------
// Exact vs sampled sweeps
// ----------------------------------------------------------------------

/// How a sweep obtains each point's metrics.
#[derive(Debug, Clone, Default)]
pub enum SweepMode {
    /// Simulate every point full-length. With a checkpoint directory, warm
    /// `.vprsnap` checkpoints are restored instead of simulating warm-up —
    /// restored continuations are bit-identical, so the output does not
    /// depend on whether (or which) checkpoints were found.
    #[default]
    Exact,
    /// Estimate every point from checkpoint-seeded detailed windows
    /// ([`crate::sampling::sample_from_checkpoints`]). Interval
    /// checkpoints are loaded from the checkpoint directory when a valid
    /// set exists, and produced in-memory by one warm serial pass
    /// otherwise (then persisted to the directory, if one was given, so
    /// the next sampled run skips the pass).
    Sampled,
}

/// Where a sweep looks for (and deposits) `.vprsnap` checkpoints.
#[derive(Debug, Clone, Default)]
pub struct SweepContext {
    /// The sweep mode.
    pub mode: SweepMode,
    /// Checkpoint directory, if any.
    pub checkpoint_dir: Option<PathBuf>,
    /// Sampling plan override for sampled sweeps; `None` derives the
    /// checkpoint-seeded plan from the experiment configuration.
    pub plan: Option<SamplingPlan>,
}

impl SweepContext {
    /// An exact sweep with no checkpoint directory (the historical
    /// default).
    pub fn exact() -> Self {
        Self::default()
    }

    /// An exact or sampled sweep using `dir` for checkpoints.
    pub fn new(sampled: bool, dir: Option<&Path>) -> Self {
        Self {
            mode: if sampled {
                SweepMode::Sampled
            } else {
                SweepMode::Exact
            },
            checkpoint_dir: dir.map(Path::to_path_buf),
            plan: None,
        }
    }

    /// True in sampled mode.
    pub fn is_sampled(&self) -> bool {
        matches!(self.mode, SweepMode::Sampled)
    }

    /// The sampling plan a sampled sweep of `exp` will use (the explicit
    /// override, or the derived checkpoint-seeded plan); `None` in exact
    /// mode.
    pub fn effective_plan(&self, exp: &ExperimentConfig) -> Option<SamplingPlan> {
        self.is_sampled().then(|| {
            self.plan
                .unwrap_or_else(|| SamplingPlan::for_experiment_checkpointed(exp))
        })
    }

    /// Checks the context against an experiment before any simulation
    /// runs: a sampled sweep's plan must be consistent (binaries turn the
    /// message into a usage error instead of panicking mid-sweep).
    ///
    /// # Errors
    ///
    /// Describes the violated plan constraint.
    pub fn try_validate(&self, exp: &ExperimentConfig) -> Result<(), String> {
        match self.effective_plan(exp) {
            Some(plan) => plan
                .try_validate()
                .map_err(|e| format!("invalid sampling plan for this experiment: {e}")),
            None => Ok(()),
        }
    }
}

/// The per-point result a figure/table needs, independent of whether it
/// was measured exactly or estimated from samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMetrics {
    /// Committed IPC (exact, or the sampled estimate).
    pub ipc: f64,
    /// Cache miss ratio.
    pub miss_ratio: f64,
    /// Executions per committed instruction.
    pub executions_per_commit: f64,
}

impl PointMetrics {
    fn from_stats(stats: &SimStats) -> Self {
        Self {
            ipc: stats.ipc(),
            miss_ratio: stats.cache.miss_ratio(),
            executions_per_commit: stats.executions_per_commit(),
        }
    }

    /// The placeholder metrics of a point whose job failed permanently
    /// (every retry exhausted): all-NaN, rendered as `null` in JSON. The
    /// matching [`SweepFailure`] in the sweep's `failures` block says
    /// why.
    pub fn failed() -> Self {
        Self {
            ipc: f64::NAN,
            miss_ratio: f64::NAN,
            executions_per_commit: f64::NAN,
        }
    }

    /// True for the [`PointMetrics::failed`] placeholder.
    pub fn is_failed(&self) -> bool {
        self.ipc.is_nan()
    }
}

/// Escapes a string for embedding in a JSON string literal (the escapes
/// this workspace's hand-rolled readers understand: `\"`, `\\`, `\n`,
/// `\r`, `\t`, and `\uXXXX` for other control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float for JSON: non-finite values (a failed point's NaN
/// placeholder) become `null` — `NaN` is not valid JSON.
pub fn json_num(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// One fault a sweep survived (or degraded around): which point, at what
/// stage, whether the result was still produced. Recorded into every
/// experiment artefact's `failures` block so degradation is never
/// silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepFailure {
    /// The sweep point (or group / store) the fault hit, e.g.
    /// `"swim/vp-wb-nrr32@64r"`.
    pub point: String,
    /// Pipeline stage: `"store-open"`, `"checkpoint-load"`,
    /// `"warm-pass"`, `"simulate"`, `"sample"`, or `"persist"`.
    pub stage: &'static str,
    /// What went wrong.
    pub error: String,
    /// Attempts consumed when the fault hit a retried job (1 otherwise).
    pub attempts: u32,
    /// `true` when the sweep still produced this point's exact result
    /// (retry succeeded, or a degraded-but-bit-identical path ran);
    /// `false` when the point's metrics are the failed placeholder.
    pub recovered: bool,
}

impl SweepFailure {
    /// Renders one failure as a JSON object.
    pub fn to_json_value(&self) -> String {
        format!(
            "{{\"point\": \"{}\", \"stage\": \"{}\", \"recovered\": {}, \
             \"attempts\": {}, \"error\": \"{}\"}}",
            json_escape(&self.point),
            self.stage,
            self.recovered,
            self.attempts,
            json_escape(&self.error)
        )
    }
}

/// Renders a sweep's failures as the JSON value of a `"failures"` field
/// (an array; empty on a fault-free run).
pub fn failures_json(failures: &[SweepFailure]) -> String {
    if failures.is_empty() {
        return "[]".to_string();
    }
    let mut s = String::from("[\n");
    for (i, f) in failures.iter().enumerate() {
        let _ = write!(s, "    {}", f.to_json_value());
        s.push_str(if i + 1 < failures.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]");
    s
}

/// Provenance of a sweep's numbers, recorded into every JSON artefact so
/// sampled and exact results are never confusable.
#[derive(Debug, Clone)]
pub enum SamplingProvenance {
    /// Every point simulated full-length.
    Exact,
    /// Points estimated by checkpoint-seeded sampling.
    Sampled {
        /// The sampling plan used.
        plan: SamplingPlan,
        /// Estimator name (stable identifier).
        estimator: &'static str,
        /// Where the interval checkpoints came from: `"checkpoint-dir"`
        /// when every point loaded a valid on-disk set, `"warm-pass"` when
        /// at least one point generated its checkpoints in-memory.
        seeded_from: &'static str,
        /// The checkpoint directory involved, if any.
        checkpoint_dir: Option<String>,
    },
}

impl SamplingProvenance {
    /// Renders the provenance as the JSON value of a `"sampling"` field.
    pub fn to_json_value(&self) -> String {
        match self {
            SamplingProvenance::Exact => "{\"mode\": \"exact\"}".to_string(),
            SamplingProvenance::Sampled {
                plan,
                estimator,
                seeded_from,
                checkpoint_dir,
            } => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"mode\": \"sampled\", \"estimator\": \"{estimator}\", \
                     \"seeded_from\": \"{seeded_from}\", \"plan\": {{\"offset\": {}, \
                     \"region\": {}, \"intervals\": {}, \"detailed_warmup\": {}, \
                     \"detailed_measure\": {}, \"detailed_fraction\": {:.4}}}",
                    plan.offset,
                    plan.region,
                    plan.intervals,
                    plan.detailed_warmup,
                    plan.detailed_measure,
                    plan.detailed_fraction()
                );
                match checkpoint_dir {
                    Some(dir) => {
                        // The directory is user input; escape it.
                        let _ = write!(s, ", \"checkpoint_dir\": \"{}\"}}", json_escape(dir));
                    }
                    None => s.push('}'),
                }
                s
            }
        }
    }
}

/// The simulated-machine metrics block of a sweep's JSON artefact.
///
/// Exact sweeps aggregate every point's [`SimMetrics`] (submission-order
/// integer merge, so the block is byte-identical for any `--jobs`).
/// Sampled sweeps measure only detailed windows — their counters would be
/// biased samples of the full run — so the block records the mode and no
/// series rather than publishing misleading numbers.
#[derive(Debug, Clone)]
pub enum MetricsBlock {
    /// Aggregated measurement-window metrics of an exact sweep.
    Exact(Box<SimMetrics>),
    /// A sampled sweep: per-run metric series are deliberately withheld.
    SampledUnavailable,
}

impl MetricsBlock {
    /// Renders the block as the JSON value of a `"metrics"` field.
    pub fn to_json_value(&self) -> String {
        match self {
            MetricsBlock::Exact(m) => format!(
                "{{\"mode\": \"exact\", \"series\": {}}}",
                m.export().to_json_value()
            ),
            MetricsBlock::SampledUnavailable => "{\"mode\": \"sampled\"}".to_string(),
        }
    }

    /// Prometheus text exposition of the aggregated series; `None` for
    /// sampled sweeps (nothing sound to expose).
    pub fn to_prometheus(&self) -> Option<String> {
        match self {
            MetricsBlock::Exact(m) => Some(m.export().to_prometheus()),
            MetricsBlock::SampledUnavailable => None,
        }
    }

    /// Folds another sweep's block into this one (multi-sweep
    /// experiments). Any sampled contribution poisons the aggregate to
    /// [`MetricsBlock::SampledUnavailable`] — a partial series must never
    /// masquerade as the whole experiment's.
    pub fn merge(&mut self, other: MetricsBlock) {
        match other {
            MetricsBlock::Exact(o) => {
                if let MetricsBlock::Exact(m) = self {
                    m.merge(*o);
                }
            }
            MetricsBlock::SampledUnavailable => *self = MetricsBlock::SampledUnavailable,
        }
    }
}

/// A sweep's metrics plus the provenance its artefacts must record.
#[derive(Debug, Clone)]
pub struct SweepMetrics {
    /// Per-point metrics, in `points` order. A permanently failed point
    /// holds [`PointMetrics::failed`] (rendered `null` in JSON) and has a
    /// `recovered: false` entry in `failures`.
    pub points: Vec<PointMetrics>,
    /// How they were obtained.
    pub provenance: SamplingProvenance,
    /// Faults the sweep survived or degraded around (empty on a clean
    /// run). Recorded into every artefact's `failures` block.
    pub failures: Vec<SweepFailure>,
    /// Aggregated simulated-machine metrics (the artefact's `metrics`
    /// block).
    pub metrics: MetricsBlock,
    /// How the sweep engine spent its time (written to
    /// `run.telemetry.json`, never into the experiment JSON — wall-clock
    /// data is not reproducible).
    pub telemetry: RunTelemetry,
}

/// Retry discipline for each sweep job: one immediate retry, which is
/// exactly what a single transient fault needs and what a deterministic
/// bug cannot abuse. The long-running service layers a backoff policy on
/// top of the same [`vpr_core::par::RetryPolicy`] machinery.
const SWEEP_RETRIES: vpr_core::par::RetryPolicy = vpr_core::par::RetryPolicy::immediate(1);

/// The stable label of one sweep point in failure reports and fault-
/// injection job matching.
pub fn point_label(p: &SweepPoint) -> String {
    format!(
        "{}/{}@{}r",
        p.workload.name(),
        scheme_label(p.scheme),
        p.physical_regs
    )
}

/// Folds one job's recovered panics into the failure list.
fn record_recovered(
    failures: &mut Vec<SweepFailure>,
    label: &str,
    stage: &'static str,
    job: &[par::JobFailure],
) {
    for jf in job {
        failures.push(SweepFailure {
            point: label.to_string(),
            stage,
            error: jf.message.clone(),
            attempts: jf.attempts,
            recovered: true,
        });
    }
}

/// Runs a sweep in the requested mode and returns per-point metrics in
/// `points` order. Both modes fan the points out over the worker pool with
/// the usual submission-order merge, so metrics are byte-identical for any
/// `exp.jobs`.
///
/// The sweep is **fault-tolerant**: every job is panic-isolated with one
/// retry, a corrupt checkpoint store degrades to warm-pass regeneration
/// (bit-identical results), and a permanently failing point reports into
/// [`SweepMetrics::failures`] with [`PointMetrics::failed`] metrics
/// instead of tearing down the grid.
pub fn run_sweep_metrics(
    points: &[SweepPoint],
    exp: &ExperimentConfig,
    ctx: &SweepContext,
) -> SweepMetrics {
    let mut failures: Vec<SweepFailure> = Vec::new();
    let store = match &ctx.checkpoint_dir {
        Some(dir) => {
            let (store, note) = CheckpointStore::open_resilient(dir);
            if let Some(note) = note {
                failures.push(SweepFailure {
                    point: dir.display().to_string(),
                    stage: "store-open",
                    error: note,
                    attempts: 1,
                    recovered: true,
                });
            }
            Some(store)
        }
        None => None,
    };
    let sweep_start = Instant::now();
    let progress = Progress::new(points.len(), Progress::stderr_is_tty());
    let progress_ref = &progress;
    let mut telemetry = RunTelemetry::new(exp.effective_jobs());
    match ctx.mode {
        SweepMode::Exact => {
            let exp_copy = *exp;
            let store_ref = store.as_ref();
            let results = par::par_try_map(
                exp.effective_jobs(),
                SWEEP_RETRIES,
                points.to_vec(),
                |_, p| {
                    let queue_wait_s = sweep_start.elapsed().as_secs_f64();
                    let started = Instant::now();
                    let label = point_label(p);
                    vpr_snap::faults::maybe_panic_job(&label);
                    let (stats, note, obs, outcome) = run_benchmark_checkpointed_obs(
                        p.workload,
                        p.scheme,
                        p.physical_regs,
                        &exp_copy,
                        store_ref,
                        SimObserver::new(),
                    );
                    progress_ref.point_done();
                    (
                        PointMetrics::from_stats(&stats),
                        note,
                        Box::new(obs.metrics),
                        outcome,
                        queue_wait_s,
                        started.elapsed().as_secs_f64(),
                    )
                },
            );
            let mut out = Vec::with_capacity(points.len());
            let mut agg = SimMetrics::default();
            let mut used_files: Vec<String> = Vec::new();
            for (p, job) in points.iter().zip(results) {
                let label = point_label(p);
                record_recovered(&mut failures, &label, "simulate", &job.recovered);
                let recovered_n = job.recovered.len() as u64;
                match job.result {
                    Ok((metrics, note, sim_metrics, outcome, queue_wait_s, wall_s)) => {
                        if let Some(note) = note {
                            failures.push(SweepFailure {
                                point: label.clone(),
                                stage: "checkpoint-load",
                                error: note,
                                attempts: 1,
                                recovered: true,
                            });
                        }
                        let job_outcome = match outcome {
                            CheckpointOutcome::Hit(file) => {
                                used_files.push(file);
                                JobOutcome::CacheHit
                            }
                            CheckpointOutcome::Miss => JobOutcome::CacheMiss,
                            CheckpointOutcome::NoStore => JobOutcome::NoStore,
                        };
                        telemetry.push(JobTelemetry {
                            label,
                            stage: "simulate",
                            queue_wait_s,
                            wall_s,
                            outcome: job_outcome,
                            recovered: recovered_n,
                        });
                        agg.merge(*sim_metrics);
                        out.push(metrics);
                    }
                    Err(jf) => {
                        telemetry.fault_recoveries += recovered_n;
                        failures.push(SweepFailure {
                            point: label,
                            stage: "simulate",
                            error: jf.message,
                            attempts: jf.attempts,
                            recovered: false,
                        });
                        out.push(PointMetrics::failed());
                    }
                }
            }
            // Fold this sweep's restores into the store's reuse ledger
            // (telemetry only — failures to write never affect results).
            if let Some(store) = &store {
                let _ = record_usage(&store.dir, &used_files);
            }
            telemetry.wall_s = sweep_start.elapsed().as_secs_f64();
            SweepMetrics {
                points: out,
                provenance: SamplingProvenance::Exact,
                failures,
                metrics: MetricsBlock::Exact(Box::new(agg)),
                telemetry,
            }
        }
        SweepMode::Sampled => {
            let plan = ctx.effective_plan(exp).expect("sampled mode has a plan");
            let exp_copy = *exp;
            let store_ref = store.as_ref();
            // One warm serial pass per *sharing group* — (workload,
            // scheme family, register-file size) — not per point: every
            // NRR value of a virtual-physical family restores the same
            // canonical interval checkpoints and re-prices only the
            // NRR-dependent state (`Processor::retarget_nrr`), so an NRR
            // sweep pays one pass per (benchmark, seed, family) instead
            // of one per NRR value. Groups are keyed by the group scheme
            // label, which already folds the family together.
            let mut groups: Vec<SweepPoint> = Vec::new();
            let group_of: Vec<usize> = points
                .iter()
                .map(|p| {
                    let key = (
                        p.workload,
                        group_scheme_label(p.scheme, p.physical_regs, &exp_copy),
                        p.physical_regs,
                    );
                    let found = groups.iter().position(|g| {
                        (
                            g.workload,
                            group_scheme_label(g.scheme, g.physical_regs, &exp_copy),
                            g.physical_regs,
                        ) == key
                    });
                    found.unwrap_or_else(|| {
                        groups.push(*p);
                        groups.len() - 1
                    })
                })
                .collect();
            let group_label = |g: &SweepPoint| {
                format!(
                    "group:{}/{}@{}r",
                    g.workload.name(),
                    group_scheme_label(g.scheme, g.physical_regs, &exp_copy),
                    g.physical_regs
                )
            };
            // Stage 1: load (or generate) each group's interval set. A
            // corrupt on-disk set has already been quarantined by the
            // loader; the degradation note is surfaced and the group
            // regenerates from its warm pass — bit-identical, because the
            // on-disk artefacts were produced by the very same pass.
            struct GroupPass {
                set: Vec<(u64, vpr_snap::Snapshot)>,
                from_disk: bool,
                generated: Vec<crate::checkpoints::GeneratedCheckpoint>,
                note: Option<String>,
                queue_wait_s: f64,
                wall_s: f64,
            }
            let group_points = groups.clone();
            let sets: Vec<par::JobResult<GroupPass>> =
                par::par_try_map(exp.effective_jobs(), SWEEP_RETRIES, groups, |_, g| {
                    let queue_wait_s = sweep_start.elapsed().as_secs_f64();
                    let started = Instant::now();
                    let label = group_label(g);
                    vpr_snap::faults::maybe_panic_job(&label);
                    let (loaded, note) = match store_ref {
                        None => (None, None),
                        Some(s) => match s.load_group_interval_set(
                            g.workload,
                            g.scheme,
                            g.physical_regs,
                            &exp_copy,
                            &plan,
                        ) {
                            Ok(set) => (Some(set), None),
                            // An unpopulated directory is the normal cold
                            // start, not a fault.
                            Err(CheckpointLoadError::Manifest(ManifestError::NotFound(_))) => {
                                (None, None)
                            }
                            Err(e) => (None, Some(e.to_string())),
                        },
                    };
                    let (set, from_disk, generated) = match loaded {
                        Some(set) => (set, true, Vec::new()),
                        None => {
                            let generated = generate_group_checkpoints(
                                g.workload,
                                g.scheme,
                                g.physical_regs,
                                &exp_copy,
                                Some(&plan),
                            );
                            let set = generated
                                .iter()
                                .filter(|g| g.key.kind == KIND_INTERVAL)
                                .map(|g| (g.key.target, g.snapshot.clone()))
                                .collect();
                            (set, false, generated)
                        }
                    };
                    GroupPass {
                        set,
                        from_disk,
                        generated,
                        note,
                        queue_wait_s,
                        wall_s: started.elapsed().as_secs_f64(),
                    }
                });
            for (g, job) in group_points.iter().zip(&sets) {
                let label = group_label(g);
                record_recovered(&mut failures, &label, "warm-pass", &job.recovered);
                let recovered_n = job.recovered.len() as u64;
                match &job.result {
                    Ok(pass) => {
                        if let Some(note) = &pass.note {
                            failures.push(SweepFailure {
                                point: label.clone(),
                                stage: "checkpoint-load",
                                error: note.clone(),
                                attempts: 1,
                                recovered: true,
                            });
                        }
                        telemetry.push(JobTelemetry {
                            label,
                            stage: "warm-pass",
                            queue_wait_s: pass.queue_wait_s,
                            wall_s: pass.wall_s,
                            outcome: if store_ref.is_none() {
                                JobOutcome::NoStore
                            } else if pass.from_disk {
                                JobOutcome::CacheHit
                            } else {
                                JobOutcome::CacheMiss
                            },
                            recovered: recovered_n,
                        });
                    }
                    Err(_) => telemetry.fault_recoveries += recovered_n,
                }
            }
            // Stage 2: measure every point against its group's set; each
            // point's windows run serially inside it (jobs = 1) so the
            // pool is not nested. Points whose group pass failed get the
            // failed placeholder without simulating.
            let sets_ref = &sets;
            let group_of_ref = &group_of;
            let outcomes = par::par_try_map(
                exp.effective_jobs(),
                SWEEP_RETRIES,
                points.to_vec(),
                move |i, p| {
                    let queue_wait_s = sweep_start.elapsed().as_secs_f64();
                    let started = Instant::now();
                    let label = point_label(p);
                    vpr_snap::faults::maybe_panic_job(&label);
                    let Ok(pass) = &sets_ref[group_of_ref[i]].result else {
                        return (
                            PointMetrics::failed(),
                            queue_wait_s,
                            started.elapsed().as_secs_f64(),
                        );
                    };
                    let report = sample_from_checkpoints(
                        p.workload,
                        p.scheme,
                        p.physical_regs,
                        &exp_copy,
                        &plan,
                        &pass.set,
                        1,
                    );
                    progress_ref.point_done();
                    (
                        PointMetrics {
                            ipc: report.ipc(),
                            miss_ratio: report.miss_ratio(),
                            executions_per_commit: report.executions_per_commit(),
                        },
                        queue_wait_s,
                        started.elapsed().as_secs_f64(),
                    )
                },
            );
            let mut out = Vec::with_capacity(points.len());
            let mut group_seen = vec![false; group_points.len()];
            for (i, (p, job)) in points.iter().zip(outcomes).enumerate() {
                let label = point_label(p);
                record_recovered(&mut failures, &label, "sample", &job.recovered);
                let recovered_n = job.recovered.len() as u64;
                // The first point of each group "owns" the stage-1 pass
                // (already counted there); every further point reuses the
                // shared artefact — the cross-NRR reuse the telemetry
                // counts.
                let shared = std::mem::replace(&mut group_seen[group_of_ref[i]], true);
                match (&sets_ref[group_of_ref[i]].result, job.result) {
                    // The group's warm pass failed permanently: this
                    // point never simulated.
                    (Err(group_failure), _) => {
                        telemetry.fault_recoveries += recovered_n;
                        failures.push(SweepFailure {
                            point: label,
                            stage: "warm-pass",
                            error: group_failure.message.clone(),
                            attempts: group_failure.attempts,
                            recovered: false,
                        });
                        out.push(PointMetrics::failed());
                    }
                    (Ok(_), Ok((metrics, queue_wait_s, wall_s))) => {
                        telemetry.push(JobTelemetry {
                            label,
                            stage: "sample",
                            queue_wait_s,
                            wall_s,
                            outcome: if shared {
                                JobOutcome::SharedReuse
                            } else {
                                JobOutcome::NoStore
                            },
                            recovered: recovered_n,
                        });
                        out.push(metrics);
                    }
                    (Ok(_), Err(jf)) => {
                        telemetry.fault_recoveries += recovered_n;
                        failures.push(SweepFailure {
                            point: label,
                            stage: "sample",
                            error: jf.message,
                            attempts: jf.attempts,
                            recovered: false,
                        });
                        out.push(PointMetrics::failed());
                    }
                }
            }
            let all_from_disk = sets
                .iter()
                .all(|job| matches!(&job.result, Ok(pass) if pass.from_disk));
            // Persist freshly generated checkpoints so the next sampled
            // run reuses the serial passes just paid for. Write failures
            // never affect results — record and continue.
            if let Some(mut store) = store {
                let mut dirty = false;
                for job in &sets {
                    let Ok(pass) = &job.result else {
                        continue;
                    };
                    if !pass.generated.is_empty() {
                        if let Err(e) = store.save_all(&pass.generated) {
                            failures.push(SweepFailure {
                                point: store.dir.display().to_string(),
                                stage: "persist",
                                error: format!("cannot write checkpoints: {e}"),
                                attempts: 1,
                                recovered: true,
                            });
                        } else {
                            dirty = true;
                        }
                    }
                }
                if dirty {
                    if let Err(e) = store.flush() {
                        failures.push(SweepFailure {
                            point: store.dir.display().to_string(),
                            stage: "persist",
                            error: format!("cannot write manifest: {e}"),
                            attempts: 1,
                            recovered: true,
                        });
                    }
                }
            }
            telemetry.wall_s = sweep_start.elapsed().as_secs_f64();
            SweepMetrics {
                points: out,
                provenance: SamplingProvenance::Sampled {
                    plan,
                    estimator: "per-phase-regression",
                    seeded_from: if all_from_disk {
                        "checkpoint-dir"
                    } else {
                        "warm-pass"
                    },
                    checkpoint_dir: ctx.checkpoint_dir.as_ref().map(|d| d.display().to_string()),
                },
                failures,
                metrics: MetricsBlock::SampledUnavailable,
                telemetry,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr_trace::Benchmark;

    #[test]
    fn sweep_matches_serial_run_order() {
        let exp = ExperimentConfig {
            warmup: 200,
            measure: 2_000,
            jobs: 3,
            ..ExperimentConfig::default()
        };
        let points = [
            SweepPoint::at64(Benchmark::Swim, RenameScheme::Conventional),
            SweepPoint::at64(
                Benchmark::Go,
                RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            ),
            SweepPoint {
                workload: Benchmark::Swim.into(),
                scheme: RenameScheme::VirtualPhysicalIssue { nrr: 16 },
                physical_regs: 48,
            },
        ];
        let parallel = run_sweep(&points, &exp);
        let serial: Vec<_> = points
            .iter()
            .map(|p| run_benchmark(p.workload, p.scheme, p.physical_regs, &exp))
            .collect();
        assert_eq!(parallel, serial, "pool output must merge in point order");
    }
}
