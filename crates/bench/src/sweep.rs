//! The parallel sweep engine.
//!
//! Every paper artefact is a sweep: the same simulator run over a grid of
//! `(benchmark, scheme, register-file size)` points. The points are
//! mutually independent and each simulation is deterministic, so
//! [`run_sweep`] fans them out over [`vpr_core::par`]'s work-stealing
//! pool and merges the [`SimStats`] back **in submission order** — the
//! output is byte-identical to running the same points serially, for any
//! worker count (`--jobs 1` included). The cycle-exact goldens and
//! `tests/parallel_determinism.rs` pin this down.
//!
//! The experiment functions in [`crate::experiments`] all route through
//! here; pass `--jobs N` to any figure/table binary (0 = one worker per
//! host core, the default) to control the pool.

use crate::{run_benchmark, ExperimentConfig};
use vpr_core::{par, RenameScheme, SimStats};
use vpr_trace::Benchmark;

/// One point of a sweep grid: a full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// The workload.
    pub benchmark: Benchmark,
    /// The renaming scheme under test.
    pub scheme: RenameScheme,
    /// Physical registers per class.
    pub physical_regs: usize,
}

impl SweepPoint {
    /// Shorthand for the common 64-registers-per-class configuration.
    pub fn at64(benchmark: Benchmark, scheme: RenameScheme) -> Self {
        Self {
            benchmark,
            scheme,
            physical_regs: 64,
        }
    }
}

/// Runs every point of `points` under `exp` — one simulator per point,
/// `exp.effective_jobs()` at a time — and returns their measurement-window
/// statistics in `points` order.
pub fn run_sweep(points: &[SweepPoint], exp: &ExperimentConfig) -> Vec<SimStats> {
    let exp = *exp;
    par::par_map(exp.effective_jobs(), points.to_vec(), move |_, p| {
        run_benchmark(p.benchmark, p.scheme, p.physical_regs, &exp)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_serial_run_order() {
        let exp = ExperimentConfig {
            warmup: 200,
            measure: 2_000,
            jobs: 3,
            ..ExperimentConfig::default()
        };
        let points = [
            SweepPoint::at64(Benchmark::Swim, RenameScheme::Conventional),
            SweepPoint::at64(
                Benchmark::Go,
                RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            ),
            SweepPoint {
                benchmark: Benchmark::Swim,
                scheme: RenameScheme::VirtualPhysicalIssue { nrr: 16 },
                physical_regs: 48,
            },
        ];
        let parallel = run_sweep(&points, &exp);
        let serial: Vec<_> = points
            .iter()
            .map(|p| run_benchmark(p.benchmark, p.scheme, p.physical_regs, &exp))
            .collect();
        assert_eq!(parallel, serial, "pool output must merge in point order");
    }
}
