//! The parallel sweep engine.
//!
//! Every paper artefact is a sweep: the same simulator run over a grid of
//! `(benchmark, scheme, register-file size)` points. The points are
//! mutually independent and each simulation is deterministic, so
//! [`run_sweep`] fans them out over [`vpr_core::par`]'s work-stealing
//! pool and merges the [`SimStats`] back **in submission order** — the
//! output is byte-identical to running the same points serially, for any
//! worker count (`--jobs 1` included). The cycle-exact goldens and
//! `tests/parallel_determinism.rs` pin this down.
//!
//! The experiment functions in [`crate::experiments`] all route through
//! here; pass `--jobs N` to any figure/table binary (0 = one worker per
//! host core, the default) to control the pool.

use crate::checkpoints::{
    generate_group_checkpoints, group_scheme_label, run_benchmark_checkpointed_noted,
    CheckpointLoadError, CheckpointStore, KIND_INTERVAL,
};
use crate::sampling::{sample_from_checkpoints, SamplingPlan};
use crate::workloads::scheme_label;
use crate::{run_benchmark, ExperimentConfig};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use vpr_core::par::{self, JobResult};
use vpr_core::{RenameScheme, SimStats};
use vpr_snap::manifest::ManifestError;
use vpr_trace::Benchmark;

/// One point of a sweep grid: a full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// The workload.
    pub benchmark: Benchmark,
    /// The renaming scheme under test.
    pub scheme: RenameScheme,
    /// Physical registers per class.
    pub physical_regs: usize,
}

impl SweepPoint {
    /// Shorthand for the common 64-registers-per-class configuration.
    pub fn at64(benchmark: Benchmark, scheme: RenameScheme) -> Self {
        Self {
            benchmark,
            scheme,
            physical_regs: 64,
        }
    }
}

/// Runs every point of `points` under `exp` — one simulator per point,
/// `exp.effective_jobs()` at a time — and returns their measurement-window
/// statistics in `points` order.
pub fn run_sweep(points: &[SweepPoint], exp: &ExperimentConfig) -> Vec<SimStats> {
    let exp = *exp;
    par::par_map(exp.effective_jobs(), points.to_vec(), move |_, p| {
        run_benchmark(p.benchmark, p.scheme, p.physical_regs, &exp)
    })
}

// ----------------------------------------------------------------------
// Exact vs sampled sweeps
// ----------------------------------------------------------------------

/// How a sweep obtains each point's metrics.
#[derive(Debug, Clone, Default)]
pub enum SweepMode {
    /// Simulate every point full-length. With a checkpoint directory, warm
    /// `.vprsnap` checkpoints are restored instead of simulating warm-up —
    /// restored continuations are bit-identical, so the output does not
    /// depend on whether (or which) checkpoints were found.
    #[default]
    Exact,
    /// Estimate every point from checkpoint-seeded detailed windows
    /// ([`crate::sampling::sample_from_checkpoints`]). Interval
    /// checkpoints are loaded from the checkpoint directory when a valid
    /// set exists, and produced in-memory by one warm serial pass
    /// otherwise (then persisted to the directory, if one was given, so
    /// the next sampled run skips the pass).
    Sampled,
}

/// Where a sweep looks for (and deposits) `.vprsnap` checkpoints.
#[derive(Debug, Clone, Default)]
pub struct SweepContext {
    /// The sweep mode.
    pub mode: SweepMode,
    /// Checkpoint directory, if any.
    pub checkpoint_dir: Option<PathBuf>,
    /// Sampling plan override for sampled sweeps; `None` derives the
    /// checkpoint-seeded plan from the experiment configuration.
    pub plan: Option<SamplingPlan>,
}

impl SweepContext {
    /// An exact sweep with no checkpoint directory (the historical
    /// default).
    pub fn exact() -> Self {
        Self::default()
    }

    /// An exact or sampled sweep using `dir` for checkpoints.
    pub fn new(sampled: bool, dir: Option<&Path>) -> Self {
        Self {
            mode: if sampled {
                SweepMode::Sampled
            } else {
                SweepMode::Exact
            },
            checkpoint_dir: dir.map(Path::to_path_buf),
            plan: None,
        }
    }

    /// True in sampled mode.
    pub fn is_sampled(&self) -> bool {
        matches!(self.mode, SweepMode::Sampled)
    }

    /// The sampling plan a sampled sweep of `exp` will use (the explicit
    /// override, or the derived checkpoint-seeded plan); `None` in exact
    /// mode.
    pub fn effective_plan(&self, exp: &ExperimentConfig) -> Option<SamplingPlan> {
        self.is_sampled().then(|| {
            self.plan
                .unwrap_or_else(|| SamplingPlan::for_experiment_checkpointed(exp))
        })
    }

    /// Checks the context against an experiment before any simulation
    /// runs: a sampled sweep's plan must be consistent (binaries turn the
    /// message into a usage error instead of panicking mid-sweep).
    ///
    /// # Errors
    ///
    /// Describes the violated plan constraint.
    pub fn try_validate(&self, exp: &ExperimentConfig) -> Result<(), String> {
        match self.effective_plan(exp) {
            Some(plan) => plan
                .try_validate()
                .map_err(|e| format!("invalid sampling plan for this experiment: {e}")),
            None => Ok(()),
        }
    }
}

/// The per-point result a figure/table needs, independent of whether it
/// was measured exactly or estimated from samples.
#[derive(Debug, Clone, Copy)]
pub struct PointMetrics {
    /// Committed IPC (exact, or the sampled estimate).
    pub ipc: f64,
    /// Cache miss ratio.
    pub miss_ratio: f64,
    /// Executions per committed instruction.
    pub executions_per_commit: f64,
}

impl PointMetrics {
    fn from_stats(stats: &SimStats) -> Self {
        Self {
            ipc: stats.ipc(),
            miss_ratio: stats.cache.miss_ratio(),
            executions_per_commit: stats.executions_per_commit(),
        }
    }

    /// The placeholder metrics of a point whose job failed permanently
    /// (every retry exhausted): all-NaN, rendered as `null` in JSON. The
    /// matching [`SweepFailure`] in the sweep's `failures` block says
    /// why.
    pub fn failed() -> Self {
        Self {
            ipc: f64::NAN,
            miss_ratio: f64::NAN,
            executions_per_commit: f64::NAN,
        }
    }

    /// True for the [`PointMetrics::failed`] placeholder.
    pub fn is_failed(&self) -> bool {
        self.ipc.is_nan()
    }
}

/// Escapes a string for embedding in a JSON string literal (the escapes
/// this workspace's hand-rolled readers understand: `\"`, `\\`, `\n`,
/// `\r`, `\t`, and `\uXXXX` for other control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float for JSON: non-finite values (a failed point's NaN
/// placeholder) become `null` — `NaN` is not valid JSON.
pub fn json_num(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// One fault a sweep survived (or degraded around): which point, at what
/// stage, whether the result was still produced. Recorded into every
/// experiment artefact's `failures` block so degradation is never
/// silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepFailure {
    /// The sweep point (or group / store) the fault hit, e.g.
    /// `"swim/vp-wb-nrr32@64r"`.
    pub point: String,
    /// Pipeline stage: `"store-open"`, `"checkpoint-load"`,
    /// `"warm-pass"`, `"simulate"`, `"sample"`, or `"persist"`.
    pub stage: &'static str,
    /// What went wrong.
    pub error: String,
    /// Attempts consumed when the fault hit a retried job (1 otherwise).
    pub attempts: u32,
    /// `true` when the sweep still produced this point's exact result
    /// (retry succeeded, or a degraded-but-bit-identical path ran);
    /// `false` when the point's metrics are the failed placeholder.
    pub recovered: bool,
}

impl SweepFailure {
    /// Renders one failure as a JSON object.
    pub fn to_json_value(&self) -> String {
        format!(
            "{{\"point\": \"{}\", \"stage\": \"{}\", \"recovered\": {}, \
             \"attempts\": {}, \"error\": \"{}\"}}",
            json_escape(&self.point),
            self.stage,
            self.recovered,
            self.attempts,
            json_escape(&self.error)
        )
    }
}

/// Renders a sweep's failures as the JSON value of a `"failures"` field
/// (an array; empty on a fault-free run).
pub fn failures_json(failures: &[SweepFailure]) -> String {
    if failures.is_empty() {
        return "[]".to_string();
    }
    let mut s = String::from("[\n");
    for (i, f) in failures.iter().enumerate() {
        let _ = write!(s, "    {}", f.to_json_value());
        s.push_str(if i + 1 < failures.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]");
    s
}

/// Provenance of a sweep's numbers, recorded into every JSON artefact so
/// sampled and exact results are never confusable.
#[derive(Debug, Clone)]
pub enum SamplingProvenance {
    /// Every point simulated full-length.
    Exact,
    /// Points estimated by checkpoint-seeded sampling.
    Sampled {
        /// The sampling plan used.
        plan: SamplingPlan,
        /// Estimator name (stable identifier).
        estimator: &'static str,
        /// Where the interval checkpoints came from: `"checkpoint-dir"`
        /// when every point loaded a valid on-disk set, `"warm-pass"` when
        /// at least one point generated its checkpoints in-memory.
        seeded_from: &'static str,
        /// The checkpoint directory involved, if any.
        checkpoint_dir: Option<String>,
    },
}

impl SamplingProvenance {
    /// Renders the provenance as the JSON value of a `"sampling"` field.
    pub fn to_json_value(&self) -> String {
        match self {
            SamplingProvenance::Exact => "{\"mode\": \"exact\"}".to_string(),
            SamplingProvenance::Sampled {
                plan,
                estimator,
                seeded_from,
                checkpoint_dir,
            } => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"mode\": \"sampled\", \"estimator\": \"{estimator}\", \
                     \"seeded_from\": \"{seeded_from}\", \"plan\": {{\"offset\": {}, \
                     \"region\": {}, \"intervals\": {}, \"detailed_warmup\": {}, \
                     \"detailed_measure\": {}, \"detailed_fraction\": {:.4}}}",
                    plan.offset,
                    plan.region,
                    plan.intervals,
                    plan.detailed_warmup,
                    plan.detailed_measure,
                    plan.detailed_fraction()
                );
                match checkpoint_dir {
                    Some(dir) => {
                        // The directory is user input; escape it.
                        let _ = write!(s, ", \"checkpoint_dir\": \"{}\"}}", json_escape(dir));
                    }
                    None => s.push('}'),
                }
                s
            }
        }
    }
}

/// A sweep's metrics plus the provenance its artefacts must record.
#[derive(Debug, Clone)]
pub struct SweepMetrics {
    /// Per-point metrics, in `points` order. A permanently failed point
    /// holds [`PointMetrics::failed`] (rendered `null` in JSON) and has a
    /// `recovered: false` entry in `failures`.
    pub points: Vec<PointMetrics>,
    /// How they were obtained.
    pub provenance: SamplingProvenance,
    /// Faults the sweep survived or degraded around (empty on a clean
    /// run). Recorded into every artefact's `failures` block.
    pub failures: Vec<SweepFailure>,
}

/// Extra panic attempts granted to each sweep job: one retry, which is
/// exactly what a single transient fault needs and what a deterministic
/// bug cannot abuse.
const SWEEP_RETRIES: u32 = 1;

/// The stable label of one sweep point in failure reports and fault-
/// injection job matching.
pub fn point_label(p: &SweepPoint) -> String {
    format!(
        "{}/{}@{}r",
        p.benchmark.name(),
        scheme_label(p.scheme),
        p.physical_regs
    )
}

/// Folds one job's recovered panics into the failure list.
fn record_recovered(
    failures: &mut Vec<SweepFailure>,
    label: &str,
    stage: &'static str,
    job: &[par::JobFailure],
) {
    for jf in job {
        failures.push(SweepFailure {
            point: label.to_string(),
            stage,
            error: jf.message.clone(),
            attempts: jf.attempts,
            recovered: true,
        });
    }
}

/// Runs a sweep in the requested mode and returns per-point metrics in
/// `points` order. Both modes fan the points out over the worker pool with
/// the usual submission-order merge, so metrics are byte-identical for any
/// `exp.jobs`.
///
/// The sweep is **fault-tolerant**: every job is panic-isolated with one
/// retry, a corrupt checkpoint store degrades to warm-pass regeneration
/// (bit-identical results), and a permanently failing point reports into
/// [`SweepMetrics::failures`] with [`PointMetrics::failed`] metrics
/// instead of tearing down the grid.
pub fn run_sweep_metrics(
    points: &[SweepPoint],
    exp: &ExperimentConfig,
    ctx: &SweepContext,
) -> SweepMetrics {
    let mut failures: Vec<SweepFailure> = Vec::new();
    let store = match &ctx.checkpoint_dir {
        Some(dir) => {
            let (store, note) = CheckpointStore::open_resilient(dir);
            if let Some(note) = note {
                failures.push(SweepFailure {
                    point: dir.display().to_string(),
                    stage: "store-open",
                    error: note,
                    attempts: 1,
                    recovered: true,
                });
            }
            Some(store)
        }
        None => None,
    };
    match ctx.mode {
        SweepMode::Exact => {
            let exp_copy = *exp;
            let store_ref = store.as_ref();
            let results = par::par_try_map(
                exp.effective_jobs(),
                SWEEP_RETRIES,
                points.to_vec(),
                |_, p| {
                    let label = point_label(p);
                    vpr_snap::faults::maybe_panic_job(&label);
                    let (stats, note) = run_benchmark_checkpointed_noted(
                        p.benchmark,
                        p.scheme,
                        p.physical_regs,
                        &exp_copy,
                        store_ref,
                    );
                    (PointMetrics::from_stats(&stats), note)
                },
            );
            let mut out = Vec::with_capacity(points.len());
            for (p, job) in points.iter().zip(results) {
                let label = point_label(p);
                record_recovered(&mut failures, &label, "simulate", &job.recovered);
                match job.result {
                    Ok((metrics, note)) => {
                        if let Some(note) = note {
                            failures.push(SweepFailure {
                                point: label,
                                stage: "checkpoint-load",
                                error: note,
                                attempts: 1,
                                recovered: true,
                            });
                        }
                        out.push(metrics);
                    }
                    Err(jf) => {
                        failures.push(SweepFailure {
                            point: label,
                            stage: "simulate",
                            error: jf.message,
                            attempts: jf.attempts,
                            recovered: false,
                        });
                        out.push(PointMetrics::failed());
                    }
                }
            }
            SweepMetrics {
                points: out,
                provenance: SamplingProvenance::Exact,
                failures,
            }
        }
        SweepMode::Sampled => {
            let plan = ctx.effective_plan(exp).expect("sampled mode has a plan");
            let exp_copy = *exp;
            let store_ref = store.as_ref();
            // One warm serial pass per *sharing group* — (benchmark,
            // scheme family, register-file size) — not per point: every
            // NRR value of a virtual-physical family restores the same
            // canonical interval checkpoints and re-prices only the
            // NRR-dependent state (`Processor::retarget_nrr`), so an NRR
            // sweep pays one pass per (benchmark, seed, family) instead
            // of one per NRR value. Groups are keyed by the group scheme
            // label, which already folds the family together.
            let mut groups: Vec<SweepPoint> = Vec::new();
            let group_of: Vec<usize> = points
                .iter()
                .map(|p| {
                    let key = (
                        p.benchmark,
                        group_scheme_label(p.scheme, p.physical_regs, &exp_copy),
                        p.physical_regs,
                    );
                    let found = groups.iter().position(|g| {
                        (
                            g.benchmark,
                            group_scheme_label(g.scheme, g.physical_regs, &exp_copy),
                            g.physical_regs,
                        ) == key
                    });
                    found.unwrap_or_else(|| {
                        groups.push(*p);
                        groups.len() - 1
                    })
                })
                .collect();
            let group_label = |g: &SweepPoint| {
                format!(
                    "group:{}/{}@{}r",
                    g.benchmark.name(),
                    group_scheme_label(g.scheme, g.physical_regs, &exp_copy),
                    g.physical_regs
                )
            };
            // Stage 1: load (or generate) each group's interval set. A
            // corrupt on-disk set has already been quarantined by the
            // loader; the degradation note is surfaced and the group
            // regenerates from its warm pass — bit-identical, because the
            // on-disk artefacts were produced by the very same pass.
            type GroupSet = (
                Vec<(u64, vpr_snap::Snapshot)>,
                bool,
                Vec<crate::checkpoints::GeneratedCheckpoint>,
                Option<String>,
            );
            let group_points = groups.clone();
            let sets: Vec<JobResult<GroupSet>> =
                par::par_try_map(exp.effective_jobs(), SWEEP_RETRIES, groups, |_, g| {
                    let label = group_label(g);
                    vpr_snap::faults::maybe_panic_job(&label);
                    let (loaded, note) = match store_ref {
                        None => (None, None),
                        Some(s) => match s.load_group_interval_set(
                            g.benchmark,
                            g.scheme,
                            g.physical_regs,
                            &exp_copy,
                            &plan,
                        ) {
                            Ok(set) => (Some(set), None),
                            // An unpopulated directory is the normal cold
                            // start, not a fault.
                            Err(CheckpointLoadError::Manifest(ManifestError::NotFound(_))) => {
                                (None, None)
                            }
                            Err(e) => (None, Some(e.to_string())),
                        },
                    };
                    match loaded {
                        Some(set) => (set, true, Vec::new(), note),
                        None => {
                            let generated = generate_group_checkpoints(
                                g.benchmark,
                                g.scheme,
                                g.physical_regs,
                                &exp_copy,
                                Some(&plan),
                            );
                            let set = generated
                                .iter()
                                .filter(|g| g.key.kind == KIND_INTERVAL)
                                .map(|g| (g.key.target, g.snapshot.clone()))
                                .collect();
                            (set, false, generated, note)
                        }
                    }
                });
            for (g, job) in group_points.iter().zip(&sets) {
                let label = group_label(g);
                record_recovered(&mut failures, &label, "warm-pass", &job.recovered);
                if let Ok((_, _, _, Some(note))) = &job.result {
                    failures.push(SweepFailure {
                        point: label,
                        stage: "checkpoint-load",
                        error: note.clone(),
                        attempts: 1,
                        recovered: true,
                    });
                }
            }
            // Stage 2: measure every point against its group's set; each
            // point's windows run serially inside it (jobs = 1) so the
            // pool is not nested. Points whose group pass failed get the
            // failed placeholder without simulating.
            let sets_ref = &sets;
            let group_of_ref = &group_of;
            let outcomes = par::par_try_map(
                exp.effective_jobs(),
                SWEEP_RETRIES,
                points.to_vec(),
                move |i, p| {
                    let label = point_label(p);
                    vpr_snap::faults::maybe_panic_job(&label);
                    let Ok((snapshots, _, _, _)) = &sets_ref[group_of_ref[i]].result else {
                        return PointMetrics::failed();
                    };
                    let report = sample_from_checkpoints(
                        p.benchmark,
                        p.scheme,
                        p.physical_regs,
                        &exp_copy,
                        &plan,
                        snapshots,
                        1,
                    );
                    PointMetrics {
                        ipc: report.ipc(),
                        miss_ratio: report.miss_ratio(),
                        executions_per_commit: report.executions_per_commit(),
                    }
                },
            );
            let mut out = Vec::with_capacity(points.len());
            for (i, (p, job)) in points.iter().zip(outcomes).enumerate() {
                let label = point_label(p);
                record_recovered(&mut failures, &label, "sample", &job.recovered);
                match (&sets_ref[group_of_ref[i]].result, job.result) {
                    // The group's warm pass failed permanently: this
                    // point never simulated.
                    (Err(group_failure), _) => {
                        failures.push(SweepFailure {
                            point: label,
                            stage: "warm-pass",
                            error: group_failure.message.clone(),
                            attempts: group_failure.attempts,
                            recovered: false,
                        });
                        out.push(PointMetrics::failed());
                    }
                    (Ok(_), Ok(metrics)) => out.push(metrics),
                    (Ok(_), Err(jf)) => {
                        failures.push(SweepFailure {
                            point: label,
                            stage: "sample",
                            error: jf.message,
                            attempts: jf.attempts,
                            recovered: false,
                        });
                        out.push(PointMetrics::failed());
                    }
                }
            }
            let all_from_disk = sets
                .iter()
                .all(|job| matches!(&job.result, Ok((_, true, _, _))));
            // Persist freshly generated checkpoints so the next sampled
            // run reuses the serial passes just paid for. Write failures
            // never affect results — record and continue.
            if let Some(mut store) = store {
                let mut dirty = false;
                for job in &sets {
                    let Ok((_, _, generated, _)) = &job.result else {
                        continue;
                    };
                    if !generated.is_empty() {
                        if let Err(e) = store.save_all(generated) {
                            failures.push(SweepFailure {
                                point: store.dir.display().to_string(),
                                stage: "persist",
                                error: format!("cannot write checkpoints: {e}"),
                                attempts: 1,
                                recovered: true,
                            });
                        } else {
                            dirty = true;
                        }
                    }
                }
                if dirty {
                    if let Err(e) = store.flush() {
                        failures.push(SweepFailure {
                            point: store.dir.display().to_string(),
                            stage: "persist",
                            error: format!("cannot write manifest: {e}"),
                            attempts: 1,
                            recovered: true,
                        });
                    }
                }
            }
            SweepMetrics {
                points: out,
                provenance: SamplingProvenance::Sampled {
                    plan,
                    estimator: "per-phase-regression",
                    seeded_from: if all_from_disk {
                        "checkpoint-dir"
                    } else {
                        "warm-pass"
                    },
                    checkpoint_dir: ctx.checkpoint_dir.as_ref().map(|d| d.display().to_string()),
                },
                failures,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_serial_run_order() {
        let exp = ExperimentConfig {
            warmup: 200,
            measure: 2_000,
            jobs: 3,
            ..ExperimentConfig::default()
        };
        let points = [
            SweepPoint::at64(Benchmark::Swim, RenameScheme::Conventional),
            SweepPoint::at64(
                Benchmark::Go,
                RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            ),
            SweepPoint {
                benchmark: Benchmark::Swim,
                scheme: RenameScheme::VirtualPhysicalIssue { nrr: 16 },
                physical_regs: 48,
            },
        ];
        let parallel = run_sweep(&points, &exp);
        let serial: Vec<_> = points
            .iter()
            .map(|p| run_benchmark(p.benchmark, p.scheme, p.physical_regs, &exp))
            .collect();
        assert_eq!(parallel, serial, "pool output must merge in point order");
    }
}
