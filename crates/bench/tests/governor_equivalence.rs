//! The next-event cycle governor's central contract: a governor-stepped
//! run is **bit-identical** to naively stepping every cycle
//! ([`Processor::step_single_cycle`]) — same `SimStats`, same cycle
//! count, at every observation point.
//!
//! The cycle-exact goldens pin the governor against checked-in numbers;
//! this suite pins it against the *definitionally correct* reference
//! kernel over randomised configurations, benchmarks, and mid-run
//! checkpoint positions (including a snapshot/restore + NRR re-target in
//! the middle, the cross-configuration checkpoint-reuse path).

use proptest::prelude::*;
use vpr_bench::ExperimentConfig;
use vpr_core::{Processor, RenameScheme, SimConfig};
use vpr_trace::{Benchmark, TraceBuilder, TraceGen};

fn build(
    benchmark: Benchmark,
    scheme: RenameScheme,
    regs: usize,
    seed: u64,
) -> Processor<TraceGen> {
    let config = SimConfig::builder()
        .scheme(scheme)
        .physical_regs(regs)
        .build();
    let trace = TraceBuilder::new(benchmark).seed(seed).build();
    Processor::new(config, trace)
}

/// Runs to an absolute committed-instruction target one single cycle at a
/// time — the governor-free reference driver.
fn run_to_commit_naive(cpu: &mut Processor<TraceGen>, target: u64) {
    while cpu.absolute_committed() < target && !cpu.is_done() {
        cpu.step_single_cycle();
    }
}

fn observe(cpu: &Processor<TraceGen>) -> (u64, u64, vpr_core::SimStats) {
    (cpu.cycle(), cpu.absolute_committed(), cpu.stats())
}

const BENCHES: [Benchmark; 4] = [
    Benchmark::Go,
    Benchmark::Swim,
    Benchmark::Compress,
    Benchmark::Wave5,
];

fn scheme_of(code: u8, nrr: usize) -> RenameScheme {
    match code % 4 {
        0 => RenameScheme::Conventional,
        1 => RenameScheme::ConventionalEarlyRelease,
        2 => RenameScheme::VirtualPhysicalIssue { nrr },
        _ => RenameScheme::VirtualPhysicalWriteback { nrr },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Governor-stepped == naively-stepped, observed at two random
    /// checkpoint positions per run.
    #[test]
    fn governor_matches_single_cycle_reference(
        bench_idx in 0usize..BENCHES.len(),
        scheme_code in 0u8..4,
        nrr in 1usize..32,
        regs in prop_oneof![Just(48usize), Just(64), Just(96)],
        seed in 1u64..1_000,
        first in 200u64..1_500,
        second in 200u64..1_500,
    ) {
        let benchmark = BENCHES[bench_idx];
        // NRR is only legal up to `physical_regs - 32` (§3.3).
        let scheme = scheme_of(scheme_code, nrr.min(regs - 32));
        let mut governed = build(benchmark, scheme, regs, seed);
        let mut naive = build(benchmark, scheme, regs, seed);

        governed.run_to_commit(first);
        run_to_commit_naive(&mut naive, first);
        prop_assert_eq!(observe(&governed), observe(&naive), "at first checkpoint");

        governed.run_to_commit(first + second);
        run_to_commit_naive(&mut naive, first + second);
        prop_assert_eq!(observe(&governed), observe(&naive), "at second checkpoint");
    }

    /// The re-target path composes with the governor contract: restoring
    /// a snapshot, re-targeting the NRR downward, and continuing with the
    /// governor equals the same continuation stepped cycle by cycle.
    #[test]
    fn retargeted_continuations_agree_across_stepping_modes(
        bench_idx in 0usize..BENCHES.len(),
        writeback in any::<bool>(),
        target_nrr in 1usize..=32,
        seed in 1u64..1_000,
        warm in 300u64..1_200,
        run in 300u64..1_200,
    ) {
        let benchmark = BENCHES[bench_idx];
        // Warm pass at the canonical (maximum) NRR for 64 registers.
        let canonical = if writeback {
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 }
        } else {
            RenameScheme::VirtualPhysicalIssue { nrr: 32 }
        };
        let mut warm_cpu = build(benchmark, canonical, 64, seed);
        warm_cpu.run_to_commit(warm);
        let snapshot = warm_cpu.snapshot();

        let restore = || {
            let fresh = TraceBuilder::new(benchmark).seed(seed).build();
            Processor::<TraceGen>::restore(&snapshot, fresh).expect("snapshot restores")
        };
        let mut governed = restore();
        let mut naive = restore();
        governed.retarget_nrr(target_nrr);
        naive.retarget_nrr(target_nrr);
        prop_assert_eq!(
            governed.snapshot(),
            naive.snapshot(),
            "re-target is deterministic"
        );
        let target = governed.absolute_committed() + run;
        governed.run_to_commit(target);
        run_to_commit_naive(&mut naive, target);
        prop_assert_eq!(observe(&governed), observe(&naive));
    }
}

/// Re-targeting to the machine's current NRR is a bit-exact no-op — the
/// invariant the shared (cross-NRR) checkpoint artefacts rest on.
#[test]
fn retarget_to_current_nrr_is_identity() {
    for scheme in [
        RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        RenameScheme::VirtualPhysicalIssue { nrr: 32 },
    ] {
        for benchmark in [Benchmark::Go, Benchmark::Swim] {
            let mut cpu = build(benchmark, scheme, 64, 42);
            cpu.run_to_commit(2_000);
            let before = cpu.snapshot();
            cpu.retarget_nrr(32);
            assert_eq!(cpu.snapshot(), before, "{benchmark:?}/{scheme:?}");
        }
    }
}

/// Upward re-targets violate the §3.3 free-register invariant and must be
/// refused loudly.
#[test]
#[should_panic(expected = "cannot raise NRR")]
fn upward_retarget_is_refused() {
    let mut cpu = build(
        Benchmark::Swim,
        RenameScheme::VirtualPhysicalWriteback { nrr: 8 },
        64,
        42,
    );
    cpu.run_to_commit(500);
    cpu.retarget_nrr(16);
}

/// A deep downward re-target on a loaded machine stays deadlock-free and
/// commits everything the un-shared machine would.
#[test]
fn downward_retarget_keeps_making_progress() {
    let exp = ExperimentConfig::quick();
    for writeback in [true, false] {
        let canonical = if writeback {
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 }
        } else {
            RenameScheme::VirtualPhysicalIssue { nrr: 32 }
        };
        let mut cpu = build(Benchmark::Wave5, canonical, 64, exp.seed);
        cpu.run_to_commit(3_000);
        cpu.retarget_nrr(1);
        let before = cpu.absolute_committed();
        cpu.run(5_000);
        assert!(
            cpu.absolute_committed() >= before + 5_000,
            "writeback={writeback}: re-targeted machine must keep committing"
        );
    }
}
