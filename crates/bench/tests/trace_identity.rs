//! The observability layer's zero-perturbation contract: attaching the
//! full observer — metrics registry *and* pipeline-trace ring — must not
//! change a single architectural counter. `SimStats` from a traced run
//! is compared bit-for-bit against the plain (`NoObs`, statically
//! compiled-out) run for all four renaming schemes.

use vpr_bench::{run_benchmark, run_benchmark_observed, ExperimentConfig};
use vpr_core::{RenameScheme, SimObserver};
use vpr_isa::OpClass;
use vpr_obs::PipelineTrace;
use vpr_trace::Benchmark;

const SCHEMES: [RenameScheme; 4] = [
    RenameScheme::Conventional,
    RenameScheme::ConventionalEarlyRelease,
    RenameScheme::VirtualPhysicalIssue { nrr: 16 },
    RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
];

fn op_names() -> Vec<String> {
    OpClass::ALL.iter().map(|o| o.to_string()).collect()
}

#[test]
fn traced_stats_are_bit_identical_for_all_schemes() {
    let exp = ExperimentConfig {
        warmup: 300,
        measure: 3_000,
        ..ExperimentConfig::default()
    };
    for scheme in SCHEMES {
        for benchmark in [Benchmark::Go, Benchmark::Swim] {
            let plain = run_benchmark(benchmark, scheme, 64, &exp);
            let obs = SimObserver::with_trace(PipelineTrace::new(4096, op_names()));
            let (traced, obs) = run_benchmark_observed(benchmark, scheme, 64, &exp, obs);
            assert_eq!(
                format!("{plain:#?}"),
                format!("{traced:#?}"),
                "tracing perturbed SimStats for {benchmark:?}/{scheme:?}"
            );
            // The observer must actually have observed the run it rode on
            // — an accidentally disconnected hook would also "not perturb".
            assert_eq!(
                obs.metrics.committed, traced.committed,
                "metrics registry missed commits for {benchmark:?}/{scheme:?}"
            );
            let trace = obs.trace.expect("observer was built with a trace");
            assert!(
                !trace.is_empty(),
                "trace ring empty for {benchmark:?}/{scheme:?}"
            );
        }
    }
}

#[test]
fn vp_schemes_record_vp_events() {
    // The VP-specific lifecycle events (alloc/bind) must appear for the
    // virtual-physical schemes and never for the conventional ones.
    let exp = ExperimentConfig {
        warmup: 300,
        measure: 3_000,
        ..ExperimentConfig::default()
    };
    for scheme in SCHEMES {
        let obs = SimObserver::with_trace(PipelineTrace::new(1 << 16, op_names()));
        let (_, obs) = run_benchmark_observed(Benchmark::Swim, scheme, 64, &exp, obs);
        let trace = obs.trace.unwrap();
        let mut out = Vec::new();
        trace.emit_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let has_vp = text.contains("\"k\": \"vp-bind\"");
        let is_vp = matches!(
            scheme,
            RenameScheme::VirtualPhysicalIssue { .. }
                | RenameScheme::VirtualPhysicalWriteback { .. }
        );
        assert_eq!(
            has_vp, is_vp,
            "vp-bind presence mismatch for {scheme:?} (expected {is_vp})"
        );
        for line in text.lines() {
            vpr_obs::trace::validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
    }
}
