//! Checkpoint/restore correctness: a processor restored from a snapshot
//! must continue **bit-identically** to the uninterrupted run.
//!
//! Three layers of pinning:
//!
//! 1. `save_restore_run_matches_golden` replays the cycle-exactness
//!    goldens (`tests/golden/`) with a snapshot/restore inserted in the
//!    middle of the measurement window, for every renaming scheme on a
//!    cache-heavy benchmark — so restore is held to the *same* golden
//!    `SimStats` the optimised kernel is.
//! 2. `roundtrip_through_bytes_all_schemes` pushes the snapshot through
//!    its serialised byte form (envelope, checksum) and across a fresh
//!    trace generator.
//! 3. A property test checkpoints at random commit counts and verifies
//!    continuation equality each time.

use proptest::prelude::*;
use std::path::PathBuf;
use vpr_bench::harness::{scheme_label, THROUGHPUT_SCHEMES};
use vpr_bench::ExperimentConfig;
use vpr_core::{Processor, RenameScheme, SimConfig};
use vpr_snap::Snapshot;
use vpr_trace::{Benchmark, TraceBuilder, TraceGen};

fn quick_processor(
    benchmark: Benchmark,
    scheme: RenameScheme,
    exp: &ExperimentConfig,
) -> Processor<TraceGen> {
    let config = SimConfig::builder()
        .scheme(scheme)
        .physical_regs(64)
        .miss_penalty(exp.miss_penalty)
        .build();
    let trace = TraceBuilder::new(benchmark).seed(exp.seed).build();
    Processor::new(config, trace)
}

/// `save → restore → run` must reproduce the checked-in golden stats of
/// an uninterrupted run, for every scheme on the cache-heavy `swim`.
#[test]
fn save_restore_run_matches_golden() {
    let exp = ExperimentConfig::quick();
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let benchmark = Benchmark::Swim;
    for scheme in THROUGHPUT_SCHEMES {
        let mut cpu = quick_processor(benchmark, scheme, &exp);
        cpu.warm_up(exp.warmup);
        // One third of the window, then checkpoint mid-flight. A run can
        // overshoot its commit target by up to commit-width − 1, so the
        // continuation is sized off the *achieved* count to stop at the
        // same absolute target as the uninterrupted golden run.
        let first = cpu.run(exp.measure / 3).committed;
        let bytes = cpu.snapshot().to_bytes();
        let snapshot = Snapshot::from_bytes(&bytes).expect("own snapshot reopens");
        // Restore into a *fresh* generator at position zero: the snapshot
        // carries the stream position.
        let fresh_trace = TraceBuilder::new(benchmark).seed(exp.seed).build();
        let mut restored = Processor::restore(&snapshot, fresh_trace).expect("restore");
        let stats = restored.run(exp.measure - first);
        let rendered = format!("{stats:#?}\n");
        let path = golden_dir.join(format!("{}_{}.txt", benchmark.name(), scheme_label(scheme)));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        assert_eq!(
            rendered,
            golden,
            "{}/{}: restored continuation diverged from the uninterrupted golden",
            benchmark.name(),
            scheme_label(scheme)
        );
    }
}

/// Byte-level round trip on a second benchmark (branchy integer code) for
/// every scheme: continuation equality against an uninterrupted twin.
#[test]
fn roundtrip_through_bytes_all_schemes() {
    let exp = ExperimentConfig::quick();
    for benchmark in [Benchmark::Go, Benchmark::Compress] {
        for scheme in THROUGHPUT_SCHEMES {
            let mut uninterrupted = quick_processor(benchmark, scheme, &exp);
            uninterrupted.warm_up(500);
            uninterrupted.run(8_000);

            let mut checkpointed = quick_processor(benchmark, scheme, &exp);
            checkpointed.warm_up(500);
            let first = checkpointed.run(3_000).committed;
            let bytes = checkpointed.snapshot().to_bytes();
            let snapshot = Snapshot::from_bytes(&bytes).expect("reopen");
            let fresh = TraceBuilder::new(benchmark).seed(exp.seed).build();
            let mut restored = Processor::restore(&snapshot, fresh).expect("restore");
            restored.run(8_000 - first);

            assert_eq!(
                uninterrupted.stats(),
                restored.stats(),
                "{benchmark}/{}: window stats diverged after byte round trip",
                scheme_label(scheme)
            );
            assert_eq!(
                uninterrupted.cycle(),
                restored.cycle(),
                "{benchmark}/{}: cycle counts diverged",
                scheme_label(scheme)
            );
        }
    }
}

/// Restoring with a wrong-shaped snapshot fails loudly, not silently.
#[test]
fn snapshot_envelope_rejects_corruption() {
    let exp = ExperimentConfig::quick();
    let mut cpu = quick_processor(Benchmark::Swim, RenameScheme::Conventional, &exp);
    cpu.run(1_000);
    let mut bytes = cpu.snapshot().to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    assert!(Snapshot::from_bytes(&bytes).is_err(), "corruption detected");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint at a random point, restore, continue: the continuation
    /// is bit-identical for any checkpoint position and scheme.
    #[test]
    fn restore_continues_identically_from_random_checkpoints(
        checkpoint_commits in 100u64..6_000,
        scheme_idx in 0usize..4,
        bench_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let scheme = THROUGHPUT_SCHEMES[scheme_idx];
        let benchmark = [Benchmark::Swim, Benchmark::Go, Benchmark::Wave5][bench_idx];
        let exp = ExperimentConfig { seed, ..ExperimentConfig::quick() };
        let tail = 4_000u64;

        let mut uninterrupted = quick_processor(benchmark, scheme, &exp);
        uninterrupted.run(checkpoint_commits + tail);

        let mut checkpointed = quick_processor(benchmark, scheme, &exp);
        let first = checkpointed.run(checkpoint_commits).committed;
        let snapshot = checkpointed.snapshot();
        let fresh = TraceBuilder::new(benchmark).seed(seed).build();
        let mut restored = Processor::restore(&snapshot, fresh).expect("restore");
        restored.run(checkpoint_commits + tail - first);

        prop_assert_eq!(
            uninterrupted.stats(),
            restored.stats(),
            "stats diverged (checkpoint at {} commits, {:?}, {})",
            checkpoint_commits,
            scheme,
            benchmark
        );
        prop_assert_eq!(uninterrupted.cycle(), restored.cycle());
    }
}
