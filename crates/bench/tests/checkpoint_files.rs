//! `.vprsnap` files as experiment artefacts: write → reload → run must
//! equal the uninterrupted run **bit-identically**, and stale artefacts
//! must be rejected at load.
//!
//! Three layers:
//!
//! 1. `warm_checkpoint_through_disk_matches_golden` pushes a warm
//!    checkpoint through the full disk workflow (serial pass → `.vprsnap`
//!    file + manifest → reopen → validate → restore → run) for **all four
//!    renaming schemes** and holds the continuation to the same checked-in
//!    golden `SimStats` the optimised kernel is pinned by.
//! 2. `stale_and_corrupt_artefacts_are_rejected` exercises the manifest's
//!    staleness gates end to end: wrong configuration hash, edited file
//!    bytes, manifest/file mismatch.
//! 3. `sampled_sweep_is_deterministic_and_reuses_disk_checkpoints` pins
//!    the `--sampled` path: metrics are byte-identical across worker
//!    counts and across the warm-pass vs checkpoint-dir seeding paths.

use std::path::PathBuf;
use vpr_bench::checkpoints::{
    checkpoint_key, config_hash, generate_checkpoints, sim_config, CheckpointStore, KIND_WARM,
};
use vpr_bench::sweep::{run_sweep_metrics, SweepContext, SweepPoint};
use vpr_bench::workloads::{scheme_label, THROUGHPUT_SCHEMES};
use vpr_bench::ExperimentConfig;
use vpr_core::{Processor, RenameScheme};
use vpr_snap::manifest::ManifestError;
use vpr_trace::{Benchmark, TraceBuilder, TraceGen};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpr-checkpoint-files-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Warm checkpoint → `.vprsnap` on disk → reload → measure: equals the
/// golden stats of the uninterrupted run, for every scheme.
#[test]
fn warm_checkpoint_through_disk_matches_golden() {
    let exp = ExperimentConfig::quick();
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let dir = temp_dir("golden");
    let benchmark = Benchmark::Swim;

    let mut store = CheckpointStore::open(&dir).unwrap();
    for scheme in THROUGHPUT_SCHEMES {
        let generated = generate_checkpoints(benchmark, scheme, 64, &exp, None);
        store.save_all(&generated).unwrap();
    }
    store.flush().unwrap();

    // Reopen from disk cold and continue each scheme's run.
    let reopened = CheckpointStore::open(&dir).unwrap();
    for scheme in THROUGHPUT_SCHEMES {
        let config = sim_config(scheme, 64, &exp);
        let hash = config_hash(benchmark, &config, exp.seed);
        let key = checkpoint_key(benchmark, scheme, 64, &exp, KIND_WARM, exp.warmup);
        let (entry, snapshot) = reopened.load(&key, hash).unwrap_or_else(|e| {
            panic!("{}: {e}", scheme_label(scheme));
        });
        assert!(entry.committed >= exp.warmup);
        let fresh = TraceBuilder::new(benchmark).seed(exp.seed).build();
        let mut cpu: Processor<TraceGen> = Processor::restore(&snapshot, fresh).expect("restore");
        cpu.reset_window();
        let stats = cpu.run(exp.measure);
        let rendered = format!("{stats:#?}\n");
        let path = golden_dir.join(format!("{}_{}.txt", benchmark.name(), scheme_label(scheme)));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        assert_eq!(
            rendered,
            golden,
            "{}/{}: disk-restored run diverged from the uninterrupted golden",
            benchmark.name(),
            scheme_label(scheme)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The staleness gates: config-hash mismatch, corrupt file bytes, and a
/// file/manifest checksum disagreement all refuse to load.
#[test]
fn stale_and_corrupt_artefacts_are_rejected() {
    let exp = ExperimentConfig {
        warmup: 400,
        measure: 2_000,
        ..ExperimentConfig::quick()
    };
    let dir = temp_dir("stale");
    let benchmark = Benchmark::Go;
    let scheme = RenameScheme::Conventional;

    let generated = generate_checkpoints(benchmark, scheme, 64, &exp, None);
    let mut store = CheckpointStore::open(&dir).unwrap();
    store.save_all(&generated).unwrap();
    store.flush().unwrap();

    let store = CheckpointStore::open(&dir).unwrap();
    let config = sim_config(scheme, 64, &exp);
    let hash = config_hash(benchmark, &config, exp.seed);
    let key = checkpoint_key(benchmark, scheme, 64, &exp, KIND_WARM, exp.warmup);
    assert!(store.load(&key, hash).is_ok());

    // A run under a different configuration derives a different hash and
    // must see the artefact as stale.
    let other_config = sim_config(scheme, 96, &exp);
    let other_hash = config_hash(benchmark, &other_config, exp.seed);
    assert_ne!(hash, other_hash);
    assert!(matches!(
        store.load(&key, other_hash).unwrap_err(),
        vpr_bench::checkpoints::CheckpointLoadError::Manifest(ManifestError::StaleConfig { .. })
    ));

    // Flip one payload byte on disk: the envelope checksum catches it,
    // and the torn file is quarantined so a regenerated artefact can take
    // its place.
    let entry = store.manifest.find(&key).unwrap();
    let file = dir.join(&entry.file);
    let mut bytes = std::fs::read(&file).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    std::fs::write(&file, &bytes).unwrap();
    match store.load(&key, hash).unwrap_err() {
        vpr_bench::checkpoints::CheckpointLoadError::Corrupt {
            path,
            quarantined_to,
            ..
        } => {
            assert_eq!(path, file);
            let q = quarantined_to.expect("quarantine rename succeeds in a temp dir");
            assert!(q.exists(), "quarantined file kept for inspection");
            assert!(!file.exists(), "corrupt file moved out of the way");
        }
        other => panic!("expected Corrupt, got {other}"),
    }

    // Rewrite the file as a *valid but different* snapshot: the manifest's
    // recorded payload checksum no longer matches — same quarantine-and-
    // regenerate treatment as a torn envelope.
    let different = vpr_snap::Snapshot::new(vec![1, 2, 3]);
    different.write_to(&file).unwrap();
    match store.load(&key, hash).unwrap_err() {
        vpr_bench::checkpoints::CheckpointLoadError::Corrupt { detail, .. } => {
            assert!(detail.contains("checksum"), "unexpected detail: {detail}");
        }
        other => panic!("expected Corrupt, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The sampled sweep path is deterministic across worker counts, and
/// loading interval checkpoints from disk reproduces the in-memory
/// warm-pass numbers byte-for-byte.
#[test]
fn sampled_sweep_is_deterministic_and_reuses_disk_checkpoints() {
    let exp = ExperimentConfig {
        warmup: 500,
        measure: 6_000,
        jobs: 1,
        ..ExperimentConfig::quick()
    };
    let points = [
        SweepPoint::at64(Benchmark::Swim, RenameScheme::Conventional),
        SweepPoint::at64(
            Benchmark::Go,
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        ),
    ];

    let serial = run_sweep_metrics(&points, &exp, &SweepContext::new(true, None));
    let mut exp_par = exp;
    exp_par.jobs = 4;
    let parallel = run_sweep_metrics(&points, &exp_par, &SweepContext::new(true, None));
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "jobs-invariant ipc");
        assert_eq!(a.miss_ratio.to_bits(), b.miss_ratio.to_bits());
        assert_eq!(
            a.executions_per_commit.to_bits(),
            b.executions_per_commit.to_bits()
        );
    }

    // First sampled run against an empty directory generates and persists
    // the checkpoints; the second must load them and agree exactly.
    let dir = temp_dir("sweep");
    let first = run_sweep_metrics(&points, &exp, &SweepContext::new(true, Some(&dir)));
    assert!(
        dir.join("checkpoints.json").exists(),
        "sampled sweep persists generated checkpoints"
    );
    let second = run_sweep_metrics(&points, &exp, &SweepContext::new(true, Some(&dir)));
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "disk-seeded ipc");
    }
    for (a, b) in serial.points.iter().zip(&second.points) {
        assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "warm-pass == disk-seeded");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
