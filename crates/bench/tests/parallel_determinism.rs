//! Parallel-vs-serial determinism guard for the sweep engine.
//!
//! The contract of `vpr_bench::sweep` is that a sweep's output is
//! **byte-identical** for every worker count: one simulator per grid
//! point, results merged in submission order, nothing shared between
//! simulations. These tests pin that down for all four renaming schemes
//! and, via the property test, for arbitrary pool sizes and grid shapes
//! — so nobody can quietly introduce cross-simulation state (a shared
//! RNG, a global, an allocator-order dependence) without tripping it.

use proptest::prelude::*;
use vpr_bench::harness::{THROUGHPUT_BENCHMARKS, THROUGHPUT_SCHEMES};
use vpr_bench::{run_benchmark, run_sweep, ExperimentConfig, SweepPoint};
use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

fn quick_exp(jobs: usize) -> ExperimentConfig {
    ExperimentConfig {
        warmup: 200,
        measure: 2_000,
        jobs,
        ..ExperimentConfig::default()
    }
}

/// The full throughput grid: both benchmarks under all four schemes.
fn grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for benchmark in THROUGHPUT_BENCHMARKS {
        for scheme in THROUGHPUT_SCHEMES {
            points.push(SweepPoint::at64(benchmark, scheme));
        }
    }
    points
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial_for_all_schemes() {
    let points = grid();
    let serial = run_sweep(&points, &quick_exp(1));
    for jobs in [2, 4, 8] {
        let parallel = run_sweep(&points, &quick_exp(jobs));
        for (point, (s, p)) in points.iter().zip(serial.iter().zip(parallel.iter())) {
            // Compare the *rendered* stats so a failure shows the exact
            // diverging counter, and the assertion covers formatting too
            // (the goldens and JSON artefacts are rendered text).
            assert_eq!(
                format!("{s:#?}"),
                format!("{p:#?}"),
                "jobs={jobs} diverged from serial on {point:?}"
            );
        }
    }
}

#[test]
fn sweep_points_see_their_own_simulator_state() {
    // Two identical points must produce identical stats (no cross-talk),
    // and a third different point must not disturb them.
    let exp = quick_exp(3);
    let points = [
        SweepPoint::at64(
            Benchmark::Swim,
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        ),
        SweepPoint::at64(Benchmark::Go, RenameScheme::Conventional),
        SweepPoint::at64(
            Benchmark::Swim,
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        ),
    ];
    let stats = run_sweep(&points, &exp);
    assert_eq!(stats[0], stats[2], "identical points must agree exactly");
    assert_ne!(stats[0], stats[1], "different points must differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any pool size (1..=9 workers) over a randomly-shaped grid merges
    /// exactly the serial per-point results, in order.
    #[test]
    fn any_pool_size_matches_serial(
        jobs in 1usize..10,
        picks in prop::collection::vec((0usize..2, 0usize..4, 0usize..3), 1..7),
    ) {
        let sizes = [48usize, 64, 96];
        let points: Vec<SweepPoint> = picks
            .iter()
            .map(|&(b, s, r)| {
                let physical_regs = sizes[r];
                // Keep NRR legal for the smallest file (48 regs -> 16).
                let scheme = match s {
                    0 => RenameScheme::Conventional,
                    1 => RenameScheme::ConventionalEarlyRelease,
                    2 => RenameScheme::VirtualPhysicalIssue { nrr: 16 },
                    _ => RenameScheme::VirtualPhysicalWriteback { nrr: 16 },
                };
                SweepPoint {
                    workload: THROUGHPUT_BENCHMARKS[b].into(),
                    scheme,
                    physical_regs,
                }
            })
            .collect();
        let exp = ExperimentConfig {
            warmup: 100,
            measure: 800,
            jobs,
            ..ExperimentConfig::default()
        };
        let pooled = run_sweep(&points, &exp);
        for (point, got) in points.iter().zip(&pooled) {
            let want = run_benchmark(point.workload, point.scheme, point.physical_regs, &exp);
            prop_assert_eq!(got, &want, "jobs={} point={:?}", jobs, point);
        }
    }
}
