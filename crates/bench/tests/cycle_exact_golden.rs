//! Cycle-exactness regression guard for the simulation kernel.
//!
//! The kernel's data structures (calendar event queue, indexed IQ wakeup,
//! idle-cycle fast-forwarding) are pure *throughput* optimisations: they
//! must not change a single simulated outcome. This test runs the
//! `ExperimentConfig::quick()` workload under all four renaming schemes
//! and asserts the complete [`SimStats`] — committed counts, cycles,
//! squashes, every stall breakdown — are identical to golden values
//! captured from the pre-optimisation kernel (checked into
//! `tests/golden/`).
//!
//! To regenerate the goldens after an *intentional* behavioural change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p vpr-bench --test cycle_exact_golden
//! ```
//!
//! and review the diff like any other source change.

use std::path::PathBuf;
use vpr_bench::harness::{scheme_label, THROUGHPUT_BENCHMARKS, THROUGHPUT_SCHEMES};
use vpr_bench::{run_benchmark, ExperimentConfig};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn quick_stats_match_pre_optimization_kernel() {
    let exp = ExperimentConfig::quick();
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for benchmark in THROUGHPUT_BENCHMARKS {
        for scheme in THROUGHPUT_SCHEMES {
            let stats = run_benchmark(benchmark, scheme, 64, &exp);
            let rendered = format!("{stats:#?}\n");
            let path = dir.join(format!("{}_{}.txt", benchmark.name(), scheme_label(scheme)));
            if update {
                std::fs::write(&path, &rendered).expect("write golden");
                continue;
            }
            let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden {} ({e}); run with UPDATE_GOLDEN=1",
                    path.display()
                )
            });
            if rendered != golden {
                failures.push(format!(
                    "{}/{}: stats diverged from the golden kernel behaviour\n\
                     --- golden ---\n{golden}\n--- current ---\n{rendered}",
                    benchmark.name(),
                    scheme_label(scheme)
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "cycle-exactness violated for {} configuration(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
