//! Single-fault byte-identity: any **one** injected fault — an I/O
//! error, a truncated or bit-flipped write or read, a partial (crashed)
//! rename, or a job panic — may cost the sweep a retry or a checkpoint
//! regeneration, but never a bit of output. Every sweep metric must be
//! byte-identical to the fault-free run, and a fault that actually fired
//! must be visible in the structured `failures` block rather than passing
//! silently.
//!
//! The property sweeps seeds through [`FaultPlan::from_seed`], which maps
//! seeds onto the whole fault matrix (kind × hook × position). Each case
//! runs the faulted store cold (populate) and warm (load), so write
//! faults land in the first pass and read faults in the second.

use proptest::prelude::*;
use std::path::PathBuf;
use vpr_bench::sweep::{run_sweep_metrics, SweepContext, SweepMetrics, SweepPoint};
use vpr_bench::ExperimentConfig;
use vpr_core::RenameScheme;
use vpr_snap::faults::{self, FaultPlan};
use vpr_trace::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpr-fault-injection-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid() -> (Vec<SweepPoint>, ExperimentConfig) {
    let points = vec![
        SweepPoint::at64(Benchmark::Swim, RenameScheme::Conventional),
        SweepPoint::at64(
            Benchmark::Go,
            RenameScheme::VirtualPhysicalWriteback { nrr: 8 },
        ),
    ];
    let exp = ExperimentConfig {
        warmup: 256,
        measure: 1_024,
        jobs: 1, // serial: the nth-match fault position is deterministic
        ..ExperimentConfig::quick()
    };
    (points, exp)
}

fn run(points: &[SweepPoint], exp: &ExperimentConfig, dir: &std::path::Path) -> SweepMetrics {
    run_sweep_metrics(points, exp, &SweepContext::new(true, Some(dir)))
}

fn assert_bits_equal(got: &SweepMetrics, want: &SweepMetrics, ctx: &str) {
    assert_eq!(got.points.len(), want.points.len(), "{ctx}: point count");
    for (i, (g, w)) in got.points.iter().zip(&want.points).enumerate() {
        assert_eq!(g.ipc.to_bits(), w.ipc.to_bits(), "{ctx}: point {i} ipc");
        assert_eq!(
            g.miss_ratio.to_bits(),
            w.miss_ratio.to_bits(),
            "{ctx}: point {i} miss ratio"
        );
        assert_eq!(
            g.executions_per_commit.to_bits(),
            w.executions_per_commit.to_bits(),
            "{ctx}: point {i} executions/commit"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_single_fault_leaves_every_result_byte_identical(seed in 0u64..4096) {
        // Serialise against the other fault-arming tests in this binary;
        // the armed fault is process-global.
        let _guard = faults::exclusive();

        let (points, exp) = grid();
        // Fault-free reference: cold populate, then warm reload. The two
        // must agree (checkpoint-seeding is bit-exact) — everything the
        // faulted runs produce is compared against this.
        let clean_dir = temp_dir(&format!("clean-{seed}"));
        let reference = run(&points, &exp, &clean_dir);
        let reference_warm = run(&points, &exp, &clean_dir);
        assert_bits_equal(&reference_warm, &reference, "clean warm run");
        prop_assert!(reference.failures.is_empty(), "clean run reported failures");
        let _ = std::fs::remove_dir_all(&clean_dir);

        // The faulted pair: the empty target matches every path and job
        // label, so `nth` alone picks the site within the armed hook.
        let fault_dir = temp_dir(&format!("faulted-{seed}"));
        faults::arm(FaultPlan::from_seed(seed, ""));
        let cold = run(&points, &exp, &fault_dir);
        let warm = run(&points, &exp, &fault_dir);
        let record = faults::disarm();

        assert_bits_equal(&cold, &reference, &format!("seed {seed} cold"));
        assert_bits_equal(&warm, &reference, &format!("seed {seed} warm"));
        if let Some(r) = &record {
            // A fault that fired must be visible somewhere: a recovered
            // retry, a degradation note, or a persist warning. The one
            // exception is a corrupted *manifest read* that still parses —
            // it can masquerade as entries that were never written, which
            // is indistinguishable from a cold start, so the sweep
            // regenerates silently (the byte-identity assertions above
            // still hold). Artefact envelopes are checksummed end to end,
            // so on `.vprsnap` sites and job panics detection is total.
            let detection_guaranteed =
                r.op == faults::FaultOp::Job || r.site.ends_with(".vprsnap");
            prop_assert!(
                !detection_guaranteed
                    || !cold.failures.is_empty()
                    || !warm.failures.is_empty(),
                "seed {seed}: fault fired ({r:?}) but no failure was recorded"
            );
        }
        for f in cold.failures.iter().chain(&warm.failures) {
            prop_assert!(
                f.recovered,
                "seed {seed}: single fault must never be terminal: {f:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&fault_dir);
    }
}

/// A deterministically injected job panic: retried once, reported as a
/// recovered failure, output untouched. Pins the exact failure-block
/// shape the proptest only checks loosely.
#[test]
fn injected_job_panic_is_retried_and_reported() {
    let _guard = faults::exclusive();
    let (points, exp) = grid();
    let clean = run_sweep_metrics(&points, &exp, &SweepContext::new(true, None));

    faults::arm(FaultPlan::new(
        vpr_snap::faults::FaultKind::JobPanic,
        vpr_snap::faults::FaultOp::Job,
        "go/", // the second sweep point's label
    ));
    let faulted = run_sweep_metrics(&points, &exp, &SweepContext::new(true, None));
    let record = faults::disarm().expect("panic fault must fire");
    assert!(record.site.contains("go/"), "fired at {}", record.site);

    assert_bits_equal(&faulted, &clean, "after recovered panic");
    let panics: Vec<_> = faulted
        .failures
        .iter()
        .filter(|f| f.error.contains("job panic"))
        .collect();
    assert_eq!(panics.len(), 1, "failures: {:?}", faulted.failures);
    assert!(panics[0].recovered, "retry succeeded, so recovered = true");
    assert_eq!(panics[0].attempts, 1, "panicked on the first attempt");
    assert!(
        panics[0].point.contains("go/"),
        "point: {}",
        panics[0].point
    );
}
