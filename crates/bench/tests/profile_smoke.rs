//! Smoke tests for the throughput harness's `--profile` mode: profiled
//! stepping must not perturb the simulation (bit-identical `SimStats`),
//! the per-stage attributions must account for the whole measured total,
//! and the schema-v5 `profile` block must round-trip through the
//! workspace's minimal JSON parser.

use vpr_bench::harness::{measure_throughput, profile_throughput};
use vpr_bench::ExperimentConfig;
use vpr_core::{Processor, RenameScheme, SimConfig, Stage, StageProfile};
use vpr_trace::{Benchmark, TraceBuilder, TraceGen};

fn tiny_exp() -> ExperimentConfig {
    let mut exp = ExperimentConfig::quick();
    exp.warmup = 200;
    exp.measure = 1500;
    exp
}

fn build(scheme: RenameScheme, seed: u64) -> Processor<TraceGen> {
    let config = SimConfig::builder()
        .scheme(scheme)
        .physical_regs(64)
        .build();
    let trace = TraceBuilder::new(Benchmark::Go).seed(seed).build();
    Processor::new(config, trace)
}

/// The profile instrumentation must be observation-only: a profiled run
/// produces exactly the stats of a plain run on the same machine.
#[test]
fn profiled_run_is_bit_identical_to_plain_run() {
    for scheme in [
        RenameScheme::Conventional,
        RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
    ] {
        let mut plain = build(scheme, 7);
        let plain_stats = plain.run(2000);

        let mut profiled = build(scheme, 7);
        let mut prof = StageProfile::new();
        let prof_stats = profiled.run_profiled(2000, &mut prof);

        assert_eq!(plain_stats, prof_stats, "profiling perturbed {scheme:?}");
        assert_eq!(plain.cycle(), profiled.cycle());
        assert!(prof.steps > 0, "no steps recorded");
        assert!(prof.total_events() > 0, "no events attributed");
    }
}

/// Per-stage attributions must account for the totals: the stage sums are
/// the totals by definition, and the exact event counters must line up
/// with the architecture (commit events == committed instructions).
#[test]
fn stage_attributions_sum_to_totals() {
    let mut cpu = build(RenameScheme::Conventional, 11);
    let mut prof = StageProfile::new();
    let stats = cpu.run_profiled(3000, &mut prof);

    let ns_sum: u64 = Stage::ALL.iter().map(|&s| prof.stage(s).ns).sum();
    let ev_sum: u64 = Stage::ALL.iter().map(|&s| prof.stage(s).events).sum();
    assert_eq!(ns_sum, prof.total_ns());
    assert_eq!(ev_sum, prof.total_events());
    assert_eq!(
        prof.stage(Stage::Commit).events,
        stats.committed,
        "commit attribution must equal the committed-instruction count"
    );
    assert!(prof.stage(Stage::Fetch).events >= stats.committed);
}

/// The v5 report with a profile block must parse back through
/// `vpr_snap::manifest::parse_json`, and the serialised stage rows must
/// sum to the serialised total.
#[test]
fn v5_profile_block_round_trips_through_json() {
    let exp = tiny_exp();
    let mut report = measure_throughput(&exp, 1);
    report.profile = Some(profile_throughput(&exp));
    let json = report.to_json();

    let doc = vpr_snap::manifest::parse_json(&json).expect("v5 report parses");
    let root = doc.as_object().expect("object root");
    assert_eq!(
        root.get("schema").and_then(|v| v.as_str()),
        Some("vpr-bench-throughput/v5")
    );
    let profile = root
        .get("profile")
        .and_then(|v| v.as_object())
        .expect("profile block present");
    assert!(profile.get("steps").and_then(|v| v.as_f64()).unwrap() > 0.0);
    let total_ns = profile.get("total_ns").and_then(|v| v.as_f64()).unwrap();
    let stages = profile
        .get("stages")
        .and_then(|v| v.as_array())
        .expect("stages array");
    assert_eq!(stages.len(), Stage::ALL.len());
    let mut ns_sum = 0.0;
    let mut names = Vec::new();
    for row in stages {
        let row = row.as_object().expect("stage row object");
        names.push(
            row.get("stage")
                .and_then(|v| v.as_str())
                .unwrap()
                .to_owned(),
        );
        ns_sum += row.get("ns").and_then(|v| v.as_f64()).unwrap();
        assert!(row.get("events").and_then(|v| v.as_f64()).is_some());
    }
    assert_eq!(ns_sum, total_ns, "stage ns rows must sum to total_ns");
    let expected: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
    assert_eq!(names, expected, "stage order matches pipeline order");
}
