//! Sampled-simulation accuracy gate: the sampling harness must estimate
//! the quick table2 workload's reported IPC within 2 % of the full-run
//! reference, from ≤ 25 % of its instructions simulated in detail.
//!
//! The table2 artefact reports per-benchmark IPCs and their harmonic mean
//! per scheme; the 2 % bound applies to that reported (harmonic-mean)
//! IPC, and the derived headline — the VP-over-conventional improvement —
//! must agree within 3 percentage points. Individual `(benchmark,
//! scheme)` estimates are additionally held to a looser 10 % sanity
//! bound: at this deliberately tiny CI scale (30 k-instruction region)
//! the per-configuration estimates carry a few percent of irreducible
//! sampling variance (see the module docs of `vpr_bench::sampling`).
//!
//! Everything here is deterministic — fixed seed, fixed plan, and the
//! parallel fan-out merges in submission order — so the gate cannot
//! flake.

use vpr_bench::sampling::{
    evaluate_sampling_with_profile, profile_region, SamplingAccuracy, SamplingPlan,
};
use vpr_bench::sweep::{run_sweep_metrics, SweepContext, SweepPoint};
use vpr_bench::ExperimentConfig;
use vpr_core::{harmonic_mean, RenameScheme, SimConfig};
use vpr_trace::Benchmark;

fn harmonic_pair(rows: &[SamplingAccuracy]) -> (f64, f64) {
    let full: Vec<f64> = rows.iter().map(|r| r.full_ipc).collect();
    let sampled: Vec<f64> = rows.iter().map(|r| r.sampled_ipc).collect();
    (harmonic_mean(&full), harmonic_mean(&sampled))
}

#[test]
fn quick_table2_sampled_ipc_within_bounds() {
    let exp = ExperimentConfig::quick();
    let plan = SamplingPlan::for_experiment(&exp);
    assert!(
        plan.detailed_fraction() <= 0.25,
        "plan simulates {:.1}% in detailed mode, over the 25% budget",
        plan.detailed_fraction() * 100.0
    );

    let schemes = [
        RenameScheme::Conventional,
        RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
    ];
    let mut per_scheme: Vec<Vec<SamplingAccuracy>> = vec![Vec::new(), Vec::new()];
    for benchmark in Benchmark::ALL {
        // One scheme-independent functional profile per benchmark.
        let profile_config = SimConfig::builder()
            .scheme(schemes[0])
            .physical_regs(64)
            .miss_penalty(exp.miss_penalty)
            .build();
        let profile = profile_region(
            benchmark,
            exp.seed,
            plan.offset,
            plan.region,
            &profile_config,
        );
        for (i, &scheme) in schemes.iter().enumerate() {
            let row = evaluate_sampling_with_profile(benchmark, scheme, 64, &exp, &plan, &profile);
            assert!(
                row.ipc_error_percent().abs() <= 10.0,
                "{benchmark}/{scheme:?}: per-config sampled IPC off by {:.2}% (>10%)",
                row.ipc_error_percent()
            );
            per_scheme[i].push(row);
        }
    }

    // The table2 workload's reported IPC (harmonic mean per scheme
    // column) must be within 2% of the full-run reference.
    let mut hms = Vec::new();
    for (rows, scheme) in per_scheme.iter().zip(schemes) {
        let (full_hm, sampled_hm) = harmonic_pair(rows);
        let err = (sampled_hm / full_hm - 1.0) * 100.0;
        assert!(
            err.abs() <= 2.0,
            "{scheme:?}: sampled harmonic-mean IPC {sampled_hm:.4} vs full {full_hm:.4} \
             ({err:+.2}%, bound 2%)"
        );
        hms.push((full_hm, sampled_hm));
    }

    // The headline metric — VP improvement over conventional — is a ratio
    // of the two 2%-bounded harmonic means, so its drift can reach ~4
    // percentage points in the worst case; hold it to 3.
    let full_improvement = (hms[1].0 / hms[0].0 - 1.0) * 100.0;
    let sampled_improvement = (hms[1].1 / hms[0].1 - 1.0) * 100.0;
    assert!(
        (full_improvement - sampled_improvement).abs() <= 3.0,
        "improvement drifted: full {full_improvement:.2}% vs sampled {sampled_improvement:.2}%"
    );
}

/// The checkpoint-seeded estimator (the `--sampled` experiment path) is
/// held to the tight bounds the functional estimator cannot reach at this
/// scale: **every** `(benchmark, scheme)` configuration of the quick
/// table2 grid within 2 % of its exact IPC, and each scheme's reported
/// harmonic-mean IPC within 1 % — from windows covering ≤ 50 % of the
/// region, with no per-interval warm-up (each window restores the exact
/// machine state from an interval checkpoint of one warm serial pass).
#[test]
fn quick_table2_checkpoint_sampled_ipc_within_tight_bounds() {
    let exp = ExperimentConfig::quick();
    let plan = SamplingPlan::for_experiment_checkpointed(&exp);
    assert_eq!(
        plan.detailed_warmup, 0,
        "checkpoint windows need no warm-up"
    );
    assert!(
        plan.detailed_fraction() <= 0.5,
        "plan simulates {:.1}% in detailed mode, over the 50% budget",
        plan.detailed_fraction() * 100.0
    );

    let points: Vec<SweepPoint> = vpr_bench::workloads::table2_grid()
        .into_iter()
        .map(|(b, s)| SweepPoint::at64(b, s))
        .collect();
    let exact = run_sweep_metrics(&points, &exp, &SweepContext::exact());
    let sampled = run_sweep_metrics(&points, &exp, &SweepContext::new(true, None));

    let mut per_scheme: std::collections::BTreeMap<String, (Vec<f64>, Vec<f64>)> =
        Default::default();
    for (p, (e, s)) in points.iter().zip(exact.points.iter().zip(&sampled.points)) {
        let err = (s.ipc / e.ipc - 1.0) * 100.0;
        assert!(
            err.abs() <= 2.0,
            "{}/{}: checkpoint-sampled IPC off by {err:+.2}% (>2%)",
            p.workload.name(),
            vpr_bench::workloads::scheme_label(p.scheme)
        );
        let slot = per_scheme
            .entry(vpr_bench::workloads::scheme_label(p.scheme))
            .or_default();
        slot.0.push(e.ipc);
        slot.1.push(s.ipc);
    }
    for (label, (full, est)) in per_scheme {
        let err = (harmonic_mean(&est) / harmonic_mean(&full) - 1.0) * 100.0;
        assert!(
            err.abs() <= 1.0,
            "{label}: sampled harmonic-mean IPC off by {err:+.2}% (>1%)"
        );
    }
}
