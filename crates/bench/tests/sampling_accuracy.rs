//! Sampled-simulation accuracy gate: the sampling harness must estimate
//! the quick table2 workload's reported IPC within 2 % of the full-run
//! reference, from ≤ 25 % of its instructions simulated in detail.
//!
//! The table2 artefact reports per-benchmark IPCs and their harmonic mean
//! per scheme; the 2 % bound applies to that reported (harmonic-mean)
//! IPC, and the derived headline — the VP-over-conventional improvement —
//! must agree within 3 percentage points. Individual `(benchmark,
//! scheme)` estimates are additionally held to a looser 10 % sanity
//! bound: at this deliberately tiny CI scale (30 k-instruction region)
//! the per-configuration estimates carry a few percent of irreducible
//! sampling variance (see the module docs of `vpr_bench::sampling`).
//!
//! Everything here is deterministic — fixed seed, fixed plan, and the
//! parallel fan-out merges in submission order — so the gate cannot
//! flake.

use vpr_bench::sampling::{
    evaluate_sampling_with_profile, profile_region, SamplingAccuracy, SamplingPlan,
};
use vpr_bench::ExperimentConfig;
use vpr_core::{harmonic_mean, RenameScheme, SimConfig};
use vpr_trace::Benchmark;

fn harmonic_pair(rows: &[SamplingAccuracy]) -> (f64, f64) {
    let full: Vec<f64> = rows.iter().map(|r| r.full_ipc).collect();
    let sampled: Vec<f64> = rows.iter().map(|r| r.sampled_ipc).collect();
    (harmonic_mean(&full), harmonic_mean(&sampled))
}

#[test]
fn quick_table2_sampled_ipc_within_bounds() {
    let exp = ExperimentConfig::quick();
    let plan = SamplingPlan::for_experiment(&exp);
    assert!(
        plan.detailed_fraction() <= 0.25,
        "plan simulates {:.1}% in detailed mode, over the 25% budget",
        plan.detailed_fraction() * 100.0
    );

    let schemes = [
        RenameScheme::Conventional,
        RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
    ];
    let mut per_scheme: Vec<Vec<SamplingAccuracy>> = vec![Vec::new(), Vec::new()];
    for benchmark in Benchmark::ALL {
        // One scheme-independent functional profile per benchmark.
        let profile_config = SimConfig::builder()
            .scheme(schemes[0])
            .physical_regs(64)
            .miss_penalty(exp.miss_penalty)
            .build();
        let profile = profile_region(
            benchmark,
            exp.seed,
            plan.offset,
            plan.region,
            &profile_config,
        );
        for (i, &scheme) in schemes.iter().enumerate() {
            let row = evaluate_sampling_with_profile(benchmark, scheme, 64, &exp, &plan, &profile);
            assert!(
                row.ipc_error_percent().abs() <= 10.0,
                "{benchmark}/{scheme:?}: per-config sampled IPC off by {:.2}% (>10%)",
                row.ipc_error_percent()
            );
            per_scheme[i].push(row);
        }
    }

    // The table2 workload's reported IPC (harmonic mean per scheme
    // column) must be within 2% of the full-run reference.
    let mut hms = Vec::new();
    for (rows, scheme) in per_scheme.iter().zip(schemes) {
        let (full_hm, sampled_hm) = harmonic_pair(rows);
        let err = (sampled_hm / full_hm - 1.0) * 100.0;
        assert!(
            err.abs() <= 2.0,
            "{scheme:?}: sampled harmonic-mean IPC {sampled_hm:.4} vs full {full_hm:.4} \
             ({err:+.2}%, bound 2%)"
        );
        hms.push((full_hm, sampled_hm));
    }

    // The headline metric — VP improvement over conventional — is a ratio
    // of the two 2%-bounded harmonic means, so its drift can reach ~4
    // percentage points in the worst case; hold it to 3.
    let full_improvement = (hms[1].0 / hms[0].0 - 1.0) * 100.0;
    let sampled_improvement = (hms[1].1 / hms[0].1 - 1.0) * 100.0;
    assert!(
        (full_improvement - sampled_improvement).abs() <= 3.0,
        "improvement drifted: full {full_improvement:.2}% vs sampled {sampled_improvement:.2}%"
    );
}
