//! Determinism guard for the observability layer's metric export.
//!
//! The `metrics` block of every experiment artefact must be
//! **byte-identical** for every `--jobs` value: each sweep point carries
//! its own `SimMetrics`, and the merge is commutative integer addition
//! applied in submission order. These tests pin the rendered JSON (and
//! the Prometheus text exposition) across worker counts, so nobody can
//! quietly introduce merge-order- or thread-dependent state into the
//! registry without tripping it.

use proptest::prelude::*;
use vpr_bench::harness::THROUGHPUT_BENCHMARKS;
use vpr_bench::sweep::MetricsBlock;
use vpr_bench::{run_sweep_metrics, ExperimentConfig, SweepContext, SweepPoint};
use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

fn quick_exp(jobs: usize) -> ExperimentConfig {
    ExperimentConfig {
        warmup: 200,
        measure: 2_000,
        jobs,
        ..ExperimentConfig::default()
    }
}

/// Renders the block the way the artefacts do — byte-level equality on
/// this string is exactly the contract the JSON twins need.
fn rendered(metrics: &MetricsBlock) -> (String, Option<String>) {
    (metrics.to_json_value(), metrics.to_prometheus())
}

#[test]
fn metrics_block_is_byte_identical_across_jobs_1_2_8() {
    let points = [
        SweepPoint::at64(Benchmark::Go, RenameScheme::Conventional),
        SweepPoint::at64(Benchmark::Go, RenameScheme::ConventionalEarlyRelease),
        SweepPoint::at64(
            Benchmark::Swim,
            RenameScheme::VirtualPhysicalIssue { nrr: 16 },
        ),
        SweepPoint::at64(
            Benchmark::Swim,
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        ),
    ];
    let ctx = SweepContext::default();
    let serial = run_sweep_metrics(&points, &quick_exp(1), &ctx);
    assert!(
        serial.failures.is_empty(),
        "clean run expected: {:?}",
        serial.failures
    );
    let want = rendered(&serial.metrics);
    assert!(
        want.0.starts_with("{\"mode\": \"exact\""),
        "exact sweeps must export a series: {}",
        want.0
    );
    for jobs in [2, 8] {
        let pooled = run_sweep_metrics(&points, &quick_exp(jobs), &ctx);
        assert_eq!(
            rendered(&pooled.metrics),
            want,
            "metrics diverged between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn sampled_sweeps_export_no_series() {
    let block = MetricsBlock::SampledUnavailable;
    assert_eq!(block.to_json_value(), "{\"mode\": \"sampled\"}");
    assert!(block.to_prometheus().is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any pool size over a randomly-shaped grid renders the same metric
    /// series as the serial sweep.
    #[test]
    fn any_pool_size_renders_serial_metrics(
        jobs in 2usize..9,
        picks in prop::collection::vec((0usize..2, 0usize..4), 1..5),
    ) {
        let points: Vec<SweepPoint> = picks
            .iter()
            .map(|&(b, s)| {
                let scheme = match s {
                    0 => RenameScheme::Conventional,
                    1 => RenameScheme::ConventionalEarlyRelease,
                    2 => RenameScheme::VirtualPhysicalIssue { nrr: 16 },
                    _ => RenameScheme::VirtualPhysicalWriteback { nrr: 16 },
                };
                SweepPoint::at64(THROUGHPUT_BENCHMARKS[b], scheme)
            })
            .collect();
        let exp = |jobs| ExperimentConfig {
            warmup: 100,
            measure: 800,
            jobs,
            ..ExperimentConfig::default()
        };
        let ctx = SweepContext::default();
        let serial = run_sweep_metrics(&points, &exp(1), &ctx);
        let pooled = run_sweep_metrics(&points, &exp(jobs), &ctx);
        prop_assert_eq!(
            rendered(&pooled.metrics),
            rendered(&serial.metrics),
            "jobs={} grid={:?}",
            jobs,
            points
        );
    }
}
