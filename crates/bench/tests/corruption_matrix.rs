//! The corruption matrix: every structural region of a `.vprsnap`
//! artefact — magic, format version, checksum, payload length, payload
//! bytes — plus the manifest itself is deliberately damaged, and every
//! damaged load must come back as a **typed error**, never a panic. A
//! corrupt artefact is additionally quarantined (renamed to `*.corrupt`)
//! so a regenerated replacement can be written under the original name,
//! and regeneration restores a loadable store — the quarantine-and-
//! regenerate half of the crash-safety contract (`docs/robustness.md`).

use std::path::PathBuf;
use vpr_bench::checkpoints::{
    checkpoint_key, config_hash, generate_checkpoints, sim_config, CheckpointLoadError,
    CheckpointStore, KIND_WARM,
};
use vpr_bench::ExperimentConfig;
use vpr_core::RenameScheme;
use vpr_snap::manifest::MANIFEST_FILE;
use vpr_trace::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vpr-corruption-matrix-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_exp() -> ExperimentConfig {
    ExperimentConfig {
        warmup: 300,
        measure: 1_500,
        ..ExperimentConfig::quick()
    }
}

/// Builds a one-artefact store and returns `(dir, artefact path, key,
/// config hash)`.
fn seeded_store(tag: &str) -> (PathBuf, PathBuf, vpr_snap::manifest::CheckpointKey, u64) {
    let exp = quick_exp();
    let dir = temp_dir(tag);
    let benchmark = Benchmark::Li;
    let scheme = RenameScheme::Conventional;
    let generated = generate_checkpoints(benchmark, scheme, 64, &exp, None);
    let mut store = CheckpointStore::open(&dir).unwrap();
    store.save_all(&generated).unwrap();
    store.flush().unwrap();
    let key = checkpoint_key(benchmark, scheme, 64, &exp, KIND_WARM, exp.warmup);
    let hash = config_hash(benchmark, &sim_config(scheme, 64, &exp), exp.seed);
    let file = dir.join(&store.manifest.find(&key).unwrap().file);
    (dir, file, key, hash)
}

/// Every structural region of the envelope, bit-flipped and truncated:
/// typed `Corrupt` error + quarantine, never a panic, and a regenerated
/// artefact loads cleanly afterwards.
#[test]
fn every_envelope_region_fails_typed_and_quarantines() {
    // [8B magic][4B version][8B checksum][8B payload len][payload...]
    let regions: &[(&str, usize)] = &[
        ("magic", 0),
        ("version", 8),
        ("checksum", 12),
        ("payload-len", 20),
        ("payload-first", 28),
    ];
    let (dir, file, key, hash) = seeded_store("regions");
    let pristine = std::fs::read(&file).unwrap();
    assert!(
        pristine.len() > 28,
        "artefact too small to exercise the matrix"
    );
    let mut cases: Vec<(String, Vec<u8>)> = Vec::new();
    for &(name, offset) in regions {
        let mut bytes = pristine.clone();
        bytes[offset] ^= 0x01;
        cases.push((format!("flip:{name}"), bytes));
    }
    // The final payload byte (checksum coverage reaches the end).
    let mut tail = pristine.clone();
    *tail.last_mut().unwrap() ^= 0x80;
    cases.push(("flip:payload-last".into(), tail));
    // Truncations: empty file, mid-magic, header-only, mid-payload.
    for &cut in &[0usize, 5, 28, pristine.len() - 3] {
        cases.push((format!("truncate:{cut}"), pristine[..cut].to_vec()));
    }

    let store = CheckpointStore::open(&dir).unwrap();
    for (case, bytes) in cases {
        std::fs::write(&file, &bytes).unwrap();
        match store.load(&key, hash) {
            Err(CheckpointLoadError::Corrupt {
                path,
                quarantined_to,
                detail,
            }) => {
                assert_eq!(path, file, "{case}");
                let q = quarantined_to.unwrap_or_else(|| panic!("{case}: no quarantine"));
                assert!(q.exists(), "{case}: quarantined file must survive");
                assert!(!file.exists(), "{case}: corrupt file must be moved away");
                assert!(!detail.is_empty(), "{case}: empty detail");
                std::fs::remove_file(&q).unwrap();
            }
            Err(other) => panic!("{case}: expected Corrupt, got {other}"),
            Ok(_) => panic!("{case}: corrupt artefact loaded"),
        }
    }

    // Quarantine-and-regenerate: write the artefact set afresh and the
    // store serves it again under the original name.
    let exp = quick_exp();
    let generated = generate_checkpoints(Benchmark::Li, RenameScheme::Conventional, 64, &exp, None);
    let mut store = CheckpointStore::open(&dir).unwrap();
    store.save_all(&generated).unwrap();
    store.flush().unwrap();
    assert!(
        store.load(&key, hash).is_ok(),
        "regenerated artefact must load"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A manifest whose *entry* lies about its artefact (tampered payload
/// checksum) is a typed corruption, not a panic, and the artefact is
/// quarantined for regeneration.
#[test]
fn tampered_manifest_entry_is_typed_corruption() {
    let (dir, file, key, hash) = seeded_store("entry");
    let manifest_path = dir.join(MANIFEST_FILE);
    let json = std::fs::read_to_string(&manifest_path).unwrap();
    // Nudge the recorded payload checksum: the envelope still validates,
    // the manifest row no longer matches it.
    let store = CheckpointStore::open(&dir).unwrap();
    let recorded = store.manifest.find(&key).unwrap().payload_checksum;
    let tampered = json.replace(
        &format!("\"payload_checksum\": {recorded}"),
        &format!("\"payload_checksum\": {}", recorded.wrapping_add(1)),
    );
    assert_ne!(json, tampered, "tamper target not found in manifest JSON");
    std::fs::write(&manifest_path, tampered).unwrap();
    let store = CheckpointStore::open(&dir).unwrap();
    match store.load(&key, hash) {
        Err(CheckpointLoadError::Corrupt { quarantined_to, .. }) => {
            assert!(quarantined_to.is_some_and(|q| q.exists()));
            assert!(!file.exists());
        }
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("tampered entry loaded"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A syntactically destroyed or truncated manifest: `open` reports a
/// typed I/O error naming the path, and `open_resilient` quarantines it
/// and opens the store empty with a degradation note.
#[test]
fn corrupt_manifest_opens_resilient_and_quarantines() {
    for (case, damage) in [
        ("garbage", b"{not json at all".to_vec()),
        ("truncated", b"{\"schema\": \"vpr-snap-ch".to_vec()),
        ("empty", Vec::new()),
    ] {
        let (dir, _file, _key, _hash) = seeded_store(&format!("manifest-{case}"));
        let manifest_path = dir.join(MANIFEST_FILE);
        std::fs::write(&manifest_path, &damage).unwrap();
        let err = CheckpointStore::open(&dir).unwrap_err();
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidData,
            "{case}: wrong error kind"
        );
        assert!(
            err.to_string().contains(MANIFEST_FILE),
            "{case}: error must name the manifest: {err}"
        );
        let (store, note) = CheckpointStore::open_resilient(&dir);
        assert!(store.manifest.entries.is_empty(), "{case}: store not empty");
        let note = note.unwrap_or_else(|| panic!("{case}: no degradation note"));
        assert!(note.contains("quarantined"), "{case}: note: {note}");
        assert!(!manifest_path.exists(), "{case}: manifest left in place");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
