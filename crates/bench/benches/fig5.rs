//! Criterion bench for Figure 5: prints the issue-allocation NRR sweep on
//! a reduced run, then times the issue-allocation scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vpr_bench::{experiments, run_benchmark, ExperimentConfig};
use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

fn bench_fig5(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let sweep = experiments::fig5(&exp);
    println!("\n=== Figure 5 (reduced run) ===");
    println!("{}", sweep.render());

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("swim/vp-issue/nrr=32", |b| {
        b.iter(|| {
            black_box(run_benchmark(
                Benchmark::Swim,
                RenameScheme::VirtualPhysicalIssue { nrr: 32 },
                64,
                &ExperimentConfig {
                    warmup: 1_000,
                    measure: 10_000,
                    ..ExperimentConfig::quick()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
