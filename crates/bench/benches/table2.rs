//! Criterion bench for Table 2: prints the conv-vs-VP IPC table on a
//! reduced run, then times the two headline configurations so simulator
//! performance regressions are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vpr_bench::{experiments, run_benchmark, ExperimentConfig};
use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

fn bench_table2(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let t2 = experiments::table2(&exp);
    println!(
        "\n=== Table 2 (reduced run: {} instructions) ===",
        exp.measure
    );
    println!("{}", t2.render());
    println!(
        "mean improvement {:+.1}% (paper: +19%)\n",
        t2.mean_improvement_percent()
    );

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for (name, scheme) in [
        ("swim/conventional", RenameScheme::Conventional),
        (
            "swim/vp-writeback",
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_benchmark(
                    Benchmark::Swim,
                    scheme,
                    64,
                    &ExperimentConfig {
                        warmup: 1_000,
                        measure: 10_000,
                        ..ExperimentConfig::quick()
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
