//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the optional +1-cycle VP commit delay (PMT look-up, paper §3.2.2);
//! * wrong-path injection vs fetch-stall misprediction handling;
//! * NRR sensitivity in the genuinely register-scarce regime (48
//!   registers), where the paper's Figure-4 pathology reproduces most
//!   clearly in this implementation;
//! * the 20-cycle miss-penalty sensitivity point of Table 2.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vpr_bench::{run_benchmark, ExperimentConfig};
use vpr_core::{Processor, RenameScheme, SimConfig};
use vpr_trace::{Benchmark, TraceBuilder};

fn run_with(config: SimConfig, benchmark: Benchmark, measure: u64) -> f64 {
    let trace = TraceBuilder::new(benchmark).seed(42).build();
    let mut cpu = Processor::new(config, trace);
    cpu.warm_up(2_000);
    cpu.run(measure).ipc()
}

fn ablation_vp_commit_delay(c: &mut Criterion) {
    let base = SimConfig::builder()
        .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 32 })
        .build();
    let mut delayed = base.clone();
    delayed.vp_commit_delay = true;
    let fast = run_with(base.clone(), Benchmark::Swim, 30_000);
    let slow = run_with(delayed, Benchmark::Swim, 30_000);
    println!("\n=== Ablation: VP commit delay (swim) ===");
    println!("no delay: IPC {fast:.3}; +1-cycle PMT delay: IPC {slow:.3}");
    assert!(slow <= fast * 1.02, "the delay cannot help");

    let mut group = c.benchmark_group("ablation/commit-delay");
    group.sample_size(10);
    group.bench_function("swim/delayed", |b| {
        let mut cfg = SimConfig::builder()
            .scheme(RenameScheme::VirtualPhysicalWriteback { nrr: 32 })
            .build();
        cfg.vp_commit_delay = true;
        b.iter(|| black_box(run_with(cfg.clone(), Benchmark::Swim, 10_000)));
    });
    group.finish();
}

fn ablation_wrong_path(c: &mut Criterion) {
    let stall = SimConfig::builder()
        .scheme(RenameScheme::Conventional)
        .build();
    let mut inject = stall.clone();
    inject.wrong_path_injection = true;
    let s = run_with(stall, Benchmark::Go, 30_000);
    let i = run_with(inject, Benchmark::Go, 30_000);
    println!("\n=== Ablation: wrong-path handling (go, conventional) ===");
    println!("fetch-stall: IPC {s:.3}; wrong-path injection: IPC {i:.3}");

    let mut group = c.benchmark_group("ablation/wrong-path");
    group.sample_size(10);
    group.bench_function("go/injection", |b| {
        let mut cfg = SimConfig::builder()
            .scheme(RenameScheme::Conventional)
            .build();
        cfg.wrong_path_injection = true;
        b.iter(|| black_box(run_with(cfg.clone(), Benchmark::Go, 10_000)));
    });
    group.finish();
}

fn ablation_nrr_scarcity(_c: &mut Criterion) {
    println!("\n=== Ablation: NRR at 48 registers (scarce regime) ===");
    println!("bench  NRR=1  NRR=4  NRR=16");
    for b in [Benchmark::Swim, Benchmark::Apsi] {
        let ipcs: Vec<f64> = [1usize, 4, 16]
            .iter()
            .map(|&nrr| {
                run_with(
                    SimConfig::builder()
                        .scheme(RenameScheme::VirtualPhysicalWriteback { nrr })
                        .physical_regs(48)
                        .build(),
                    b,
                    30_000,
                )
            })
            .collect();
        println!(
            "{:>5}  {:.3}  {:.3}  {:.3}",
            b.name(),
            ipcs[0],
            ipcs[1],
            ipcs[2]
        );
        assert!(
            ipcs[2] >= ipcs[0],
            "{b}: max NRR must not lose to NRR=1 under scarcity"
        );
    }
}

fn ablation_early_release(_c: &mut Criterion) {
    // The paper's two waste intervals (§3.1): early release (refs [8]/[10])
    // removes the read-to-next-writer-commit tail; virtual-physical
    // write-back removes the decode-to-writeback head. Compare all four
    // schemes on the register-hungry FP benchmarks.
    println!("\n=== Ablation: four schemes, 64 regs (IPC) ===");
    println!("bench  conv  conv+early-release  vp-issue  vp-writeback");
    for b in [Benchmark::Swim, Benchmark::Apsi, Benchmark::Vortex] {
        let ipc = |scheme| run_with(SimConfig::builder().scheme(scheme).build(), b, 30_000);
        let conv = ipc(RenameScheme::Conventional);
        let er = ipc(RenameScheme::ConventionalEarlyRelease);
        let issue = ipc(RenameScheme::VirtualPhysicalIssue { nrr: 32 });
        let wb = ipc(RenameScheme::VirtualPhysicalWriteback { nrr: 32 });
        println!(
            "{:>5}  {conv:.2}  {er:>18.2}  {issue:>8.2}  {wb:>12.2}",
            b.name()
        );
        assert!(
            er >= conv * 0.98,
            "{b}: early release should not lose to conventional"
        );
        assert!(
            wb >= conv,
            "{b}: write-back should not lose to conventional"
        );
    }
}

fn ablation_miss_penalty(_c: &mut Criterion) {
    let exp50 = ExperimentConfig::quick();
    let exp20 = ExperimentConfig {
        miss_penalty: 20,
        ..exp50
    };
    let at = |exp: &ExperimentConfig| {
        let conv = run_benchmark(Benchmark::Swim, RenameScheme::Conventional, 64, exp).ipc();
        let vp = run_benchmark(
            Benchmark::Swim,
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
            64,
            exp,
        )
        .ipc();
        vp / conv
    };
    let s50 = at(&exp50);
    let s20 = at(&exp20);
    println!("\n=== Ablation: miss penalty (swim speedup) ===");
    println!(
        "50-cycle miss: {s50:.2}x; 20-cycle miss: {s20:.2}x (paper: improvement drops 19%→12%)"
    );
    assert!(
        s20 < s50,
        "a cheaper miss must shrink the VP advantage: {s20:.2} vs {s50:.2}"
    );
}

criterion_group!(
    benches,
    ablation_vp_commit_delay,
    ablation_wrong_path,
    ablation_nrr_scarcity,
    ablation_early_release,
    ablation_miss_penalty
);
criterion_main!(benches);
