//! Criterion bench for Figure 4: prints the write-back NRR sweep on a
//! reduced run, then times the two NRR extremes on one register-hungry
//! benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vpr_bench::{experiments, run_benchmark, ExperimentConfig};
use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

fn bench_fig4(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let sweep = experiments::fig4(&exp);
    println!("\n=== Figure 4 (reduced run) ===");
    println!("{}", sweep.render());

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for nrr in [1usize, 32] {
        group.bench_function(format!("vortex/nrr={nrr}"), |b| {
            b.iter(|| {
                black_box(run_benchmark(
                    Benchmark::Vortex,
                    RenameScheme::VirtualPhysicalWriteback { nrr },
                    64,
                    &ExperimentConfig {
                        warmup: 1_000,
                        measure: 10_000,
                        ..ExperimentConfig::quick()
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
