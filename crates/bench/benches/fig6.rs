//! Criterion bench for Figure 6: prints the write-back vs issue
//! comparison on a reduced run and asserts the paper's conclusion (the
//! write-back scheme wins overall) before timing one configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vpr_bench::{experiments, run_benchmark, ExperimentConfig};
use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

fn bench_fig6(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let f6 = experiments::fig6(&exp);
    println!("\n=== Figure 6 (reduced run) ===");
    println!("{}", f6.render());
    println!(
        "write-back win rate: {:.0}%\n",
        100.0 * f6.writeback_win_rate()
    );
    assert!(
        f6.writeback_win_rate() >= 0.5,
        "the paper's conclusion (write-back ≥ issue) must hold on most benchmarks"
    );

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("mgrid/vp-writeback", |b| {
        b.iter(|| {
            black_box(run_benchmark(
                Benchmark::Mgrid,
                RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
                64,
                &ExperimentConfig {
                    warmup: 1_000,
                    measure: 10_000,
                    ..ExperimentConfig::quick()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
