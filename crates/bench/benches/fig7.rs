//! Criterion bench for Figure 7: prints the register-file-size sweep on a
//! reduced run and asserts the improvement shrinks as registers grow,
//! then times the smallest configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vpr_bench::{experiments, run_benchmark, ExperimentConfig};
use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

fn bench_fig7(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let f7 = experiments::fig7(&exp);
    println!("\n=== Figure 7 (reduced run) ===");
    println!("{}", f7.render());
    let imp = f7.mean_improvements_percent();
    println!(
        "mean improvements: {:+.0}% / {:+.0}% / {:+.0}% for 48/64/96 regs (paper: +31/+19/+8)\n",
        imp[0], imp[1], imp[2]
    );
    assert!(
        imp[0] > imp[2],
        "improvement must shrink with more registers: {imp:?}"
    );

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("swim/48regs/vp-writeback", |b| {
        b.iter(|| {
            black_box(run_benchmark(
                Benchmark::Swim,
                RenameScheme::VirtualPhysicalWriteback { nrr: 16 },
                48,
                &ExperimentConfig {
                    warmup: 1_000,
                    measure: 10_000,
                    ..ExperimentConfig::quick()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
