//! Criterion bench for raw simulator throughput (sim-MIPS): times the
//! `ExperimentConfig::quick()` table2 workload under all four renaming
//! schemes and prints the simulated-MIPS figure for each, so every PR
//! leaves a perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vpr_bench::harness::measure_throughput;
use vpr_bench::{run_benchmark, ExperimentConfig};
use vpr_core::RenameScheme;
use vpr_trace::Benchmark;

fn bench_throughput(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let report = measure_throughput(&exp, 1);
    println!("\n=== Simulator throughput (quick table2 workload) ===");
    for run in &report.runs {
        println!(
            "{:<28} {:>9.2} sim-MIPS ({} committed / {:.3}s host)",
            run.label, run.sim_mips, run.committed, run.host_seconds
        );
    }
    println!(
        "harmonic mean: {:.2} sim-MIPS\n",
        report.harmonic_mean_sim_mips()
    );

    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    for (name, scheme) in [
        ("swim/conventional", RenameScheme::Conventional),
        (
            "swim/vp-writeback",
            RenameScheme::VirtualPhysicalWriteback { nrr: 32 },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_benchmark(Benchmark::Swim, scheme, 64, &exp)))
        });
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
