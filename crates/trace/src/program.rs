//! Static synthetic programs: the vocabulary from which benchmark models
//! are built.
//!
//! A [`Program`] is a set of flat loops. Each [`LoopSpec`] has a body of
//! [`SynthOp`]s laid out at consecutive PCs, an implicit back-edge
//! conditional branch, a geometric trip-count distribution, and a set of
//! memory [`StreamSpec`]s its loads and stores walk. The
//! [`TraceGen`](crate::TraceGen) executor turns a program into an infinite
//! dynamic instruction stream.

use vpr_isa::Inst;

/// One operation slot in a loop body.
#[derive(Debug, Clone)]
pub enum SynthOp {
    /// A register-to-register operation, emitted as-is.
    Op(Inst),
    /// A load whose address comes from the numbered stream.
    Load {
        /// The instruction (must be a load with a destination).
        inst: Inst,
        /// Index into the loop's streams.
        stream: usize,
    },
    /// A store whose address comes from the numbered stream.
    Store {
        /// The instruction (must be a store).
        inst: Inst,
        /// Index into the loop's streams.
        stream: usize,
    },
    /// A data-dependent conditional branch inside the body: taken with
    /// probability `taken_prob`, skipping the next `skip` body slots when
    /// taken. Unpredictable when `taken_prob` is near 0.5. `src` names the
    /// integer register the branch compares — resolution then waits for
    /// that register's producer, which is what makes mispredictions on
    /// load-dependent branches expensive.
    CondBranch {
        /// Probability the branch is taken.
        taken_prob: f64,
        /// Body slots skipped on a taken outcome.
        skip: usize,
        /// Integer register the branch tests (`None`: resolves on its
        /// own, e.g. a counted-loop test the hardware sees as ready).
        src: Option<usize>,
    },
}

/// How a memory stream generates addresses.
#[derive(Debug, Clone, Copy)]
pub enum StreamKind {
    /// Sequential walk: address advances by `stride` per access, wrapping
    /// at the end of the working set (array streaming — high spatial
    /// locality, misses once per line when the working set exceeds the
    /// cache).
    Strided {
        /// Bytes between consecutive accesses.
        stride: u64,
    },
    /// Uniformly random addresses inside the working set (hash/table
    /// lookups, pointer chasing — no spatial locality).
    Random,
}

/// One memory stream of a loop.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// First byte of the stream's region.
    pub base: u64,
    /// Region size in bytes; addresses stay inside `[base, base + size)`.
    pub working_set: u64,
    /// Address pattern.
    pub kind: StreamKind,
}

impl StreamSpec {
    /// A sequential stream over `working_set` bytes starting at `base`.
    pub fn strided(base: u64, working_set: u64, stride: u64) -> Self {
        Self {
            base,
            working_set,
            kind: StreamKind::Strided { stride },
        }
    }

    /// A random-access stream over `working_set` bytes starting at `base`.
    pub fn random(base: u64, working_set: u64) -> Self {
        Self {
            base,
            working_set,
            kind: StreamKind::Random,
        }
    }
}

/// A flat loop: a body, its memory streams, and how long it runs.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// PC of the first body instruction (each op takes 4 bytes; the
    /// back-edge branch sits right after the body).
    pub base_pc: u64,
    /// The loop body, executed once per trip.
    pub body: Vec<SynthOp>,
    /// Memory streams referenced by the body's loads and stores.
    pub streams: Vec<StreamSpec>,
    /// Mean trips per activation (geometric distribution). The back-edge
    /// is taken while the loop continues — a 2-bit counter predicts it
    /// well when trips are long.
    pub mean_trips: f64,
}

impl LoopSpec {
    /// PC of the implicit back-edge branch.
    pub fn backedge_pc(&self) -> u64 {
        self.base_pc + 4 * self.body.len() as u64
    }

    /// PC of the implicit exit jump that transfers to the next loop.
    pub fn exit_pc(&self) -> u64 {
        self.backedge_pc() + 4
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if a load/store references a missing stream, a branch skip
    /// overruns the body, or the body is empty.
    pub fn validate(&self) {
        assert!(!self.body.is_empty(), "loop body cannot be empty");
        assert!(self.mean_trips >= 1.0, "a loop runs at least once");
        for (i, op) in self.body.iter().enumerate() {
            match op {
                SynthOp::Load { inst, stream } => {
                    assert!(inst.op() == vpr_isa::OpClass::Load, "slot {i}: not a load");
                    assert!(
                        *stream < self.streams.len(),
                        "slot {i}: stream {stream} missing"
                    );
                }
                SynthOp::Store { inst, stream } => {
                    assert!(
                        inst.op() == vpr_isa::OpClass::Store,
                        "slot {i}: not a store"
                    );
                    assert!(
                        *stream < self.streams.len(),
                        "slot {i}: stream {stream} missing"
                    );
                }
                SynthOp::CondBranch {
                    taken_prob,
                    skip,
                    src,
                } => {
                    assert!(
                        (0.0..=1.0).contains(taken_prob),
                        "slot {i}: bad probability"
                    );
                    assert!(
                        i + 1 + skip <= self.body.len(),
                        "slot {i}: skip {skip} overruns the body"
                    );
                    assert!(
                        src.is_none_or(|r| r < vpr_isa::NUM_LOGICAL_PER_CLASS),
                        "slot {i}: branch source register out of range"
                    );
                }
                SynthOp::Op(inst) => {
                    assert!(
                        !inst.op().is_mem() && !inst.op().is_branch(),
                        "slot {i}: memory/branch ops need their dedicated variants"
                    );
                }
            }
        }
    }
}

/// A complete synthetic program: weighted loops visited in proportion to
/// their weights.
#[derive(Debug, Clone)]
pub struct Program {
    /// The loops.
    pub loops: Vec<LoopSpec>,
    /// Relative selection weight of each loop (need not sum to 1).
    pub weights: Vec<f64>,
}

impl Program {
    /// Validates the program.
    ///
    /// # Panics
    ///
    /// Panics if empty, if weights mismatch, or if any loop is invalid.
    pub fn validate(&self) {
        assert!(!self.loops.is_empty(), "program needs at least one loop");
        assert_eq!(self.loops.len(), self.weights.len(), "one weight per loop");
        assert!(
            self.weights.iter().all(|w| *w > 0.0),
            "weights must be positive"
        );
        for l in &self.loops {
            l.validate();
        }
    }
}
