//! The program executor: turns a static [`Program`] into an infinite
//! dynamic instruction stream.

use crate::program::{Program, StreamKind, SynthOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpr_isa::{BranchInfo, DynInst, Inst, MemAccess, OpClass};

/// Per-activation dynamic stream state.
#[derive(Debug, Clone)]
struct StreamState {
    cursor: u64,
}

/// An infinite, deterministic dynamic-instruction generator.
///
/// The generator walks the program loop by loop: a loop is selected by
/// weight, runs a geometrically-distributed number of trips, then control
/// transfers (via an explicit unconditional jump in the stream) to the
/// next loop. Inside a trip, body slots execute in order; data-dependent
/// branches may skip ahead. Loads and stores draw addresses from their
/// stream's cursor.
///
/// Implements [`Iterator`] (and therefore
/// [`InstStream`](vpr_isa::InstStream)) over [`DynInst`].
#[derive(Debug, Clone)]
pub struct TraceGen {
    program: Program,
    rng: StdRng,
    /// Index of the active loop.
    cur: usize,
    /// Remaining trips of the active loop (including the current one).
    trips_left: u64,
    /// Next body slot to execute.
    slot: usize,
    /// Per-loop, per-stream cursors (persist across activations so strided
    /// streams keep walking their arrays).
    streams: Vec<Vec<StreamState>>,
    /// Pending control transfer to emit after a loop exit.
    pending_jump: Option<(u64, u64)>,
    emitted: u64,
}

impl TraceGen {
    /// Creates a generator over `program` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the program is invalid (see [`Program::validate`]).
    pub fn new(program: Program, seed: u64) -> Self {
        program.validate();
        let streams = program
            .loops
            .iter()
            .map(|l| {
                l.streams
                    .iter()
                    .map(|s| StreamState { cursor: s.base })
                    .collect()
            })
            .collect();
        let mut gen = Self {
            rng: StdRng::seed_from_u64(seed),
            cur: 0,
            trips_left: 0,
            slot: 0,
            streams,
            pending_jump: None,
            emitted: 0,
            program,
        };
        gen.enter_next_loop();
        gen
    }

    /// Number of instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Index of the loop the generator is currently executing — the
    /// workload's *phase label*. The sampling harness stratifies interval
    /// estimates by it (SimPoint-style: per-phase behaviour is
    /// near-stationary even when the whole stream is not).
    pub fn current_loop(&self) -> usize {
        self.cur
    }

    /// Number of loops (phases) in the underlying program.
    pub fn loop_count(&self) -> usize {
        self.program.loops.len()
    }

    /// Fast-forwards the generator by `n` instructions without yielding
    /// them — the cheap positioning primitive of the sampling harness
    /// (generation is a few nanoseconds per instruction; no simulation
    /// state is touched). After `fast_forward(n)`, the next instruction is
    /// exactly the one a peer generator would produce after `n` calls to
    /// `next`. (Named to avoid colliding with the by-value
    /// [`Iterator::skip`] adapter, which would win method resolution.)
    pub fn fast_forward(&mut self, n: u64) {
        for _ in 0..n {
            let _ = self.next();
        }
    }

    fn enter_next_loop(&mut self) {
        // Weighted choice.
        let total: f64 = self.program.weights.iter().sum();
        let mut draw = self.rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, w) in self.program.weights.iter().enumerate() {
            if draw < *w {
                chosen = i;
                break;
            }
            draw -= *w;
        }
        self.cur = chosen;
        self.slot = 0;
        let mean = self.program.loops[chosen].mean_trips;
        self.trips_left = self.sample_geometric(mean);
    }

    /// Geometric sample with the given mean, at least 1.
    fn sample_geometric(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let mut n = 1;
        while self.rng.gen_range(0.0..1.0) >= p && n < 1_000_000 {
            n += 1;
        }
        n
    }

    fn next_address(&mut self, stream_idx: usize) -> u64 {
        let spec = self.program.loops[self.cur].streams[stream_idx];
        let state = &mut self.streams[self.cur][stream_idx];
        match spec.kind {
            StreamKind::Strided { stride } => {
                let addr = state.cursor;
                let next = state.cursor + stride;
                state.cursor = if next >= spec.base + spec.working_set {
                    spec.base
                } else {
                    next
                };
                addr
            }
            StreamKind::Random => {
                let slots = (spec.working_set / 8).max(1);
                spec.base + 8 * self.rng.gen_range(0..slots)
            }
        }
    }

    fn emit(&mut self, di: DynInst) -> DynInst {
        self.emitted += 1;
        di
    }
}

impl vpr_snap::Resumable for TraceGen {
    /// Saves the dynamic position only: RNG state, active loop, trip/slot
    /// cursors, per-stream address cursors, the pending inter-loop jump
    /// and the emitted count. The static [`Program`] is *not* serialised —
    /// restore happens into a generator freshly built over the same
    /// program (same benchmark model, any seed).
    fn save_state(&self, enc: &mut vpr_snap::Encoder) {
        enc.put_u64(self.rng.state()[0]);
        enc.put_u64(self.rng.state()[1]);
        enc.put_u64(self.rng.state()[2]);
        enc.put_u64(self.rng.state()[3]);
        enc.put_usize(self.cur);
        enc.put_u64(self.trips_left);
        enc.put_usize(self.slot);
        enc.put_usize(self.streams.len());
        for per_loop in &self.streams {
            enc.put_usize(per_loop.len());
            for s in per_loop {
                enc.put_u64(s.cursor);
            }
        }
        match self.pending_jump {
            None => enc.put_u8(0),
            Some((pc, target)) => {
                enc.put_u8(1);
                enc.put_u64(pc);
                enc.put_u64(target);
            }
        }
        enc.put_u64(self.emitted);
    }

    /// # Panics
    ///
    /// Panics if the stream-cursor shape does not match this generator's
    /// program — the snapshot was taken over a different workload.
    fn restore_state(&mut self, dec: &mut vpr_snap::Decoder<'_>) {
        let s = [
            dec.take_u64(),
            dec.take_u64(),
            dec.take_u64(),
            dec.take_u64(),
        ];
        self.rng = StdRng::from_state(s);
        self.cur = dec.take_usize();
        self.trips_left = dec.take_u64();
        self.slot = dec.take_usize();
        let loops = dec.take_usize();
        assert_eq!(
            loops,
            self.streams.len(),
            "snapshot was taken over a different program (loop count)"
        );
        for per_loop in &mut self.streams {
            let n = dec.take_usize();
            assert_eq!(
                n,
                per_loop.len(),
                "snapshot was taken over a different program (stream count)"
            );
            for st in per_loop {
                st.cursor = dec.take_u64();
            }
        }
        self.pending_jump = match dec.take_u8() {
            0 => None,
            1 => Some((dec.take_u64(), dec.take_u64())),
            other => panic!("snapshot pending_jump flag {other}: layout mismatch"),
        };
        self.emitted = dec.take_u64();
        assert!(
            self.cur < self.program.loops.len(),
            "snapshot was taken over a different program (loop index)"
        );
    }
}

impl Iterator for TraceGen {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        // A pending inter-loop jump goes out first.
        if let Some((pc, target)) = self.pending_jump.take() {
            let di = DynInst::new(pc, Inst::new(OpClass::BranchUncond)).with_branch(BranchInfo {
                taken: true,
                next_pc: target,
            });
            return Some(self.emit(di));
        }
        let spec = &self.program.loops[self.cur];
        // End of body: the back-edge branch decides.
        if self.slot >= spec.body.len() {
            let pc = spec.backedge_pc();
            let taken = self.trips_left > 1;
            let next_pc = if taken { spec.base_pc } else { pc + 4 };
            let di = DynInst::new(pc, Inst::new(OpClass::BranchCond))
                .with_branch(BranchInfo { taken, next_pc });
            if taken {
                self.trips_left -= 1;
                self.slot = 0;
            } else {
                // Exit: queue the jump to the next loop.
                let exit_pc = spec.exit_pc();
                self.enter_next_loop();
                let target = self.program.loops[self.cur].base_pc;
                self.pending_jump = Some((exit_pc, target));
            }
            return Some(self.emit(di));
        }
        let pc = spec.base_pc + 4 * self.slot as u64;
        let op = spec.body[self.slot].clone();
        self.slot += 1;
        let di = match op {
            SynthOp::Op(inst) => DynInst::new(pc, inst),
            SynthOp::Load { inst, stream } => {
                let addr = self.next_address(stream);
                DynInst::new(pc, inst).with_mem(MemAccess::word(addr))
            }
            SynthOp::Store { inst, stream } => {
                let addr = self.next_address(stream);
                DynInst::new(pc, inst).with_mem(MemAccess::word(addr))
            }
            SynthOp::CondBranch {
                taken_prob,
                skip,
                src,
            } => {
                let taken = self.rng.gen_range(0.0..1.0) < taken_prob;
                let next_pc = if taken {
                    self.slot += skip;
                    pc + 4 * (1 + skip as u64)
                } else {
                    pc + 4
                };
                let mut inst = Inst::new(OpClass::BranchCond);
                if let Some(r) = src {
                    inst = inst.with_src1(vpr_isa::LogicalReg::int(r));
                }
                DynInst::new(pc, inst).with_branch(BranchInfo { taken, next_pc })
            }
        };
        Some(self.emit(di))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{LoopSpec, StreamSpec};
    use vpr_isa::LogicalReg;

    fn tiny_program() -> Program {
        Program {
            loops: vec![LoopSpec {
                base_pc: 0x1000,
                body: vec![
                    SynthOp::Load {
                        inst: Inst::new(OpClass::Load)
                            .with_dest(LogicalReg::int(1))
                            .with_src1(LogicalReg::int(30)),
                        stream: 0,
                    },
                    SynthOp::Op(
                        Inst::new(OpClass::IntAlu)
                            .with_dest(LogicalReg::int(2))
                            .with_src1(LogicalReg::int(1)),
                    ),
                    SynthOp::Store {
                        inst: Inst::new(OpClass::Store)
                            .with_src1(LogicalReg::int(2))
                            .with_src2(LogicalReg::int(30)),
                        stream: 1,
                    },
                ],
                streams: vec![
                    StreamSpec::strided(0x10000, 256, 8),
                    StreamSpec::strided(0x20000, 256, 8),
                ],
                mean_trips: 10.0,
            }],
            weights: vec![1.0],
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<DynInst> = TraceGen::new(tiny_program(), 7).take(500).collect();
        let b: Vec<DynInst> = TraceGen::new(tiny_program(), 7).take(500).collect();
        assert_eq!(a, b);
        let c: Vec<DynInst> = TraceGen::new(tiny_program(), 8).take(500).collect();
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn loop_structure_has_backedges_and_exits() {
        let insts: Vec<DynInst> = TraceGen::new(tiny_program(), 1).take(2000).collect();
        let backedges = insts
            .iter()
            .filter(|d| d.pc() == 0x1000 + 12 && d.op() == OpClass::BranchCond)
            .count();
        assert!(backedges > 100, "back-edge runs every trip");
        let exits = insts
            .iter()
            .filter(|d| d.pc() == 0x1000 + 12)
            .filter(|d| !d.branch().unwrap().taken)
            .count();
        assert!(exits > 0, "loops eventually exit");
        // Every exit is followed (in the stream) by the uncond jump.
        let jumps = insts
            .iter()
            .filter(|d| d.op() == OpClass::BranchUncond)
            .count();
        assert!(jumps >= exits.saturating_sub(1));
    }

    #[test]
    fn strided_stream_walks_and_wraps() {
        let insts: Vec<DynInst> = TraceGen::new(tiny_program(), 1).take(400).collect();
        let load_addrs: Vec<u64> = insts
            .iter()
            .filter(|d| d.op() == OpClass::Load)
            .map(|d| d.mem().unwrap().addr)
            .collect();
        assert!(load_addrs.len() > 50);
        // All within the stream region.
        assert!(load_addrs.iter().all(|a| (0x10000..0x10100).contains(a)));
        // Mostly +8 strides.
        let strided = load_addrs
            .windows(2)
            .filter(|w| w[1] == w[0] + 8 || w[1] == 0x10000)
            .count();
        assert_eq!(strided, load_addrs.len() - 1);
    }

    #[test]
    fn branch_outcomes_follow_next_pc() {
        let insts: Vec<DynInst> = TraceGen::new(tiny_program(), 3).take(3000).collect();
        for w in insts.windows(2) {
            assert_eq!(
                w[0].next_pc(),
                w[1].pc(),
                "the stream is the committed path: {} then {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn cond_branch_skip_jumps_over_slots() {
        let program = Program {
            loops: vec![LoopSpec {
                base_pc: 0,
                body: vec![
                    SynthOp::CondBranch {
                        taken_prob: 0.5,
                        skip: 1,
                        src: None,
                    },
                    SynthOp::Op(
                        Inst::new(OpClass::IntAlu)
                            .with_dest(LogicalReg::int(1))
                            .with_src1(LogicalReg::int(1)),
                    ),
                    SynthOp::Op(
                        Inst::new(OpClass::IntAlu)
                            .with_dest(LogicalReg::int(2))
                            .with_src1(LogicalReg::int(2)),
                    ),
                ],
                streams: vec![],
                mean_trips: 50.0,
            }],
            weights: vec![1.0],
        };
        let insts: Vec<DynInst> = TraceGen::new(program, 11).take(5000).collect();
        // The skipped slot (pc 4) appears strictly less often than the
        // always-executed one (pc 8).
        let at4 = insts.iter().filter(|d| d.pc() == 4).count();
        let at8 = insts.iter().filter(|d| d.pc() == 8).count();
        assert!(at4 < at8, "taken branches skip pc 4: {at4} vs {at8}");
        for w in insts.windows(2) {
            assert_eq!(w[0].next_pc(), w[1].pc());
        }
    }

    #[test]
    fn geometric_trips_have_roughly_the_right_mean() {
        let mut g = TraceGen::new(tiny_program(), 5);
        let samples: Vec<u64> = (0..2000).map(|_| g.sample_geometric(10.0)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((8.0..12.0).contains(&mean), "mean {mean} should be ≈10");
        assert!(samples.iter().all(|&s| s >= 1));
    }
}
