//! The paper's §3.1 motivating example.
//!
//! ```text
//! load f2, 0(r6)
//! fdiv f2, f2, f10
//! fmul f2, f2, f12
//! fadd f2, f2, 1
//! ```
//!
//! All four instructions decode together on an 8-wide machine; the
//! conventional scheme immediately allocates four physical registers for
//! the four definitions of `f2`, while the load misses and the dependent
//! chain crawls. The paper computes a register pressure of 151
//! register-cycles for decode-time allocation vs. 88 for issue-time and
//! 38 for write-back-time allocation. [`paper_example_chain`] reproduces
//! the code; `examples/register_pressure.rs` at the workspace root runs
//! it under all three schemes.

use vpr_isa::{DynInst, Inst, LogicalReg, MemAccess, OpClass};

/// One instance of the §3.1 four-instruction chain, starting at `pc` and
/// loading from `addr`.
pub fn paper_example_chain(pc: u64, addr: u64) -> Vec<DynInst> {
    vec![
        DynInst::new(
            pc,
            Inst::new(OpClass::Load)
                .with_dest(LogicalReg::fp(2))
                .with_src1(LogicalReg::int(6)),
        )
        .with_mem(MemAccess::word(addr)),
        DynInst::new(
            pc + 4,
            Inst::new(OpClass::FpDiv)
                .with_dest(LogicalReg::fp(2))
                .with_src1(LogicalReg::fp(2))
                .with_src2(LogicalReg::fp(10)),
        ),
        DynInst::new(
            pc + 8,
            Inst::new(OpClass::FpMul)
                .with_dest(LogicalReg::fp(2))
                .with_src1(LogicalReg::fp(2))
                .with_src2(LogicalReg::fp(12)),
        ),
        DynInst::new(
            pc + 12,
            Inst::new(OpClass::FpAdd)
                .with_dest(LogicalReg::fp(2))
                .with_src1(LogicalReg::fp(2)),
        ),
    ]
}

/// `n` back-to-back instances of the chain, each loading from a fresh
/// cache line so every load misses (as in the paper's scenario).
pub fn paper_example_trace(n: usize) -> Vec<DynInst> {
    (0..n as u64)
        .flat_map(|i| paper_example_chain(0x1000 + 16 * i, 0x10_0000 + 64 * i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_matches_the_paper() {
        let c = paper_example_chain(0x1000, 0x8000);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].op(), OpClass::Load);
        assert_eq!(c[1].op(), OpClass::FpDiv);
        assert_eq!(c[2].op(), OpClass::FpMul);
        assert_eq!(c[3].op(), OpClass::FpAdd);
        // All write f2 and each reads the previous definition.
        for d in &c {
            assert_eq!(d.inst().dest(), Some(LogicalReg::fp(2)));
        }
        for d in &c[1..] {
            assert_eq!(d.inst().src1(), Some(LogicalReg::fp(2)));
        }
        // PCs are consecutive: they can all be fetched in one cycle.
        for (i, d) in c.iter().enumerate() {
            assert_eq!(d.pc(), 0x1000 + 4 * i as u64);
        }
    }

    #[test]
    fn repeated_trace_uses_fresh_lines() {
        let t = paper_example_trace(3);
        assert_eq!(t.len(), 12);
        let addrs: Vec<u64> = t.iter().filter_map(|d| d.mem()).map(|m| m.addr).collect();
        assert_eq!(addrs.len(), 3);
        assert!(
            addrs.windows(2).all(|w| w[1] - w[0] >= 32),
            "distinct lines"
        );
    }
}
